//! Integration suite for the batch-dynamic connectivity subsystem.
//!
//! The acceptance contract (ISSUE 5): after **every** update batch, the
//! maintained AMPC labels are byte-identical to the MPC
//! recompute-from-scratch baseline, across multiple batch schedules and
//! under **both** sealed storage layouts (flat and `AMPC_STORE=sharded`),
//! with one DHT-generation epoch per batch.

use ampc::prelude::*;
use ampc_core::dynamic::{ampc_dynamic_cc, validate_dynamic_labels};
use ampc_graph::dynamic::{generate_batches, BatchMix, DynamicSource, UpdateBatch};
use ampc_graph::gen;
use ampc_mpc::dynamic::mpc_recompute_cc;

fn cfg(seed: u64) -> AmpcConfig {
    AmpcConfig {
        num_machines: 6,
        in_memory_threshold: 100,
        seed,
        ..AmpcConfig::default()
    }
}

/// The schedules the contract is pinned on: different mixes, batch
/// counts, batch sizes and seeds.
fn schedules(g: &CsrGraph) -> Vec<(String, Vec<UpdateBatch>)> {
    vec![
        (
            "churn 6x50".into(),
            generate_batches(g, 6, 50, BatchMix::Churn, 11),
        ),
        (
            "insert-heavy 3x120".into(),
            generate_batches(g, 3, 120, BatchMix::InsertOnly, 22),
        ),
        (
            "delete-to-empty 4x200".into(),
            generate_batches(g, 4, 200, BatchMix::DeleteOnly, 33),
        ),
    ]
}

#[test]
fn maintained_equals_recompute_on_every_batch_and_schedule() {
    let g = gen::rmat(8, 900, gen::RmatParams::SOCIAL, 5);
    let c = cfg(0xD11A);
    for (name, batches) in schedules(&g) {
        let maintained = ampc_dynamic_cc(&g, &batches, &c);
        let recomputed = mpc_recompute_cc(&g, &batches, &c);
        assert_eq!(
            maintained.labels.len(),
            batches.len() + 1,
            "{name}: one labelling per epoch"
        );
        for (epoch, (a, b)) in maintained.labels.iter().zip(&recomputed.labels).enumerate() {
            assert_eq!(a, b, "{name}: epoch {epoch} labels differ");
        }
        validate_dynamic_labels(&g, &batches, &maintained.labels)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

/// Both storage layouts, in one test so the process-global layout
/// override is never racing another layout-sensitive assertion: the
/// maintained kernel must produce identical labels *and* identical
/// round structure / communication under the flat and sharded sealed
/// layouts, on every schedule.
#[test]
fn both_storage_layouts_agree_per_batch() {
    let g = gen::erdos_renyi(250, 380, 7);
    let c = cfg(0xD11B);
    for (name, batches) in schedules(&g) {
        ampc_dht::store::force_store_layout(Some(false));
        let flat = ampc_dynamic_cc(&g, &batches, &c);
        ampc_dht::store::force_store_layout(Some(true));
        let sharded = ampc_dynamic_cc(&g, &batches, &c);
        ampc_dht::store::force_store_layout(None);
        assert_eq!(
            flat.labels, sharded.labels,
            "{name}: labels differ across layouts"
        );
        assert_eq!(
            flat.report.kv_comm(),
            sharded.report.kv_comm(),
            "{name}: CommStats differ across layouts"
        );
        assert_eq!(
            flat.report.num_kv_rounds(),
            sharded.report.num_kv_rounds(),
            "{name}"
        );
        assert_eq!(
            flat.report.num_epochs(),
            sharded.report.num_epochs(),
            "{name}"
        );
        // And the sharded-layout labels still match the recompute
        // baseline (run under the default flat layout).
        let recomputed = mpc_recompute_cc(&g, &batches, &c);
        assert_eq!(
            sharded.labels, recomputed.labels,
            "{name}: sharded vs recompute"
        );
    }
}

#[test]
fn epochs_seal_one_generation_each_and_are_config_independent() {
    let g = gen::erdos_renyi(150, 260, 3);
    let batches = generate_batches(&g, 5, 60, BatchMix::Churn, 44);
    let a = ampc_dynamic_cc(&g, &batches, &cfg(1));
    // One classify round per batch, one publish per epoch: kv rounds =
    // (batches * 2) + 1 initial publish.
    assert_eq!(a.report.num_epochs(), 6);
    assert_eq!(a.report.num_kv_rounds(), batches.len() * 2 + 1);

    // Labels are a function of the graph + schedule, not of the runtime
    // configuration (machine count, batching, algorithm seed).
    let b = ampc_dynamic_cc(&g, &batches, &cfg(2).with_machines(17).with_batching(false));
    assert_eq!(a.labels, b.labels);
}

#[test]
fn dynamic_source_end_to_end() {
    let spec = DynamicSource::parse("dyn:er:180,260:batches=4:ops=64:seed=5").unwrap();
    let inst = spec
        .generate(ampc_graph::datasets::Scale::Test, 20)
        .unwrap();
    let maintained = ampc_dynamic_cc(&inst.initial, &inst.batches, &cfg(9));
    let recomputed = mpc_recompute_cc(&inst.initial, &inst.batches, &cfg(9));
    assert_eq!(maintained.labels, recomputed.labels);
    validate_dynamic_labels(&inst.initial, &inst.batches, &maintained.labels).unwrap();
}
