//! Round-complexity assertions — the structural claims of Table 1 and
//! Table 3, checked mechanically.
//!
//! Table 3 reports the shuffle counts of the production implementations:
//! AMPC MIS and MM use **1** shuffle, AMPC MSF uses **5** (per
//! distributed round of its loop), while the MPC baselines pay 2 (MIS,
//! MM) or 3 (MSF, CC) shuffles per phase over O(log n)-many phases.

use ampc::prelude::*;
use ampc_core::matching::ampc_matching;
use ampc_core::mis::ampc_mis;
use ampc_core::msf::ampc_msf;
use ampc_core::one_vs_two::ampc_one_vs_two;
use ampc_graph::datasets::Scale;

fn cfg() -> AmpcConfig {
    AmpcConfig {
        num_machines: 6,
        in_memory_threshold: 300,
        ..AmpcConfig::default()
    }
}

#[test]
fn ampc_mis_single_shuffle_all_datasets() {
    for d in Dataset::REAL_WORLD {
        let g = d.generate(Scale::Test, 1);
        let out = ampc_mis(&g, &cfg());
        assert_eq!(out.report.num_shuffles(), 1, "{}", d.name());
        // Figure 1's three steps: shuffle + KV-write + IsInMIS.
        assert_eq!(out.report.stages.len(), 3, "{}", d.name());
    }
}

#[test]
fn ampc_mm_single_shuffle_all_datasets() {
    for d in Dataset::REAL_WORLD {
        let g = d.generate(Scale::Test, 1);
        let out = ampc_matching(&g, &cfg());
        assert_eq!(out.report.num_shuffles(), 1, "{}", d.name());
    }
}

#[test]
fn ampc_msf_five_shuffles_per_distributed_round() {
    for d in Dataset::REAL_WORLD {
        let g = d.generate_weighted(Scale::Test, 1);
        let out = ampc_msf(&g, &cfg());
        let s = out.report.num_shuffles();
        assert!(s.is_multiple_of(5) && s > 0, "{}: {} shuffles", d.name(), s);
    }
}

#[test]
fn ampc_one_vs_two_single_shuffle() {
    let g = ampc_graph::gen::two_cycles(3_000, 1);
    let out = ampc_one_vs_two(&g, &cfg());
    assert_eq!(out.report.num_shuffles(), 1);
}

#[test]
fn mpc_baselines_pay_logarithmically_many_shuffles() {
    let g = Dataset::Twitter.generate(Scale::Test, 1);
    let c = cfg();
    let mis = ampc_mpc::mpc_mis(&g, &c);
    let mm = ampc_mpc::mpc_matching(&g, &c);
    assert!(
        mis.report.num_shuffles() >= 4,
        "MIS: {}",
        mis.report.num_shuffles()
    );
    assert_eq!(mis.report.num_shuffles() % 2, 0);
    assert!(
        mm.report.num_shuffles() >= 4,
        "MM: {}",
        mm.report.num_shuffles()
    );

    let w = Dataset::Twitter.generate_weighted(Scale::Test, 1);
    let msf = ampc_mpc::mpc_msf(&w, &c);
    assert_eq!(msf.report.num_shuffles() % 3, 0);
    // Borůvka needs more phases than rootset MIS (Table 3's pattern:
    // 33–84 shuffles vs 8–14).
    assert!(
        msf.report.num_shuffles() > mis.report.num_shuffles(),
        "Boruvka {} vs rootset {}",
        msf.report.num_shuffles(),
        mis.report.num_shuffles()
    );
}

#[test]
fn ampc_beats_mpc_on_shuffles_everywhere() {
    for d in Dataset::REAL_WORLD {
        let g = d.generate(Scale::Test, 6);
        let c = cfg();
        let a = ampc_mis(&g, &c).report.num_shuffles();
        let m = ampc_mpc::mpc_mis(&g, &c).report.num_shuffles();
        assert!(a < m, "{}: AMPC {a} vs MPC {m}", d.name());
    }
}

#[test]
fn truncated_theory_variants_use_constant_rounds() {
    use ampc_core::matching::{ampc_matching_with_options, MatchingOptions};
    use ampc_core::mis::{ampc_mis_with_options, MisOptions};
    let g = Dataset::Orkut.generate(Scale::Test, 8);
    let c = cfg();
    let mis = ampc_mis_with_options(
        &g,
        &c,
        MisOptions {
            caching: true,
            truncated: true,
        },
    );
    // O(1/ε) IsInMIS rounds: generous constant bound.
    assert!(
        mis.report.num_kv_rounds() <= 10,
        "{}",
        mis.report.num_kv_rounds()
    );
    let mm = ampc_matching_with_options(
        &g,
        &c,
        MatchingOptions {
            caching: true,
            truncated: true,
        },
    );
    assert!(
        mm.report.num_kv_rounds() <= 10,
        "{}",
        mm.report.num_kv_rounds()
    );
}
