//! Workspace smoke test: one tiny end-to-end job per algorithm family
//! (MIS, maximal matching, MSF, connectivity, 1-vs-2-cycle), asserting
//! the cross-model equality invariant of DESIGN.md §3 — AMPC and MPC
//! consume the same seeded priorities, so their outputs must be
//! *identical* (the paper's own validation strategy, §5.3). Inputs are
//! far below every dataset analogue so the whole suite finishes in
//! about a second; `cross_model` covers the full analogues.

use ampc::prelude::*;
use ampc_core::one_vs_two::CycleAnswer;
use ampc_core::validate;
use ampc_graph::gen;

fn cfg() -> AmpcConfig {
    AmpcConfig {
        num_machines: 4,
        in_memory_threshold: 100,
        seed: 0x500C,
        ..AmpcConfig::default()
    }
}

fn tiny() -> CsrGraph {
    gen::rmat(8, 1_500, gen::RmatParams::SOCIAL, 42)
}

#[test]
fn smoke_mis() {
    let g = tiny();
    let c = cfg();
    let a = mis::ampc_mis(&g, &c);
    let m = ampc_mpc::mpc_mis(&g, &c);
    assert_eq!(a.in_mis, m.in_mis, "AMPC and MPC disagree on the MIS");
    assert!(validate::is_maximal_independent_set(&g, &a.in_mis));
}

#[test]
fn smoke_matching() {
    let g = tiny();
    let c = cfg();
    let a = matching::ampc_matching(&g, &c);
    let m = ampc_mpc::mpc_matching(&g, &c);
    assert_eq!(
        a.partner, m.partner,
        "AMPC and MPC disagree on the matching"
    );
    assert!(validate::is_maximal_matching(&g, &a.pairs()));
}

#[test]
fn smoke_msf() {
    let g = gen::random_weights(&tiny(), 1_000, 7);
    let c = cfg();
    let a = msf::ampc_msf(&g, &c);
    let m = ampc_mpc::mpc_msf(&g, &c);
    assert_eq!(a.edges, m.edges, "AMPC and MPC disagree on the MSF");
}

#[test]
fn smoke_connectivity() {
    let g = tiny();
    let c = cfg();
    let a = connectivity::ampc_connected_components(&g, &c);
    let m = ampc_mpc::mpc_connected_components(&g, &c);
    assert_eq!(
        a.label, m.label,
        "AMPC and MPC disagree on component labels"
    );
    assert!(validate::is_correct_components(&g, &a.label));
}

#[test]
fn smoke_one_vs_two_cycle() {
    let c = cfg();
    for (g, truth) in [
        (gen::single_cycle(400, 11), CycleAnswer::One),
        (gen::two_cycles(200, 11), CycleAnswer::Two),
    ] {
        let a = one_vs_two::ampc_one_vs_two(&g, &c);
        let (m, _) = ampc_mpc::local_contraction::mpc_one_vs_two(&g, &c);
        assert_eq!(a.answer, truth);
        assert_eq!(m, truth, "AMPC and MPC disagree on 1-vs-2-cycle");
    }
}

#[test]
fn smoke_walks() {
    let g = tiny();
    let c = cfg();
    let a = ampc_core::walks::ampc_random_walks(&g, &c, 1, 6);
    let m = ampc_mpc::mpc_random_walks(&g, &c, 1, 6);
    assert_eq!(a.walks, m.walks, "AMPC and MPC disagree on the walks");
    // The §5.7 separation: AMPC pays one shuffle, MPC one per hop.
    assert_eq!(a.report.num_shuffles(), 1);
    assert_eq!(m.report.num_shuffles(), 6);
}

#[test]
fn smoke_dynamic_connectivity() {
    let g = tiny();
    let c = cfg();
    let batches =
        ampc_graph::dynamic::generate_batches(&g, 3, 40, ampc_graph::dynamic::BatchMix::Churn, 11);
    let a = dynamic::ampc_dynamic_cc(&g, &batches, &c);
    let m = ampc_mpc::dynamic::mpc_recompute_cc(&g, &batches, &c);
    // The subsystem's contract: maintained labels byte-identical to
    // recompute-from-scratch after every batch.
    assert_eq!(
        a.labels, m.labels,
        "maintained and recomputed labels disagree"
    );
    dynamic::validate_dynamic_labels(&g, &batches, &a.labels).unwrap();
    assert_eq!(a.report.num_epochs(), 4, "DynInit + one epoch per batch");
}
