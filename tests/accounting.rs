//! Accounting invariants: the metering the figures are built on must
//! itself be trustworthy.

use ampc::prelude::*;
use ampc_core::matching::ampc_matching;
use ampc_core::mis::ampc_mis;
use ampc_core::msf::ampc_msf;
use ampc_dht::cost::Network;
use ampc_graph::gen;

fn cfg() -> AmpcConfig {
    AmpcConfig {
        num_machines: 5,
        in_memory_threshold: 300,
        ..AmpcConfig::default()
    }
}

#[test]
fn kv_bytes_scale_roughly_linearly_with_edges() {
    // Figure 9's premise: KV communication is near-linear in m.
    let small = gen::rmat(10, 10_000, gen::RmatParams::SOCIAL, 1);
    let large = gen::rmat(13, 80_000, gen::RmatParams::SOCIAL, 1);
    let c = cfg();
    let b_small =
        ampc_mis(&small, &c).report.kv_comm().kv_bytes() as f64 / small.num_edges() as f64;
    let b_large =
        ampc_mis(&large, &c).report.kv_comm().kv_bytes() as f64 / large.num_edges() as f64;
    let ratio = b_large / b_small;
    assert!(
        (0.3..3.0).contains(&ratio),
        "bytes-per-edge drifted superlinearly: {b_small:.1} -> {b_large:.1}"
    );
}

#[test]
fn caching_reduces_queries_not_correctness() {
    let g = gen::rmat(11, 20_000, gen::RmatParams::SOCIAL, 2);
    let with = ampc_mis(&g, &cfg().with_caching(true));
    let without = ampc_mis(&g, &cfg().with_caching(false));
    assert_eq!(with.in_mis, without.in_mis);
    let qw = with.report.kv_comm().queries;
    let qo = without.report.kv_comm().queries;
    assert!(qw < qo, "caching must cut queries: {qw} vs {qo}");
    assert!(with.report.kv_comm().cache_hits > 0);
}

#[test]
fn tcp_slower_than_rdma_same_everything_else() {
    let g = gen::rmat(10, 12_000, gen::RmatParams::SOCIAL, 3);
    let mut rdma_cfg = cfg();
    rdma_cfg.cost.network = Network::Rdma;
    let mut tcp_cfg = cfg();
    tcp_cfg.cost.network = Network::Tcp;
    let rdma = ampc_mis(&g, &rdma_cfg);
    let tcp = ampc_mis(&g, &tcp_cfg);
    assert_eq!(rdma.in_mis, tcp.in_mis);
    assert_eq!(
        rdma.report.kv_comm(),
        tcp.report.kv_comm(),
        "transport must not change communication, only its price"
    );
    assert!(tcp.report.sim_ns() > rdma.report.sim_ns());
}

#[test]
fn more_machines_same_totals_lower_bottleneck() {
    let g = gen::rmat(11, 30_000, gen::RmatParams::SOCIAL, 4);
    let a = ampc_mis(&g, &cfg().with_machines(2));
    let b = ampc_mis(&g, &cfg().with_machines(16));
    // Totals (bytes, queries modulo caching boundaries) comparable; the
    // simulated time must improve with parallelism.
    assert!(b.report.sim_ns() < a.report.sim_ns());
    assert_eq!(a.report.num_shuffles(), b.report.num_shuffles());
}

#[test]
fn matching_kv_traffic_exceeds_mis() {
    // §5.4: the matching searches are costlier than the MIS ones on the
    // same graph (full adjacency + two-endpoint edge processes).
    let g = gen::rmat(11, 25_000, gen::RmatParams::SOCIAL, 5);
    let c = cfg();
    let mis = ampc_mis(&g, &c).report.kv_comm().kv_bytes();
    let mm = ampc_matching(&g, &c).report.kv_comm().kv_bytes();
    assert!(mm > mis, "MM bytes {mm} should exceed MIS bytes {mis}");
}

#[test]
fn shuffle_bytes_match_data_actually_moved() {
    // The DirectGraph shuffle carries one record per vertex whose size
    // is its directed adjacency; totals must match the graph's arcs.
    let g = gen::erdos_renyi(200, 800, 6);
    let c = cfg();
    let out = ampc_mis(&g, &c);
    let s = &out.report.stages[0];
    assert_eq!(s.name, "DirectGraph");
    // Each directed arc appears in exactly one record: at least 4 bytes
    // per arc plus per-record overhead; at most the full symmetric size.
    let arcs = g.num_edges() as u64; // directed version keeps each edge once
    assert!(s.shuffle_bytes >= arcs * 4);
    assert!(s.shuffle_bytes <= (g.num_nodes() as u64) * 16 + arcs * 8);
    assert!(s.shuffle_bytes_max_machine <= s.shuffle_bytes);
}

#[test]
fn msf_pipeline_reports_all_expected_stages() {
    let w = gen::degree_weights(&gen::erdos_renyi(500, 3_000, 7));
    let mut c = cfg();
    c.in_memory_threshold = 100;
    let out = ampc_msf(&w, &c);
    for prefix in [
        "SortGraph",
        "KV-Write",
        "PrimSearch",
        "Combine",
        "PointerJump",
        "Contract",
        "Rebuild",
    ] {
        assert!(
            out.report.stages.iter().any(|s| s.name.starts_with(prefix)),
            "missing stage {prefix}"
        );
    }
    // Breakdown must cover the whole simulated time.
    let total: u64 = out.report.breakdown().iter().map(|(_, t)| t).sum();
    assert_eq!(total, out.report.sim_ns());
}

#[test]
fn random_walk_extension_is_metered() {
    let g = gen::rmat(10, 8_000, gen::RmatParams::SOCIAL, 8);
    // Batching pinned on: the round-trip assertions below are about the
    // batched pipeline and must hold even under AMPC_BATCH=off.
    let c = cfg().with_batching(true);
    let out = ampc_core::walks::ampc_random_walks(&g, &c, 1, 16);
    // 16 hops per walker, one lookup each (minus dead ends) — answered
    // either by the network or the handle-mounted §5.3 cache.
    let kv = out.report.kv_comm();
    let lookups = kv.queries + kv.cache_hits;
    assert!(
        lookups >= 16 * (g.num_nodes() as u64) / 2,
        "lookups {lookups}"
    );
    assert!(kv.cache_hits > 0, "repeat visits should hit the cache");
    assert!(kv.batches <= kv.queries);
    // Lockstep batching: the Walk stage's read depth is the hop count,
    // not walkers × hops — so round trips are far below queries.
    assert!(
        kv.batches < kv.queries / 2,
        "batches {} vs queries {}",
        kv.batches,
        kv.queries
    );
    assert_eq!(out.report.num_shuffles(), 1);
}

#[test]
fn batching_preserves_bytes_and_cuts_round_trips() {
    // The §5.3 batched pipeline vs the single-key baseline: identical
    // queries and bytes (the toggle only changes how round trips are
    // accounted), strictly fewer charged round trips, cheaper simulated
    // time.
    let g = gen::rmat(11, 20_000, gen::RmatParams::SOCIAL, 11);
    let on_cfg = cfg().with_batching(true);
    let off_cfg = cfg().with_batching(false);
    let on = ampc_mis(&g, &on_cfg);
    let off = ampc_mis(&g, &off_cfg);
    assert_eq!(on.in_mis, off.in_mis);
    let (a, b) = (on.report.kv_comm(), off.report.kv_comm());
    assert_eq!(a.queries, b.queries);
    assert_eq!(a.writes, b.writes);
    assert_eq!(a.bytes_read, b.bytes_read);
    assert_eq!(a.bytes_written, b.bytes_written);
    assert_eq!(b.batches, b.network_ops(), "baseline: one trip per op");
    assert!(a.batches < b.batches, "{} vs {}", a.batches, b.batches);
    assert!(a.batches <= a.queries + a.writes);
    assert!(
        on.report.sim_ns() < off.report.sim_ns(),
        "per-batch latency accounting must be cheaper: {} vs {}",
        on.report.sim_ns(),
        off.report.sim_ns()
    );
}

#[test]
fn every_kernel_respects_batches_leq_ops() {
    let g = gen::rmat(10, 10_000, gen::RmatParams::SOCIAL, 12);
    let c = cfg();
    let reports = vec![
        ampc_mis(&g, &c).report,
        ampc_matching(&g, &c).report,
        ampc_core::connectivity::ampc_connected_components(&g, &c).report,
        ampc_core::walks::ampc_random_walks(&g, &c, 1, 8).report,
        ampc_msf(&gen::degree_weights(&g), &c).report,
    ];
    for r in reports {
        let kv = r.kv_comm();
        assert!(kv.batches <= kv.network_ops());
        assert!(kv.batches > 0);
        assert_eq!(r.kv_round_trips(), kv.batches);
    }
}
