//! Fault-tolerance integration tests.
//!
//! §2 of the paper argues AMPC is *"amenable to fault tolerant
//! implementation"* because DHT generations are immutable. We verify the
//! operational consequence: preempting and replaying any machine during
//! any stage leaves every algorithm's output byte-identical, while the
//! simulated time goes up (the wasted attempt is paid for).

use ampc::prelude::*;
use ampc_core::matching::ampc_matching;
use ampc_core::mis::ampc_mis;
use ampc_core::msf::ampc_msf;
use ampc_graph::gen;
use ampc_runtime::fault::FaultPlan;

fn cfg() -> AmpcConfig {
    AmpcConfig {
        num_machines: 5,
        in_memory_threshold: 200,
        ..AmpcConfig::default()
    }
}

#[test]
fn mis_survives_preemption_in_every_stage() {
    let g = gen::rmat(10, 9_000, gen::RmatParams::SOCIAL, 2);
    let clean = ampc_mis(&g, &cfg());
    for stage in 0..clean.report.stages.len() {
        for machine in [0, 3] {
            let c = cfg().with_fault(FaultPlan::new(stage, machine));
            let faulted = ampc_mis(&g, &c);
            assert_eq!(
                faulted.in_mis, clean.in_mis,
                "stage {stage}, machine {machine}"
            );
        }
    }
}

#[test]
fn matching_survives_preemption() {
    let g = gen::erdos_renyi(300, 1200, 4);
    let clean = ampc_matching(&g, &cfg());
    for stage in 0..clean.report.stages.len() {
        let c = cfg().with_fault(FaultPlan::new(stage, 1));
        let faulted = ampc_matching(&g, &c);
        assert_eq!(faulted.partner, clean.partner, "stage {stage}");
    }
}

#[test]
fn msf_survives_preemption() {
    let g = gen::degree_weights(&gen::erdos_renyi(400, 2_000, 6));
    let clean = ampc_msf(&g, &cfg());
    for stage in [0, 1, 2, 3] {
        let c = cfg().with_fault(FaultPlan::new(stage, 2));
        let faulted = ampc_msf(&g, &c);
        assert_eq!(faulted.edges, clean.edges, "stage {stage}");
    }
}

#[test]
fn replay_is_counted_and_charged() {
    let g = gen::rmat(9, 4_000, gen::RmatParams::SOCIAL, 3);
    let clean = ampc_mis(&g, &cfg());
    // Stage 2 is the IsInMIS KV round (the expensive one).
    let c = cfg().with_fault(FaultPlan::new(2, 0));
    let faulted = ampc_mis(&g, &c);
    assert_eq!(faulted.report.replays, 1);
    assert_eq!(clean.report.replays, 0);
    assert!(
        faulted.report.sim_ns() > clean.report.sim_ns(),
        "the wasted attempt must cost simulated time"
    );
}

#[test]
fn dyn_cc_survives_preemption_across_layouts_and_threads() {
    let g = gen::erdos_renyi(300, 420, 9);
    let batches =
        ampc_graph::dynamic::generate_batches(&g, 3, 48, ampc_graph::dynamic::BatchMix::Churn, 11);
    let clean = dynamic::ampc_dynamic_cc(&g, &batches, &cfg());
    assert_eq!(clean.report.replays, 0);
    // Preempt during a mid-stream epoch's classify round and during the
    // final epoch, across both sealed-storage layouts (the AMPC_STORE
    // axis, forced programmatically because the env read is cached) and
    // 1/8 executor threads (the AMPC_THREADS axis): recovery replays
    // the partition against the last sealed generation, so every
    // epoch's labels stay byte-identical everywhere.
    let kv_stages: Vec<usize> = clean
        .report
        .stages
        .iter()
        .enumerate()
        .filter(|(_, s)| s.kind == ampc_runtime::StageKind::KvRound)
        .map(|(i, _)| i)
        .collect();
    let probe = [kv_stages[kv_stages.len() / 2], *kv_stages.last().unwrap()];
    for sharded in [false, true] {
        ampc_dht::store::force_store_layout(Some(sharded));
        for threads in [1, 8] {
            for &stage in &probe {
                let c = cfg()
                    .with_threads(threads)
                    .with_fault(FaultPlan::new(stage, 2));
                let faulted = dynamic::ampc_dynamic_cc(&g, &batches, &c);
                assert_eq!(
                    faulted.labels, clean.labels,
                    "stage {stage}, sharded={sharded}, threads={threads}"
                );
                assert_eq!(faulted.report.replays, 1);
                assert!(faulted.report.sim_ns() > clean.report.sim_ns());
            }
        }
    }
    ampc_dht::store::force_store_layout(None);
}

#[test]
fn mpc_baseline_also_survives_preemption() {
    let g = gen::erdos_renyi(300, 1_500, 8);
    let clean = ampc_mpc::mpc_mis(&g, &cfg());
    let c = cfg().with_fault(FaultPlan::new(0, 1));
    let faulted = ampc_mpc::mpc_mis(&g, &c);
    assert_eq!(faulted.in_mis, clean.in_mis);
}
