//! Fault-tolerance integration tests.
//!
//! §2 of the paper argues AMPC is *"amenable to fault tolerant
//! implementation"* because DHT generations are immutable. We verify the
//! operational consequence: preempting and replaying any machine during
//! any stage leaves every algorithm's output byte-identical, while the
//! simulated time goes up (the wasted attempt is paid for).

use ampc::prelude::*;
use ampc_core::matching::ampc_matching;
use ampc_core::mis::ampc_mis;
use ampc_core::msf::ampc_msf;
use ampc_graph::gen;
use ampc_runtime::fault::FaultPlan;

fn cfg() -> AmpcConfig {
    AmpcConfig {
        num_machines: 5,
        in_memory_threshold: 200,
        ..AmpcConfig::default()
    }
}

#[test]
fn mis_survives_preemption_in_every_stage() {
    let g = gen::rmat(10, 9_000, gen::RmatParams::SOCIAL, 2);
    let clean = ampc_mis(&g, &cfg());
    for stage in 0..clean.report.stages.len() {
        for machine in [0, 3] {
            let c = cfg().with_fault(FaultPlan::new(stage, machine));
            let faulted = ampc_mis(&g, &c);
            assert_eq!(
                faulted.in_mis, clean.in_mis,
                "stage {stage}, machine {machine}"
            );
        }
    }
}

#[test]
fn matching_survives_preemption() {
    let g = gen::erdos_renyi(300, 1200, 4);
    let clean = ampc_matching(&g, &cfg());
    for stage in 0..clean.report.stages.len() {
        let c = cfg().with_fault(FaultPlan::new(stage, 1));
        let faulted = ampc_matching(&g, &c);
        assert_eq!(faulted.partner, clean.partner, "stage {stage}");
    }
}

#[test]
fn msf_survives_preemption() {
    let g = gen::degree_weights(&gen::erdos_renyi(400, 2_000, 6));
    let clean = ampc_msf(&g, &cfg());
    for stage in [0, 1, 2, 3] {
        let c = cfg().with_fault(FaultPlan::new(stage, 2));
        let faulted = ampc_msf(&g, &c);
        assert_eq!(faulted.edges, clean.edges, "stage {stage}");
    }
}

#[test]
fn replay_is_counted_and_charged() {
    let g = gen::rmat(9, 4_000, gen::RmatParams::SOCIAL, 3);
    let clean = ampc_mis(&g, &cfg());
    // Stage 2 is the IsInMIS KV round (the expensive one).
    let c = cfg().with_fault(FaultPlan::new(2, 0));
    let faulted = ampc_mis(&g, &c);
    assert_eq!(faulted.report.replays, 1);
    assert_eq!(clean.report.replays, 0);
    assert!(
        faulted.report.sim_ns() > clean.report.sim_ns(),
        "the wasted attempt must cost simulated time"
    );
}

#[test]
fn mpc_baseline_also_survives_preemption() {
    let g = gen::erdos_renyi(300, 1_500, 8);
    let clean = ampc_mpc::mpc_mis(&g, &cfg());
    let c = cfg().with_fault(FaultPlan::new(0, 1));
    let faulted = ampc_mpc::mpc_mis(&g, &c);
    assert_eq!(faulted.in_mis, clean.in_mis);
}
