//! Cross-model integration tests: the paper's own validation strategy.
//!
//! §5.3: *"By specifying the same source of randomness, both the MPC and
//! AMPC algorithms compute the same MIS."* We assert exact equality of
//! the AMPC implementations, the MPC baselines, and the sequential
//! oracles on every dataset analogue — and that results are invariant
//! under the machine count (a real distributed-correctness property).

use ampc::prelude::*;
use ampc_core::matching::{ampc_matching, ampc_matching_loglog, greedy_matching};
use ampc_core::mis::{ampc_mis, greedy_mis};
use ampc_core::msf::in_memory::kruskal;
use ampc_core::msf::{ampc_msf, ampc_msf_algorithm2, kkt_msf};
use ampc_core::validate;
use ampc_graph::datasets::Scale;

fn cfg() -> AmpcConfig {
    AmpcConfig {
        num_machines: 6,
        in_memory_threshold: 400,
        seed: 0xFEED,
        ..AmpcConfig::default()
    }
}

#[test]
fn mis_identical_across_all_implementations_and_datasets() {
    for d in Dataset::REAL_WORLD {
        let g = d.generate(Scale::Test, 7);
        let c = cfg();
        let oracle = greedy_mis(&g, c.seed);
        let a = ampc_mis(&g, &c);
        assert_eq!(a.in_mis, oracle, "AMPC vs oracle on {}", d.name());
        let m = ampc_mpc::mpc_mis(&g, &c);
        assert_eq!(m.in_mis, oracle, "MPC vs oracle on {}", d.name());
        assert!(validate::is_maximal_independent_set(&g, &oracle));
    }
}

#[test]
fn matching_identical_across_all_implementations_and_datasets() {
    for d in Dataset::REAL_WORLD {
        let g = d.generate(Scale::Test, 3);
        let c = cfg();
        let oracle = greedy_matching(&g, c.seed);
        assert_eq!(
            ampc_matching(&g, &c).partner,
            oracle,
            "AMPC O(1) on {}",
            d.name()
        );
        assert_eq!(
            ampc_matching_loglog(&g, &c).partner,
            oracle,
            "AMPC loglog on {}",
            d.name()
        );
        assert_eq!(
            ampc_mpc::mpc_matching(&g, &c).partner,
            oracle,
            "MPC on {}",
            d.name()
        );
    }
}

#[test]
fn msf_identical_across_all_implementations_and_datasets() {
    for d in Dataset::REAL_WORLD {
        let g = d.generate_weighted(Scale::Test, 5);
        let c = cfg();
        let oracle = kruskal(&g);
        assert_eq!(ampc_msf(&g, &c).edges, oracle, "pipeline on {}", d.name());
        assert_eq!(
            ampc_msf_algorithm2(&g, &c).edges,
            oracle,
            "algorithm 2 on {}",
            d.name()
        );
        assert_eq!(kkt_msf(&g, &c).edges, oracle, "KKT on {}", d.name());
        assert_eq!(
            ampc_mpc::mpc_msf(&g, &c).edges,
            oracle,
            "Boruvka on {}",
            d.name()
        );
    }
}

#[test]
fn connectivity_correct_on_all_datasets() {
    for d in Dataset::REAL_WORLD {
        let g = d.generate(Scale::Test, 9);
        let c = cfg();
        let a = ampc_core::connectivity::ampc_connected_components(&g, &c);
        assert!(
            validate::is_correct_components(&g, &a.label),
            "AMPC CC on {}",
            d.name()
        );
        let m = ampc_mpc::mpc_connected_components(&g, &c);
        assert!(
            validate::is_correct_components(&g, &m.label),
            "MPC CC on {}",
            d.name()
        );
        // Both produce the canonical min-id labelling: exact equality.
        assert_eq!(a.label, m.label, "canonical labels on {}", d.name());
    }
}

#[test]
fn results_invariant_under_machine_count() {
    let g = Dataset::Orkut.generate(Scale::Test, 2);
    let w = Dataset::Orkut.generate_weighted(Scale::Test, 2);
    let base = cfg();
    let reference_mis = ampc_mis(&g, &base).in_mis;
    let reference_mm = ampc_matching(&g, &base).partner;
    let reference_msf = ampc_msf(&w, &base).edges;
    for p in [1, 2, 13, 40] {
        let c = base.with_machines(p);
        assert_eq!(ampc_mis(&g, &c).in_mis, reference_mis, "MIS at P={p}");
        assert_eq!(ampc_matching(&g, &c).partner, reference_mm, "MM at P={p}");
        assert_eq!(ampc_msf(&w, &c).edges, reference_msf, "MSF at P={p}");
    }
}

/// The §5.3 batching toggle is an accounting change, not an algorithm
/// change: batched and single-key execution of MIS, MM and CC must
/// produce identical outputs and identical bytes, with batches bounded
/// by queries.
#[test]
fn batched_and_single_key_execution_identical() {
    for d in Dataset::REAL_WORLD {
        let g = d.generate(Scale::Test, 6);
        let on = cfg().with_batching(true);
        let off = cfg().with_batching(false);

        let mis_on = ampc_mis(&g, &on);
        let mis_off = ampc_mis(&g, &off);
        assert_eq!(mis_on.in_mis, mis_off.in_mis, "MIS on {}", d.name());

        let mm_on = ampc_matching(&g, &on);
        let mm_off = ampc_matching(&g, &off);
        assert_eq!(mm_on.partner, mm_off.partner, "MM on {}", d.name());

        let cc_on = ampc_core::connectivity::ampc_connected_components(&g, &on);
        let cc_off = ampc_core::connectivity::ampc_connected_components(&g, &off);
        assert_eq!(cc_on.label, cc_off.label, "CC on {}", d.name());

        for (name, a, b) in [
            ("MIS", mis_on.report.kv_comm(), mis_off.report.kv_comm()),
            ("MM", mm_on.report.kv_comm(), mm_off.report.kv_comm()),
            ("CC", cc_on.report.kv_comm(), cc_off.report.kv_comm()),
        ] {
            assert_eq!(a.bytes_read, b.bytes_read, "{name} bytes on {}", d.name());
            assert_eq!(a.queries, b.queries, "{name} queries on {}", d.name());
            assert!(a.batches <= a.queries + a.writes, "{name} on {}", d.name());
            assert!(
                a.batches < b.batches,
                "{name} on {}: batching must cut round trips ({} vs {})",
                d.name(),
                a.batches,
                b.batches
            );
        }
    }
}

#[test]
fn different_seeds_give_different_but_valid_outputs() {
    let g = Dataset::Orkut.generate(Scale::Test, 4);
    let a = ampc_mis(&g, &cfg().with_seed(1));
    let b = ampc_mis(&g, &cfg().with_seed(2));
    assert_ne!(a.in_mis, b.in_mis, "seeds should matter");
    assert!(validate::is_maximal_independent_set(&g, &a.in_mis));
    assert!(validate::is_maximal_independent_set(&g, &b.in_mis));
}

#[test]
fn one_vs_two_cycle_both_models_agree() {
    use ampc_core::one_vs_two::{ampc_one_vs_two, CycleAnswer};
    for k in [500usize, 5_000] {
        for (g, truth) in [
            (ampc_graph::gen::single_cycle(2 * k, 3), CycleAnswer::One),
            (ampc_graph::gen::two_cycles(k, 3), CycleAnswer::Two),
        ] {
            let c = cfg();
            assert_eq!(ampc_one_vs_two(&g, &c).answer, truth);
            let (m, _) = ampc_mpc::local_contraction::mpc_one_vs_two(&g, &c);
            assert_eq!(m, truth);
        }
    }
}
