//! Regression suite for the flat sealed storage layout and the
//! persistent executor pool (DESIGN.md §5.4).
//!
//! The flat layouts (dense direct-index, open-addressed) and the pool
//! are wall-clock optimizations: this suite pins that they are
//! *observationally equivalent* to the pre-flat sharded layout and the
//! spawn-per-machine executor — identical kernel outputs, round counts
//! and `CommStats` — and that the sealed flat representation is a pure
//! function of what was written (byte-identical across thread counts
//! and execution policies).

use ampc::prelude::*;
use ampc_core::one_vs_two;
use ampc_dht::hasher::mix64;
use ampc_dht::store::{
    force_store, Generation, GenerationWriter, ReprKind, StoreBackend, StoreKind,
};
use ampc_graph::gen;
use ampc_runtime::JobReport;

fn cfg() -> AmpcConfig {
    AmpcConfig {
        num_machines: 6,
        in_memory_threshold: 100,
        seed: 0xF1A7,
        ..AmpcConfig::default()
    }
}

/// `get`/`get_many` pinned against the sharded baseline on adversarial
/// key sets: mix64-colliding buckets, sparse u64 keys, dense `0..n`
/// keys — including misses adjacent to every hit.
#[test]
fn flat_get_matches_sharded_on_adversarial_keys() {
    let colliding: Vec<u64> = (0..1_000_000u64)
        .filter(|&k| mix64(k) % 64 == 7)
        .take(2_000)
        .collect();
    let sparse: Vec<u64> = (1..1_500u64)
        .map(|k| k.wrapping_mul(0x6C07_96D9_47A1_9E63))
        .collect();
    let dense: Vec<u64> = (0..2_000u64).collect();
    for (name, keys) in [
        ("colliding", colliding),
        ("sparse", sparse),
        ("dense", dense),
    ] {
        let build = || {
            let w: GenerationWriter<Vec<u32>> = GenerationWriter::new();
            for &k in &keys {
                w.put(k, vec![k as u32, (k >> 32) as u32]);
            }
            w
        };
        let flat = build().seal_with_threads(2);
        let sharded = build().seal_sharded();
        assert_ne!(flat.repr_kind(), ReprKind::Sharded, "{name}");
        assert_eq!(flat.len(), sharded.len(), "{name}");
        assert_eq!(flat.size_bytes(), sharded.size_bytes(), "{name}");
        let mut probes: Vec<u64> = keys.clone();
        probes.extend(keys.iter().flat_map(|&k| [k ^ 1, k.wrapping_add(1), !k]));
        for &p in &probes {
            assert_eq!(flat.get(p), sharded.get(p), "{name}: key {p}");
        }
        let mut from_flat = Vec::new();
        flat.get_many_into(&probes, &mut from_flat);
        for (p, got) in probes.iter().zip(from_flat) {
            assert_eq!(got, sharded.get(*p), "{name}: batched key {p}");
        }
    }
}

/// A full kernel must produce identical outputs, rounds and CommStats
/// under every (storage layout × executor policy) combination.
#[test]
fn kernels_identical_across_layouts_and_executors() {
    let g = gen::rmat(8, 1_200, gen::RmatParams::SOCIAL, 5);
    #[derive(PartialEq, Debug)]
    struct Obs {
        in_mis: Vec<bool>,
        kv_rounds: usize,
        shuffles: usize,
        queries: u64,
        kv_bytes: u64,
        batches: u64,
        peak_gen: u64,
    }
    let observe = |r: ampc_core::mis::MisOutcome| Obs {
        in_mis: r.in_mis,
        kv_rounds: r.report.num_kv_rounds(),
        shuffles: r.report.num_shuffles(),
        queries: r.report.kv_comm().queries,
        kv_bytes: r.report.kv_comm().kv_bytes(),
        batches: r.report.kv_comm().batches,
        peak_gen: r.report.peak_generation_bytes(),
    };
    // Reference: flat store, inline execution.
    let reference = observe(ampc_core::mis::ampc_mis(&g, &cfg().with_threads(1)));
    for (label, c) in [
        ("pool-4", cfg().with_threads(4)),
        ("pool-8", cfg().with_threads(8)),
        ("spawn", cfg().with_threads(4).with_legacy_spawn(true)),
    ] {
        let got = observe(ampc_core::mis::ampc_mis(&g, &c));
        assert_eq!(got, reference, "{label}");
    }
}

/// The socket-backed substrate (DESIGN.md §12) is observationally
/// identical to flat: same layout fingerprints, gets and batched gets
/// on adversarial keys — with the shards living outside the sealing
/// thread — and a full kernel produces identical outputs, rounds and
/// CommStats across 1/2/8 threads. Generation- and kernel-level checks
/// share one test because the store override is process-global.
#[test]
fn socket_substrate_matches_flat_generations_and_kernels() {
    let keys: Vec<u64> = (1..1_200u64)
        .map(|k| k.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    let build = || {
        let w: GenerationWriter<Vec<u32>> = GenerationWriter::new();
        for &k in &keys {
            w.put(k, vec![k as u32, (k >> 32) as u32]);
        }
        w
    };
    let flat = build().seal_with_threads(2);
    force_store(Some(StoreKind::Socket));
    let socket = build().seal();
    assert_eq!(socket.backend(), StoreBackend::Socket);
    assert_eq!(flat.backend(), StoreBackend::InMemory);
    assert_eq!(socket.layout_fingerprint(), flat.layout_fingerprint());
    assert_eq!(socket.len(), flat.len());
    assert_eq!(socket.size_bytes(), flat.size_bytes());
    let probes: Vec<u64> = keys.iter().flat_map(|&k| [k, k ^ 1, !k]).collect();
    for &p in &probes {
        assert_eq!(socket.get(p), flat.get(p), "key {p}");
    }
    let (mut a, mut b) = (Vec::new(), Vec::new());
    socket.get_many_into(&probes, &mut a);
    flat.get_many_into(&probes, &mut b);
    assert_eq!(a, b, "batched gets diverge");

    // Kernel level: identical outputs, rounds and CommStats under the
    // socket substrate at every thread count (the §3 contract).
    let observe = |r: ampc_core::mis::MisOutcome| {
        (
            r.in_mis,
            r.report.num_kv_rounds(),
            r.report.num_shuffles(),
            r.report.kv_comm(),
            r.report.peak_generation_bytes(),
        )
    };
    let g = gen::rmat(8, 1_200, gen::RmatParams::SOCIAL, 5);
    force_store(Some(StoreKind::Flat));
    let reference = observe(ampc_core::mis::ampc_mis(&g, &cfg().with_threads(1)));
    force_store(Some(StoreKind::Socket));
    for threads in [1usize, 2, 8] {
        let got = observe(ampc_core::mis::ampc_mis(&g, &cfg().with_threads(threads)));
        assert_eq!(got, reference, "socket, {threads} threads");
    }
    force_store(None);
}

/// Lockstep kernels using the buffer-reusing batched lookups must be
/// unaffected by the batching toggle in everything but round trips.
#[test]
fn lockstep_buffers_preserve_single_key_equivalence() {
    let g = gen::two_cycles(600, 3);
    let on = one_vs_two::ampc_one_vs_two(&g, &cfg().with_batching(true));
    let off = one_vs_two::ampc_one_vs_two(&g, &cfg().with_batching(false));
    assert_eq!(on.answer, off.answer);
    assert_eq!(on.num_cycles, off.num_cycles);
    let (a, b) = (on.report.kv_comm(), off.report.kv_comm());
    assert_eq!(a.queries, b.queries);
    assert_eq!(a.bytes_read, b.bytes_read);
    assert!(a.batches < b.batches);
}

/// Fault-injection replays must be byte-identical whichever executor
/// ran the original round (the replay path is the same inline
/// per-machine entry point the pool dispatches).
#[test]
fn fault_replay_identical_under_pool_and_spawn() {
    let g = gen::rmat(7, 700, gen::RmatParams::SOCIAL, 9);
    let fault = ampc_runtime::fault::FaultPlan::new(1, 2);
    let run = |c: AmpcConfig| {
        let out = ampc_core::mis::ampc_mis(&g, &c.with_fault(fault));
        (out.in_mis, out.report.replays)
    };
    let clean = ampc_core::mis::ampc_mis(&g, &cfg()).in_mis;
    let (inline_mis, inline_replays) = run(cfg().with_threads(1));
    let (pooled_mis, pooled_replays) = run(cfg().with_threads(4));
    let (spawned_mis, spawned_replays) = run(cfg().with_threads(4).with_legacy_spawn(true));
    assert_eq!(inline_replays, 1);
    assert_eq!(pooled_replays, 1);
    assert_eq!(spawned_replays, 1);
    assert_eq!(inline_mis, clean);
    assert_eq!(pooled_mis, clean);
    assert_eq!(spawned_mis, clean);
}

/// `peak_generation_bytes` reads the seal-time cache and matches an
/// explicit recomputation over the generations a kernel sealed.
#[test]
fn peak_generation_bytes_is_tracked() {
    let g = gen::rmat(7, 900, gen::RmatParams::SOCIAL, 2);
    let out = ampc_core::mis::ampc_mis(&g, &cfg());
    let peak = out.report.peak_generation_bytes();
    assert!(peak > 0);
    // The MIS writes each vertex's directed adjacency once: the peak
    // generation holds exactly those records.
    let expected: u64 = {
        let writer: GenerationWriter<Vec<NodeId>> = GenerationWriter::new();
        for v in 0..g.num_nodes() as NodeId {
            let rv = ampc_core::priorities::node_rank(cfg().seed, v);
            let dir: Vec<NodeId> = g
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| ampc_core::priorities::node_rank(cfg().seed, u) < rv)
                .collect();
            writer.put(v as u64, dir);
        }
        let sealed: Generation<Vec<NodeId>> = writer.seal();
        sealed.size_bytes() as u64
    };
    assert_eq!(peak, expected);
}

/// Sub-reports absorbed across algorithm boundaries keep carrying the
/// generation-size column.
#[test]
fn absorbed_reports_preserve_gen_bytes() {
    let g = gen::rmat(7, 500, gen::RmatParams::SOCIAL, 4);
    let out = ampc_core::connectivity::ampc_connected_components(&g, &cfg());
    let report: &JobReport = &out.report;
    assert!(report.peak_generation_bytes() > 0);
    let max_stage = report.stages.iter().map(|s| s.gen_bytes).max().unwrap();
    assert_eq!(report.peak_generation_bytes(), max_stage);
}
