//! Chaos-engine integration tests: seeded multi-fault schedules.
//!
//! The invariant under test (DESIGN.md §10): for **every** fault
//! schedule — seeded random kills, repeated explicit kills, correlated
//! stripes, epoch-targeted kills, DHT batch drops with capped-backoff
//! retries — every kernel family's output is **byte-identical** to the
//! fault-free run, under both sealed-storage layouts and any executor
//! thread count. Only simulated time and the new replay/retry counters
//! may differ, and those are themselves deterministic per seed.

use ampc::prelude::*;
use ampc_core::algorithm::digest_u64s;
use ampc_core::one_vs_two::CycleAnswer;
use ampc_graph::gen;
use ampc_runtime::chaos::ChaosSpec;
use ampc_runtime::JobReport;

fn cfg() -> AmpcConfig {
    AmpcConfig {
        num_machines: 4,
        in_memory_threshold: 100,
        seed: 0x500C,
        ..AmpcConfig::default()
    }
}

fn tiny() -> CsrGraph {
    gen::rmat(8, 1_500, gen::RmatParams::SOCIAL, 42)
}

/// The schedule most tests run under: seeded kills at 120‰ per
/// machine-stage plus 80‰ batch drops (same spec the `chaos-dyn-cc`
/// perf row and the CI chaos-smoke job use).
fn schedule() -> ChaosSpec {
    ChaosSpec::parse("chaos:seed=29:rate=120:drop=80").unwrap()
}

/// One kernel family: name plus a runner returning the output digest
/// and the finished report under the given config.
type Family = (&'static str, Box<dyn Fn(&AmpcConfig) -> (u64, JobReport)>);

fn families() -> Vec<Family> {
    let g = tiny();
    let weighted = gen::random_weights(&tiny(), 1_000, 7);
    let cycles = gen::two_cycles(200, 11);
    let dyn_g = tiny();
    let batches = ampc_graph::dynamic::generate_batches(
        &dyn_g,
        3,
        40,
        ampc_graph::dynamic::BatchMix::Churn,
        11,
    );
    let g1 = g.clone();
    let g2 = g.clone();
    let g3 = g.clone();
    let g4 = g.clone();
    vec![
        (
            "mis",
            Box::new(move |c: &AmpcConfig| {
                let r = mis::ampc_mis(&g1, c);
                (digest_u64s(r.in_mis.iter().map(|&b| b as u64)), r.report)
            }),
        ),
        (
            "matching",
            Box::new(move |c: &AmpcConfig| {
                let r = matching::ampc_matching(&g2, c);
                (digest_u64s(r.partner.iter().map(|&x| x as u64)), r.report)
            }),
        ),
        (
            "msf",
            Box::new(move |c: &AmpcConfig| {
                let r = msf::ampc_msf(&weighted, c);
                (
                    digest_u64s(r.edges.iter().flat_map(|e| [e.u as u64, e.v as u64, e.w])),
                    r.report,
                )
            }),
        ),
        (
            "connectivity",
            Box::new(move |c: &AmpcConfig| {
                let r = connectivity::ampc_connected_components(&g3, c);
                (digest_u64s(r.label.iter().map(|&x| x as u64)), r.report)
            }),
        ),
        (
            "one_vs_two",
            Box::new(move |c: &AmpcConfig| {
                let r = one_vs_two::ampc_one_vs_two(&cycles, c);
                (
                    digest_u64s([matches!(r.answer, CycleAnswer::Two) as u64]),
                    r.report,
                )
            }),
        ),
        (
            "walks",
            Box::new(move |c: &AmpcConfig| {
                let r = walks::ampc_random_walks(&g4, c, 1, 6);
                (
                    digest_u64s(
                        r.walks
                            .iter()
                            .flat_map(|walk| walk.iter().map(|&v| v as u64 + 1).chain([0])),
                    ),
                    r.report,
                )
            }),
        ),
        (
            "dynamic",
            Box::new(move |c: &AmpcConfig| {
                let r = dynamic::ampc_dynamic_cc(&dyn_g, &batches, c);
                (
                    digest_u64s(
                        r.labels
                            .iter()
                            .flat_map(|epoch| epoch.iter().map(|&x| x as u64)),
                    ),
                    r.report,
                )
            }),
        ),
    ]
}

#[test]
fn every_family_byte_identical_under_seeded_schedule() {
    let mut total_replays = 0u64;
    let mut total_retries = 0u64;
    for (name, run) in families() {
        let (clean_digest, clean_report) = run(&cfg());
        let (chaos_digest, chaos_report) = run(&cfg().with_chaos(schedule()));
        assert_eq!(
            chaos_digest, clean_digest,
            "{name}: output changed under chaos"
        );
        assert_eq!(clean_report.replays, 0, "{name}: clean run replayed");
        assert_eq!(clean_report.kv_comm().retries, 0);
        let kv = chaos_report.kv_comm();
        // Fault handling is pure overhead: queries, writes, batches and
        // bytes are unchanged; only the retry counters and time move.
        let clean_kv = clean_report.kv_comm();
        assert_eq!(kv.queries, clean_kv.queries, "{name}: queries changed");
        assert_eq!(kv.batches, clean_kv.batches, "{name}: batches changed");
        assert_eq!(kv.kv_bytes(), clean_kv.kv_bytes(), "{name}: bytes changed");
        assert!(kv.wasted_batches <= kv.batches, "{name}");
        if chaos_report.replays > 0 || kv.retries > 0 {
            assert!(
                chaos_report.sim_ns() > clean_report.sim_ns(),
                "{name}: injected faults must cost simulated time"
            );
        }
        total_replays += chaos_report.replays;
        total_retries += kv.retries;
    }
    assert!(total_replays > 0, "schedule never killed a machine");
    assert!(total_retries > 0, "schedule never dropped a batch");
}

#[test]
fn chaos_counters_deterministic_across_layouts_and_threads() {
    let (_, run) = families().remove(0); // mis
    let (clean_digest, _) = run(&cfg());
    let mut fingerprints = Vec::new();
    for sharded in [false, true] {
        ampc_dht::store::force_store_layout(Some(sharded));
        for threads in [1, 2, 8] {
            let c = cfg().with_threads(threads).with_chaos(schedule());
            let (digest, report) = run(&c);
            assert_eq!(
                digest, clean_digest,
                "sharded={sharded}, threads={threads}: output changed"
            );
            let kv = report.kv_comm();
            fingerprints.push((
                report.replays,
                kv.retries,
                kv.wasted_batches,
                kv.backoff_units,
                report.sim_ns(),
            ));
        }
    }
    ampc_dht::store::force_store_layout(None);
    // Drop decisions hash (seed, machine, batch ordinal); kill rolls
    // hash (seed, stage, machine). Neither sees the layout or the
    // thread schedule, so every fingerprint is identical.
    assert!(
        fingerprints.iter().all(|f| *f == fingerprints[0]),
        "retry/replay accounting diverged across layouts/threads: {fingerprints:?}"
    );
    assert!(fingerprints[0].1 > 0, "schedule never dropped a batch");
}

#[test]
fn different_seeds_charge_different_overhead() {
    let (_, run) = families().remove(0); // mis
    let (d1, r1) = run(&cfg().with_chaos(ChaosSpec::seeded(1).with_drop(200)));
    let (d2, r2) = run(&cfg().with_chaos(ChaosSpec::seeded(2).with_drop(200)));
    assert_eq!(d1, d2, "outputs are seed-of-chaos independent");
    let (k1, k2) = (r1.kv_comm(), r2.kv_comm());
    assert!(
        (k1.retries, k1.backoff_units, r1.replays) != (k2.retries, k2.backoff_units, r2.replays),
        "two chaos seeds produced identical accounting (suspicious)"
    );
}

#[test]
fn repeated_explicit_kills_replay_twice() {
    let g = tiny();
    let clean = mis::ampc_mis(&g, &cfg());
    // Stage 2 is the IsInMIS KV round; kill machine 1 there twice and
    // machine 6 (wraps to 6 % 4 = 2) once.
    let spec = ChaosSpec::new(0xD0)
        .with_kill(2, 1)
        .with_kill(2, 1)
        .with_kill(2, 6);
    let faulted = mis::ampc_mis(&g, &cfg().with_chaos(spec));
    assert_eq!(faulted.in_mis, clean.in_mis);
    assert_eq!(faulted.report.replays, 3, "two repeats + one wrapped kill");
    assert_eq!(faulted.report.stages[2].replays, 3);
    assert!(faulted.report.sim_ns() > clean.report.sim_ns());
}

#[test]
fn epoch_kill_fires_inside_its_epoch() {
    let g = tiny();
    let batches =
        ampc_graph::dynamic::generate_batches(&g, 3, 40, ampc_graph::dynamic::BatchMix::Churn, 11);
    let clean = dynamic::ampc_dynamic_cc(&g, &batches, &cfg());
    // Kill machine 0 at the first KV round of epoch 1 (the second
    // update batch): recovery replays the partition against the last
    // sealed generation, mid-stream.
    let spec = ChaosSpec::new(0xE1).with_epoch_kill(1, 0);
    let faulted = dynamic::ampc_dynamic_cc(&g, &batches, &cfg().with_chaos(spec));
    assert_eq!(faulted.labels, clean.labels);
    assert_eq!(faulted.report.replays, 1);
    let range = faulted.report.epoch_stage_range(1);
    let in_epoch: u64 = faulted.report.stages[range].iter().map(|s| s.replays).sum();
    assert_eq!(in_epoch, 1, "the replay must land inside epoch 1");
    let elsewhere: u64 = faulted.report.stages.iter().map(|s| s.replays).sum();
    assert_eq!(elsewhere, 1, "and nowhere else");
}

#[test]
fn stripe_schedule_stays_byte_identical() {
    let g = tiny();
    let clean = connectivity::ampc_connected_components(&g, &cfg());
    // Correlated stripe-wide failures: when a stripe group fires, every
    // machine in it dies together.
    let spec = ChaosSpec::seeded(0x57).with_rate(300).with_stripe(2);
    let faulted = connectivity::ampc_connected_components(&g, &cfg().with_chaos(spec));
    assert_eq!(faulted.label, clean.label);
    assert!(faulted.report.replays > 0, "a 300‰ stripe rate must fire");
    // Whole-group kills: each firing stage's replay count is a multiple
    // of its group size (2 machines per group at stripe=2, P=4).
    for s in &faulted.report.stages {
        assert_eq!(s.replays % 2, 0, "stage {} killed half a stripe", s.name);
    }
}

#[test]
fn chaos_composes_with_legacy_fault_plan() {
    let g = tiny();
    let clean = mis::ampc_mis(&g, &cfg());
    let c = cfg()
        .with_fault(ampc_runtime::fault::FaultPlan::new(2, 0))
        .with_chaos(ChaosSpec::new(9).with_kill(2, 3));
    let faulted = mis::ampc_mis(&g, &c);
    assert_eq!(faulted.in_mis, clean.in_mis);
    assert_eq!(faulted.report.replays, 2, "legacy plan + chaos kill");
}
