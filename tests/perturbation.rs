//! Schedule-perturbation smoke: the determinism contract (DESIGN.md §3)
//! promises byte-identical outputs regardless of executor thread count.
//! Each test runs one kernel per algorithm family at 1, 2, and 8
//! executor threads and asserts the output digests are equal.
//!
//! `AMPC_THREADS` is read once and cached process-wide (OnceLock), so
//! the thread count is perturbed programmatically through
//! [`AmpcConfig::with_threads`] rather than by flipping the env var.

use ampc::prelude::*;
use ampc_core::algorithm::digest_u64s;
use ampc_core::one_vs_two::CycleAnswer;
use ampc_graph::gen;

const THREADS: [usize; 3] = [1, 2, 8];

fn cfg(threads: usize) -> AmpcConfig {
    AmpcConfig {
        num_machines: 4,
        in_memory_threshold: 100,
        seed: 0x500C,
        ..AmpcConfig::default()
    }
    .with_threads(threads)
}

fn tiny() -> CsrGraph {
    gen::rmat(8, 1_500, gen::RmatParams::SOCIAL, 42)
}

/// Runs `kernel` once per thread count in [`THREADS`] and asserts every
/// digest matches the single-threaded run.
fn assert_schedule_invariant(family: &str, kernel: impl Fn(&AmpcConfig) -> u64) {
    let digests: Vec<u64> = THREADS.iter().map(|&t| kernel(&cfg(t))).collect();
    for (&t, &d) in THREADS.iter().zip(&digests) {
        assert_eq!(
            d, digests[0],
            "{family}: output digest diverged at {t} executor threads"
        );
    }
}

#[test]
fn perturb_mis() {
    let g = tiny();
    assert_schedule_invariant("mis", |c| {
        digest_u64s(mis::ampc_mis(&g, c).in_mis.iter().map(|&b| b as u64))
    });
}

#[test]
fn perturb_matching() {
    let g = tiny();
    assert_schedule_invariant("matching", |c| {
        digest_u64s(
            matching::ampc_matching(&g, c)
                .partner
                .iter()
                .map(|&x| x as u64),
        )
    });
}

#[test]
fn perturb_msf() {
    let g = gen::random_weights(&tiny(), 1_000, 7);
    assert_schedule_invariant("msf", |c| {
        digest_u64s(
            msf::ampc_msf(&g, c)
                .edges
                .iter()
                .flat_map(|e| [e.u as u64, e.v as u64, e.w]),
        )
    });
}

#[test]
fn perturb_connectivity() {
    let g = tiny();
    assert_schedule_invariant("connectivity", |c| {
        digest_u64s(
            connectivity::ampc_connected_components(&g, c)
                .label
                .iter()
                .map(|&x| x as u64),
        )
    });
}

#[test]
fn perturb_one_vs_two() {
    let g = gen::two_cycles(200, 11);
    assert_schedule_invariant("one_vs_two", |c| {
        let answer = one_vs_two::ampc_one_vs_two(&g, c).answer;
        digest_u64s([matches!(answer, CycleAnswer::Two) as u64])
    });
}

#[test]
fn perturb_walks() {
    let g = tiny();
    assert_schedule_invariant("walks", |c| {
        digest_u64s(
            walks::ampc_random_walks(&g, c, 1, 6)
                .walks
                .iter()
                .flat_map(|walk| walk.iter().map(|&v| v as u64 + 1).chain([0])),
        )
    });
}

#[test]
fn perturb_dynamic_connectivity() {
    let g = tiny();
    let batches =
        ampc_graph::dynamic::generate_batches(&g, 3, 40, ampc_graph::dynamic::BatchMix::Churn, 11);
    assert_schedule_invariant("dynamic", |c| {
        digest_u64s(
            dynamic::ampc_dynamic_cc(&g, &batches, c)
                .labels
                .iter()
                .flat_map(|epoch| epoch.iter().map(|&x| x as u64)),
        )
    });
}
