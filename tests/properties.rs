//! Property-based tests (proptest) over randomly generated graphs.
//!
//! Each property exercises an invariant the paper's correctness
//! arguments rest on, on arbitrary inputs rather than fixed seeds.

use ampc_core::matching::{ampc_matching, greedy_matching, pairs_from_partners};
use ampc_core::mis::{ampc_mis, greedy_mis};
use ampc_core::msf::in_memory::kruskal;
use ampc_core::msf::{ampc_msf, ampc_msf_algorithm2};
use ampc_core::validate;
use ampc_graph::ops::{line_graph, ternarize};
use ampc_graph::stats::connected_components;
use ampc_graph::{gen, GraphBuilder, NodeId};
use ampc_runtime::AmpcConfig;
use proptest::prelude::*;

fn cfg(seed: u64) -> AmpcConfig {
    AmpcConfig {
        num_machines: 4,
        in_memory_threshold: 64,
        seed,
        ..AmpcConfig::default()
    }
}

/// Strategy: an arbitrary undirected graph as (n, edge pairs).
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..max_n).prop_flat_map(move |n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_m);
        (Just(n), edges)
    })
}

fn build(n: usize, pairs: &[(u32, u32)]) -> ampc_graph::CsrGraph {
    let mut b = GraphBuilder::new(n);
    for &(u, v) in pairs {
        b.push_edge(u, v, 0);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mis_is_maximal_and_matches_oracle((n, pairs) in arb_graph(120, 400), seed in 0u64..1000) {
        let g = build(n, &pairs);
        let c = cfg(seed);
        let out = ampc_mis(&g, &c);
        prop_assert!(validate::is_maximal_independent_set(&g, &out.in_mis));
        prop_assert_eq!(out.in_mis, greedy_mis(&g, seed));
    }

    #[test]
    fn matching_is_maximal_and_matches_oracle((n, pairs) in arb_graph(100, 300), seed in 0u64..1000) {
        let g = build(n, &pairs);
        let c = cfg(seed);
        let out = ampc_matching(&g, &c);
        prop_assert!(validate::is_maximal_matching(&g, &out.pairs()));
        prop_assert_eq!(out.partner, greedy_matching(&g, seed));
    }

    #[test]
    fn msf_weight_equals_kruskal((n, pairs) in arb_graph(80, 250), seed in 0u64..1000) {
        let g = build(n, &pairs);
        let w = gen::random_weights(&g, 1_000, seed);
        let c = cfg(seed);
        let out = ampc_msf(&w, &c);
        prop_assert_eq!(out.edges, kruskal(&w));
    }

    #[test]
    fn algorithm2_equals_kruskal((n, pairs) in arb_graph(70, 200), seed in 0u64..1000) {
        let g = build(n, &pairs);
        let w = gen::random_weights(&g, 500, seed);
        let out = ampc_msf_algorithm2(&w, &cfg(seed));
        prop_assert_eq!(out.edges, kruskal(&w));
    }

    #[test]
    fn ternarize_bounds_degree_and_preserves_msf_weight((n, pairs) in arb_graph(60, 200), seed in 0u64..1000) {
        let g = build(n, &pairs);
        let w = gen::random_weights(&g, 900, seed);
        let t = ternarize(&w);
        prop_assert!(t.graph.structure().max_degree() <= 3);
        // MSF weight of the ternarized graph (dummies excluded, weights
        // unshifted) equals the original MSF weight.
        let tern_msf = kruskal(&t.graph);
        let tern_weight: u128 = tern_msf
            .iter()
            .filter(|e| !ampc_graph::ops::Ternarized::is_dummy_weight(e.w))
            .map(|e| ampc_graph::ops::Ternarized::original_weight(e.w) as u128)
            .sum();
        let orig_weight: u128 = kruskal(&w).iter().map(|e| e.w as u128).sum();
        prop_assert_eq!(tern_weight, orig_weight);
    }

    #[test]
    fn connectivity_matches_bfs((n, pairs) in arb_graph(100, 160), seed in 0u64..1000) {
        let g = build(n, &pairs);
        let out = ampc_core::connectivity::ampc_connected_components(&g, &cfg(seed));
        prop_assert!(validate::is_correct_components(&g, &out.label));
    }

    #[test]
    fn line_graph_mis_is_a_maximal_matching((n, pairs) in arb_graph(40, 80), seed in 0u64..1000) {
        // The §4 reduction: an MIS of the line graph is a maximal
        // matching of the base graph.
        let g = build(n, &pairs);
        let lg = line_graph(&g);
        let mis = greedy_mis(&lg.graph, seed);
        let matching: Vec<(NodeId, NodeId)> = mis
            .iter()
            .enumerate()
            .filter(|&(_, &take)| take)
            .map(|(i, _)| {
                let e = lg.edges[i];
                (e.u.min(e.v), e.u.max(e.v))
            })
            .collect();
        prop_assert!(validate::is_maximal_matching(&g, &matching));
    }

    #[test]
    fn contraction_preserves_component_count((n, pairs) in arb_graph(80, 200), seed in 0u64..1000) {
        let g = build(n, &pairs);
        // Contract by an arbitrary forest of the graph: component count
        // must be preserved (drop_isolated=false keeps all classes).
        let w = gen::random_weights(&g, 100, seed);
        let forest = kruskal(&w);
        let mut uf = ampc_trees::UnionFind::new(n);
        for e in &forest {
            uf.union(e.u, e.v);
        }
        let labels = uf.labels();
        let contracted = ampc_graph::ops::contract(&g, &labels, false);
        let cc_before = connected_components(&g).num_components;
        let cc_after = connected_components(&contracted.graph).num_components;
        prop_assert_eq!(cc_before, cc_after);
    }

    #[test]
    fn msf_with_constant_weights_still_unique((n, pairs) in arb_graph(60, 150), seed in 0u64..1000) {
        // All-equal weights: the workspace's tie-breaking by canonical
        // endpoints must still make every implementation agree exactly.
        let g = build(n, &pairs);
        let w = gen::random_weights(&g, 1, seed); // every weight = 1
        let c = cfg(seed);
        let k = kruskal(&w);
        prop_assert_eq!(ampc_msf(&w, &c).edges, k.clone());
        prop_assert_eq!(ampc_msf_algorithm2(&w, &c).edges, k);
    }

    #[test]
    fn random_walks_stay_on_edges((n, pairs) in arb_graph(50, 120), seed in 0u64..1000) {
        let g = build(n, &pairs);
        let out = ampc_core::walks::ampc_random_walks(&g, &cfg(seed), 1, 5);
        for walk in &out.walks {
            for w in walk.windows(2) {
                prop_assert!(w[0] == w[1] || g.has_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn mis_and_mm_relate((n, pairs) in arb_graph(80, 200), seed in 0u64..1000) {
        // Size sanity relating the two objects: a maximal matching has at
        // most n/2 edges; an MIS and the matched-vertex set both cover
        // every edge of the graph.
        let g = build(n, &pairs);
        let c = cfg(seed);
        let mis = ampc_mis(&g, &c).in_mis;
        let mm = ampc_matching(&g, &c);
        prop_assert!(mm.pairs().len() * 2 <= g.num_nodes());
        // A maximal independent set is a dominating set.
        for v in g.nodes() {
            let dominated = mis[v as usize]
                || g.neighbors(v).iter().any(|&u| mis[u as usize]);
            prop_assert!(dominated, "MIS maximality implies domination of {v}");
        }
    }

    #[test]
    fn vertex_cover_covers_and_is_within_2x((n, pairs) in arb_graph(60, 150), seed in 0u64..1000) {
        let g = build(n, &pairs);
        let c = cfg(seed);
        let cover = ampc_core::matching::approx::approx_vertex_cover(&g, &c);
        let mut in_cover = vec![false; g.num_nodes()];
        for &v in &cover {
            in_cover[v as usize] = true;
        }
        for e in g.edges() {
            prop_assert!(in_cover[e.u as usize] || in_cover[e.v as usize]);
        }
        // |cover| = 2|M| and any vertex cover is >= |M|, so the cover is
        // within 2x of optimal; sanity-check against the matching size.
        let m = pairs_from_partners(&greedy_matching(&g, seed)).len();
        prop_assert_eq!(cover.len(), 2 * m);
    }
}

// ------------------------------------------------------------------
// Graph-source grammar properties: parse → describe → parse is the
// identity, on arbitrary static sources and arbitrary `dyn:` specs.
// ------------------------------------------------------------------

use ampc_graph::datasets::Dataset;
use ampc_graph::dynamic::{generate_batches, BatchMix, DynamicSource};
use ampc_graph::gen::RmatParams;
use ampc_graph::GraphSource;

/// Strategy: an arbitrary parseable [`GraphSource`] value.
fn arb_source() -> impl Strategy<Value = GraphSource> {
    (0usize..12, 1usize..500, 1usize..5000, 0usize..6).prop_map(|(kind, a, b, c)| match kind {
        0 => GraphSource::Dataset(
            [
                Dataset::Orkut,
                Dataset::Twitter,
                Dataset::Friendster,
                Dataset::ClueWeb,
                Dataset::Hyperlink,
            ][c % 5],
        ),
        1 => GraphSource::Dataset(Dataset::TwoCycles(a)),
        2 => GraphSource::Rmat {
            log_n: (a % 20) as u32 + 1,
            m: b,
            params: if c % 2 == 0 {
                RmatParams::SOCIAL
            } else {
                RmatParams::WEB
            },
        },
        3 => GraphSource::ErdosRenyi { n: a, m: b },
        4 => GraphSource::ChungLu {
            n: a,
            m: b,
            gamma: c as f64 / 2.0 + 1.5,
        },
        5 => GraphSource::Cycle(a + 3),
        6 => GraphSource::CyclePair(a + 3),
        7 => GraphSource::Path(a),
        8 => GraphSource::Star(a),
        9 => GraphSource::Complete(a % 64 + 1),
        10 => GraphSource::Grid(a % 50 + 1, b % 50 + 1),
        _ => GraphSource::Tree(a),
    })
}

/// Strategy: an arbitrary parseable `dyn:` spec over any static base.
fn arb_dynamic_source() -> impl Strategy<Value = DynamicSource> {
    (
        arb_source(),
        1usize..12,
        (1usize..300, 0usize..3, 0u64..u64::MAX),
    )
        .prop_map(|(base, batches, (ops, mix, seed))| DynamicSource {
            base,
            batches,
            ops,
            mix: [BatchMix::Churn, BatchMix::InsertOnly, BatchMix::DeleteOnly][mix],
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn graph_source_round_trips(src in arb_source()) {
        let text = src.describe();
        let reparsed = GraphSource::parse(&text)
            .unwrap_or_else(|e| panic!("{text:?} does not reparse: {e}"));
        prop_assert_eq!(reparsed, src, "{}", text);
    }

    #[test]
    fn dynamic_source_round_trips(src in arb_dynamic_source()) {
        let text = src.describe();
        let reparsed = DynamicSource::parse(&text)
            .unwrap_or_else(|e| panic!("{text:?} does not reparse: {e}"));
        prop_assert_eq!(reparsed, src, "{}", text);
    }

    #[test]
    fn dynamic_schedules_replay_deterministically(
        (n, pairs) in arb_graph(80, 160),
        batches in 1usize..5,
        ops in 1usize..40,
        seed in 0u64..1000,
    ) {
        let g = build(n, &pairs);
        let a = generate_batches(&g, batches, ops, BatchMix::Churn, seed);
        prop_assert_eq!(&a, &generate_batches(&g, batches, ops, BatchMix::Churn, seed));
        // Every generated op is effective when replayed in order.
        let mut state = ampc_graph::dynamic::EdgeSet::from_graph(&g);
        for batch in &a {
            for up in batch {
                let flipped = match up.kind {
                    ampc_graph::dynamic::UpdateKind::Insert => state.insert(up.u, up.v),
                    ampc_graph::dynamic::UpdateKind::Delete => state.remove(up.u, up.v),
                };
                prop_assert!(flipped, "{:?} was a no-op", up);
            }
        }
    }

    #[test]
    fn dynamic_maintained_equals_recompute(
        (n, pairs) in arb_graph(60, 120),
        seed in 0u64..500,
    ) {
        let g = build(n, &pairs);
        let batches = generate_batches(&g, 3, 20, BatchMix::Churn, seed);
        let a = ampc_core::dynamic::ampc_dynamic_cc(&g, &batches, &cfg(seed));
        let m = ampc_mpc::dynamic::mpc_recompute_cc(&g, &batches, &cfg(seed));
        prop_assert_eq!(a.labels, m.labels, "maintained vs recompute, seed {}", seed);
    }
}
