//! Skewed-read integration suite: hot-key replication under power-law
//! key distributions (DESIGN.md §11).
//!
//! The invariant under test: replicating hot keys (`AMPC_HOT_KEYS` /
//! [`AmpcConfig::with_hot_keys`]) is an execution-strategy optimization
//! **only** — outputs and `CommStats` are byte-identical with
//! replication on or off, under both sealed-storage layouts, any
//! executor thread count, and composed with a seeded chaos schedule.
//! A replica-served read still charges the queries/bytes a DHT-served
//! read would; only wall-clock may change.

use ampc::prelude::*;
use ampc_core::algorithm::digest_u64s;
use ampc_dht::hasher::mix64;
use ampc_dht::store::{Dht, GenerationWriter};
use ampc_runtime::chaos::ChaosSpec;
use ampc_runtime::{Job, JobReport};

fn cfg() -> AmpcConfig {
    AmpcConfig {
        num_machines: 6,
        in_memory_threshold: 100,
        seed: 0x0005_1CED,
        ..AmpcConfig::default()
    }
}

/// Tests here flip the process-global sealed-layout override and read
/// the process-global clone probe, so they serialize on this lock.
static GLOBAL_STATE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

const N: u64 = 1 << 12;
const WALKERS: u64 = 256;
const HOPS: u64 = 6;

/// A deterministic power-law-ish key draw: the fourth power of a
/// 32-bit uniform concentrates reads heavily on the low keys (key 0
/// alone receives ~1/8 of all draws at `n = 2^12`), so a handful of
/// keys cross the promotion threshold on every machine.
fn skewed_key(r: u64, n: u64) -> u64 {
    let u = mix64(r) >> 32;
    let u2 = (u * u) >> 32;
    let u4 = (u2 * u2) >> 32;
    (u4 * n) >> 32
}

/// The probe kernel: one write round seeds `N` values, then two
/// adaptive read rounds draw their hop keys from the power-law — one
/// through the fixed-size expect path (copies into caller scratch),
/// one through the visitor form with deliberate misses mixed in. Both
/// are hot-replica serving points, and both derive the next hop's keys
/// from the fetched values, so any replica staleness would change the
/// digest.
fn skewed_read_job(cfg: &AmpcConfig) -> (u64, JobReport) {
    let mut job = Job::new(*cfg);
    let mut dht: Dht<u64> = Dht::new();
    let writer = GenerationWriter::new();
    job.kv_round(
        "SkewWrite",
        dht.current(),
        Some(&writer),
        (0..N).collect(),
        |ctx, items: &[u64]| {
            ctx.handle
                .put_many(items.iter().map(|&k| (k, mix64(k ^ 0xFEED))));
            Vec::<()>::new()
        },
    );
    dht.push(writer.seal());

    let seed = cfg.seed;
    let expect_acc: Vec<u64> = job.kv_round(
        "SkewExpect",
        dht.current(),
        None,
        (0..WALKERS).collect(),
        |ctx, items| {
            let mut acc: Vec<u64> = items.to_vec();
            for hop in 0..HOPS {
                ctx.scratch.keys.clear();
                ctx.scratch
                    .keys
                    .extend(acc.iter().map(|&a| skewed_key(seed ^ a ^ (hop << 40), N)));
                ctx.handle
                    .get_many_expect_into(&ctx.scratch.keys, &mut ctx.scratch.vals);
                for (a, &v) in acc.iter_mut().zip(ctx.scratch.vals.iter()) {
                    *a = a.wrapping_mul(0x100_0000_01B3) ^ v;
                }
            }
            acc
        },
    );
    let visit_acc: Vec<u64> = job.kv_round(
        "SkewVisit",
        dht.current(),
        None,
        (0..WALKERS).collect(),
        |ctx, items| {
            let mut acc: Vec<u64> = items.iter().map(|&w| w ^ 0x9E37).collect();
            for hop in 0..HOPS {
                ctx.scratch.keys.clear();
                ctx.scratch
                    .keys
                    .extend(acc.iter().enumerate().map(|(i, &a)| {
                        let k = skewed_key(seed ^ a ^ (hop << 20) ^ 0xB0B, N);
                        // Every fourth probe misses (keys past the store).
                        if (i as u64 + hop).is_multiple_of(4) {
                            k + N
                        } else {
                            k
                        }
                    }));
                let acc = &mut acc;
                ctx.handle.get_many_through_with(&ctx.scratch.keys, |i, v| {
                    acc[i] = acc[i].rotate_left(9) ^ v.copied().unwrap_or(0x0DD);
                });
            }
            acc
        },
    );
    let digest = digest_u64s(expect_acc.into_iter().chain(visit_acc));
    (digest, job.into_report())
}

/// The full fingerprint the replication knob must leave untouched.
fn fingerprint(c: &AmpcConfig) -> (u64, usize, u64, ampc_dht::metrics::CommStats) {
    let (digest, report) = skewed_read_job(c);
    (
        digest,
        report.num_kv_rounds(),
        report.kv_round_trips(),
        report.kv_comm(),
    )
}

/// Replication is invisible to outputs and accounting across the whole
/// (layout × threads × capacity) matrix.
#[test]
fn replication_invisible_across_layouts_threads_and_capacities() {
    let _guard = GLOBAL_STATE_LOCK.lock().unwrap();
    let reference = fingerprint(&cfg());
    for sharded in [false, true] {
        ampc_dht::store::force_store_layout(Some(sharded));
        for threads in [1, 2, 8] {
            for hot in [0, 4, 64] {
                let got = fingerprint(&cfg().with_threads(threads).with_hot_keys(hot));
                assert_eq!(
                    got, reference,
                    "sharded={sharded} threads={threads} hot={hot}"
                );
            }
        }
        ampc_dht::store::force_store_layout(None);
    }
}

/// Replication composes with the chaos engine: a seeded kill + drop
/// schedule with replication on stays byte-identical to the fault-free
/// run, and its retry/replay accounting is byte-identical to the same
/// schedule with replication off (replays rebuild the replica set from
/// scratch deterministically).
#[test]
fn replication_composes_with_chaos() {
    let _guard = GLOBAL_STATE_LOCK.lock().unwrap();
    let schedule = ChaosSpec::parse("chaos:seed=11:rate=300:drop=200").unwrap();
    let (clean_digest, clean_report) = skewed_read_job(&cfg());
    let (off_digest, off_report) = skewed_read_job(&cfg().with_chaos(schedule));
    let (on_digest, on_report) = skewed_read_job(&cfg().with_chaos(schedule).with_hot_keys(16));
    assert_eq!(off_digest, clean_digest, "chaos changed the output");
    assert_eq!(
        on_digest, clean_digest,
        "chaos + replication changed the output"
    );
    assert_eq!(
        on_report.kv_comm(),
        off_report.kv_comm(),
        "replication changed chaos accounting"
    );
    assert_eq!(on_report.replays, off_report.replays);
    assert_eq!(clean_report.replays, 0);
    assert!(
        on_report.replays > 0 || on_report.kv_comm().retries > 0,
        "schedule injected no faults — strengthen it"
    );
    // Fault handling never changes the model-visible work.
    assert_eq!(on_report.kv_comm().queries, clean_report.kv_comm().queries);
    assert_eq!(
        on_report.kv_comm().kv_bytes(),
        clean_report.kv_comm().kv_bytes()
    );
}

/// The skew is strong enough to promote: with replication on, the
/// promotion clones show up on the probe; with it off, the kernel's
/// read paths clone nothing at all (the zero-copy contract).
#[test]
fn skew_promotes_replicas_and_is_otherwise_clone_free() {
    let _guard = GLOBAL_STATE_LOCK.lock().unwrap();
    let before = ampc_dht::probe::values_cloned();
    skewed_read_job(&cfg());
    let cold = ampc_dht::probe::values_cloned() - before;
    assert_eq!(cold, 0, "replication off must clone nothing");
    let before = ampc_dht::probe::values_cloned();
    skewed_read_job(&cfg().with_hot_keys(32));
    let hot = ampc_dht::probe::values_cloned() - before;
    assert!(hot > 0, "power-law reads never promoted a replica");
}
