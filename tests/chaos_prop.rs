//! Property tests for the chaos engine (vendored proptest stand-in,
//! same harness as `crates/lint/tests/prop.rs`).
//!
//! Three properties:
//!
//! * **grammar round-trip** — for arbitrary specs,
//!   `parse(describe(s)) == s` (DESIGN.md §10's canonical-form
//!   contract), and `parse` never panics on adversarial input;
//! * **byte-identical outputs** — arbitrary seeded schedules (random
//!   kill rates, drop rates, retry caps, stripes, explicit and epoch
//!   kills) leave every kernel family's output digest equal to the
//!   fault-free run;
//! * **deterministic accounting** — the same schedule run twice charges
//!   identical replay/retry counters and simulated time.

use ampc::prelude::*;
use ampc_core::algorithm::digest_u64s;
use ampc_core::one_vs_two::CycleAnswer;
use ampc_graph::gen;
use ampc_runtime::chaos::ChaosSpec;
use ampc_runtime::JobReport;
use proptest::collection::vec;
use proptest::prelude::*;

fn cfg() -> AmpcConfig {
    AmpcConfig {
        num_machines: 4,
        in_memory_threshold: 100,
        seed: 0x500C,
        ..AmpcConfig::default()
    }
}

/// An arbitrary chaos spec: any seed, moderate seeded rates (high
/// enough to fire, low enough that a case stays fast), any retry cap,
/// small stripes, and up to the maximum number of explicit kill and
/// epoch-kill events (repeats and out-of-range machines included —
/// machines wrap modulo the machine count at execution time).
fn arb_spec() -> impl Strategy<Value = ChaosSpec> {
    (
        (0..u64::MAX, 0..301u16, 0..301u16),
        (0..17u8, 0..5u16),
        vec((0..6u32, 0..9u32), 0..8),
        vec((0..3u32, 0..9u32), 0..8),
    )
        .prop_map(|((seed, rate, drop), (retries, stripe), kills, ekills)| {
            let mut s = ChaosSpec::new(seed)
                .with_rate(rate)
                .with_drop(drop)
                .with_retries(retries)
                .with_stripe(stripe);
            for (stage, m) in kills {
                s = s.with_kill(stage, m);
            }
            for (epoch, m) in ekills {
                s = s.with_epoch_kill(epoch, m);
            }
            s
        })
}

/// Fragments for adversarial spec strings: valid segments, truncated
/// segments, wrong separators, overflow values.
const SPEC_FRAGMENTS: &[&str] = &[
    "chaos:",
    "chaos",
    "seed=1",
    "seed=",
    "rate=60",
    "rate=1001",
    "drop=40",
    "retries=4",
    "retries=99",
    "stripe=2",
    "kill=1.2",
    "kill=1.2+3.4",
    "kill=1",
    "ekill=0.1",
    "ekill=.",
    ":",
    "=",
    "+",
    ".",
    "0",
    "42",
    "18446744073709551616",
    "bogus=7",
    " ",
    "Seed=1",
];

fn arb_spec_soup() -> impl Strategy<Value = String> {
    vec(0..SPEC_FRAGMENTS.len(), 0..10).prop_map(|picks| {
        picks
            .into_iter()
            .map(|i| SPEC_FRAGMENTS[i])
            .collect::<String>()
    })
}

/// Runs one kernel family under `c`, returning its output digest and
/// report. Families match the perturbation/chaos integration suites.
fn run_family(fam: usize, c: &AmpcConfig) -> (u64, JobReport) {
    let tiny = || gen::rmat(8, 1_500, gen::RmatParams::SOCIAL, 42);
    match fam {
        0 => {
            let r = mis::ampc_mis(&tiny(), c);
            (digest_u64s(r.in_mis.iter().map(|&b| b as u64)), r.report)
        }
        1 => {
            let r = matching::ampc_matching(&tiny(), c);
            (digest_u64s(r.partner.iter().map(|&x| x as u64)), r.report)
        }
        2 => {
            let g = gen::random_weights(&tiny(), 1_000, 7);
            let r = msf::ampc_msf(&g, c);
            (
                digest_u64s(r.edges.iter().flat_map(|e| [e.u as u64, e.v as u64, e.w])),
                r.report,
            )
        }
        3 => {
            let r = connectivity::ampc_connected_components(&tiny(), c);
            (digest_u64s(r.label.iter().map(|&x| x as u64)), r.report)
        }
        4 => {
            let r = one_vs_two::ampc_one_vs_two(&gen::two_cycles(200, 11), c);
            (
                digest_u64s([matches!(r.answer, CycleAnswer::Two) as u64]),
                r.report,
            )
        }
        5 => {
            let r = walks::ampc_random_walks(&tiny(), c, 1, 6);
            (
                digest_u64s(
                    r.walks
                        .iter()
                        .flat_map(|walk| walk.iter().map(|&v| v as u64 + 1).chain([0])),
                ),
                r.report,
            )
        }
        _ => {
            let g = tiny();
            let batches = ampc_graph::dynamic::generate_batches(
                &g,
                3,
                40,
                ampc_graph::dynamic::BatchMix::Churn,
                11,
            );
            let r = dynamic::ampc_dynamic_cc(&g, &batches, c);
            (
                digest_u64s(
                    r.labels
                        .iter()
                        .flat_map(|epoch| epoch.iter().map(|&x| x as u64)),
                ),
                r.report,
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn spec_round_trips_through_canonical_form(spec in arb_spec()) {
        let described = spec.describe();
        let reparsed = ChaosSpec::parse(&described);
        prop_assert_eq!(reparsed, Ok(spec), "describe() produced {described:?}");
    }

    #[test]
    fn parse_survives_adversarial_strings(s in arb_spec_soup()) {
        // Never panics; when it accepts, the canonical form is a fixed
        // point (parse ∘ describe = id on the accepted set).
        if let Ok(spec) = ChaosSpec::parse(&s) {
            prop_assert_eq!(ChaosSpec::parse(&spec.describe()), Ok(spec));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn arbitrary_schedules_leave_outputs_byte_identical(
        spec in arb_spec(),
        fam in 0..7usize,
    ) {
        let (clean_digest, clean_report) = run_family(fam, &cfg());
        let chaos_cfg = cfg().with_chaos(spec);
        let (chaos_digest, chaos_report) = run_family(fam, &chaos_cfg);
        prop_assert_eq!(
            chaos_digest, clean_digest,
            "family {fam} output changed under {}", spec.describe()
        );
        // Retry handling never perturbs the accounted communication.
        let (kv, clean_kv) = (chaos_report.kv_comm(), clean_report.kv_comm());
        prop_assert_eq!(kv.queries, clean_kv.queries);
        prop_assert_eq!(kv.writes, clean_kv.writes);
        prop_assert_eq!(kv.batches, clean_kv.batches);
        prop_assert_eq!(kv.kv_bytes(), clean_kv.kv_bytes());
        // Same schedule again: replay order and every counter is
        // deterministic per seed.
        let (again_digest, again_report) = run_family(fam, &chaos_cfg);
        prop_assert_eq!(again_digest, chaos_digest);
        prop_assert_eq!(again_report.replays, chaos_report.replays);
        let again_kv = again_report.kv_comm();
        prop_assert_eq!(again_kv.retries, kv.retries);
        prop_assert_eq!(again_kv.wasted_batches, kv.wasted_batches);
        prop_assert_eq!(again_kv.backoff_units, kv.backoff_units);
        prop_assert_eq!(again_report.sim_ns(), chaos_report.sim_ns());
    }
}
