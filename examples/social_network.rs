//! Social-network analytics: the paper's headline comparison, in one
//! program. Runs AMPC and MPC implementations of MIS and maximal
//! matching on an Orkut-like graph, verifies they agree edge-for-edge,
//! and prints the round/byte/time comparison of §5.3–§5.4.
//!
//! ```sh
//! cargo run --release --example social_network
//! ```

use ampc::prelude::*;
use ampc_core::matching::approx;
use ampc_dht::cost::format_ns;

fn main() {
    // A mid-size Orkut-like RMAT graph — big enough that the MPC
    // baselines must run several distributed phases (the full-size
    // analogues live in the benchmark harness; see DESIGN.md).
    let graph = ampc_graph::gen::rmat(13, 600_000, ampc_graph::gen::RmatParams::SOCIAL, 1);
    let _ = Dataset::Orkut; // the harness uses the dataset registry
    println!(
        "Orkut analogue: {} vertices, {} edges, max degree {}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.max_degree()
    );

    let cfg = AmpcConfig::default();

    // ---------------- MIS: AMPC vs MPC ----------------
    let ampc_out = mis::ampc_mis(&graph, &cfg);
    let mpc_out = ampc_mpc::mpc_mis(&graph, &cfg);
    assert_eq!(
        ampc_out.in_mis, mpc_out.in_mis,
        "same seed => same lex-first MIS across models"
    );
    println!("\nMIS (both models computed the identical set):");
    print_compare(&ampc_out.report, &mpc_out.report);

    // ---------------- Maximal matching ----------------
    let ampc_mm = matching::ampc_matching(&graph, &cfg);
    let mpc_mm = ampc_mpc::mpc_matching(&graph, &cfg);
    assert_eq!(ampc_mm.partner, mpc_mm.partner);
    println!("\nMaximal matching ({} pairs):", ampc_mm.pairs().len());
    print_compare(&ampc_mm.report, &mpc_mm.report);

    // ---------------- Derived analytics ----------------
    let cover = approx::approx_vertex_cover(&graph, &cfg);
    println!(
        "\n2-approximate vertex cover: {} vertices ({:.1}% of graph)",
        cover.len(),
        100.0 * cover.len() as f64 / graph.num_nodes() as f64
    );

    let weighted = ampc_graph::gen::degree_weights(&graph);
    let mwm = approx::approx_max_weight_matching(&weighted, 0.1, &cfg);
    println!(
        "2.2-approximate max-weight matching: {} pairs, weight {}",
        mwm.len(),
        approx::matching_weight(&weighted, &mwm)
    );
}

fn print_compare(ampc: &ampc_runtime::JobReport, mpc: &ampc_runtime::JobReport) {
    let speedup = mpc.sim_ns() as f64 / ampc.sim_ns() as f64;
    println!(
        "  AMPC: {:>2} shuffles, {:>12} bytes shuffled, {:>12} KV bytes, sim {}",
        ampc.num_shuffles(),
        ampc.shuffle_bytes(),
        ampc.kv_comm().kv_bytes(),
        format_ns(ampc.sim_ns())
    );
    println!(
        "  MPC : {:>2} shuffles, {:>12} bytes shuffled, {:>12} KV bytes, sim {}",
        mpc.num_shuffles(),
        mpc.shuffle_bytes(),
        mpc.kv_comm().kv_bytes(),
        format_ns(mpc.sim_ns())
    );
    println!("  speedup: {speedup:.2}x (AMPC over MPC)");
}
