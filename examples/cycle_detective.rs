//! The 1-vs-2-cycle showdown (§5.6): the problem that separates AMPC
//! from MPC. Generates both instances at several sizes, answers them
//! with the O(1)-round AMPC sampler and with the MPC local-contraction
//! baseline, and prints the round/time gap.
//!
//! ```sh
//! cargo run --release --example cycle_detective
//! ```

use ampc::prelude::*;
use ampc_core::one_vs_two::{ampc_one_vs_two, CycleAnswer};
use ampc_dht::cost::format_ns;
use ampc_graph::gen::CyclePair;
use ampc_mpc::local_contraction::mpc_one_vs_two;

fn main() {
    let cfg = AmpcConfig::default();
    println!(
        "{:>9} {:>6} | {:>22} | {:>22} | {:>8}",
        "k", "truth", "AMPC (shuffles, time)", "MPC (shuffles, time)", "speedup"
    );

    for &k in &[100_000usize, 500_000, 2_000_000] {
        for variant in [CyclePair::One, CyclePair::Two] {
            let g = variant.generate(k, 99 + k as u64);
            let truth = match variant {
                CyclePair::One => CycleAnswer::One,
                CyclePair::Two => CycleAnswer::Two,
            };

            let a = ampc_one_vs_two(&g, &cfg);
            assert_eq!(a.answer, truth, "AMPC wrong on k={k} {variant:?}");

            let (m_ans, m_rep) = mpc_one_vs_two(&g, &cfg);
            assert_eq!(m_ans, truth, "MPC wrong on k={k} {variant:?}");

            let speedup = m_rep.sim_ns() as f64 / a.report.sim_ns() as f64;
            println!(
                "{:>9} {:>6} | {:>9} {:>12} | {:>9} {:>12} | {:>7.2}x",
                k,
                format!("{truth:?}"),
                a.report.num_shuffles(),
                format_ns(a.report.sim_ns()),
                m_rep.num_shuffles(),
                format_ns(m_rep.sim_ns()),
                speedup,
            );
        }
    }

    println!("\nAs in the paper, the AMPC sampler answers with a single shuffle");
    println!("while the MPC baseline pays 3 shuffles per halving iteration.");
}
