//! Single-linkage hierarchical clustering via the AMPC MSF.
//!
//! §1.1 of the paper: *"one can use this algorithm together with a
//! simple sorting step, and our connectivity algorithm to find any
//! desired level of a single-linkage hierarchical clustering."* That is
//! precisely this example: build a similarity graph over synthetic
//! points, compute its MSF with the constant-round pipeline, cut the
//! `k - 1` heaviest forest edges, and label the resulting clusters with
//! the forest-connectivity algorithm.
//!
//! ```sh
//! cargo run --release --example clustering
//! ```

use ampc::prelude::*;
use ampc_graph::{GraphBuilder, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Synthetic 2-D points in `clusters` Gaussian-ish blobs.
fn make_points(n: usize, clusters: usize, seed: u64) -> Vec<(f64, f64)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let centers: Vec<(f64, f64)> = (0..clusters)
        .map(|_| (rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
        .collect();
    (0..n)
        .map(|i| {
            let (cx, cy) = centers[i % clusters];
            (
                cx + rng.gen_range(-20.0..20.0),
                cy + rng.gen_range(-20.0..20.0),
            )
        })
        .collect()
}

fn main() {
    let k = 5usize;
    let n = 3_000usize;
    let points = make_points(n, k, 11);

    // Similarity graph: connect each point to a window of neighbors
    // (a cheap stand-in for a kNN graph), weight = scaled distance.
    let mut b = GraphBuilder::with_capacity(n, n * 8);
    for i in 0..n {
        for d in 1..=8 {
            let j = (i + d * 37) % n; // scatter across blobs
            let (xi, yi) = points[i];
            let (xj, yj) = points[j];
            let dist = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt();
            b.push_edge(i as NodeId, j as NodeId, (dist * 100.0) as u64);
        }
    }
    let graph = b.build_weighted();
    println!(
        "similarity graph: {} points, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    let cfg = AmpcConfig::default();

    // 1) Constant-round MSF.
    let forest = msf::ampc_msf(&graph, &cfg);
    println!(
        "MSF: {} edges in {} shuffles (sim {})",
        forest.edges.len(),
        forest.report.num_shuffles(),
        ampc_dht::cost::format_ns(forest.report.sim_ns()),
    );

    // 2) The "simple sorting step": cut the k-1 heaviest forest edges.
    let mut edges = forest.edges.clone();
    edges.sort_unstable_by_key(|e| e.w);
    let kept: Vec<(NodeId, NodeId)> = edges
        .iter()
        .take(edges.len().saturating_sub(k - 1))
        .map(|e| (e.u, e.v))
        .collect();

    // 3) Forest connectivity labels the clusters.
    let clusters = connectivity::forest_cc(n, &kept, &cfg);
    let mut sizes: std::collections::HashMap<NodeId, usize> = std::collections::HashMap::new();
    for &l in &clusters.label {
        *sizes.entry(l).or_insert(0) += 1;
    }
    let mut sizes: Vec<usize> = sizes.into_values().collect();
    sizes.sort_unstable_by_key(|&s| std::cmp::Reverse(s));
    println!("single-linkage cut at k = {k}: cluster sizes {sizes:?}");

    // Sanity: the top-k clusters should hold the vast majority of points.
    let covered: usize = sizes.iter().take(k).sum();
    println!(
        "top-{k} clusters cover {covered}/{n} points ({:.1}%)",
        100.0 * covered as f64 / n as f64
    );
}
