//! Quickstart: run every AMPC algorithm on a small social-network-like
//! graph and print what the model meters.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ampc::prelude::*;
use ampc_dht::cost::format_ns;
use ampc_graph::gen;

fn main() {
    // A skewed RMAT graph: 2^12 vertices, ~60k edges.
    let graph = gen::rmat(12, 60_000, gen::RmatParams::SOCIAL, 42);
    println!(
        "graph: {} vertices, {} edges, max degree {}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.max_degree()
    );

    // The AMPC configuration: 10 machines, space n^0.75 per machine,
    // RDMA-like key-value store, caching on.
    let cfg = AmpcConfig::default();

    // ---- Maximal independent set (Figure 1 of the paper) -------------
    let mis = mis::ampc_mis(&graph, &cfg);
    println!(
        "\nMIS: {} members | {} shuffle(s), {} KV rounds, sim time {}",
        mis.in_mis.iter().filter(|&&b| b).count(),
        mis.report.num_shuffles(),
        mis.report.num_kv_rounds(),
        format_ns(mis.report.sim_ns()),
    );

    // ---- Maximal matching (Theorem 2) ---------------------------------
    let mm = matching::ampc_matching(&graph, &cfg);
    println!(
        "MM : {} pairs   | {} shuffle(s), cache hit rate {:.0}%",
        mm.pairs().len(),
        mm.report.num_shuffles(),
        mm.report.kv_comm().cache_hit_rate() * 100.0,
    );

    // ---- Minimum spanning forest (Theorem 1, §5.5 pipeline) -----------
    let weighted = gen::degree_weights(&graph);
    let forest = msf::ampc_msf(&weighted, &cfg);
    println!(
        "MSF: {} edges, total weight {} | {} shuffles",
        forest.edges.len(),
        forest.total_weight(),
        forest.report.num_shuffles(),
    );

    // ---- Connected components -----------------------------------------
    let cc = connectivity::ampc_connected_components(&graph, &cfg);
    let components: std::collections::HashSet<_> = cc.label.iter().collect();
    println!("CC : {} components", components.len());

    // ---- 1-vs-2-cycle (§5.6) -------------------------------------------
    let cycle = gen::two_cycles(4096, 7);
    let out = one_vs_two::ampc_one_vs_two(&cycle, &cfg);
    println!(
        "1v2: {:?} ({} cycles) in {} shuffle(s)",
        out.answer,
        out.num_cycles,
        out.report.num_shuffles()
    );

    // Full per-stage accounting of the last run:
    println!("\nMIS job detail:\n{}", mis.report.summary());
}
