//! Minimal offline stand-in for the `rand` crate.
//!
//! Provides exactly the surface this workspace uses: [`rngs::SmallRng`]
//! (a SplitMix64 generator), the [`Rng`] and [`SeedableRng`] traits with
//! `gen_range`/`gen_bool`/`seed_from_u64`, and
//! [`seq::SliceRandom::shuffle`]. Deterministic for a given seed, which
//! is all the workspace's generators and tests require.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Construct the generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core RNG trait: everything is derived from a `u64` stream.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }

    /// A uniformly random value of a supported type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_u64_stream(self)
    }
}

/// Types that can be drawn uniformly from the full value range via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the generator's `u64` stream.
    fn from_u64_stream<G: Rng>(g: &mut G) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_u64_stream<G: Rng>(g: &mut G) -> Self {
                g.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_u64_stream<G: Rng>(g: &mut G) -> Self {
        g.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_u64_stream<G: Rng>(g: &mut G) -> Self {
        unit_f64(g.next_u64())
    }
}

impl Standard for f32 {
    fn from_u64_stream<G: Rng>(g: &mut G) -> Self {
        unit_f64(g.next_u64()) as f32
    }
}

/// Map 64 random bits to a float in `[0, 1)` using the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that [`Rng::gen_range`] can sample an element of type `T` from.
///
/// `T` is a trait parameter (not an associated type) so that integer
/// literals in ranges unify with the expected output type, exactly as
/// with the real `rand` crate.
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_from<G: Rng>(self, g: &mut G) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: Rng>(self, g: &mut G) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (g.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: Rng>(self, g: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (g.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: Rng>(self, g: &mut G) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let v = self.start + (self.end - self.start) * (unit_f64(g.next_u64()) as $t);
                if v < self.end {
                    v
                } else {
                    // Narrowing rounding (f64 unit sample -> f32, or the
                    // affine map itself) can land exactly on the open
                    // bound; step one ULP back toward start to keep the
                    // half-open contract.
                    let prev = if self.end == 0.0 {
                        -<$t>::from_bits(1)
                    } else if self.end < 0.0 {
                        <$t>::from_bits(self.end.to_bits() + 1)
                    } else {
                        <$t>::from_bits(self.end.to_bits() - 1)
                    };
                    prev.max(self.start)
                }
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// The concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64).
    ///
    /// Not the real `rand` SmallRng algorithm, but a well-studied stream
    /// with the same interface; everything in this workspace only relies
    /// on determinism-per-seed.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Alias: the stand-in does not distinguish the std generator.
    pub type StdRng = SmallRng;
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension trait providing in-place shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<G: Rng>(&mut self, rng: &mut G);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<G: Rng>(&mut self, rng: &mut G) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5..=5u64);
            assert_eq!(y, 5);
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let s = rng.gen_range(-20.0..20.0f64);
            assert!((-20.0..20.0).contains(&s));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
