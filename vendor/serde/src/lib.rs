//! Minimal offline stand-in for `serde`.
//!
//! The workspace only *annotates* types with `#[derive(Serialize,
//! Deserialize)]` — nothing serializes through serde at runtime (report
//! rendering is hand-rolled). The traits here are markers with blanket
//! implementations and the derives are no-ops, so the annotations keep
//! compiling unchanged against this stand-in.

#![deny(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
