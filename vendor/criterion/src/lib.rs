//! Minimal offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `bench_function`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//! Instead of criterion's statistical machinery it runs each benchmark
//! a fixed number of iterations and prints mean wall-clock time, which
//! is enough for `cargo bench` to produce comparable numbers offline.

#![deny(missing_docs)]

use std::time::Instant;

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_mean_ns: f64,
}

impl Bencher {
    /// Time `f`, running it `iters` times after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.last_mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one("", name, 10, f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set how many timed iterations each benchmark in the group runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&self.name, name, self.sample_size, f);
        self
    }

    /// Finish the group (no-op in the stand-in).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        iters: sample_size as u64,
        last_mean_ns: 0.0,
    };
    f(&mut b);
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    if b.last_mean_ns >= 1.0e6 {
        println!("bench {label:<40} {:>12.3} ms/iter", b.last_mean_ns / 1.0e6);
    } else {
        println!("bench {label:<40} {:>12.1} ns/iter", b.last_mean_ns);
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        // one warm-up + 3 timed iterations
        assert_eq!(calls, 4);
    }
}
