//! No-op `Serialize`/`Deserialize` derives for the offline serde
//! stand-in. The companion `serde` crate provides blanket trait
//! implementations, so the derives have nothing to emit; they exist only
//! so `#[derive(Serialize, Deserialize)]` attributes resolve.

#![deny(missing_docs)]

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
