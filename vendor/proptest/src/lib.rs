//! Minimal offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property suites use: integer
//! range strategies, tuples, [`Just`], [`collection::vec`],
//! [`Strategy::prop_flat_map`]/[`Strategy::prop_map`], the [`proptest!`]
//! macro with a `#![proptest_config(..)]` header, and the
//! `prop_assert!`/`prop_assert_eq!` assertions.
//!
//! Unlike real proptest there is **no shrinking** and no persistence:
//! each case is generated from a deterministic per-case seed, and a
//! failing case panics with the case index so it can be replayed.

#![deny(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// The RNG handed to strategies by the [`proptest!`] runner.
#[derive(Clone, Debug)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Deterministic RNG for case number `case` of a named test.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index, so each
        // test gets an independent but reproducible stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Derive a new strategy from each generated value.
    fn prop_flat_map<F, S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> S,
        S: Strategy,
    {
        FlatMap { base: self, f }
    }

    /// Map generated values through a function.
    fn prop_map<F, U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
    T: Strategy,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let seed = self.base.generate(rng);
        (self.f)(seed).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.base.generate(rng))
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Collection strategies.
pub mod collection {
    use super::{Rng, Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for a `Vec` whose length is drawn from `len` and whose
    /// elements come from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A `Vec` of values from `elem` with length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Runner configuration: how many cases each property runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Property assertion: panics with the failing expression on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over `config.cases` generated
/// inputs with a deterministic per-case RNG.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases as u64 {
                    let mut prop_rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut prop_rng);)+
                    let run = || -> () { $body };
                    if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest stand-in: property `{}` failed on case {case}/{} (deterministic; re-run reproduces it)",
                            stringify!($name),
                            config.cases,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_pair(max: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
        (2..max).prop_flat_map(move |n| {
            let edges = crate::collection::vec((0..n as u32, 0..n as u32), 0..8);
            (Just(n), edges)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected((n, pairs) in arb_pair(50), seed in 0u64..1000) {
            prop_assert!((2..50).contains(&n));
            prop_assert!(seed < 1000);
            for (u, v) in pairs {
                prop_assert!((u as usize) < n, "u={u} out of range {n}");
                prop_assert!((v as usize) < n);
            }
        }

        #[test]
        fn determinism(x in 0u64..1_000_000) {
            // Same case index must always yield the same value.
            let mut rng = crate::TestRng::for_case("determinism_probe", 3);
            let a = rng.next_u64();
            let mut rng2 = crate::TestRng::for_case("determinism_probe", 3);
            prop_assert_eq!(a, rng2.next_u64());
            let _ = x;
        }
    }
}
