//! Minimal offline stand-in for `parking_lot`: `Mutex` and `RwLock`
//! with the poison-free API, backed by `std::sync`. A poisoned std lock
//! (a thread panicked while holding it) is passed through rather than
//! re-panicking, matching parking_lot's behavior of not poisoning.

#![deny(missing_docs)]

use std::sync::PoisonError;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquisitions cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
