//! # ampc — Adaptive Massively Parallel Computation graph algorithms
//!
//! Facade crate for the AMPC workspace: a Rust reproduction of
//! *"Parallel Graph Algorithms in Constant Adaptive Rounds: Theory meets
//! Practice"* (Behnezhad et al., VLDB 2021).
//!
//! The workspace is organized as:
//! * [`graph`] — graph substrate: CSR graphs, generators, dataset analogues.
//! * [`dht`] — the distributed hash table the AMPC model is built around.
//! * [`runtime`] — a simulated multi-machine dataflow runtime with shuffle
//!   and communication accounting.
//! * [`trees`] — tree-algorithm substrate (union-find, LCA, RMQ, HLD, …).
//! * [`core`] — the paper's AMPC algorithms (MIS, matching, MSF,
//!   connectivity, 1-vs-2-cycle).
//! * [`mpc`] — the MPC baselines the paper compares against.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use ampc_core as core;
pub use ampc_dht as dht;
pub use ampc_graph as graph;
pub use ampc_mpc as mpc;
pub use ampc_runtime as runtime;
pub use ampc_trees as trees;

/// Convenience prelude: the types most programs need.
///
/// ```
/// use ampc::prelude::*;
///
/// let graph = ampc::graph::gen::rmat(10, 4_000, ampc::graph::gen::RmatParams::SOCIAL, 7);
/// let cfg = AmpcConfig::default();
/// let out = mis::ampc_mis(&graph, &cfg);
/// assert_eq!(out.report.num_shuffles(), 1);
/// ```
pub mod prelude {
    pub use ampc_core::algorithm::{AlgoInput, AlgoOutput, AmpcAlgorithm, Model};
    pub use ampc_core::{connectivity, dynamic, matching, mis, msf, one_vs_two, walks};
    pub use ampc_dht::cost::{CostConfig, Network};
    pub use ampc_graph::{datasets::Dataset, CsrGraph, NodeId, WeightedCsrGraph};
    pub use ampc_runtime::config::AmpcConfig;
}
