//! Shared MSF machinery: strict edge ordering, provenance through
//! contractions, and the Prim-search + contraction round of §5.5.
//!
//! **Strict ordering.** Prim's cut-property argument (and the
//! edge-by-edge comparability of results across implementations) needs
//! distinct weights. [`distinctify`] replaces weights by their dense
//! rank under the total order `(w, canonical endpoints)` — an
//! order-preserving, collision-free relabeling; original weights are
//! restored on output.
//!
//! **Provenance.** Contraction relabels endpoints, but emitted MSF edges
//! must be reported in *original* ids. A [`ProvEdge`] carries both.
//!
//! **The round.** [`prim_contract_round`] implements one pass of the
//! §5.5 pipeline over the current (possibly contracted) edge set:
//! SortGraph shuffle → KV-Write → truncated Prim searches (Algorithm 1's
//! three stopping rules) → Combine shuffle (best visitor per visited
//! vertex) → pointer-jump map construction + KV pointer jumping →
//! contraction (two shuffles), exactly the stage structure whose costs
//! Figure 7 breaks down and whose shuffle count Table 3 reports as 5.

use crate::priorities::node_rank;
use ampc_dht::cache::DenseCache;
use ampc_dht::hasher::{FxHashMap, FxHashSet};
use ampc_dht::measured::Measured;
use ampc_dht::store::{Dht, GenerationWriter};
use ampc_graph::{NodeId, Weight, WeightedCsrGraph, WeightedEdge, NO_NODE};
use ampc_runtime::{Job, JobReport};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of an AMPC MSF run.
#[derive(Clone, Debug)]
pub struct MsfOutcome {
    /// The minimum spanning forest, as original-graph edges with
    /// original weights, sorted.
    pub edges: Vec<WeightedEdge>,
    /// Execution record.
    pub report: JobReport,
}

impl MsfOutcome {
    /// Total weight of the forest.
    pub fn total_weight(&self) -> u128 {
        self.edges.iter().map(|e| e.w as u128).sum()
    }
}

/// An edge at some contraction level: current endpoints plus the
/// original edge it descends from. `w` is the *internal* strict weight
/// (a dense rank, see [`distinctify`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProvEdge {
    /// Current-level endpoint.
    pub u: NodeId,
    /// Current-level endpoint.
    pub v: NodeId,
    /// Internal strict weight (dense rank over the original edges).
    pub w: u64,
    /// Original endpoint.
    pub ou: NodeId,
    /// Original endpoint.
    pub ov: NodeId,
}

impl Measured for ProvEdge {
    fn size_bytes(&self) -> usize {
        4 + 4 + 8 + 4 + 4
    }
}

/// The strictly-ordered view of an input graph.
#[derive(Clone, Debug)]
pub struct Distinct {
    /// Every edge as a level-0 [`ProvEdge`] (`u = ou`, `v = ov`).
    pub edges: Vec<ProvEdge>,
    /// `orig_w[w_internal]` = original weight of that edge.
    pub orig_w: Vec<Weight>,
    /// `orig_pair[w_internal]` = original canonical endpoints.
    pub orig_pair: Vec<(NodeId, NodeId)>,
    /// Vertex count.
    pub n: usize,
}

/// Replaces weights by dense ranks under `(w, canonical endpoints)`.
pub fn distinctify(g: &WeightedCsrGraph) -> Distinct {
    let mut sorted: Vec<WeightedEdge> = g.edge_vec();
    sorted.sort_unstable(); // by (w, endpoints) — WeightedEdge::key
    let mut edges = Vec::with_capacity(sorted.len());
    let mut orig_w = Vec::with_capacity(sorted.len());
    let mut orig_pair = Vec::with_capacity(sorted.len());
    for (i, e) in sorted.iter().enumerate() {
        edges.push(ProvEdge {
            u: e.u,
            v: e.v,
            w: i as u64,
            ou: e.u,
            ov: e.v,
        });
        orig_w.push(e.w);
        orig_pair.push((e.u.min(e.v), e.u.max(e.v)));
    }
    Distinct {
        edges,
        orig_w,
        orig_pair,
        n: g.num_nodes(),
    }
}

impl Distinct {
    /// Maps a set of internal weights back to original weighted edges,
    /// sorted.
    pub fn restore(&self, internal: impl IntoIterator<Item = u64>) -> Vec<WeightedEdge> {
        let mut out: Vec<WeightedEdge> = internal
            .into_iter()
            .map(|w| {
                let (u, v) = self.orig_pair[w as usize];
                WeightedEdge::new(u, v, self.orig_w[w as usize])
            })
            .collect();
        out.sort_unstable_by_key(|e| e.key());
        out
    }
}

/// Output of one Prim + contraction round.
pub struct PrimRoundResult {
    /// Internal weights of the MSF edges discovered this round.
    pub msf_internal: Vec<u64>,
    /// The contracted edge set (parallel edges keep the lightest copy).
    pub next_edges: Vec<ProvEdge>,
    /// Vertex count of the contracted graph.
    pub next_n: usize,
    /// Current-level vertex → its contraction root (current-level id).
    pub root_of: Vec<NodeId>,
    /// Current-level vertex → next-level compacted id, or [`NO_NODE`] if
    /// its class became isolated (fully-resolved component) and was
    /// dropped, as in Algorithm 1 line 14.
    pub next_id: Vec<NodeId>,
}

/// Adjacency value stored in the DHT for the Prim round: `(neighbor,
/// internal weight)` sorted by weight.
type Adj = Vec<(NodeId, u64)>;

/// Per-search output: discovered MSF edges + visited vertices.
struct SearchOut {
    origin: NodeId,
    msf: Vec<u64>,
    visited: Vec<NodeId>,
}

/// Runs one §5.5 round over `edges` on `n` current-level vertices.
///
/// `budget` is Algorithm 1's exploration bound (`n^{ε/2}` vertices per
/// search); `salt` decorrelates the per-round vertex permutation.
pub fn prim_contract_round(
    job: &mut Job,
    n: usize,
    edges: &[ProvEdge],
    tag: &str,
    budget: u64,
    salt: u64,
) -> PrimRoundResult {
    let seed = job.config().seed ^ salt;

    // ------------------------------------------------ SortGraph shuffle
    let mut adj: Vec<Adj> = vec![Vec::new(); n];
    for e in edges {
        adj[e.u as usize].push((e.v, e.w));
        adj[e.v as usize].push((e.u, e.w));
    }
    for a in &mut adj {
        a.sort_unstable_by_key(|&(_, w)| w);
    }
    let records: Vec<(NodeId, Adj)> = adj
        .into_iter()
        .enumerate()
        .map(|(v, a)| (v as NodeId, a))
        .collect();
    let buckets = job.shuffle_by_key(&format!("SortGraph{tag}"), records, |r| r.0 as u64);

    // --------------------------------------------------------- KV-Write
    let mut dht: Dht<Adj> = Dht::new();
    let writer = GenerationWriter::new();
    job.kv_round_chunked(
        &format!("KV-Write{tag}"),
        dht.current(),
        Some(&writer),
        &buckets,
        |ctx, items: &[(NodeId, Adj)]| {
            // Independent writes share one accounted round trip (§5.3).
            ctx.handle
                .put_many(items.iter().map(|(v, a)| (*v as u64, a.clone())));
            Vec::<()>::new()
        },
    );
    dht.push(writer.seal());

    // ------------------------------------------------------- PrimSearch
    let searches: Vec<SearchOut> = job.kv_round(
        &format!("PrimSearch{tag}"),
        dht.current(),
        None,
        (0..n as NodeId).collect(),
        |ctx, items| {
            // §5.3 batching: every search unconditionally expands its
            // own origin first, so those lookups are independent and
            // share one round trip; the adaptive frontier expansions
            // stay single-key. Keys batch in the machine's scratch
            // arena, results borrowed from the sealed generation.
            ctx.scratch.keys.clear();
            ctx.scratch.keys.extend(items.iter().map(|&v| v as u64));
            let mut roots = Vec::with_capacity(items.len());
            ctx.handle.get_many_into(&ctx.scratch.keys, &mut roots);
            items
                .iter()
                .zip(roots)
                // ampc-lint: allow(transitive-unbatched-get) -- Prim search frontier: the next adjacency fetched depends on the heap top
                .map(|(&v, root)| prim_search(v, root, ctx, seed, budget))
                .collect()
        },
    );

    // ---------------------------------------------------------- Combine
    // Tuples (child, candidate parent): the lower-rank endpoint of every
    // (searcher, visited) relation parents the higher-rank one.
    let mut msf_internal: FxHashSet<u64> = FxHashSet::default();
    let mut tuples: Vec<(NodeId, NodeId)> = Vec::new();
    for s in &searches {
        for &w in &s.msf {
            msf_internal.insert(w);
        }
        let rv = node_rank(seed, s.origin);
        for &t in &s.visited {
            if node_rank(seed, t) < rv {
                tuples.push((s.origin, t));
            } else {
                tuples.push((t, s.origin));
            }
        }
    }
    let grouped = job.shuffle_by_key(&format!("Combine{tag}"), tuples, |t| t.0 as u64);
    let mut parent: Vec<NodeId> = (0..n as NodeId).collect();
    for bucket in grouped {
        for (child, cand) in bucket {
            let cur = parent[child as usize];
            if cur == child || node_rank(seed, cand) < node_rank(seed, cur) {
                parent[child as usize] = cand;
            }
        }
    }

    // ------------------------------------- PointerJumpConstruct shuffle
    job.shuffle_balanced(&format!("PointerJumpConstruct{tag}"), n as u64 * 8);
    let mut pj_dht: Dht<NodeId> = Dht::new();
    let pj_writer = GenerationWriter::new();
    {
        let parent_ref = &parent;
        job.kv_round(
            &format!("PJ-Write{tag}"),
            pj_dht.current(),
            Some(&pj_writer),
            (0..n as NodeId).collect(),
            |ctx, items| {
                // Independent writes share one round trip (§5.3).
                ctx.handle
                    .put_many(items.iter().map(|&v| (v as u64, parent_ref[v as usize])));
                Vec::<()>::new()
            },
        );
    }
    pj_dht.push(pj_writer.seal());

    // ------------------------------------------------------ PointerJump
    let root_of: Vec<NodeId> = job.kv_round(
        &format!("PointerJump{tag}"),
        pj_dht.current(),
        None,
        (0..n as NodeId).collect(),
        |ctx, items| {
            let mut cache: DenseCache<NodeId> = DenseCache::unbounded(n);
            let mut path = Vec::new();
            items
                .iter()
                .map(|&v| {
                    path.clear();
                    let mut x = v;
                    let root = loop {
                        if let Some(&r) = cache.get(x as u64) {
                            ctx.handle.note_cache_hit();
                            break r;
                        }
                        // ampc-lint: allow(no-unbatched-get) -- adaptive pointer-chase: each
                        // parent lookup depends on the value of the previous hop, so there is
                        // no independent batch to issue; this is the model's defining adaptive
                        // query (paper §4), budgeted per round by the handle.
                        let p = *ctx.handle.get(x as u64).expect("parent entry");
                        if p == x {
                            break x;
                        }
                        path.push(x);
                        x = p;
                    };
                    for &y in &path {
                        cache.put(y as u64, root);
                    }
                    cache.put(v as u64, root);
                    root
                })
                .collect()
        },
    );

    // -------------------------------------------- Contract (2 shuffles)
    // Flat-primitive frontier selection: pack the indices of the
    // component-crossing edges (striped over the pool at scale), then
    // relabel just those.
    let mut crossing: Vec<u32> = Vec::new();
    crate::prim::pack_range(
        edges.len(),
        |i| {
            let e = &edges[i];
            root_of[e.u as usize] != root_of[e.v as usize]
        },
        &mut crossing,
    );
    let relabeled: Vec<ProvEdge> = crossing
        .iter()
        .map(|&i| {
            let e = &edges[i as usize];
            let (ru, rv) = (root_of[e.u as usize], root_of[e.v as usize]);
            ProvEdge {
                u: ru.min(rv),
                v: ru.max(rv),
                w: e.w,
                ou: e.ou,
                ov: e.ov,
            }
        })
        .collect();
    let contracted_buckets = job.shuffle_by_key(&format!("Contract{tag}"), relabeled, |e| {
        crate::priorities::edge_key(e.u, e.v)
    });
    // Dedup: lightest parallel edge per pair.
    let mut best: FxHashMap<u64, ProvEdge> = FxHashMap::default();
    for bucket in contracted_buckets {
        for e in bucket {
            let key = crate::priorities::edge_key(e.u, e.v);
            match best.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    if e.w < o.get().w {
                        o.insert(e);
                    }
                }
                std::collections::hash_map::Entry::Vacant(vac) => {
                    vac.insert(e);
                }
            }
        }
    }
    // Compact surviving class ids (roots with at least one edge survive;
    // isolated classes are dropped — their components are fully solved).
    let mut has_edge = vec![false; n];
    for e in best.values() {
        has_edge[e.u as usize] = true;
        has_edge[e.v as usize] = true;
    }
    let mut next_id = vec![NO_NODE; n];
    let mut next_n = 0 as NodeId;
    for r in 0..n as NodeId {
        if root_of[r as usize] == r && has_edge[r as usize] {
            next_id[r as usize] = next_n;
            next_n += 1;
        }
    }
    for v in 0..n {
        let r = root_of[v];
        next_id[v] = next_id[r as usize];
    }
    let mut next_edges: Vec<ProvEdge> = best
        .into_values()
        .map(|e| ProvEdge {
            u: next_id[e.u as usize],
            v: next_id[e.v as usize],
            w: e.w,
            ou: e.ou,
            ov: e.ov,
        })
        .collect();
    next_edges.sort_unstable_by_key(|e| e.w);
    job.shuffle_balanced(
        &format!("Rebuild{tag}"),
        next_edges.iter().map(|e| e.size_bytes() as u64).sum(),
    );

    let mut msf_internal: Vec<u64> = msf_internal.into_iter().collect();
    msf_internal.sort_unstable();
    PrimRoundResult {
        msf_internal,
        next_edges,
        next_n: next_n as usize,
        root_of,
        next_id,
    }
}

/// Algorithm 1's truncated Prim search from `v`. The origin's adjacency
/// arrives prefetched (`root`) from the machine's batched round-start
/// lookup; frontier expansions are adaptive and stay single-key.
fn prim_search<'a>(
    v: NodeId,
    root: Option<&'a Adj>,
    ctx: &mut ampc_runtime::executor::MachineCtx<'a, Adj>,
    seed: u64,
    budget: u64,
) -> SearchOut {
    let rv = node_rank(seed, v);
    let mut visited: FxHashSet<NodeId> = FxHashSet::default();
    visited.insert(v);
    let mut msf = Vec::new();
    // Heap over (weight, target): with strict weights the (weight) key
    // alone identifies the edge.
    let mut heap: BinaryHeap<Reverse<(u64, NodeId)>> = BinaryHeap::new();
    let expand = |x: NodeId,
                  heap: &mut BinaryHeap<Reverse<(u64, NodeId)>>,
                  ctx: &mut ampc_runtime::executor::MachineCtx<'a, Adj>| {
        if let Some(adj) = ctx.handle.get(x as u64) {
            for &(t, w) in adj {
                heap.push(Reverse((w, t)));
            }
        }
    };
    if let Some(adj) = root {
        for &(t, w) in adj {
            heap.push(Reverse((w, t)));
        }
    }

    loop {
        // Stopping condition (1): explored n^{ε/2} vertices.
        if visited.len() as u64 >= budget {
            break;
        }
        // Next lightest edge leaving the tree.
        let Some(Reverse((w, t))) = heap.pop() else {
            break; // (2) component fully explored
        };
        ctx.add_ops(1);
        if visited.contains(&t) {
            continue;
        }
        // Cut property: this edge is in the MSF.
        msf.push(w);
        visited.insert(t);
        // Stopping condition (3): reached an earlier-in-π vertex.
        if node_rank(seed, t) < rv {
            break;
        }
        // ampc-lint: allow(transitive-unbatched-get) -- Prim search frontier: the next adjacency fetched depends on the heap top
        expand(t, &mut heap, ctx);
    }
    visited.remove(&v);
    let mut visited: Vec<NodeId> = visited.into_iter().collect();
    visited.sort_unstable();
    SearchOut {
        origin: v,
        msf,
        visited,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::gen;
    use ampc_runtime::AmpcConfig;

    #[test]
    fn distinctify_preserves_order_and_restores() {
        let g = gen::degree_weights(&gen::erdos_renyi(40, 120, 1));
        let d = distinctify(&g);
        assert_eq!(d.edges.len(), g.num_edges());
        // Internal weights are 0..m and ordered like the originals.
        for w in d.edges.windows(2) {
            let a = (d.orig_w[w[0].w as usize], d.orig_pair[w[0].w as usize]);
            let b = (d.orig_w[w[1].w as usize], d.orig_pair[w[1].w as usize]);
            let _ = (a, b);
        }
        let restored = d.restore(d.edges.iter().map(|e| e.w));
        let mut orig = g.edge_vec();
        orig.sort_unstable_by_key(|e| e.key());
        assert_eq!(restored, orig);
    }

    #[test]
    fn one_round_on_path_finds_all_edges() {
        // A path with unbounded budget: the first search covers its
        // whole fragment; all edges are MSF edges.
        let g = gen::degree_weights(&gen::path(20));
        let d = distinctify(&g);
        let mut job = Job::new(AmpcConfig::for_tests());
        let r = prim_contract_round(&mut job, d.n, &d.edges, "", u64::MAX, 0);
        // Every edge of a tree is an MSF edge; contraction leaves nothing.
        assert_eq!(r.msf_internal.len(), 19);
        assert_eq!(r.next_n, 0);
        assert!(r.next_edges.is_empty());
    }

    #[test]
    fn round_shrinks_vertices() {
        let g = gen::degree_weights(&gen::erdos_renyi(300, 900, 5));
        let d = distinctify(&g);
        let mut job = Job::new(AmpcConfig::for_tests());
        let r = prim_contract_round(&mut job, d.n, &d.edges, "", 4, 0);
        assert!(
            r.next_n < 300 / 2,
            "contraction should shrink: {} -> {}",
            300,
            r.next_n
        );
        // Emitted edges are a subset of the true MSF.
        let msf = crate::msf::in_memory::kruskal(&g);
        let truth: std::collections::HashSet<_> =
            msf.iter().map(|e| (e.u.min(e.v), e.u.max(e.v))).collect();
        for &w in &r.msf_internal {
            let pair = d.orig_pair[w as usize];
            assert!(truth.contains(&pair), "emitted non-MSF edge {pair:?}");
        }
    }

    #[test]
    fn round_uses_five_shuffles() {
        let g = gen::degree_weights(&gen::erdos_renyi(100, 300, 2));
        let d = distinctify(&g);
        let mut job = Job::new(AmpcConfig::for_tests());
        prim_contract_round(&mut job, d.n, &d.edges, "", 8, 0);
        // SortGraph, Combine, PointerJumpConstruct, Contract, Rebuild.
        assert_eq!(job.report().num_shuffles(), 5);
    }

    #[test]
    fn roots_point_to_lower_rank() {
        let g = gen::degree_weights(&gen::erdos_renyi(200, 600, 7));
        let d = distinctify(&g);
        let mut job = Job::new(AmpcConfig::for_tests());
        let r = prim_contract_round(&mut job, d.n, &d.edges, "", 6, 3);
        let seed = job.config().seed ^ 3;
        for v in 0..200u32 {
            let root = r.root_of[v as usize];
            if root != v {
                assert!(
                    node_rank(seed, root) < node_rank(seed, v),
                    "root must be earlier in pi"
                );
            }
        }
    }
}
