//! DenseMSF — Proposition 3.1 (\[19\]'s algorithm, as iterated here).
//!
//! The loop: run a truncated-Prim + contraction round
//! ([`crate::msf::common::prim_contract_round`]); each round shrinks the
//! vertex count by an `Ω(n^{ε/2})` factor (Lemma 3.3), so
//! `O((1/ε) log log n)` rounds reduce any graph below the in-memory
//! threshold, where Kruskal finishes — the same "switch to a single
//! machine" step the paper's implementations use (§5.4, §5.5).

use super::common::{distinctify, prim_contract_round, MsfOutcome, ProvEdge};
use ampc_graph::WeightedCsrGraph;
use ampc_runtime::{AmpcConfig, Job};
use ampc_trees::UnionFind;

/// Computes the MSF with the iterated dense routine.
pub fn dense_msf(g: &WeightedCsrGraph, cfg: &AmpcConfig) -> MsfOutcome {
    let mut job = Job::new(*cfg);
    let edges = dense_msf_in_job(&mut job, g);
    MsfOutcome {
        edges,
        report: job.into_report(),
    }
}

/// The in-job kernel body: runs the iterated dense MSF inside a
/// caller-provided [`Job`] (the [`crate::algorithm::AmpcAlgorithm`]
/// entry point), returning the MSF edges in canonical order.
// ampc-lint: budget(batched-requests = 3)
pub fn dense_msf_in_job(job: &mut Job, g: &WeightedCsrGraph) -> Vec<ampc_graph::WeightedEdge> {
    let cfg = *job.config();
    let d = distinctify(g);
    let internal = dense_msf_loop(job, d.n, d.edges.clone(), &cfg);
    d.restore(internal)
}

/// The search-and-contract loop over provenance edges; returns the
/// internal weights of all MSF edges. Exposed for the other MSF entry
/// points (Algorithm 2's post-ternarization phase, KKT's recursive
/// calls, forest connectivity).
pub(crate) fn dense_msf_loop(
    job: &mut Job,
    n: usize,
    mut edges: Vec<ProvEdge>,
    cfg: &AmpcConfig,
) -> Vec<u64> {
    let mut msf: Vec<u64> = Vec::new();
    let mut cur_n = n;
    let mut round = 0usize;
    while edges.len() > cfg.in_memory_threshold {
        round += 1;
        assert!(
            round <= 48,
            "DenseMSF failed to shrink below threshold in 48 rounds"
        );
        let tag = if round == 1 {
            String::new()
        } else {
            format!("-r{round}")
        };
        let budget = cfg.prim_budget(cur_n.max(2));
        // ampc-lint: allow(transitive-unbatched-get) -- each contraction round's Prim searches are adaptive walks (DESIGN.md §5.3)
        let r = prim_contract_round(job, cur_n, &edges, &tag, budget, round as u64);
        msf.extend(r.msf_internal);
        edges = r.next_edges;
        cur_n = r.next_n;
    }
    if !edges.is_empty() {
        let ops = (edges.len() as u64 + cur_n as u64 + 1) * 16;
        let more = job.local("InMemoryMSF", ops, || {
            let mut sorted = edges.clone();
            sorted.sort_unstable_by_key(|e| e.w);
            let mut uf = UnionFind::new(cur_n);
            let mut out = Vec::new();
            for e in &sorted {
                if uf.union(e.u, e.v) {
                    out.push(e.w);
                }
            }
            out
        });
        msf.extend(more);
    }
    // An MSF edge can be rediscovered at a contracted level (its class
    // boundary crossing survives contraction); the union is a set.
    msf.sort_unstable();
    msf.dedup();
    msf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msf::in_memory::kruskal;
    use ampc_graph::gen;

    fn cfg() -> AmpcConfig {
        AmpcConfig::for_tests()
    }

    #[test]
    fn matches_kruskal_on_random_graphs() {
        for seed in 0..6 {
            let g = gen::random_weights(&gen::erdos_renyi(150, 450, seed), 10_000, seed);
            let out = dense_msf(&g, &cfg().with_seed(seed + 3));
            assert_eq!(out.edges, kruskal(&g), "seed {seed}");
        }
    }

    #[test]
    fn matches_kruskal_with_degree_weights_and_ties() {
        // deg(u)+deg(v) weights have many ties: exercises tie-breaking.
        let g = gen::degree_weights(&gen::rmat(9, 6_000, gen::RmatParams::SOCIAL, 4));
        let out = dense_msf(&g, &cfg());
        assert_eq!(out.total_weight(), {
            let k = kruskal(&g);
            k.iter().map(|e| e.w as u128).sum::<u128>()
        });
        assert_eq!(out.edges, kruskal(&g));
    }

    #[test]
    fn forces_multiple_distributed_rounds() {
        // Tiny in-memory threshold forces the loop to iterate.
        let g = gen::random_weights(&gen::erdos_renyi(400, 1600, 9), 100_000, 9);
        let mut c = cfg();
        c.in_memory_threshold = 10;
        let out = dense_msf(&g, &c);
        assert_eq!(out.edges, kruskal(&g));
        assert!(
            out.report.num_shuffles() >= 10,
            "expected >= 2 rounds of 5 shuffles, got {}",
            out.report.num_shuffles()
        );
    }

    #[test]
    fn small_graph_goes_straight_to_memory() {
        let g = gen::degree_weights(&gen::path(10));
        let out = dense_msf(&g, &cfg());
        assert_eq!(out.edges.len(), 9);
        assert_eq!(out.report.num_shuffles(), 0);
    }

    #[test]
    fn disconnected_graph() {
        let g = gen::random_weights(&gen::two_cycles(30, 2), 500, 2);
        let mut c = cfg();
        c.in_memory_threshold = 5;
        let out = dense_msf(&g, &c);
        assert_eq!(out.edges, kruskal(&g));
        assert_eq!(out.edges.len(), 58); // 2 * (30 - 1)
    }
}
