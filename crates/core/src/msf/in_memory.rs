//! In-memory MSF algorithms: Kruskal (the oracle and the final
//! "in-memory" stage of the pipelines) and Prim (a second oracle used to
//! cross-check the first).

use ampc_graph::{NodeId, WeightedCsrGraph, WeightedEdge};
use ampc_trees::UnionFind;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Kruskal's algorithm. Ties are broken by the canonical edge key (see
/// [`WeightedEdge::key`]), so the returned forest is the *unique* MSF
/// under the workspace's total edge order. Edges are returned sorted.
pub fn kruskal(g: &WeightedCsrGraph) -> Vec<WeightedEdge> {
    let mut edges = g.edge_vec();
    edges.sort_unstable();
    kruskal_edges(g.num_nodes(), edges)
}

/// Kruskal over a pre-sorted edge list (callers with provenance-mapped
/// edge sets use this directly).
pub fn kruskal_edges(n: usize, sorted_edges: Vec<WeightedEdge>) -> Vec<WeightedEdge> {
    let mut uf = UnionFind::new(n);
    let mut out = Vec::new();
    for e in sorted_edges {
        if uf.union(e.u, e.v) {
            out.push(e);
        }
    }
    out
}

/// Prim's algorithm over all components (restarted per component), with
/// the same tie-breaking. Returns the total forest weight — used as an
/// independent cross-check of [`kruskal`].
pub fn prim_total_weight(g: &WeightedCsrGraph) -> u128 {
    let n = g.num_nodes();
    let mut visited = vec![false; n];
    let mut total: u128 = 0;
    // Heap of (weight, tie key, target).
    let mut heap: BinaryHeap<Reverse<((u64, u64), NodeId)>> = BinaryHeap::new();
    for start in 0..n as NodeId {
        if visited[start as usize] {
            continue;
        }
        visited[start as usize] = true;
        push_edges(g, start, &mut heap);
        while let Some(Reverse(((w, _), v))) = heap.pop() {
            if visited[v as usize] {
                continue;
            }
            visited[v as usize] = true;
            total += w as u128;
            push_edges(g, v, &mut heap);
        }
    }
    total
}

fn push_edges(
    g: &WeightedCsrGraph,
    v: NodeId,
    heap: &mut BinaryHeap<Reverse<((u64, u64), NodeId)>>,
) {
    for (u, w) in g.weighted_neighbors(v) {
        heap.push(Reverse(((w, crate::priorities::edge_key(v, u)), u)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::gen;

    #[test]
    fn kruskal_on_path_takes_all_edges() {
        let g = gen::degree_weights(&gen::path(5));
        let msf = kruskal(&g);
        assert_eq!(msf.len(), 4);
    }

    #[test]
    fn kruskal_spans_each_component() {
        let g = gen::degree_weights(&gen::two_cycles(6, 3));
        let msf = kruskal(&g);
        // two cycles of 6 -> two trees of 5 edges
        assert_eq!(msf.len(), 10);
    }

    #[test]
    fn kruskal_matches_prim_weight() {
        for seed in 0..6 {
            let g = gen::random_weights(&gen::erdos_renyi(120, 400, seed), 1000, seed);
            let k: u128 = kruskal(&g).iter().map(|e| e.w as u128).sum();
            assert_eq!(k, prim_total_weight(&g), "seed {seed}");
        }
    }

    #[test]
    fn picks_light_edges() {
        // triangle with weights 1, 2, 3: MSF = {1, 2}.
        let g = ampc_graph::GraphBuilder::new(3)
            .add_weighted_edge(0, 1, 1)
            .add_weighted_edge(1, 2, 2)
            .add_weighted_edge(0, 2, 3)
            .build_weighted();
        let msf = kruskal(&g);
        let ws: Vec<u64> = msf.iter().map(|e| e.w).collect();
        assert_eq!(ws, vec![1, 2]);
    }

    #[test]
    fn empty_graph() {
        let g = WeightedCsrGraph::empty(4);
        assert!(kruskal(&g).is_empty());
        assert_eq!(prim_total_weight(&g), 0);
    }
}
