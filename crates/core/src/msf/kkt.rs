//! The Karger–Klein–Tarjan sampling reduction — Algorithm 3 (§3.1).
//!
//! 1. `H` := sample each edge independently with probability `1/log n`.
//! 2. `F` := MSF of `H` (recursively, with the base algorithm).
//! 3. `E_L` := the F-light edges of `G` (Appendix B's Algorithm 5:
//!    rooting + Euler tour + RMQ + LCA + heavy-light decomposition —
//!    all provided by `ampc-trees`). Proposition 3.8 licenses
//!    discarding every F-heavy edge; Lemma 3.9 bounds `E[|E_L|]` by
//!    `O(n log n)`.
//! 4. Return the MSF of `F ∪ E_L` (again with the base algorithm).
//!
//! The net effect (Lemma 3.10 / Theorem 1): the base algorithm's
//! `O(m log n)` query bill is only ever paid on graphs of
//! `O(m / log n)` or `O(n log n)` edges, for a total of
//! `O(m + n log² n)` queries — asserted by the tests below.

use super::common::{distinctify, MsfOutcome};
use super::dense::dense_msf_loop;
use crate::priorities::edge_key;
use ampc_dht::hasher::mix64;
use ampc_graph::{GraphBuilder, WeightedCsrGraph, WeightedEdge};
use ampc_runtime::{AmpcConfig, Job};
use ampc_trees::flight::{EdgeClass, FlightIndex};

const SAMPLE_SALT: u64 = 0x4b4b_5421; // "KKT!"

/// Computes the MSF via the KKT sampling reduction.
pub fn kkt_msf(g: &WeightedCsrGraph, cfg: &AmpcConfig) -> MsfOutcome {
    let n = g.num_nodes();
    let mut job = Job::new(*cfg);

    // ------------------------------------------------------- Sample H
    let p = 1.0 / (n.max(4) as f64).log2();
    let cutoff = (p * u64::MAX as f64) as u64;
    let sample: Vec<WeightedEdge> = g
        .edges()
        .filter(|e| mix64(cfg.seed ^ SAMPLE_SALT ^ edge_key(e.u, e.v)) <= cutoff)
        .collect();
    job.shuffle_balanced("SampleH", sample.len() as u64 * 16);

    // ------------------------------------------------------ F = MSF(H)
    let mut hb = GraphBuilder::with_capacity(n, sample.len());
    for e in &sample {
        hb.push_edge(e.u, e.v, e.w);
    }
    let h = hb.build_weighted();
    let dh = distinctify(&h);
    let f_internal = dense_msf_loop(&mut job, dh.n, dh.edges.clone(), cfg);
    let forest = dh.restore(f_internal);

    // --------------------------------------------- E_L: F-light filter
    // Index construction = rooting + Euler + RMQ + HLD: O(n log n) work,
    // O(1) AMPC rounds (Lemma B.2). Classification: O(1) queries/edge.
    let index = job.local(
        "BuildFlightIndex",
        (n.max(2) as u64) * (n.max(2) as f64).log2().ceil() as u64,
        || FlightIndex::new(n, &forest),
    );
    let light: Vec<WeightedEdge> = job.local("ClassifyEdges", g.num_edges() as u64 * 4, || {
        g.edges()
            .filter(|e| index.classify(e) == EdgeClass::Light)
            .collect()
    });

    // --------------------------------------------- MSF of F ∪ E_L
    // (F ⊆ E_L — forest edges are F-light — so E_L alone suffices.)
    let mut ub = GraphBuilder::with_capacity(n, light.len() + forest.len());
    for e in light.iter().chain(forest.iter()) {
        ub.push_edge(e.u, e.v, e.w);
    }
    let u = ub.build_weighted();
    let du = distinctify(&u);
    let final_internal = dense_msf_loop(&mut job, du.n, du.edges.clone(), cfg);
    let edges = du.restore(final_internal);

    MsfOutcome {
        edges,
        report: job.into_report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msf::in_memory::kruskal;
    use ampc_graph::gen;

    fn cfg() -> AmpcConfig {
        AmpcConfig::for_tests()
    }

    #[test]
    fn matches_kruskal() {
        for seed in 0..4 {
            let g = gen::random_weights(&gen::erdos_renyi(200, 900, seed), 100_000, seed);
            let out = kkt_msf(&g, &cfg().with_seed(seed + 1));
            assert_eq!(out.edges, kruskal(&g), "seed {seed}");
        }
    }

    #[test]
    fn matches_kruskal_on_skewed_graph_with_ties() {
        let g = gen::degree_weights(&gen::rmat(9, 5_000, gen::RmatParams::SOCIAL, 6));
        let out = kkt_msf(&g, &cfg());
        assert_eq!(out.edges, kruskal(&g));
    }

    #[test]
    fn light_edge_count_is_near_linear() {
        // Lemma 3.9: E[#light] = O(n / p) = O(n log n). Check a generous
        // multiple on a graph with m >> n log n.
        let n = 500usize;
        let g = gen::random_weights(&gen::erdos_renyi(n, 20_000, 3), 1_000_000, 3);
        let c = cfg();
        let p = 1.0 / (n as f64).log2();
        let cutoff = (p * u64::MAX as f64) as u64;
        let sample: Vec<WeightedEdge> = g
            .edges()
            .filter(|e| mix64(c.seed ^ SAMPLE_SALT ^ edge_key(e.u, e.v)) <= cutoff)
            .collect();
        let mut hb = GraphBuilder::with_capacity(n, sample.len());
        for e in &sample {
            hb.push_edge(e.u, e.v, e.w);
        }
        let forest = kruskal(&hb.build_weighted());
        let index = FlightIndex::new(n, &forest);
        let light = g
            .edges()
            .filter(|e| index.classify(e) == EdgeClass::Light)
            .count();
        let bound = 8.0 * n as f64 / p;
        assert!(
            (light as f64) < bound,
            "|E_L| = {light} exceeds {bound} (m = {})",
            g.num_edges()
        );
    }

    #[test]
    fn disconnected_inputs() {
        let g = gen::random_weights(&gen::two_cycles(40, 5), 999, 5);
        let out = kkt_msf(&g, &cfg());
        assert_eq!(out.edges, kruskal(&g));
    }
}
