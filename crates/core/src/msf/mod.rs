//! Minimum spanning forest (§3 of the paper).
//!
//! * [`in_memory`] — Kruskal and Prim oracles (also the "switch to an
//!   in-memory MSF algorithm" step of both production pipelines, §5.5).
//! * [`common`] — shared machinery: strict weight ordering
//!   (distinctification, making the MSF unique), edge provenance through
//!   contractions, and the Prim-search + contraction round that
//!   Algorithm 1 and the §5.5 pipeline are built from.
//! * [`dense`] — [`dense::dense_msf`]: the iterated
//!   search-and-contract loop of Proposition 3.1 (\[19\]'s DenseMSF).
//! * [`pipeline`] — [`pipeline::ampc_msf`]: the §5.5 production pipeline
//!   (what Figure 7 measures) and [`pipeline::ampc_msf_algorithm2`]: the
//!   faithful Algorithm 2 with the ternarization step for sparse graphs.
//! * [`kkt`] — Algorithm 3: the Karger–Klein–Tarjan sampling reduction
//!   with F-light filtering (Appendix B), reducing query complexity to
//!   `O(m + n log² n)` (Theorem 1).

pub mod common;
pub mod dense;
pub mod in_memory;
pub mod kkt;
pub mod pipeline;

pub use common::MsfOutcome;
pub use dense::dense_msf;
pub use kkt::kkt_msf;
pub use pipeline::{ampc_msf, ampc_msf_algorithm2, ampc_msf_in_job};
