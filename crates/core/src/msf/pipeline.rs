//! The MSF entry points.
//!
//! [`ampc_msf`] is the §5.5 production pipeline — the configuration
//! Figure 7 measures: *"We empirically found that implementing a single
//! search procedure on the graph without ternarization is sufficient to
//! shrink it to a very small size"*, after which the contracted graph is
//! solved in memory. Structurally it is [`crate::msf::dense_msf`] (the
//! loop almost always runs exactly one distributed round at the default
//! threshold).
//!
//! [`ampc_msf_algorithm2`] is the faithful Algorithm 2: when the graph
//! is sparse (`m < n^{1+ε/2}`) it first **ternarizes** (every vertex of
//! degree > 3 becomes a cycle of ⊥-weight dummy edges), runs
//! TruncatedPrim on the bounded-degree graph — the regime where the
//! ternary-treap analysis of Appendix A bounds the query cost by
//! `O(n log n)` w.h.p. (Lemma 3.4) — and finishes with DenseMSF on the
//! contracted graph. Dummy edges never surface: both endpoints of a
//! dummy edge descend from the same original vertex, so they vanish as
//! self-loops at reporting time (Algorithm 2 line 5's "with all edges
//! with weight ⊥ removed").

use super::common::{distinctify, MsfOutcome};
use super::dense::{dense_msf, dense_msf_loop};
use ampc_graph::ops::{ternarize, Ternarized};
use ampc_graph::{WeightedCsrGraph, WeightedEdge};
use ampc_runtime::{AmpcConfig, Job};

/// The §5.5 production pipeline (sort → KV write → Prim search →
/// pointer jump → contract ×2 → in-memory finish).
///
/// ```
/// use ampc_core::msf;
/// use ampc_runtime::AmpcConfig;
///
/// let g = ampc_graph::gen::degree_weights(&ampc_graph::gen::erdos_renyi(60, 150, 1));
/// let out = msf::ampc_msf(&g, &AmpcConfig::for_tests());
/// // The unique MSF, identical to Kruskal's:
/// assert_eq!(out.edges, msf::in_memory::kruskal(&g));
/// ```
pub fn ampc_msf(g: &WeightedCsrGraph, cfg: &AmpcConfig) -> MsfOutcome {
    dense_msf(g, cfg)
}

/// The in-job kernel body of the §5.5 production pipeline (the
/// [`crate::algorithm::AmpcAlgorithm`] entry point).
// ampc-lint: budget(batched-requests = 3)
pub fn ampc_msf_in_job(job: &mut Job, g: &WeightedCsrGraph) -> Vec<WeightedEdge> {
    super::dense::dense_msf_in_job(job, g)
}

/// Algorithm 2: ternarize sparse graphs before the truncated-Prim round.
pub fn ampc_msf_algorithm2(g: &WeightedCsrGraph, cfg: &AmpcConfig) -> MsfOutcome {
    let n = g.num_nodes();
    let m = g.num_edges();
    let sparse = (m as f64) < (n.max(2) as f64).powf(1.0 + cfg.epsilon / 2.0);
    if !sparse {
        // Dense case: Algorithm 2 line 6 — run DenseMSF directly.
        return dense_msf(g, cfg);
    }

    let mut job = Job::new(*cfg);
    let t = ternarize(g);
    // Ternarization is a local rewrite distributed as one shuffle
    // ("can easily be done in O(1/ε) rounds by sorting", Lemma 3.6).
    job.shuffle_balanced("Ternarize", t.graph.size_bytes() as u64);

    let d = distinctify(&t.graph);
    let internal = dense_msf_loop(&mut job, d.n, d.edges.clone(), cfg);

    // Restore to ternarized-graph edges, then map to original ids and
    // drop dummies (both endpoints from the same original vertex).
    let tern_edges = d.restore(internal);
    let mut edges: Vec<WeightedEdge> = tern_edges
        .into_iter()
        .filter_map(|e| {
            let (a, b) = (t.origin[e.u as usize], t.origin[e.v as usize]);
            if a == b {
                debug_assert!(Ternarized::is_dummy_weight(e.w));
                return None;
            }
            Some(WeightedEdge::canonical(
                a,
                b,
                Ternarized::original_weight(e.w),
            ))
        })
        .collect();
    edges.sort_unstable_by_key(|e| e.key());

    MsfOutcome {
        edges,
        report: job.into_report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msf::in_memory::kruskal;
    use ampc_graph::gen;

    fn cfg() -> AmpcConfig {
        AmpcConfig::for_tests()
    }

    #[test]
    fn pipeline_matches_kruskal() {
        let g = gen::degree_weights(&gen::rmat(9, 4_000, gen::RmatParams::SOCIAL, 1));
        let out = ampc_msf(&g, &cfg());
        assert_eq!(out.edges, kruskal(&g));
    }

    #[test]
    fn algorithm2_ternarizes_sparse_graphs_and_matches() {
        // A sparse graph with hubs (star-ish) forces ternarization.
        let mut c = cfg();
        c.in_memory_threshold = 20;
        for seed in 0..5 {
            let g = gen::random_weights(&gen::erdos_renyi(200, 380, seed), 1_000, seed);
            let out = ampc_msf_algorithm2(&g, &c);
            assert_eq!(out.edges, kruskal(&g), "seed {seed}");
            // Ternarize stage must be present for sparse inputs.
            assert!(out.report.stages.iter().any(|s| s.name == "Ternarize"));
        }
    }

    #[test]
    fn algorithm2_dense_path_skips_ternarization() {
        let g = gen::degree_weights(&gen::complete(40)); // m = 780 >> n^{1+ε/2}
        let out = ampc_msf_algorithm2(&g, &cfg());
        assert!(out.report.stages.iter().all(|s| s.name != "Ternarize"));
        assert_eq!(out.edges, kruskal(&g));
    }

    #[test]
    fn algorithm2_on_high_degree_tree() {
        // A star: ternarization replaces the hub with a big cycle.
        let mut c = cfg();
        c.in_memory_threshold = 5;
        let g = gen::random_weights(&gen::star(60), 100, 3);
        let out = ampc_msf_algorithm2(&g, &c);
        assert_eq!(out.edges, kruskal(&g));
        assert_eq!(out.edges.len(), 59);
    }

    #[test]
    fn ternarized_path_weights_restore_correctly() {
        let g = gen::random_weights(&gen::erdos_renyi(100, 180, 7), 50, 7);
        let mut c = cfg();
        c.in_memory_threshold = 10;
        let out = ampc_msf_algorithm2(&g, &c);
        let k = kruskal(&g);
        assert_eq!(out.total_weight(), k.iter().map(|e| e.w as u128).sum());
    }
}
