//! The 1-vs-2-cycle problem in O(1) AMPC rounds (§5.6).
//!
//! *"The O(1) round AMPC algorithm for this problem is based on sampling
//! vertices with probability O(n^{-ε/2}) and searching outward from each
//! vertex until another sampled vertex is hit. Then, the graph is
//! contracted to a graph on the sampled vertices … Our implementation
//! performs a single round of the search procedure, sampling vertices
//! with probability 1/1024, and solves the subsequent contracted graph
//! on a single machine."*
//!
//! Implementation notes: every vertex of the input must have degree 2
//! (the instance is a disjoint union of cycles). Each sampled vertex
//! walks in both directions until the next sample; walk lengths let the
//! driver check coverage exactly (each cycle edge in a sampled component
//! is traversed exactly twice), so components that received no sample —
//! possible at small scale — are detected and counted rather than
//! silently missed.

use crate::priorities::node_rank;
use ampc_dht::hasher::mix64;
use ampc_dht::store::{Dht, GenerationWriter};
use ampc_graph::{CsrGraph, NodeId};
use ampc_runtime::{AmpcConfig, Job, JobReport};
use ampc_trees::UnionFind;

/// The answer to a 1-vs-2-cycle instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CycleAnswer {
    /// The graph is a single cycle.
    One,
    /// The graph consists of two (or more) cycles.
    Two,
}

/// Result of the AMPC 1-vs-2-cycle run.
#[derive(Clone, Debug)]
pub struct CycleOutcome {
    /// The answer.
    pub answer: CycleAnswer,
    /// Number of cycles actually found (≥ 1).
    pub num_cycles: usize,
    /// Execution record.
    pub report: JobReport,
}

const SAMPLE_SALT: u64 = 0x1b52_c1c1;

/// Runs the sampling-based 1-vs-2-cycle algorithm at the paper's
/// sampling rate (1/1024).
///
/// ```
/// use ampc_core::one_vs_two::{ampc_one_vs_two, CycleAnswer};
/// use ampc_runtime::AmpcConfig;
///
/// let two = ampc_graph::gen::two_cycles(500, 9);
/// let out = ampc_one_vs_two(&two, &AmpcConfig::for_tests());
/// assert_eq!(out.answer, CycleAnswer::Two);
/// assert_eq!(out.report.num_shuffles(), 1);
/// ```
pub fn ampc_one_vs_two(g: &CsrGraph, cfg: &AmpcConfig) -> CycleOutcome {
    ampc_one_vs_two_with_rate(g, cfg, 1024)
}

/// [`ampc_one_vs_two`] with an explicit inverse sampling rate.
pub fn ampc_one_vs_two_with_rate(g: &CsrGraph, cfg: &AmpcConfig, sample_inv: u64) -> CycleOutcome {
    let mut job = Job::new(*cfg);
    let (answer, num_cycles) = ampc_one_vs_two_in_job(&mut job, g, sample_inv);
    CycleOutcome {
        answer,
        num_cycles,
        report: job.into_report(),
    }
}

/// The in-job kernel body (the [`crate::algorithm::AmpcAlgorithm`]
/// entry point): answers the instance inside a caller-provided [`Job`],
/// returning the answer and the cycle count found.
// ampc-lint: budget(batched-requests = 3)
pub fn ampc_one_vs_two_in_job(
    job: &mut Job,
    g: &CsrGraph,
    sample_inv: u64,
) -> (CycleAnswer, usize) {
    let cfg = *job.config();
    let n = g.num_nodes();
    assert!(n >= 3, "cycle instances need >= 3 vertices");
    assert!(
        (0..n as NodeId).all(|v| g.degree(v) == 2),
        "1-vs-2-cycle input must be 2-regular"
    );

    // Sampling: hash-based, rate 1/sample_inv but at least a handful of
    // samples so tiny test instances stay covered w.h.p.
    let rate_inv = sample_inv.min((n as u64 / 8).max(1));
    let cutoff = u64::MAX / rate_inv;
    let is_sampled = |v: NodeId| mix64(cfg.seed ^ SAMPLE_SALT ^ v as u64) <= cutoff;
    let mut samples: Vec<NodeId> = Vec::new();
    crate::prim::pack_range(n, |v| is_sampled(v as NodeId), &mut samples);

    // ------------------------------------------------ WriteGraph shuffle
    // (§5.6: "a single shuffle used to write the graph to the key-value
    // store".) Host-side only vertex ids move; the simulated shuffle
    // redistributes the full adjacency record (id + length-prefixed
    // neighbor list), so the metered loads are those of the record.
    let vertices: Vec<NodeId> = g.nodes().collect();
    let buckets = job.shuffle_by_key_measured(
        "WriteGraph",
        vertices,
        |&v| v as u64,
        |&v| 12 + 4 * g.degree(v) as u64,
    );
    let mut dht: Dht<Vec<NodeId>> = Dht::new();
    let writer = GenerationWriter::new();
    job.kv_round_chunked(
        "KV-Write",
        dht.current(),
        Some(&writer),
        &buckets,
        |ctx, items: &[NodeId]| {
            // Independent writes share one round trip (§5.3). Each
            // adjacency list is materialized exactly once, owned by its
            // put — no intermediate record vector, no clone.
            ctx.handle
                .put_many(items.iter().map(|&v| (v as u64, g.neighbors(v).to_vec())));
            Vec::<()>::new()
        },
    );
    dht.push(writer.seal());

    // ----------------------------------------------------------- Search
    // Each sample walks both ways to the next sample; a walk returns
    // (endpoint sample, steps taken). A machine's walks advance in
    // **lockstep**: every adaptive step issues one batched lookup for
    // all still-active walk frontiers (§5.3), so the charged round-trip
    // depth is the longest segment, not the total step count.
    let walks: Vec<(NodeId, NodeId, u64)> = job.kv_round(
        "Search",
        dht.current(),
        None,
        samples.clone(),
        |ctx, items| {
            struct Walk {
                origin: NodeId,
                prev: NodeId,
                cur: NodeId,
                steps: u64,
            }
            // Lockstep buffers, reused across hops *and rounds* (the
            // keys batch lives in the machine's scratch arena): one
            // batched lookup per adaptive step through the zero-copy
            // visitor form — adjacency is served by reference in a
            // single pass, no `Option<&V>` staging buffer, no per-hop
            // allocation. The survivor list double-buffers with
            // `active` instead of reallocating.
            let mut walks: Vec<Walk> = Vec::with_capacity(items.len() * 2);
            // The sample-origin fetches are independent: one batch.
            ctx.scratch.keys.clear();
            ctx.scratch.keys.extend(items.iter().map(|&s| s as u64));
            {
                let walks = &mut walks;
                ctx.handle
                    .get_many_through_with(&ctx.scratch.keys, |j, nbrs| {
                        let nbrs = nbrs.expect("2-regular");
                        let s = items[j];
                        for &start in nbrs.iter().take(2) {
                            walks.push(Walk {
                                origin: s,
                                prev: s,
                                cur: start,
                                steps: 1,
                            });
                        }
                    });
            }
            let mut active: Vec<usize> = (0..walks.len())
                .filter(|&i| !is_sampled(walks[i].cur))
                .collect();
            let mut next_active: Vec<usize> = Vec::with_capacity(active.len());
            while !active.is_empty() {
                ctx.scratch.keys.clear();
                ctx.scratch
                    .keys
                    .extend(active.iter().map(|&i| walks[i].cur as u64));
                ctx.add_ops(active.len() as u64);
                next_active.clear();
                {
                    let walks = &mut walks;
                    let next_active = &mut next_active;
                    let active = &active;
                    ctx.handle
                        .get_many_through_with(&ctx.scratch.keys, |j, cn| {
                            let cn = cn.expect("2-regular");
                            let i = active[j];
                            let w = &mut walks[i];
                            let next = if cn[0] == w.prev { cn[1] } else { cn[0] };
                            w.prev = w.cur;
                            w.cur = next;
                            w.steps += 1;
                            debug_assert!(w.steps <= n as u64 + 1, "walk failed to terminate");
                            if !is_sampled(w.cur) {
                                next_active.push(i);
                            }
                        });
                }
                std::mem::swap(&mut active, &mut next_active);
            }
            walks
                .into_iter()
                .map(|w| (w.origin, w.cur, w.steps))
                .collect()
        },
    );

    // --------------------------------------------------- SolveContracted
    let (num_cycles, _covered) = job.local("SolveContracted", walks.len() as u64 * 4 + 8, || {
        // Union samples along discovered segments; each edge of a covered
        // cycle is walked exactly twice (once per direction).
        let mut idx = ampc_dht::hasher::FxHashMap::default();
        for (i, &s) in samples.iter().enumerate() {
            idx.insert(s, i as NodeId);
        }
        let mut uf = UnionFind::new(samples.len());
        let mut steps_total = 0u64;
        for &(a, b, steps) in &walks {
            uf.union(idx[&a], idx[&b]);
            steps_total += steps;
        }
        let covered = (steps_total / 2) as usize; // edges == vertices per cycle
        let uncovered = n - covered;
        // Uncovered vertices belong to sample-free cycles; each such
        // cycle has >= 3 vertices, count conservatively as >= 1 cycle.
        let extra = usize::from(uncovered > 0);
        (uf.num_components() + extra, covered)
    });

    let answer = if num_cycles == 1 {
        CycleAnswer::One
    } else {
        CycleAnswer::Two
    };
    // Sanity: seeded rank machinery stays linked for parity with other
    // algorithms (unused here beyond determinism checks).
    let _ = node_rank(cfg.seed, 0);

    (answer, num_cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::gen;

    fn cfg() -> AmpcConfig {
        AmpcConfig::for_tests()
    }

    #[test]
    fn distinguishes_one_from_two() {
        for seed in 0..6 {
            let one = gen::single_cycle(4000, seed);
            let two = gen::two_cycles(2000, seed);
            let c = cfg().with_seed(seed + 7);
            assert_eq!(
                ampc_one_vs_two(&one, &c).answer,
                CycleAnswer::One,
                "seed {seed}"
            );
            assert_eq!(
                ampc_one_vs_two(&two, &c).answer,
                CycleAnswer::Two,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn counts_cycles_exactly_when_all_sampled_covered() {
        let g = gen::two_cycles(500, 3);
        let out = ampc_one_vs_two_with_rate(&g, &cfg(), 16);
        assert_eq!(out.num_cycles, 2);
    }

    #[test]
    fn single_shuffle_total() {
        let g = gen::single_cycle(1000, 1);
        let out = ampc_one_vs_two(&g, &cfg());
        assert_eq!(out.report.num_shuffles(), 1);
    }

    #[test]
    fn tiny_cycles_work() {
        let g = gen::single_cycle(5, 2);
        assert_eq!(ampc_one_vs_two(&g, &cfg()).answer, CycleAnswer::One);
        let g = gen::two_cycles(3, 2);
        assert_eq!(ampc_one_vs_two(&g, &cfg()).answer, CycleAnswer::Two);
    }

    #[test]
    #[should_panic(expected = "2-regular")]
    fn rejects_non_cycle_inputs() {
        ampc_one_vs_two(&gen::path(10), &cfg());
    }
}
