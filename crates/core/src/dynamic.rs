//! Batch-dynamic connectivity in the AMPC model.
//!
//! The static kernels answer one-shot queries; this module *maintains*
//! connected-component labels across a stream of edge-update batches
//! (cf. Durfee et al., "Parallel Batch-Dynamic Graphs: Algorithms and
//! Lower Bounds"), mapping the batch-dynamic round structure onto the
//! workspace's AMPC substrate:
//!
//! * **One epoch per batch.** Each update batch runs as one
//!   [`Job::epoch`]: an adaptive *classify* KV round that reads the
//!   endpoints' labels from the previous epoch's sealed DHT generation
//!   (one batched lookup per machine), local *apply*/*rebuild* stages,
//!   and a *publish* KV-write round whose sealed generation becomes the
//!   next epoch's read snapshot. The DHT generation sequence `D0, D1, …`
//!   is therefore exactly the epoch sequence — the §2 fault-tolerance
//!   story (replay against sealed inputs) carries over unchanged.
//! * **Work proportional to the affected region.** A spanning forest of
//!   the current graph is maintained alongside the labels. Inserts
//!   joining two components and deletes of *forest* edges mark the
//!   touched components; only the marked components are re-solved
//!   (union-find over their post-batch adjacency). Non-tree deletes and
//!   intra-component inserts cost O(1) — the recompute-from-scratch
//!   baseline (`ampc_mpc::dynamic`) pays O(n + m) for them.
//! * **Canonical labels.** Labels are always the minimum vertex id of
//!   the component — the same canonical form every static connectivity
//!   implementation in the workspace produces — so maintained labels
//!   are **byte-identical** to recomputation after every batch, which
//!   is what the cross-model equivalence suites pin.

use ampc_dht::store::{Dht, GenerationWriter, StripeArena};
use ampc_graph::dynamic::{EdgeSet, UpdateBatch, UpdateKind};
use ampc_graph::{CsrGraph, NodeId};
use ampc_runtime::{AmpcConfig, Job, JobReport};
use std::collections::{BTreeSet, HashSet};

/// Result of a batch-dynamic connectivity run.
#[derive(Clone, Debug)]
pub struct DynamicCcOutcome {
    /// `labels[0]` labels the initial graph; `labels[i + 1]` labels the
    /// graph after batch `i`. Every entry is canonical (min vertex id
    /// per component).
    pub labels: Vec<Vec<NodeId>>,
    /// Execution record (one epoch per entry of `labels`).
    pub report: JobReport,
}

/// Runs batch-dynamic connectivity standalone (see
/// [`ampc_dynamic_cc_in_job`]).
pub fn ampc_dynamic_cc(
    g: &CsrGraph,
    batches: &[UpdateBatch],
    cfg: &AmpcConfig,
) -> DynamicCcOutcome {
    let mut job = Job::new(*cfg);
    let labels = ampc_dynamic_cc_in_job(&mut job, g, batches);
    DynamicCcOutcome {
        labels,
        report: job.into_report(),
    }
}

/// The in-job kernel body: maintains component labels across `batches`,
/// one epoch (= one sealed DHT generation) per batch, returning the
/// labelling after the initial build and after every batch.
// ampc-lint: budget(batched-requests = 2)
pub fn ampc_dynamic_cc_in_job(
    job: &mut Job,
    g: &CsrGraph,
    batches: &[UpdateBatch],
) -> Vec<Vec<NodeId>> {
    let n = g.num_nodes();
    let mut out = Vec::with_capacity(batches.len() + 1);
    let mut dht: Dht<u64> = Dht::new();
    // Stripe-log buffers recycled across epochs: each publish writer
    // pops the previous seal's (cleared) buffers instead of allocating
    // 64 fresh logs per batch (DESIGN.md §11).
    let arena: StripeArena<u64> = StripeArena::new();

    // Maintained state: the current adjacency (sorted neighbor sets, so
    // every iteration order — and with it every downstream stat — is
    // deterministic), the canonical labels, and a spanning forest used
    // to classify deletions.
    let mut adj: Vec<BTreeSet<NodeId>> = g
        .nodes()
        .map(|u| g.neighbors(u).iter().copied().collect())
        .collect();
    let mut labels: Vec<NodeId> = (0..n as NodeId).collect();
    let mut forest: HashSet<(NodeId, NodeId)> = HashSet::new();

    // Epoch 0: load the input, solve it, publish generation D1.
    job.epoch("DynInit");
    job.shuffle_balanced("DynLoad", (g.num_arcs() as u64) * 8);
    let region: Vec<NodeId> = (0..n as NodeId).collect();
    job.local("DynInitCC", ((n + g.num_arcs()) as u64 + 1) * 8, || {
        rebuild_region(&region, &adj, &mut labels, &mut forest)
    });
    publish(job, &mut dht, "DynPublish-b0", &labels, &arena);
    out.push(labels.clone());

    for (bi, batch) in batches.iter().enumerate() {
        let b = bi + 1;
        job.epoch(&format!("DynEpoch-b{b}"));

        // Classify: each machine reads its updates' endpoint labels
        // from the previous epoch's sealed generation in one batched
        // (adaptive) lookup.
        let pre_labels: Vec<(NodeId, NodeId)> = job.kv_round(
            &format!("DynClassify-b{b}"),
            dht.current(),
            None,
            batch.clone(),
            |ctx, items| {
                // Key and value buffers live in the machine's scratch
                // arena, so classify reuses them across batches; labels
                // are fixed-size (`u64`), so the expect path copies
                // them straight out of the sealed layout — no Option
                // buffer, no per-batch allocation.
                ctx.scratch.keys.clear();
                ctx.scratch
                    .keys
                    .extend(items.iter().flat_map(|up| [up.u as u64, up.v as u64]));
                let (keys, vals) = (&ctx.scratch.keys, &mut ctx.scratch.vals);
                ctx.handle.get_many_expect_into(keys, vals);
                (0..items.len())
                    .map(|i| (vals[2 * i] as NodeId, vals[2 * i + 1] as NodeId))
                    .collect()
            },
        );

        // Apply the batch in order against the maintained state,
        // marking the components whose connectivity may have changed:
        // inserts joining two components and deletes of forest edges.
        // Intra-component inserts and non-tree deletes are structural
        // no-ops for connectivity.
        let mut affected: HashSet<NodeId> = HashSet::new();
        job.local(
            &format!("DynApply-b{b}"),
            (batch.len() as u64 + 1) * 8,
            || {
                for (up, &(lu, lv)) in batch.iter().zip(&pre_labels) {
                    debug_assert_eq!(lu, labels[up.u as usize], "DHT label drifted from host");
                    debug_assert_eq!(lv, labels[up.v as usize], "DHT label drifted from host");
                    match up.kind {
                        UpdateKind::Insert => {
                            if adj[up.u as usize].insert(up.v) {
                                adj[up.v as usize].insert(up.u);
                                if lu != lv {
                                    affected.insert(lu);
                                    affected.insert(lv);
                                }
                            }
                        }
                        UpdateKind::Delete => {
                            if adj[up.u as usize].remove(&up.v) {
                                adj[up.v as usize].remove(&up.u);
                                // A forest edge existed before the batch,
                                // so both endpoints carry the same
                                // pre-batch label.
                                if forest.remove(&(up.u, up.v)) {
                                    affected.insert(lu);
                                }
                            }
                        }
                    }
                }
            },
        );

        // Rebuild only the affected components. The affected region is
        // closed under the post-batch adjacency: a pre-batch edge stays
        // within one pre-batch component, and a fresh cross-component
        // insert marked both of its components.
        if !affected.is_empty() {
            let region: Vec<NodeId> = (0..n as NodeId)
                .filter(|&v| affected.contains(&labels[v as usize]))
                .collect();
            forest.retain(|&(u, _)| !affected.contains(&labels[u as usize]));
            let induced_arcs: usize = region.iter().map(|&v| adj[v as usize].len()).sum();
            job.local(
                &format!("DynRebuild-b{b}"),
                ((region.len() + induced_arcs) as u64 + 1) * 8,
                || rebuild_region(&region, &adj, &mut labels, &mut forest),
            );
        }

        // Publish: every machine writes its slice of the labelling; the
        // sealed generation is this epoch's snapshot.
        publish(job, &mut dht, &format!("DynPublish-b{b}"), &labels, &arena);
        out.push(labels.clone());
    }
    out
}

/// One KV-write round putting the full labelling, sealed into the next
/// generation. The writer's stripe logs come from (and return to) the
/// caller's [`StripeArena`], so steady-state epochs reuse buffer
/// capacity instead of reallocating per publish.
fn publish(
    job: &mut Job,
    dht: &mut Dht<u64>,
    name: &str,
    labels: &[NodeId],
    arena: &StripeArena<u64>,
) {
    let writer = GenerationWriter::with_arena(arena);
    job.kv_round(
        name,
        dht.current(),
        Some(&writer),
        (0..labels.len() as u64).collect(),
        |ctx, items: &[u64]| {
            ctx.handle
                .put_many(items.iter().map(|&v| (v, labels[v as usize] as u64)));
            Vec::<()>::new()
        },
    );
    dht.push(writer.seal_recycle(arena));
}

/// Recomputes the components of `region` (sorted ascending, closed
/// under `adj`) from scratch: union-find over the induced adjacency,
/// canonical min-id labels written back into `labels`, and a fresh
/// spanning forest for the region inserted into `forest`.
fn rebuild_region(
    region: &[NodeId],
    adj: &[BTreeSet<NodeId>],
    labels: &mut [NodeId],
    forest: &mut HashSet<(NodeId, NodeId)>,
) {
    let idx_of = |v: NodeId| -> u32 {
        region
            .binary_search(&v)
            .expect("affected region is closed under adjacency") as u32
    };
    let mut parent: Vec<u32> = (0..region.len() as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for (i, &u) in region.iter().enumerate() {
        for &v in &adj[u as usize] {
            if v <= u {
                continue; // each undirected edge once, canonically
            }
            let (ru, rv) = (find(&mut parent, i as u32), find(&mut parent, idx_of(v)));
            if ru != rv {
                // Root the union at the smaller index: the class root
                // is then always the class's minimum region position.
                let (lo, hi) = (ru.min(rv), ru.max(rv));
                parent[hi as usize] = lo;
                forest.insert((u, v));
            }
        }
    }
    // `region` is ascending, so the root's vertex is the component
    // minimum — the canonical label.
    for (i, &u) in region.iter().enumerate() {
        let root = find(&mut parent, i as u32);
        labels[u as usize] = region[root as usize];
        debug_assert!(labels[u as usize] <= u);
    }
}

/// Checks that `labels` is exactly the canonical per-epoch labelling of
/// `initial` evolved by `batches`: `labels[0]` against the initial
/// graph and `labels[i + 1]` against the state after batch `i`, each
/// byte-identical to the BFS oracle. Shared by the AMPC (maintained)
/// and MPC (recompute) trait impls so both models validate under the
/// same rule.
pub fn validate_dynamic_labels(
    initial: &CsrGraph,
    batches: &[UpdateBatch],
    labels: &[Vec<NodeId>],
) -> Result<(), String> {
    if labels.len() != batches.len() + 1 {
        return Err(format!(
            "dyn-cc: {} label epochs for {} batches (want batches + 1)",
            labels.len(),
            batches.len()
        ));
    }
    let mut state = EdgeSet::from_graph(initial);
    let check = |epoch: usize, g: &CsrGraph, got: &[NodeId]| -> Result<(), String> {
        let want = ampc_graph::stats::connected_components(g).label;
        if got.len() != want.len() {
            return Err(format!(
                "dyn-cc: epoch {epoch}: {} labels for {} vertices",
                got.len(),
                want.len()
            ));
        }
        if got != want {
            let v = want
                .iter()
                .zip(got)
                .position(|(w, g)| w != g)
                .expect("vectors differ");
            return Err(format!(
                "dyn-cc: epoch {epoch}: label[{v}] = {} but the oracle says {}",
                got[v], want[v]
            ));
        }
        Ok(())
    };
    check(0, initial, &labels[0])?;
    for (i, batch) in batches.iter().enumerate() {
        state.apply(batch);
        check(i + 1, &state.snapshot(), &labels[i + 1])?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::dynamic::{generate_batches, BatchMix};
    use ampc_graph::gen;

    fn cfg() -> AmpcConfig {
        AmpcConfig::for_tests()
    }

    #[test]
    fn maintained_labels_match_oracle_every_batch() {
        for (mix, seed) in [
            (BatchMix::Churn, 1u64),
            (BatchMix::InsertOnly, 2),
            (BatchMix::DeleteOnly, 3),
        ] {
            let g = gen::erdos_renyi(120, 150, seed); // sparse: many components
            let batches = generate_batches(&g, 5, 30, mix, seed);
            let out = ampc_dynamic_cc(&g, &batches, &cfg());
            validate_dynamic_labels(&g, &batches, &out.labels)
                .unwrap_or_else(|e| panic!("{mix:?}: {e}"));
        }
    }

    #[test]
    fn one_epoch_per_batch_one_generation_each() {
        let g = gen::erdos_renyi(80, 120, 9);
        let batches = generate_batches(&g, 4, 20, BatchMix::Churn, 9);
        let out = ampc_dynamic_cc(&g, &batches, &cfg());
        assert_eq!(out.labels.len(), 5);
        assert_eq!(out.report.num_epochs(), 5, "DynInit + one per batch");
        // Every epoch publishes exactly one generation (one KV-write
        // stage named DynPublish-*).
        let publishes = out
            .report
            .stages
            .iter()
            .filter(|s| s.name.starts_with("DynPublish"))
            .count();
        assert_eq!(publishes, 5);
        // Epoch stage ranges tile the stage list.
        let total: usize = (0..out.report.num_epochs())
            .map(|i| out.report.epoch_stage_range(i).len())
            .sum();
        assert_eq!(total, out.report.stages.len());
    }

    #[test]
    fn structural_noops_skip_the_rebuild_stage() {
        // A cycle built as path 0..30 plus the closing edge (0, 29).
        // The deterministic forest build (sorted vertices, sorted
        // neighbors) reaches (28, 29) last, when both sides are already
        // connected — so deleting it is a non-tree delete and must not
        // trigger DynRebuild.
        let mut state = EdgeSet::from_graph(&gen::path(30));
        state.insert(0, 29);
        let g = state.snapshot();
        let batch = vec![ampc_graph::dynamic::EdgeUpdate {
            kind: UpdateKind::Delete,
            u: 28,
            v: 29,
        }];
        let out = ampc_dynamic_cc(&g, std::slice::from_ref(&batch), &cfg());
        assert!(
            !out.report
                .stages
                .iter()
                .any(|s| s.name.starts_with("DynRebuild")),
            "non-tree delete must not rebuild"
        );
        assert!(out.labels[1].iter().all(|&l| l == 0), "still connected");
        validate_dynamic_labels(&g, &[batch], &out.labels).unwrap();
    }

    #[test]
    fn tree_delete_splits_and_reinsert_merges() {
        // A path: every edge is a tree edge.
        let g = gen::path(30);
        let del = vec![ampc_graph::dynamic::EdgeUpdate {
            kind: UpdateKind::Delete,
            u: 10,
            v: 11,
        }];
        let ins = vec![ampc_graph::dynamic::EdgeUpdate {
            kind: UpdateKind::Insert,
            u: 10,
            v: 11,
        }];
        let out = ampc_dynamic_cc(&g, &[del.clone(), ins.clone()], &cfg());
        assert!(out.labels[1][11] == 11 && out.labels[1][10] == 0, "split");
        assert!(out.labels[2].iter().all(|&l| l == 0), "re-merged");
        validate_dynamic_labels(&g, &[del, ins], &out.labels).unwrap();
    }

    #[test]
    fn empty_graph_and_empty_batches() {
        let g = CsrGraph::empty(6);
        let batches = vec![Vec::new(), Vec::new()];
        let out = ampc_dynamic_cc(&g, &batches, &cfg());
        assert_eq!(out.labels.len(), 3);
        for l in &out.labels {
            assert_eq!(*l, (0..6).collect::<Vec<NodeId>>());
        }
        validate_dynamic_labels(&g, &batches, &out.labels).unwrap();
    }

    #[test]
    fn validator_rejects_wrong_epochs() {
        let g = gen::path(5);
        let batches = generate_batches(&g, 2, 3, BatchMix::Churn, 4);
        let mut labels = ampc_dynamic_cc(&g, &batches, &cfg()).labels;
        assert!(validate_dynamic_labels(&g, &batches, &labels[..2]).is_err());
        // A truncated epoch is an Err, not a panic.
        let mut short = labels.clone();
        short[1].pop();
        assert!(validate_dynamic_labels(&g, &batches, &short)
            .unwrap_err()
            .contains("labels for"));
        labels[1][0] = 4;
        assert!(validate_dynamic_labels(&g, &batches, &labels).is_err());
    }
}
