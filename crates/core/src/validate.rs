//! Result validators: the oracles every distributed algorithm is checked
//! against in the unit, integration and property tests.

use ampc_graph::stats::connected_components;
use ampc_graph::{CsrGraph, NodeId, WeightedCsrGraph, WeightedEdge};

/// Is `in_set` an independent set of `g`?
pub fn is_independent_set(g: &CsrGraph, in_set: &[bool]) -> bool {
    assert_eq!(in_set.len(), g.num_nodes());
    g.edges()
        .all(|e| !(in_set[e.u as usize] && in_set[e.v as usize]))
}

/// Is `in_set` a *maximal* independent set (independent, and every
/// non-member has a member neighbor)?
pub fn is_maximal_independent_set(g: &CsrGraph, in_set: &[bool]) -> bool {
    if !is_independent_set(g, in_set) {
        return false;
    }
    g.nodes()
        .all(|v| in_set[v as usize] || g.neighbors(v).iter().any(|&u| in_set[u as usize]))
}

/// Is `matching` a valid matching of `g` (edges exist and are pairwise
/// vertex-disjoint)?
pub fn is_matching(g: &CsrGraph, matching: &[(NodeId, NodeId)]) -> bool {
    let mut used = vec![false; g.num_nodes()];
    for &(u, v) in matching {
        if u == v || !g.has_edge(u, v) {
            return false;
        }
        if used[u as usize] || used[v as usize] {
            return false;
        }
        used[u as usize] = true;
        used[v as usize] = true;
    }
    true
}

/// Is `matching` maximal (a matching, and every edge of `g` touches a
/// matched vertex)?
pub fn is_maximal_matching(g: &CsrGraph, matching: &[(NodeId, NodeId)]) -> bool {
    if !is_matching(g, matching) {
        return false;
    }
    let mut used = vec![false; g.num_nodes()];
    for &(u, v) in matching {
        used[u as usize] = true;
        used[v as usize] = true;
    }
    g.edges().all(|e| used[e.u as usize] || used[e.v as usize])
}

/// Is `edges` a spanning forest of `g`: acyclic, contained in `g`, and
/// connecting exactly `g`'s components?
pub fn is_spanning_forest(g: &CsrGraph, edges: &[(NodeId, NodeId)]) -> bool {
    let n = g.num_nodes();
    let mut uf = ampc_trees::UnionFind::new(n);
    for &(u, v) in edges {
        if !g.has_edge(u, v) {
            return false; // not a graph edge
        }
        if !uf.union(u, v) {
            return false; // cycle
        }
    }
    let cc = connected_components(g);
    uf.num_components() == cc.num_components && {
        // Same partition: forest may not merge across components (it
        // can't, edges come from g), so count equality suffices.
        true
    }
}

/// Checks that `msf_edges` is a minimum spanning forest of `g`: a
/// spanning forest whose total weight equals Kruskal's. With the
/// workspace's strictly ordered edge keys the MSF is unique, so weight
/// equality plus forest-validity pins the exact edge set.
pub fn is_min_spanning_forest(g: &WeightedCsrGraph, msf_edges: &[WeightedEdge]) -> bool {
    let pairs: Vec<(NodeId, NodeId)> = msf_edges.iter().map(|e| (e.u, e.v)).collect();
    if !is_spanning_forest(g.structure(), &pairs) {
        return false;
    }
    let ours: u128 = msf_edges.iter().map(|e| e.w as u128).sum();
    let kruskal = crate::msf::in_memory::kruskal(g);
    let reference: u128 = kruskal.iter().map(|e| e.w as u128).sum();
    ours == reference
}

/// Checks a component labelling against BFS ground truth (same
/// partition, any representatives).
pub fn is_correct_components(g: &CsrGraph, label: &[NodeId]) -> bool {
    let cc = connected_components(g);
    ampc_graph::stats::same_partition(label, &cc.label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::gen;

    #[test]
    fn independent_set_checks() {
        let g = gen::path(4); // 0-1-2-3
        assert!(is_independent_set(&g, &[true, false, true, false]));
        assert!(!is_independent_set(&g, &[true, true, false, false]));
        assert!(is_maximal_independent_set(&g, &[true, false, true, false]));
        // {0, 3} is independent but not maximal (1-2 uncovered? 1 has
        // neighbor 0 in set, 2 has neighbor 3 in set — actually maximal!)
        assert!(is_maximal_independent_set(&g, &[true, false, false, true]));
        // {0} alone is not maximal: vertex 2 has no member neighbor.
        assert!(!is_maximal_independent_set(
            &g,
            &[true, false, false, false]
        ));
    }

    #[test]
    fn matching_checks() {
        let g = gen::path(4);
        assert!(is_matching(&g, &[(0, 1), (2, 3)]));
        assert!(is_maximal_matching(&g, &[(0, 1), (2, 3)]));
        assert!(is_maximal_matching(&g, &[(1, 2)]));
        assert!(!is_matching(&g, &[(0, 1), (1, 2)])); // shares vertex 1
        assert!(!is_matching(&g, &[(0, 2)])); // not an edge
        assert!(!is_maximal_matching(&g, &[(0, 1)])); // edge 2-3 uncovered
    }

    #[test]
    fn spanning_forest_checks() {
        let g = gen::single_cycle(4, 0);
        let edges: Vec<(NodeId, NodeId)> = g.edges().map(|e| (e.u, e.v)).collect();
        // all 4 cycle edges -> contains a cycle
        assert!(!is_spanning_forest(&g, &edges));
        // any 3 of them span
        assert!(is_spanning_forest(&g, &edges[..3]));
        // only 2 leaves the graph disconnected relative to its components
        assert!(!is_spanning_forest(&g, &edges[..2]));
    }

    #[test]
    fn msf_check_accepts_kruskal() {
        let g = gen::degree_weights(&gen::erdos_renyi(50, 120, 3));
        let k = crate::msf::in_memory::kruskal(&g);
        assert!(is_min_spanning_forest(&g, &k));
    }

    #[test]
    fn component_labelling_check() {
        let g = gen::two_cycles(5, 1);
        let cc = connected_components(&g);
        assert!(is_correct_components(&g, &cc.label));
        let mut bad = cc.label.clone();
        bad[0] = bad[0].wrapping_add(1) % 10;
        // May or may not break the partition depending on labels; force a
        // definite merge error instead:
        let merged = vec![0 as NodeId; g.num_nodes()];
        assert!(!is_correct_components(&g, &merged));
        let _ = bad;
    }
}
