//! Shared random priorities over vertices and edges.
//!
//! Both models' implementations draw the *same* randomness: *"By
//! specifying the same source of randomness, both the MPC and AMPC
//! algorithms compute the same MIS"* (§5.3) — and likewise for the
//! lex-first matching and, with distinct weights, the unique MSF. We
//! realize the shared source as hashes of `(seed, id)`: *"Uses hashing
//! to determine a priority for each node"* (Figure 1), so a priority
//! never has to be communicated.
//!
//! Ranks are pairs `(hash, id)` compared lexicographically, guaranteeing
//! a strict total order even on hash collisions. **Smaller rank = earlier
//! in the random permutation** (π in the paper).

use ampc_dht::hasher::mix64;
use ampc_graph::NodeId;

const NODE_SALT: u64 = 0x4e4f_4445; // "NODE"
const EDGE_SALT: u64 = 0x4544_4745; // "EDGE"

/// A strict-total-order rank; smaller = earlier in π.
pub type Rank = (u64, u64);

/// The rank of vertex `v` under the permutation seeded by `seed`.
#[inline]
pub fn node_rank(seed: u64, v: NodeId) -> Rank {
    (mix64(seed ^ NODE_SALT ^ ((v as u64) << 1)), v as u64)
}

/// The canonical `u64` key of the undirected edge `{u, v}`.
#[inline]
pub fn edge_key(u: NodeId, v: NodeId) -> u64 {
    let (a, b) = if u <= v { (u, v) } else { (v, u) };
    ((a as u64) << 32) | b as u64
}

/// The rank of edge `{u, v}` under the permutation seeded by `seed`.
#[inline]
pub fn edge_rank(seed: u64, u: NodeId, v: NodeId) -> Rank {
    let key = edge_key(u, v);
    (mix64(seed ^ EDGE_SALT ^ key), key)
}

/// The endpoints encoded in an [`edge_key`].
#[inline]
pub fn key_endpoints(key: u64) -> (NodeId, NodeId) {
    ((key >> 32) as NodeId, (key & 0xFFFF_FFFF) as NodeId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_ranks_are_distinct_and_deterministic() {
        let a = node_rank(1, 5);
        assert_eq!(a, node_rank(1, 5));
        assert_ne!(a, node_rank(1, 6));
        assert_ne!(a, node_rank(2, 5));
    }

    #[test]
    fn edge_rank_orientation_independent() {
        assert_eq!(edge_rank(7, 3, 9), edge_rank(7, 9, 3));
    }

    #[test]
    fn edge_key_roundtrip() {
        let k = edge_key(42, 17);
        assert_eq!(key_endpoints(k), (17, 42));
    }

    #[test]
    fn ranks_permute_fairly() {
        // The min-rank vertex among 0..1000 should vary with the seed.
        let min_for = |seed: u64| (0..1000u32).min_by_key(|&v| node_rank(seed, v)).unwrap();
        let mins: std::collections::HashSet<NodeId> = (0..20).map(min_for).collect();
        assert!(mins.len() > 15, "seeds should move the minimum: {mins:?}");
    }
}
