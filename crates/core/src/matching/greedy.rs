//! Sequential lex-first greedy maximal matching — the oracle.

use crate::priorities::edge_rank;
use ampc_graph::{CsrGraph, NodeId, NO_NODE};

/// Computes the lex-first maximal matching over the edge permutation
/// defined by `seed`. Returns the partner array (`NO_NODE` = unmatched).
pub fn greedy_matching(g: &CsrGraph, seed: u64) -> Vec<NodeId> {
    let mut edges: Vec<(NodeId, NodeId)> = g.edges().map(|e| (e.u, e.v)).collect();
    edges.sort_unstable_by_key(|&(u, v)| edge_rank(seed, u, v));
    let mut partner = vec![NO_NODE; g.num_nodes()];
    for (u, v) in edges {
        if partner[u as usize] == NO_NODE && partner[v as usize] == NO_NODE {
            partner[u as usize] = v;
            partner[v as usize] = u;
        }
    }
    partner
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::pairs_from_partners;
    use crate::validate;
    use ampc_graph::gen;

    #[test]
    fn produces_maximal_matchings() {
        for seed in 0..10 {
            let g = gen::erdos_renyi(80, 240, seed);
            let partner = greedy_matching(&g, seed + 50);
            let pairs = pairs_from_partners(&partner);
            assert!(validate::is_maximal_matching(&g, &pairs));
        }
    }

    #[test]
    fn partner_array_is_symmetric() {
        let g = gen::erdos_renyi(60, 150, 1);
        let partner = greedy_matching(&g, 9);
        for v in 0..60u32 {
            let p = partner[v as usize];
            if p != NO_NODE {
                assert_eq!(partner[p as usize], v);
            }
        }
    }

    #[test]
    fn path_matches_alternating() {
        let g = gen::path(2);
        let partner = greedy_matching(&g, 0);
        assert_eq!(partner, vec![1, 0]);
    }

    #[test]
    fn empty_graph_unmatched() {
        let g = CsrGraph::empty(3);
        assert_eq!(greedy_matching(&g, 0), vec![NO_NODE; 3]);
    }
}
