//! The O(log log n)-round AMPC maximal matching (Algorithm 4, §4.1;
//! Theorem 2 part 1).
//!
//! Each of the `⌈log₂ log₂ Δ⌉ + 1` iterations samples the lowest-ranked
//! `Δ^(-0.5^i)` fraction of the surviving edges (once the degree falls
//! to `10 log n` the whole residual graph is taken), finds the greedy
//! maximal matching of the sample with respect to the *global* edge
//! permutation π — realized as the random-greedy MIS on the sample's
//! line graph, per the classic reduction — commits it, and removes the
//! matched vertices. Proposition 4.3's degree-reduction property makes
//! the maximum degree fall doubly exponentially (Lemma 4.4), so the loop
//! terminates with a maximal matching (Lemma 4.5).
//!
//! Because every phase matches exactly the greedy-by-π edges among the
//! survivors, the union over phases equals the global lex-first matching
//! — asserted against [`crate::matching::greedy_matching`] in the tests.

use crate::priorities::edge_rank;
use ampc_graph::ops::induced_subgraph;
use ampc_graph::{CsrGraph, NodeId, NO_NODE};
use ampc_runtime::{AmpcConfig, Job};

use super::MatchingOutcome;

/// Runs Algorithm 4. Returns the same lex-first matching as the other
/// implementations, in O(log log Δ) phases.
pub fn ampc_matching_loglog(g: &CsrGraph, cfg: &AmpcConfig) -> MatchingOutcome {
    let n = g.num_nodes();
    let seed = cfg.seed;
    let mut job = Job::new(*cfg);

    let delta = g.max_degree().max(2) as f64;
    let threshold = (10.0 * (n.max(2) as f64).ln()).ceil() as usize;
    let k = (delta.log2().max(1.0).log2().ceil() as usize) + 1;

    // Global partner array over original ids.
    let mut partner = vec![NO_NODE; n];
    // The residual graph and its mapping to original ids.
    let mut current = g.clone();
    let mut to_original: Vec<NodeId> = (0..n as NodeId).collect();

    for i in 1..=k {
        if current.num_edges() == 0 {
            break;
        }
        // --- Sample H_i (edge e survives iff its rank-fraction is below p).
        let p = if current.max_degree() > threshold {
            // Δ^(-0.5^i), taken w.r.t. the *original* Δ as in Lemma 4.4.
            delta.powf(-(0.5f64.powi(i as i32)))
        } else {
            1.0
        };
        let cutoff = (p * u64::MAX as f64) as u64;
        let sample: Vec<(NodeId, NodeId)> = current
            .edges()
            .filter(|e| {
                let (ou, ov) = (to_original[e.u as usize], to_original[e.v as usize]);
                edge_rank(seed, ou, ov).0 <= cutoff
            })
            .map(|e| (e.u, e.v))
            .collect();
        // Sampling is a filter over the distributed edge set: 1 shuffle to
        // materialize H_i keyed by edge.
        let bytes: u64 = (sample.len() as u64) * 8;
        job.shuffle_balanced(&format!("SampleH{i}"), bytes);

        // --- M_i = GreedyMM(H_i, π): the random-greedy MIS of the line
        // graph of H_i (the reduction of §4). The sample is sparse, so
        // the line graph is affordable — this is the point of sampling.
        let matched_local = greedy_mm_via_line_graph_mis(current.num_nodes(), &sample, |u, v| {
            edge_rank(seed, to_original[u as usize], to_original[v as usize])
        });
        job.local(
            &format!("LineGraphMIS{i}"),
            (sample.len() as u64 + 1) * 4,
            || (),
        );

        // --- Commit M_i and build G_{i+1} = G_i[V \ V(M_i)].
        let mut keep = vec![true; current.num_nodes()];
        for (u, v) in matched_local.iter().copied() {
            let (ou, ov) = (to_original[u as usize], to_original[v as usize]);
            partner[ou as usize] = ov;
            partner[ov as usize] = ou;
            keep[u as usize] = false;
            keep[v as usize] = false;
        }
        let (next, remap) = induced_subgraph(&current, &keep);
        job.shuffle_balanced(&format!("Prune{i}"), (current.num_edges() as u64) * 8);
        let mut next_to_original = vec![0 as NodeId; next.num_nodes()];
        for (old, &new_id) in remap.iter().enumerate() {
            if new_id != NO_NODE {
                next_to_original[new_id as usize] = to_original[old];
            }
        }
        current = next;
        to_original = next_to_original;
    }

    debug_assert_eq!(current.num_edges(), 0, "Algorithm 4 must empty the graph");

    MatchingOutcome {
        partner,
        report: job.into_report(),
    }
}

/// Greedy maximal matching of the sampled edges by rank — the MIS of the
/// line graph under the induced vertex priorities. The line graph is
/// navigated implicitly in rank order (equivalent to running the MIS
/// query process of Proposition 4.2 on it).
fn greedy_mm_via_line_graph_mis(
    n: usize,
    edges: &[(NodeId, NodeId)],
    rank: impl Fn(NodeId, NodeId) -> crate::priorities::Rank,
) -> Vec<(NodeId, NodeId)> {
    let mut sorted: Vec<&(NodeId, NodeId)> = edges.iter().collect();
    sorted.sort_unstable_by_key(|&&(u, v)| rank(u, v));
    let mut used = vec![false; n];
    let mut matched = Vec::new();
    for &&(u, v) in &sorted {
        if !used[u as usize] && !used[v as usize] {
            used[u as usize] = true;
            used[v as usize] = true;
            matched.push((u, v));
        }
    }
    matched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::greedy::greedy_matching;
    use crate::validate;
    use ampc_graph::gen;

    fn cfg() -> AmpcConfig {
        AmpcConfig::for_tests()
    }

    #[test]
    fn equals_global_greedy_matching() {
        for seed in 0..6 {
            let g = gen::erdos_renyi(120, 500, seed);
            let c = cfg().with_seed(seed + 11);
            let out = ampc_matching_loglog(&g, &c);
            assert_eq!(out.partner, greedy_matching(&g, c.seed), "seed {seed}");
        }
    }

    #[test]
    fn maximal_on_skewed_graphs() {
        let g = gen::rmat(10, 10_000, gen::RmatParams::SOCIAL, 2);
        let c = cfg();
        let out = ampc_matching_loglog(&g, &c);
        assert!(validate::is_maximal_matching(
            &g,
            &crate::matching::pairs_from_partners(&out.partner)
        ));
        assert_eq!(out.partner, greedy_matching(&g, c.seed));
    }

    #[test]
    fn phase_count_is_loglog() {
        let g = gen::rmat(10, 10_000, gen::RmatParams::SOCIAL, 2);
        let out = ampc_matching_loglog(&g, &cfg());
        // ⌈log2 log2 Δ⌉ + 1 phases, 2 shuffles per phase; Δ < 2^16 so at
        // most 5 phases here.
        assert!(
            out.report.num_shuffles() <= 2 * 5,
            "too many shuffles: {}",
            out.report.num_shuffles()
        );
    }

    #[test]
    fn handles_empty_graph() {
        let g = CsrGraph::empty(5);
        let out = ampc_matching_loglog(&g, &cfg());
        assert!(out.partner.iter().all(|&p| p == NO_NODE));
    }
}
