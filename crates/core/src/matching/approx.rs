//! Approximation wrappers — Corollary 4.1.
//!
//! *"The same guarantee as in Theorem 2 also applies to 1 + ε
//! approximate maximum matching, 2 + ε approximate maximum weight
//! matching, and 2 approximate minimum vertex cover."* These are
//! classical black-box reductions to maximal matching:
//!
//! * a maximal matching is a **1/2-approximate maximum matching** and
//!   its endpoint set is a **2-approximate minimum vertex cover**;
//! * bucketing edge weights by powers of `(1 + ε)` and running greedy
//!   maximal matching heaviest-bucket-first yields a **2(1 + ε)-
//!   approximate maximum weight matching** (the standard reduction the
//!   corollary invokes).

use crate::priorities::edge_rank;
use ampc_graph::{CsrGraph, NodeId, WeightedCsrGraph, NO_NODE};
use ampc_runtime::AmpcConfig;

use super::ampc_constant::ampc_matching;

/// A 2-approximate minimum vertex cover: the matched endpoints of the
/// AMPC maximal matching.
pub fn approx_vertex_cover(g: &CsrGraph, cfg: &AmpcConfig) -> Vec<NodeId> {
    let out = ampc_matching(g, cfg);
    let mut cover = Vec::new();
    for (v, &p) in out.partner.iter().enumerate() {
        if p != NO_NODE {
            cover.push(v as NodeId);
        }
    }
    cover
}

/// A `2(1 + eps)`-approximate maximum weight matching via weight
/// bucketing: edges are assigned to buckets `⌊log_{1+eps} w⌋` and the
/// greedy maximal matching is taken bucket by bucket, heaviest first
/// (within a bucket, by the shared random edge permutation).
pub fn approx_max_weight_matching(
    g: &WeightedCsrGraph,
    eps: f64,
    cfg: &AmpcConfig,
) -> Vec<(NodeId, NodeId)> {
    assert!(eps > 0.0, "eps must be positive");
    let base = 1.0 + eps;
    let bucket_of = |w: u64| -> i64 {
        if w == 0 {
            i64::MIN
        } else {
            (w as f64).log(base).floor() as i64
        }
    };
    let mut edges: Vec<(i64, crate::priorities::Rank, NodeId, NodeId)> = g
        .edges()
        .map(|e| {
            (
                -bucket_of(e.w), // heaviest bucket first
                edge_rank(cfg.seed, e.u, e.v),
                e.u,
                e.v,
            )
        })
        .collect();
    edges.sort_unstable();
    let mut used = vec![false; g.num_nodes()];
    let mut matching = Vec::new();
    for (_, _, u, v) in edges {
        if !used[u as usize] && !used[v as usize] {
            used[u as usize] = true;
            used[v as usize] = true;
            matching.push(if u < v { (u, v) } else { (v, u) });
        }
    }
    matching.sort_unstable();
    matching
}

/// Total weight of a matching in `g`.
pub fn matching_weight(g: &WeightedCsrGraph, matching: &[(NodeId, NodeId)]) -> u128 {
    matching
        .iter()
        .map(|&(u, v)| {
            let idx = g
                .neighbors(u)
                .binary_search(&v)
                .expect("matching edge must exist");
            g.weights_of(u)[idx] as u128
        })
        .sum()
}

/// Exact maximum weight matching by branch and bound — usable only on
/// tiny graphs; the oracle for approximation-ratio tests.
pub fn exact_max_weight_matching(g: &WeightedCsrGraph) -> u128 {
    let edges: Vec<(NodeId, NodeId, u64)> = g.edges().map(|e| (e.u, e.v, e.w)).collect();
    assert!(
        edges.len() <= 24,
        "exact matching oracle is exponential; use tiny graphs"
    );
    fn rec(edges: &[(NodeId, NodeId, u64)], i: usize, used: &mut Vec<bool>) -> u128 {
        if i == edges.len() {
            return 0;
        }
        let skip = rec(edges, i + 1, used);
        let (u, v, w) = edges[i];
        if !used[u as usize] && !used[v as usize] {
            used[u as usize] = true;
            used[v as usize] = true;
            let take = w as u128 + rec(edges, i + 1, used);
            used[u as usize] = false;
            used[v as usize] = false;
            skip.max(take)
        } else {
            skip
        }
    }
    rec(&edges, 0, &mut vec![false; g.num_nodes()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate;
    use ampc_graph::gen;

    fn cfg() -> AmpcConfig {
        AmpcConfig::for_tests()
    }

    #[test]
    fn vertex_cover_covers_every_edge() {
        let g = gen::erdos_renyi(80, 200, 3);
        let cover = approx_vertex_cover(&g, &cfg());
        let in_cover: Vec<bool> = {
            let mut m = vec![false; g.num_nodes()];
            for &v in &cover {
                m[v as usize] = true;
            }
            m
        };
        for e in g.edges() {
            assert!(in_cover[e.u as usize] || in_cover[e.v as usize]);
        }
        // 2-approximation sanity: cover is at most 2x a maximal matching
        // lower bound (it is exactly 2 |M|).
        assert_eq!(cover.len() % 2, 0);
    }

    #[test]
    fn weighted_matching_is_valid_and_heavy() {
        let g = gen::degree_weights(&gen::erdos_renyi(60, 180, 5));
        let m = approx_max_weight_matching(&g, 0.1, &cfg());
        assert!(validate::is_matching(g.structure(), &m));
        // Must be maximal too (greedy over all buckets covers all edges).
        assert!(validate::is_maximal_matching(g.structure(), &m));
    }

    #[test]
    fn weighted_matching_within_factor_on_tiny_graphs() {
        for seed in 0..10 {
            let base = gen::erdos_renyi(10, 14, seed);
            let g = gen::random_weights(&base, 100, seed);
            let approx = approx_max_weight_matching(&g, 0.25, &cfg().with_seed(seed));
            let got = matching_weight(&g, &approx);
            let best = exact_max_weight_matching(&g);
            // guarantee: got >= best / (2 * 1.25)
            assert!(
                (got as f64) * 2.5 + 1e-9 >= best as f64,
                "seed {seed}: {got} vs optimum {best}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn rejects_nonpositive_eps() {
        let g = gen::degree_weights(&gen::path(3));
        approx_max_weight_matching(&g, 0.0, &cfg());
    }
}
