//! The O(1)-round AMPC maximal matching (Theorem 2 part 2, §4.2, §5.4).
//!
//! Mirrors the production pipeline of §5.4:
//!
//! 1. **PermuteGraph** (1 shuffle): each vertex's neighbor list sorted by
//!    the random *edge* priorities (*"the graph stored in the key-value
//!    store does not direct the edges, but instead sorts the edges based
//!    on random priorities assigned to each edge"*).
//! 2. **KV-Write**: store the edge-sorted adjacency in the DHT.
//! 3. **IsInMM** (KV round): from every vertex run the *vertex query
//!    process* of §4.2 — iterate the incident edges in increasing rank
//!    and run the Yoshida-style edge process for each; stop at the first
//!    matched edge. The per-vertex cache stores exactly the three states
//!    of §5.4: *"the matched neighbor, the highest priority neighbor
//!    that is finished, or … not searched yet."*
//!
//! The n^ε-truncated multi-round variant (Lemma 4.7: O(1/ε) rounds of
//! truncated vertex processes empty the graph) is available through
//! [`MatchingOptions::truncated`]; the untruncated single round is the
//! practical default, as in the paper.

use crate::priorities::{edge_key, edge_rank, Rank};
use ampc_dht::cache::DenseCache;
use ampc_dht::hasher::FxHashMap;
use ampc_dht::store::{Dht, GenerationWriter};
use ampc_graph::{CsrGraph, NodeId, NO_NODE};
use ampc_runtime::driver::AdaptiveRounds;
use ampc_runtime::executor::MachineCtx;
use ampc_runtime::{AmpcConfig, Job, JobReport};

/// Options for the AMPC matching run.
#[derive(Clone, Copy, Debug)]
pub struct MatchingOptions {
    /// Enable the per-machine caching optimization (§5.4).
    pub caching: bool,
    /// Use the n^ε-truncated multi-round vertex process (Lemma 4.7).
    pub truncated: bool,
}

impl Default for MatchingOptions {
    fn default() -> Self {
        MatchingOptions {
            caching: true,
            truncated: false,
        }
    }
}

/// Result of an AMPC matching run.
#[derive(Clone, Debug)]
pub struct MatchingOutcome {
    /// Partner per vertex (`NO_NODE` = unmatched).
    pub partner: Vec<NodeId>,
    /// Execution record.
    pub report: JobReport,
}

impl MatchingOutcome {
    /// The matching as sorted vertex pairs.
    pub fn pairs(&self) -> Vec<(NodeId, NodeId)> {
        super::pairs_from_partners(&self.partner)
    }
}

/// Per-vertex cache state (§5.4's three-valued cache).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum VState {
    /// Matched with the given neighbor.
    Matched(NodeId),
    /// Vertex process finished: no incident edge is in the matching.
    Unmatched,
    /// All incident edges with rank ≤ the edge to this neighbor are
    /// known to be out of the matching.
    FinishedUpTo(NodeId),
}

/// Runs AMPC maximal matching with the configuration's defaults.
///
/// ```
/// use ampc_core::{matching, validate};
/// use ampc_runtime::AmpcConfig;
///
/// let g = ampc_graph::gen::erdos_renyi(80, 200, 3);
/// let out = matching::ampc_matching(&g, &AmpcConfig::for_tests());
/// assert!(validate::is_maximal_matching(&g, &out.pairs()));
/// ```
pub fn ampc_matching(g: &CsrGraph, cfg: &AmpcConfig) -> MatchingOutcome {
    ampc_matching_with_options(
        g,
        cfg,
        MatchingOptions {
            caching: cfg.caching,
            ..Default::default()
        },
    )
}

/// Runs AMPC maximal matching with explicit options.
pub fn ampc_matching_with_options(
    g: &CsrGraph,
    cfg: &AmpcConfig,
    opts: MatchingOptions,
) -> MatchingOutcome {
    let mut job = Job::new(*cfg);
    let partner = ampc_matching_in_job(&mut job, g, opts);
    MatchingOutcome {
        partner,
        report: job.into_report(),
    }
}

/// The in-job kernel body: runs AMPC maximal matching inside a
/// caller-provided [`Job`] (the [`crate::algorithm::AmpcAlgorithm`]
/// entry point), returning the partner array.
// ampc-lint: budget(batched-requests = 2)
pub fn ampc_matching_in_job(job: &mut Job, g: &CsrGraph, opts: MatchingOptions) -> Vec<NodeId> {
    let cfg = *job.config();
    let n = g.num_nodes();
    let seed = cfg.seed;

    // ----------------------------------------------------- PermuteGraph
    let records: Vec<(NodeId, Vec<NodeId>)> = g
        .nodes()
        .map(|v| {
            let mut nbrs: Vec<NodeId> = g.neighbors(v).to_vec();
            nbrs.sort_unstable_by_key(|&u| edge_rank(seed, v, u));
            (v, nbrs)
        })
        .collect();
    let buckets = job.shuffle_by_key("PermuteGraph", records, |r| r.0 as u64);

    // --------------------------------------------------------- KV-Write
    let mut dht: Dht<Vec<NodeId>> = Dht::new();
    let writer = GenerationWriter::new();
    job.kv_round_chunked(
        "KV-Write",
        dht.current(),
        Some(&writer),
        &buckets,
        |ctx, items: &[(NodeId, Vec<NodeId>)]| {
            // Independent writes share one accounted round trip (§5.3).
            ctx.handle
                .put_many(items.iter().map(|(v, nbrs)| (*v as u64, nbrs.clone())));
            Vec::<()>::new()
        },
    );
    dht.push(writer.seal());

    // ----------------------------------------------------------- IsInMM
    // resolved: 0 = unknown, 1 = matched (partner in `partner`), 2 = unmatched.
    let mut resolved = vec![0u8; n];
    let mut partner = vec![NO_NODE; n];
    let mut pending: Vec<NodeId> = (0..n as NodeId).collect();
    let mut rounds = AdaptiveRounds::new(if opts.truncated {
        cfg.search_budget(n)
    } else {
        u64::MAX
    });
    while !pending.is_empty() {
        let budget = rounds.begin("IsInMM");
        let resolved_ro = &resolved;
        let partner_ro = &partner;
        let handle_budget = rounds.handle_budget(pending.len());
        let outputs: Vec<(NodeId, Option<NodeId>)> = job.kv_round_budgeted(
            &rounds.stage_name("IsInMM"),
            dht.current(),
            None,
            pending.clone(),
            handle_budget,
            |ctx, items| {
                let mut m = Machine {
                    seed,
                    vcache: if opts.caching {
                        DenseCache::unbounded(n)
                    } else {
                        DenseCache::disabled()
                    },
                    ecache: FxHashMap::default(),
                    caching: opts.caching,
                    resolved: resolved_ro,
                    partner: partner_ro,
                };
                // §5.3 batching: the chunk's root adjacency fetches are
                // independent, so they share one accounted round trip;
                // each vertex process's adaptive interior stays
                // single-key. Keys batch in the machine's scratch
                // arena, results borrowed from the sealed generation.
                ctx.scratch.keys.clear();
                ctx.scratch.keys.extend(items.iter().map(|&v| v as u64));
                let mut roots = Vec::with_capacity(items.len());
                ctx.handle.get_many_into(&ctx.scratch.keys, &mut roots);
                items
                    .iter()
                    .zip(roots)
                    .map(|(&v, root)| {
                        let root = root.map(|l| l.as_slice()).unwrap_or(&[]);
                        // ampc-lint: allow(transitive-unbatched-get) -- vertex processing opens edges adaptively; each probe depends on the previous verdict
                        (v, m.vertex_process(v, root, ctx, budget))
                    })
                    .collect()
            },
        );
        pending.clear();
        for (v, st) in outputs {
            match st {
                Some(u) if u == NO_NODE => resolved[v as usize] = 2,
                Some(u) => {
                    resolved[v as usize] = 1;
                    partner[v as usize] = u;
                }
                None => pending.push(v),
            }
        }
        // Cross-check symmetry of what we committed so far: a matched
        // partner must agree or still be pending resolution.
        if !pending.is_empty() {
            rounds.escalate(cfg.search_budget(n));
        }
    }

    // Symmetrize: both endpoints of a matched edge independently computed
    // the same lex-first matching, so their partners must agree.
    for v in 0..n as NodeId {
        let p = partner[v as usize];
        if p != NO_NODE {
            debug_assert_eq!(partner[p as usize], v, "asymmetric matching at {v}");
        }
    }

    partner
}

/// Machine-local state for the IsInMM round.
struct Machine<'r> {
    seed: u64,
    vcache: DenseCache<VState>,
    ecache: FxHashMap<u64, bool>,
    caching: bool,
    resolved: &'r [u8],
    partner: &'r [NodeId],
}

impl<'r> Machine<'r> {
    /// Globally-known vertex state (from previous rounds) or the cache.
    fn vstate(&self, x: NodeId) -> Option<VState> {
        match self.resolved[x as usize] {
            1 => return Some(VState::Matched(self.partner[x as usize])),
            2 => return Some(VState::Unmatched),
            _ => {}
        }
        self.vcache.get(x as u64).copied()
    }

    fn set_vstate(&mut self, x: NodeId, s: VState) {
        if self.caching {
            self.vcache.put(x as u64, s);
        }
    }

    /// Quick edge status from vertex states alone.
    fn edge_shortcut(&self, a: NodeId, b: NodeId, rank: Rank) -> Option<bool> {
        for (x, y) in [(a, b), (b, a)] {
            match self.vstate(x) {
                Some(VState::Matched(z)) => return Some(z == y),
                Some(VState::Unmatched) => return Some(false),
                Some(VState::FinishedUpTo(z)) if rank <= edge_rank(self.seed, x, z) => {
                    return Some(false);
                }
                _ => {}
            }
        }
        self.ecache.get(&edge_key(a, b)).copied()
    }

    /// The vertex query process (§4.2): scan `v`'s incident edges in
    /// increasing rank, deciding each with the edge process; stop at the
    /// first matched edge. `root` is `v`'s adjacency, prefetched by the
    /// machine's batched round-start lookup (charged as this process's
    /// first query). Returns the partner, `NO_NODE` for unmatched, or
    /// `None` if truncated by `budget`.
    fn vertex_process<'a>(
        &mut self,
        v: NodeId,
        root: &'a [NodeId],
        ctx: &mut MachineCtx<'a, Vec<NodeId>>,
        budget: u64,
    ) -> Option<NodeId> {
        match self.vstate(v) {
            Some(VState::Matched(u)) => {
                ctx.handle.note_cache_hit();
                return Some(u);
            }
            Some(VState::Unmatched) => {
                ctx.handle.note_cache_hit();
                return Some(NO_NODE);
            }
            _ => {}
        }
        let mut queries = 1u64; // the prefetched root list
                                // Lists fetched during this vertex process are kept in machine
                                // RAM and never re-requested (the natural implementation of
                                // §5.4's "iteratively query edges incident to each vertex").
        let mut lists: FxHashMap<NodeId, &'a [NodeId]> = FxHashMap::default();
        lists.insert(v, root);
        let nbrs = root;
        if nbrs.is_empty() {
            return Some(NO_NODE); // isolated vertex
        }
        for &u in nbrs {
            // ampc-lint: allow(transitive-unbatched-get) -- edge verdicts are opened one at a time; the next query depends on this one
            match self.edge_process(v, u, ctx, budget, &mut queries, &mut lists) {
                None => return None, // truncated
                Some(true) => {
                    self.set_vstate(v, VState::Matched(u));
                    self.set_vstate(u, VState::Matched(v));
                    return Some(u);
                }
                Some(false) => {
                    self.set_vstate(v, VState::FinishedUpTo(u));
                }
            }
        }
        self.set_vstate(v, VState::Unmatched);
        Some(NO_NODE)
    }

    /// Fetches `v`'s adjacency, reusing anything this vertex process
    /// already read (a local-RAM hit, not a new network query).
    fn fetch<'a>(
        &mut self,
        v: NodeId,
        ctx: &mut MachineCtx<'a, Vec<NodeId>>,
        queries: &mut u64,
        lists: &mut FxHashMap<NodeId, &'a [NodeId]>,
    ) -> &'a [NodeId] {
        if let Some(&l) = lists.get(&v) {
            ctx.handle.note_cache_hit();
            return l;
        }
        *queries += 1;
        let l = ctx
            .handle
            .get(v as u64)
            .map(|l| l.as_slice())
            .unwrap_or(&[]);
        lists.insert(v, l);
        l
    }

    /// The edge query process of Yoshida et al. (§4.2), iterative: edge
    /// `e` is matched iff every incident edge of lower rank is not.
    #[allow(clippy::too_many_arguments)]
    fn edge_process<'a>(
        &mut self,
        a: NodeId,
        b: NodeId,
        ctx: &mut MachineCtx<'a, Vec<NodeId>>,
        budget: u64,
        queries: &mut u64,
        lists: &mut FxHashMap<NodeId, &'a [NodeId]>,
    ) -> Option<bool> {
        if let Some(s) = self.edge_shortcut(a, b, edge_rank(self.seed, a, b)) {
            ctx.handle.note_cache_hit();
            return Some(s);
        }
        // Frame: edge (a, b) with rank, endpoint adjacency slices + cursors.
        struct Frame<'a> {
            a: NodeId,
            b: NodeId,
            rank: Rank,
            la: &'a [NodeId],
            lb: &'a [NodeId],
            ia: usize,
            ib: usize,
        }
        // Local per-evaluation memo when the shared cache is off (the DFS
        // still needs its own bookkeeping to terminate efficiently).
        let mut local: FxHashMap<u64, bool> = FxHashMap::default();
        let mut stack: Vec<Frame<'a>> = Vec::new();
        let open = |m: &mut Self,
                    x: NodeId,
                    y: NodeId,
                    ctx: &mut MachineCtx<'a, Vec<NodeId>>,
                    queries: &mut u64,
                    lists: &mut FxHashMap<NodeId, &'a [NodeId]>|
         -> Option<Frame<'a>> {
            if *queries + 2 > budget {
                return None;
            }
            let la = m.fetch(x, ctx, queries, lists);
            let lb = m.fetch(y, ctx, queries, lists);
            Some(Frame {
                a: x,
                b: y,
                rank: edge_rank(m.seed, x, y),
                la,
                lb,
                ia: 0,
                ib: 0,
            })
        };
        let root = open(self, a, b, ctx, queries, lists)?;
        stack.push(root);

        let mut truncated = false;
        'outer: while let Some(f) = stack.last_mut() {
            ctx.add_ops(1);
            // Merge-scan the two sorted incident lists for the next
            // lower-rank incident edge whose status is unknown.
            loop {
                // Candidate from side a / side b.
                let ra =
                    f.la.get(f.ia)
                        .map(|&u| (edge_rank(self.seed, f.a, u), f.a, u));
                let rb =
                    f.lb.get(f.ib)
                        .map(|&u| (edge_rank(self.seed, f.b, u), f.b, u));
                let (rank, x, y, from_a) = match (ra, rb) {
                    (Some(p), Some(q)) => {
                        if p.0 <= q.0 {
                            (p.0, p.1, p.2, true)
                        } else {
                            (q.0, q.1, q.2, false)
                        }
                    }
                    (Some(p), None) => (p.0, p.1, p.2, true),
                    (None, Some(q)) => (q.0, q.1, q.2, false),
                    (None, None) => {
                        // No incident edge below our rank is matched.
                        let (fa, fb, key) = (f.a, f.b, edge_key(f.a, f.b));
                        if self.caching {
                            self.ecache.insert(key, true);
                        } else {
                            local.insert(key, true);
                        }
                        self.set_vstate(fa, VState::Matched(fb));
                        self.set_vstate(fb, VState::Matched(fa));
                        stack.pop();
                        continue 'outer;
                    }
                };
                if rank >= f.rank {
                    // Sorted lists: nothing below our rank remains.
                    f.ia = f.la.len();
                    f.ib = f.lb.len();
                    continue;
                }
                // Known status?
                let known = self
                    .edge_shortcut(x, y, rank)
                    .or_else(|| local.get(&edge_key(x, y)).copied());
                match known {
                    Some(true) => {
                        // A lower-rank incident edge is matched: (a,b) out.
                        let key = edge_key(f.a, f.b);
                        if self.caching {
                            self.ecache.insert(key, false);
                        } else {
                            local.insert(key, false);
                        }
                        stack.pop();
                        continue 'outer;
                    }
                    Some(false) => {
                        if from_a {
                            f.ia += 1;
                        } else {
                            f.ib += 1;
                        }
                        continue;
                    }
                    None => {
                        // Recurse into (x, y).
                        // ampc-lint: allow(transitive-unbatched-get) -- recursive edge opening: the child pair is known only after the parent resolves
                        match open(self, x, y, ctx, queries, lists) {
                            Some(child) => {
                                stack.push(child);
                                continue 'outer;
                            }
                            None => {
                                truncated = true;
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
        if truncated {
            return None;
        }
        // The root edge's status is now recorded.
        self.edge_shortcut(a, b, edge_rank(self.seed, a, b))
            .or_else(|| local.get(&edge_key(a, b)).copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::greedy::greedy_matching;
    use crate::validate;
    use ampc_graph::gen;

    fn cfg() -> AmpcConfig {
        AmpcConfig::for_tests()
    }

    #[test]
    fn matches_greedy_on_small_graphs() {
        for seed in 0..8 {
            let g = gen::erdos_renyi(100, 280, seed);
            let c = cfg().with_seed(seed * 31 + 2);
            let out = ampc_matching(&g, &c);
            assert_eq!(out.partner, greedy_matching(&g, c.seed), "seed {seed}");
            assert!(validate::is_maximal_matching(&g, &out.pairs()));
        }
    }

    #[test]
    fn matches_greedy_on_skewed_graph() {
        let g = gen::rmat(9, 5_000, gen::RmatParams::SOCIAL, 7);
        let c = cfg();
        let out = ampc_matching(&g, &c);
        assert_eq!(out.partner, greedy_matching(&g, c.seed));
    }

    #[test]
    fn single_shuffle_like_table3() {
        let g = gen::erdos_renyi(80, 200, 1);
        let out = ampc_matching(&g, &cfg());
        assert_eq!(out.report.num_shuffles(), 1);
    }

    #[test]
    fn truncated_variant_converges() {
        let g = gen::erdos_renyi(150, 500, 3);
        let c = cfg();
        let out = ampc_matching_with_options(
            &g,
            &c,
            MatchingOptions {
                caching: true,
                truncated: true,
            },
        );
        assert_eq!(out.partner, greedy_matching(&g, c.seed));
    }

    #[test]
    fn no_cache_still_correct() {
        let g = gen::erdos_renyi(80, 240, 5);
        let c = cfg();
        let cached = ampc_matching_with_options(
            &g,
            &c,
            MatchingOptions {
                caching: true,
                truncated: false,
            },
        );
        let uncached = ampc_matching_with_options(
            &g,
            &c,
            MatchingOptions {
                caching: false,
                truncated: false,
            },
        );
        assert_eq!(cached.partner, uncached.partner);
        assert!(
            uncached.report.kv_comm().queries > cached.report.kv_comm().queries,
            "cache should reduce queries"
        );
    }

    #[test]
    fn deterministic_across_machine_counts() {
        let g = gen::erdos_renyi(120, 420, 8);
        let a = ampc_matching(&g, &cfg().with_machines(2));
        let b = ampc_matching(&g, &cfg().with_machines(9));
        assert_eq!(a.partner, b.partner);
    }

    #[test]
    fn empty_and_single_edge() {
        let g = CsrGraph::empty(4);
        let out = ampc_matching(&g, &cfg());
        assert!(out.partner.iter().all(|&p| p == NO_NODE));

        let g = ampc_graph::GraphBuilder::new(2).add_edge(0, 1).build();
        let out = ampc_matching(&g, &cfg());
        assert_eq!(out.partner, vec![1, 0]);
    }
}
