//! Maximal matching (§4 of the paper).
//!
//! All algorithms compute the **lexicographically-first maximal
//! matching** over a random edge permutation π: an edge is matched iff
//! no incident edge earlier in π is matched. Outputs are therefore
//! identical across the sequential oracle ([`greedy::greedy_matching`]),
//! the O(1)-round AMPC algorithm
//! ([`ampc_constant::ampc_matching`], Theorem 2 part 2), the
//! O(log log n)-round subsampled algorithm
//! ([`ampc_loglog::ampc_matching_loglog`], Algorithm 4 — which computes
//! the same matching because union-of-phase-matchings equals the global
//! greedy matching over π), and the MPC rootset baseline in `ampc-mpc`.
//!
//! [`approx`] derives the approximation guarantees of Corollary 4.1.

pub mod ampc_constant;
pub mod ampc_loglog;
pub mod approx;
pub mod greedy;

pub use ampc_constant::{
    ampc_matching, ampc_matching_in_job, ampc_matching_with_options, MatchingOptions,
    MatchingOutcome,
};
pub use ampc_loglog::ampc_matching_loglog;
pub use greedy::greedy_matching;

use ampc_graph::{NodeId, NO_NODE};

/// Converts a partner array into a sorted list of matched pairs.
pub fn pairs_from_partners(partner: &[NodeId]) -> Vec<(NodeId, NodeId)> {
    let mut pairs: Vec<(NodeId, NodeId)> = partner
        .iter()
        .enumerate()
        .filter_map(|(v, &u)| {
            let v = v as NodeId;
            (u != NO_NODE && v < u).then_some((v, u))
        })
        .collect();
    pairs.sort_unstable();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_from_partner_array() {
        let partner = vec![1, 0, NO_NODE, 4, 3];
        assert_eq!(pairs_from_partners(&partner), vec![(0, 1), (3, 4)]);
    }
}
