//! Maximal independent set.
//!
//! The workspace computes the **lexicographically-first MIS** over a
//! random vertex permutation π: `v ∈ MIS` iff no neighbor earlier in π
//! is in the MIS. This canonical output is what makes the paper's
//! cross-model validation possible — the AMPC query-process algorithm
//! ([`ampc::ampc_mis`]), the MPC rootset baseline (in `ampc-mpc`) and
//! the sequential oracle ([`greedy::greedy_mis`]) all return *identical*
//! sets when seeded identically.

pub mod ampc;
pub mod greedy;

pub use ampc::{ampc_mis, ampc_mis_in_job, ampc_mis_with_options, MisOptions, MisOutcome};
pub use greedy::greedy_mis;
