//! Sequential lexicographically-first MIS — the oracle.

use crate::priorities::node_rank;
use ampc_graph::{CsrGraph, NodeId};

/// Computes the lex-first MIS over the permutation defined by `seed`:
/// process vertices in rank order, adding each whose neighbors are all
/// still outside the set.
pub fn greedy_mis(g: &CsrGraph, seed: u64) -> Vec<bool> {
    let n = g.num_nodes();
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.sort_unstable_by_key(|&v| node_rank(seed, v));
    let mut in_mis = vec![false; n];
    for &v in &order {
        let blocked = g.neighbors(v).iter().any(|&u| in_mis[u as usize]);
        if !blocked {
            in_mis[v as usize] = true;
        }
    }
    in_mis
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate;
    use ampc_graph::gen;

    #[test]
    fn produces_maximal_independent_sets() {
        for seed in 0..10 {
            let g = gen::erdos_renyi(100, 300, seed);
            let mis = greedy_mis(&g, seed * 7 + 1);
            assert!(validate::is_maximal_independent_set(&g, &mis));
        }
    }

    #[test]
    fn empty_graph_takes_everything() {
        let g = CsrGraph::empty(5);
        assert_eq!(greedy_mis(&g, 1), vec![true; 5]);
    }

    #[test]
    fn complete_graph_takes_exactly_one() {
        let g = gen::complete(8);
        let mis = greedy_mis(&g, 3);
        assert_eq!(mis.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gen::erdos_renyi(60, 150, 2);
        assert_eq!(greedy_mis(&g, 5), greedy_mis(&g, 5));
    }

    #[test]
    fn different_seeds_usually_differ() {
        let g = gen::erdos_renyi(200, 800, 2);
        let a = greedy_mis(&g, 1);
        let b = greedy_mis(&g, 2);
        assert_ne!(a, b);
    }
}
