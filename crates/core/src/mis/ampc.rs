//! The AMPC MIS algorithm (Figure 1 of the paper; Proposition 4.2).
//!
//! Three steps, mirroring the Flume-C++ pseudocode of §5.3:
//!
//! 1. **DirectGraph** (1 shuffle): sort each vertex's neighborhood by
//!    priority, keeping only the neighbors *earlier in the permutation*
//!    (those that can block `v`).
//! 2. **KV-Write**: store the directed graph in the DHT.
//! 3. **IsInMIS** (KV round): from every vertex, run the recursive query
//!    process of Yoshida et al.: `v ∈ MIS` iff none of its directed
//!    (earlier) neighbors is in the MIS. The recursion is evaluated
//!    iteratively with an explicit stack; with the caching optimization
//!    the per-machine result table short-circuits repeat queries, and
//!    multithreading (modeled in the cost config) hides lookup latency.
//!
//! The truncated multi-round variant of \[19\] (each round re-runs
//! unresolved vertices with an `n^ε`-times larger budget) is available
//! through [`MisOptions::truncated`]; as the paper observes, the
//! practical configuration resolves everything in a single round.

use crate::priorities::node_rank;
use ampc_dht::cache::DenseCache;
use ampc_dht::hasher::FxHashMap;
use ampc_dht::store::{Dht, GenerationWriter};
use ampc_graph::{CsrGraph, NodeId};
use ampc_runtime::driver::AdaptiveRounds;
use ampc_runtime::executor::MachineCtx;
use ampc_runtime::{AmpcConfig, Job, JobReport};

/// Options for the AMPC MIS run (Figure 4's ablation axes).
#[derive(Clone, Copy, Debug)]
pub struct MisOptions {
    /// Enable the per-machine caching optimization (§5.3).
    pub caching: bool,
    /// Use the theoretically-truncated multi-round query process of
    /// \[19\] instead of a single unbounded round.
    pub truncated: bool,
}

impl Default for MisOptions {
    fn default() -> Self {
        MisOptions {
            caching: true,
            truncated: false,
        }
    }
}

/// Result of an AMPC MIS run.
#[derive(Clone, Debug)]
pub struct MisOutcome {
    /// Membership per vertex.
    pub in_mis: Vec<bool>,
    /// Execution record for the harness.
    pub report: JobReport,
}

/// Runs AMPC MIS with the configuration's defaults (caching per
/// `cfg.caching`, single-round query process).
///
/// ```
/// use ampc_core::{mis, validate};
/// use ampc_runtime::AmpcConfig;
///
/// let g = ampc_graph::gen::erdos_renyi(100, 300, 7);
/// let out = mis::ampc_mis(&g, &AmpcConfig::for_tests());
/// assert!(validate::is_maximal_independent_set(&g, &out.in_mis));
/// assert_eq!(out.report.num_shuffles(), 1); // Table 3
/// ```
pub fn ampc_mis(g: &CsrGraph, cfg: &AmpcConfig) -> MisOutcome {
    ampc_mis_with_options(
        g,
        cfg,
        MisOptions {
            caching: cfg.caching,
            ..Default::default()
        },
    )
}

/// Tri-state per-vertex status in the machine cache.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Status {
    InMis,
    NotInMis,
}

/// Runs AMPC MIS with explicit options.
pub fn ampc_mis_with_options(g: &CsrGraph, cfg: &AmpcConfig, opts: MisOptions) -> MisOutcome {
    let mut job = Job::new(*cfg);
    let in_mis = ampc_mis_in_job(&mut job, g, opts);
    MisOutcome {
        in_mis,
        report: job.into_report(),
    }
}

/// The in-job kernel body: runs AMPC MIS inside a caller-provided
/// [`Job`] (the [`crate::algorithm::AmpcAlgorithm`] entry point —
/// config resolution and report finalization belong to the driver).
// ampc-lint: budget(batched-requests = 3)
pub fn ampc_mis_in_job(job: &mut Job, g: &CsrGraph, opts: MisOptions) -> Vec<bool> {
    let cfg = *job.config();
    let n = g.num_nodes();
    let seed = cfg.seed;

    // ------------------------------------------------------ DirectGraph
    // One record per vertex: its earlier-in-π neighbors, sorted by rank.
    let records: Vec<(NodeId, Vec<NodeId>)> = g
        .nodes()
        .map(|v| {
            let rv = node_rank(seed, v);
            let mut dir: Vec<NodeId> = g
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| node_rank(seed, u) < rv)
                .collect();
            dir.sort_unstable_by_key(|&u| node_rank(seed, u));
            (v, dir)
        })
        .collect();
    let buckets = job.shuffle_by_key("DirectGraph", records, |r| r.0 as u64);

    // -------------------------------------------------------- KV-Write
    let mut dht: Dht<Vec<NodeId>> = Dht::new();
    let writer = GenerationWriter::new();
    job.kv_round_chunked(
        "KV-Write",
        dht.current(),
        Some(&writer),
        &buckets,
        |ctx, items: &[(NodeId, Vec<NodeId>)]| {
            // One accounted batch per machine (§5.3): the writes are
            // independent, so they share a single round trip.
            ctx.handle
                .put_many(items.iter().map(|(v, dir)| (*v as u64, dir.clone())));
            Vec::<()>::new()
        },
    );
    dht.push(writer.seal());

    // --------------------------------------------------------- IsInMIS
    // Round loop: in the default configuration one round with an
    // unbounded budget resolves every vertex (what the paper observed in
    // practice); the truncated variant multiplies the budget by n^ε per
    // round, consulting statuses resolved in earlier rounds.
    let mut resolved: Vec<u8> = vec![0; n]; // 0 unknown, 1 in, 2 out
    let mut pending: Vec<NodeId> = (0..n as NodeId).collect();
    let mut rounds = AdaptiveRounds::new(if opts.truncated {
        cfg.search_budget(n)
    } else {
        u64::MAX
    });
    while !pending.is_empty() {
        let budget = rounds.begin("IsInMIS");
        let resolved_ro = &resolved;
        let handle_budget = rounds.handle_budget(pending.len());
        let outputs: Vec<(NodeId, Option<bool>)> = job.kv_round_budgeted(
            &rounds.stage_name("IsInMIS"),
            dht.current(),
            None,
            pending.clone(),
            handle_budget,
            |ctx, items| {
                let mut cache: DenseCache<Status> = if opts.caching {
                    DenseCache::unbounded(n)
                } else {
                    DenseCache::disabled()
                };
                // §5.3 batching: every pending item's directed adjacency
                // is one independent lookup, so the whole chunk's root
                // fetches share a single accounted round trip. The
                // adaptive interior of each search stays single-key —
                // dependent queries are separate round trips by design.
                // Keys batch in the machine's scratch arena, results
                // borrowed from the sealed generation.
                ctx.scratch.keys.clear();
                ctx.scratch.keys.extend(items.iter().map(|&v| v as u64));
                let mut roots = Vec::with_capacity(items.len());
                ctx.handle.get_many_into(&ctx.scratch.keys, &mut roots);
                items
                    .iter()
                    .zip(roots)
                    .map(|(&v, root)| {
                        let root = root.map(|l| l.as_slice()).unwrap_or(&[]);
                        (
                            v,
                            // ampc-lint: allow(transitive-unbatched-get) -- LubyMIS evaluation walks earlier-in-π neighbors adaptively (budget-capped)
                            evaluate(v, root, ctx, &mut cache, resolved_ro, budget, opts.caching),
                        )
                    })
                    .collect()
            },
        );
        // Commit resolutions; unresolved vertices go to the next round
        // with a larger budget (statuses become next-round hints, the
        // status write being metered as a KV round).
        pending.clear();
        let mut newly = 0u64;
        for (v, st) in outputs {
            match st {
                Some(true) => resolved[v as usize] = 1,
                Some(false) => resolved[v as usize] = 2,
                None => pending.push(v),
            }
            if st.is_some() {
                newly += 1;
            }
        }
        if !pending.is_empty() {
            // Meter the write of newly-resolved statuses that the next
            // round's machines will consult.
            let status_writer: GenerationWriter<Vec<NodeId>> = GenerationWriter::new();
            job.kv_round(
                "StatusWrite",
                dht.current(),
                Some(&status_writer),
                vec![(); newly as usize],
                |ctx, items: &[()]| {
                    ctx.add_ops(items.len() as u64);
                    // Independent status writes: one batch per machine.
                    // (All machines write the same marker value, which
                    // the writer's determinism contract permits.)
                    ctx.handle.put_many(items.iter().map(|_| (0, Vec::new())));
                    Vec::<()>::new()
                },
            );
            rounds.escalate(cfg.search_budget(n));
        }
    }

    resolved.iter().map(|&s| s == 1).collect()
}

/// Iterative evaluation of the Yoshida et al. recursion from `v`.
///
/// `root` is `v`'s directed adjacency, prefetched by the machine's
/// batched round-start lookup (it counts as this search's first query
/// against `budget`, exactly as the inline fetch used to).
///
/// Returns `None` if the evaluation was truncated by `budget`.
#[allow(clippy::too_many_arguments)]
fn evaluate<'a>(
    v: NodeId,
    root: &'a [NodeId],
    ctx: &mut MachineCtx<'a, Vec<NodeId>>,
    cache: &mut DenseCache<Status>,
    resolved: &[u8],
    budget: u64,
    caching: bool,
) -> Option<bool> {
    // Status lookup that never touches the network: per-machine cache
    // plus globally-resolved statuses from earlier rounds.
    #[inline]
    fn known(
        x: NodeId,
        cache: &DenseCache<Status>,
        local: &FxHashMap<NodeId, Status>,
        resolved: &[u8],
    ) -> Option<Status> {
        match resolved[x as usize] {
            1 => return Some(Status::InMis),
            2 => return Some(Status::NotInMis),
            _ => {}
        }
        if let Some(&s) = cache.get(x as u64) {
            return Some(s);
        }
        local.get(&x).copied()
    }

    // Local memo (within this evaluation) used when the shared cache is
    // disabled: required for the DFS itself (a node's status must not be
    // recomputed mid-traversal) but discarded between evaluations, which
    // is exactly the "unoptimized" configuration of Figure 4.
    let mut local: FxHashMap<NodeId, Status> = FxHashMap::default();
    let record = |x: NodeId,
                  s: Status,
                  cache: &mut DenseCache<Status>,
                  local: &mut FxHashMap<NodeId, Status>| {
        if caching {
            cache.put(x as u64, s);
        } else {
            local.insert(x, s);
        }
    };

    if let Some(s) = known(v, cache, &local, resolved) {
        ctx.handle.note_cache_hit();
        return Some(s == Status::InMis);
    }

    // The prefetched root list is this search's first charged query.
    let mut queries_here = 1u64;
    // Frame: (vertex, its directed neighbor list, cursor).
    let mut stack: Vec<(NodeId, &'a [NodeId], usize)> = Vec::new();
    stack.push((v, root, 0));

    while let Some(&mut (x, nbrs, ref mut idx)) = stack.last_mut() {
        ctx.add_ops(1);
        let mut decided: Option<Status> = None;
        let mut push_child: Option<NodeId> = None;
        while *idx < nbrs.len() {
            let u = nbrs[*idx];
            match known(u, cache, &local, resolved) {
                Some(Status::InMis) => {
                    decided = Some(Status::NotInMis);
                    break;
                }
                Some(Status::NotInMis) => {
                    *idx += 1;
                }
                None => {
                    push_child = Some(u);
                    break;
                }
            }
        }
        if let Some(s) = decided {
            record(x, s, cache, &mut local);
            stack.pop();
            continue;
        }
        if let Some(u) = push_child {
            if queries_here >= budget {
                return None; // truncated; retried next round
            }
            let list = ctx
                .handle
                // ampc-lint: allow(no-unbatched-get) -- adaptive truncated search
                // (Algorithm 1): which adjacency list is fetched next depends on the
                // contents of the previous one; capped by `queries_here >= budget`.
                .get(u as u64)
                .map(|l| l.as_slice())
                .unwrap_or(&[]);
            queries_here += 1;
            stack.push((u, list, 0));
            continue;
        }
        // All directed neighbors are out: x joins the MIS.
        record(x, Status::InMis, cache, &mut local);
        stack.pop();
    }

    known(v, cache, &local, resolved).map(|s| s == Status::InMis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mis::greedy::greedy_mis;
    use crate::validate;
    use ampc_graph::gen;

    fn cfg() -> AmpcConfig {
        AmpcConfig::for_tests()
    }

    #[test]
    fn matches_greedy_on_small_graphs() {
        for seed in 0..8 {
            let g = gen::erdos_renyi(120, 360, seed);
            let c = cfg().with_seed(seed * 13 + 5);
            let out = ampc_mis(&g, &c);
            assert_eq!(out.in_mis, greedy_mis(&g, c.seed), "seed {seed}");
            assert!(validate::is_maximal_independent_set(&g, &out.in_mis));
        }
    }

    #[test]
    fn matches_greedy_on_skewed_graph() {
        let g = gen::rmat(10, 8_000, gen::RmatParams::SOCIAL, 3);
        let c = cfg();
        let out = ampc_mis(&g, &c);
        assert_eq!(out.in_mis, greedy_mis(&g, c.seed));
    }

    #[test]
    fn uses_one_shuffle_and_two_kv_rounds() {
        // Table 3: the AMPC MIS uses a single shuffle.
        let g = gen::erdos_renyi(100, 250, 1);
        let out = ampc_mis(&g, &cfg());
        assert_eq!(out.report.num_shuffles(), 1);
        assert_eq!(out.report.num_kv_rounds(), 2); // KV-Write + IsInMIS
    }

    #[test]
    fn no_cache_still_correct_but_more_queries() {
        let g = gen::erdos_renyi(150, 600, 2);
        let c = cfg();
        let cached = ampc_mis_with_options(
            &g,
            &c,
            MisOptions {
                caching: true,
                truncated: false,
            },
        );
        let uncached = ampc_mis_with_options(
            &g,
            &c,
            MisOptions {
                caching: false,
                truncated: false,
            },
        );
        assert_eq!(cached.in_mis, uncached.in_mis);
        let qc = cached.report.kv_comm().queries;
        let qu = uncached.report.kv_comm().queries;
        assert!(qu > qc, "uncached should query more: {qu} vs {qc}");
    }

    #[test]
    fn truncated_variant_converges_and_matches() {
        let g = gen::erdos_renyi(200, 800, 4);
        let c = cfg();
        let out = ampc_mis_with_options(
            &g,
            &c,
            MisOptions {
                caching: true,
                truncated: true,
            },
        );
        assert_eq!(out.in_mis, greedy_mis(&g, c.seed));
    }

    #[test]
    fn isolated_vertices_always_in() {
        let g = CsrGraph::empty(7);
        let out = ampc_mis(&g, &cfg());
        assert!(out.in_mis.iter().all(|&b| b));
    }

    #[test]
    fn deterministic_across_machine_counts() {
        let g = gen::erdos_renyi(150, 500, 9);
        let a = ampc_mis(&g, &cfg().with_machines(2));
        let b = ampc_mis(&g, &cfg().with_machines(7));
        assert_eq!(a.in_mis, b.in_mis);
    }

    #[test]
    fn star_takes_leaves_or_center() {
        let g = gen::star(20);
        let out = ampc_mis(&g, &cfg());
        let count = out.in_mis.iter().filter(|&&b| b).count();
        if out.in_mis[0] {
            assert_eq!(count, 1);
        } else {
            assert_eq!(count, 19);
        }
    }
}
