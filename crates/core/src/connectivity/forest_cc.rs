//! Forest connectivity — Proposition 3.2.
//!
//! *"There exists an AMPC algorithm, ForestConnectivity, that solves the
//! forest connectivity problem in O(1/ε) rounds of computation w.h.p.
//! using T = O(n log n) total space"* — \[19\]'s routine iteratively
//! shrinks the forest by an `n^ε` factor per round via local searches
//! and contraction. We instantiate it with the same truncated-search +
//! contract round the MSF pipeline uses (on a forest, a truncated Prim
//! search *is* a truncated local exploration), composing the per-round
//! root maps into a final labelling.

use crate::msf::common::{prim_contract_round, ProvEdge};
use ampc_graph::{NodeId, NO_NODE};
use ampc_runtime::{AmpcConfig, Job, JobReport};
use ampc_trees::UnionFind;

/// Result of a connectivity computation.
#[derive(Clone, Debug)]
pub struct CcOutcome {
    /// `label[v]` = the smallest original vertex in `v`'s component (the
    /// same canonical labelling the BFS oracle produces).
    pub label: Vec<NodeId>,
    /// Execution record.
    pub report: JobReport,
}

/// Labels the components of a forest (given by its edge list over
/// `0..n`) in O(1/ε) contraction rounds.
pub fn forest_cc(n: usize, forest_edges: &[(NodeId, NodeId)], cfg: &AmpcConfig) -> CcOutcome {
    let mut job = Job::new(*cfg);
    let label = forest_cc_in_job(&mut job, n, forest_edges, cfg);
    CcOutcome {
        label,
        report: job.into_report(),
    }
}

/// [`forest_cc`] running inside an existing job (used by the
/// connectivity pipeline to produce one flat report).
// ampc-lint: budget(batched-requests = 3)
pub(crate) fn forest_cc_in_job(
    job: &mut Job,
    n: usize,
    forest_edges: &[(NodeId, NodeId)],
    cfg: &AmpcConfig,
) -> Vec<NodeId> {
    assert!(
        forest_edges.len() < n.max(1),
        "a forest has fewer than n edges"
    );
    // Strict distinct weights for the search round: edge index.
    let mut edges: Vec<ProvEdge> = forest_edges
        .iter()
        .enumerate()
        .map(|(i, &(u, v))| ProvEdge {
            u,
            v,
            w: i as u64,
            ou: u,
            ov: v,
        })
        .collect();

    // orig → current-level id; current-level id → original representative.
    let mut cur_of: Vec<NodeId> = (0..n as NodeId).collect();
    let mut rep_of: Vec<NodeId> = (0..n as NodeId).collect();
    let mut final_label: Vec<NodeId> = (0..n as NodeId).collect(); // default: own component
    let mut cur_n = n;
    let mut round = 0usize;

    while edges.len() > cfg.in_memory_threshold {
        round += 1;
        assert!(round <= 48, "ForestConnectivity failed to converge");
        let budget = cfg.prim_budget(cur_n.max(2));
        // ampc-lint: allow(transitive-unbatched-get) -- each contraction round's Prim searches are adaptive walks (DESIGN.md §5.3)
        let r = prim_contract_round(
            job,
            cur_n,
            &edges,
            &format!("-fc{round}"),
            budget,
            0xFC00 ^ round as u64,
        );
        // Compose labels.
        let mut next_rep = vec![NO_NODE; r.next_n];
        for v in 0..n {
            let c = cur_of[v];
            if c == NO_NODE {
                continue; // already finalized
            }
            let root = r.root_of[c as usize];
            let nid = r.next_id[root as usize];
            // The class representative keeps the smallest original rep.
            let rep = rep_of[root as usize].min(rep_of[c as usize]);
            if nid == NO_NODE {
                final_label[v] = rep_of[root as usize];
                cur_of[v] = NO_NODE;
            } else {
                cur_of[v] = nid;
                if next_rep[nid as usize] == NO_NODE {
                    next_rep[nid as usize] = rep;
                } else {
                    next_rep[nid as usize] = next_rep[nid as usize].min(rep);
                }
            }
        }
        // Representative of a class = min original rep over members.
        rep_of = next_rep;
        edges = r.next_edges;
        cur_n = r.next_n;
    }

    // Finish in memory.
    if cur_n > 0 {
        let uf_labels = job.local(
            "InMemoryForestCC",
            (edges.len() as u64 + cur_n as u64 + 1) * 8,
            || {
                let mut uf = UnionFind::new(cur_n);
                for e in &edges {
                    uf.union(e.u, e.v);
                }
                uf.labels()
            },
        );
        // Component label = min original representative in the class.
        let mut class_min = vec![NO_NODE; cur_n];
        for v in 0..n {
            let c = cur_of[v];
            if c != NO_NODE {
                let l = uf_labels[c as usize] as usize;
                class_min[l] = class_min[l].min(final_label[v].min(rep_of[c as usize]));
            }
        }
        for v in 0..n {
            let c = cur_of[v];
            if c != NO_NODE {
                final_label[v] = class_min[uf_labels[c as usize] as usize];
            }
        }
    }

    // Canonicalize: within-component minimum. One more sweep makes the
    // labelling exactly the BFS oracle's (min-id representative).
    canonicalize(n, forest_edges, final_label)
}

/// Rewrites labels so each component is represented by its minimum
/// vertex id (labels were already consistent per component).
fn canonicalize(n: usize, edges: &[(NodeId, NodeId)], label: Vec<NodeId>) -> Vec<NodeId> {
    let mut min_of: std::collections::HashMap<NodeId, NodeId> = std::collections::HashMap::new();
    for v in 0..n as NodeId {
        let l = label[v as usize];
        min_of
            .entry(l)
            .and_modify(|m| *m = (*m).min(v))
            .or_insert(v);
    }
    let _ = edges;
    (0..n).map(|v| min_of[&label[v]]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate;
    use ampc_graph::gen;

    fn cfg() -> AmpcConfig {
        AmpcConfig::for_tests()
    }

    #[test]
    fn labels_path_forest() {
        let g = gen::path(30);
        let edges: Vec<(NodeId, NodeId)> = g.edges().map(|e| (e.u, e.v)).collect();
        let out = forest_cc(30, &edges, &cfg());
        assert!(out.label.iter().all(|&l| l == 0));
    }

    #[test]
    fn labels_multi_tree_forest() {
        // Two paths + isolated vertices.
        let mut b = ampc_graph::GraphBuilder::new(12);
        for i in 0..4 {
            b.push_edge(i, i + 1, 0);
        }
        for i in 6..9 {
            b.push_edge(i, i + 1, 0);
        }
        let g = b.build();
        let edges: Vec<(NodeId, NodeId)> = g.edges().map(|e| (e.u, e.v)).collect();
        let out = forest_cc(12, &edges, &cfg());
        assert!(validate::is_correct_components(&g, &out.label));
        assert_eq!(out.label[0], 0);
        assert_eq!(out.label[7], 6);
        assert_eq!(out.label[11], 11);
    }

    #[test]
    fn forces_distributed_rounds_on_big_forest() {
        let g = gen::random_tree(3000, 5);
        let edges: Vec<(NodeId, NodeId)> = g.edges().map(|e| (e.u, e.v)).collect();
        let mut c = cfg();
        c.in_memory_threshold = 50;
        let out = forest_cc(3000, &edges, &c);
        assert!(out.label.iter().all(|&l| l == 0));
        assert!(out.report.num_shuffles() > 0);
    }

    #[test]
    #[should_panic(expected = "fewer than n edges")]
    fn rejects_non_forest_edge_count() {
        let edges: Vec<(NodeId, NodeId)> = vec![(0, 1), (1, 2), (2, 0)];
        forest_cc(3, &edges, &cfg());
    }
}
