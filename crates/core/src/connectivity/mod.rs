//! Connected components in O(1) AMPC rounds (Theorem 1).
//!
//! Exactly the paper's route: *"once we find any spanning forest, the
//! connected components can be found by applying the forest
//! connectivity algorithm of \[19\]"*. [`ampc_connected_components`]
//! computes a spanning forest by running the MSF machinery over random
//! (distinct) edge weights, then labels components with
//! [`forest_cc::forest_cc`] (Proposition 3.2).

pub mod forest_cc;

pub use forest_cc::{forest_cc, CcOutcome};

use crate::msf::common::ProvEdge;
use crate::priorities::edge_key;
use ampc_dht::hasher::mix64;
use ampc_graph::{CsrGraph, NodeId};
use ampc_runtime::{AmpcConfig, Job};

/// Computes connected components: spanning forest via randomly-weighted
/// MSF, then forest connectivity.
pub fn ampc_connected_components(g: &CsrGraph, cfg: &AmpcConfig) -> CcOutcome {
    let mut job = Job::new(*cfg);
    let label = ampc_connected_components_in_job(&mut job, g);
    CcOutcome {
        label,
        report: job.into_report(),
    }
}

/// The in-job kernel body: computes component labels inside a
/// caller-provided [`Job`] (the [`crate::algorithm::AmpcAlgorithm`]
/// entry point).
// ampc-lint: budget(batched-requests = 3)
pub fn ampc_connected_components_in_job(job: &mut Job, g: &CsrGraph) -> Vec<NodeId> {
    let cfg = *job.config();
    let n = g.num_nodes();

    // Random distinct weights: rank edges by a hash of their identity.
    let mut keyed: Vec<(u64, NodeId, NodeId)> = g
        .edges()
        .map(|e| (mix64(cfg.seed ^ edge_key(e.u, e.v)), e.u, e.v))
        .collect();
    keyed.sort_unstable();
    let edges: Vec<ProvEdge> = keyed
        .iter()
        .enumerate()
        .map(|(i, &(_, u, v))| ProvEdge {
            u,
            v,
            w: i as u64,
            ou: u,
            ov: v,
        })
        .collect();

    // Spanning forest = MSF under these weights.
    let forest_internal = crate::msf::dense::dense_msf_loop(job, n, edges.clone(), &cfg);
    let forest_pairs: Vec<(NodeId, NodeId)> = forest_internal
        .iter()
        .map(|&w| (keyed[w as usize].1, keyed[w as usize].2))
        .collect();

    // Forest connectivity (Proposition 3.2).
    forest_cc::forest_cc_in_job(job, n, &forest_pairs, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate;
    use ampc_graph::gen;

    fn cfg() -> AmpcConfig {
        AmpcConfig::for_tests()
    }

    #[test]
    fn labels_match_bfs_on_random_graphs() {
        for seed in 0..5 {
            let g = gen::erdos_renyi(150, 200, seed); // sparse: several CCs
            let out = ampc_connected_components(&g, &cfg().with_seed(seed));
            assert!(
                validate::is_correct_components(&g, &out.label),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn two_cycles_get_two_labels() {
        let g = gen::two_cycles(50, 3);
        let out = ampc_connected_components(&g, &cfg());
        let distinct: std::collections::HashSet<_> = out.label.iter().collect();
        assert_eq!(distinct.len(), 2);
        assert!(validate::is_correct_components(&g, &out.label));
    }

    #[test]
    fn isolated_vertices_self_label() {
        let g = CsrGraph::empty(6);
        let out = ampc_connected_components(&g, &cfg());
        assert!(validate::is_correct_components(&g, &out.label));
    }

    #[test]
    fn web_analogue_with_many_components() {
        let g =
            ampc_graph::datasets::Dataset::ClueWeb.generate(ampc_graph::datasets::Scale::Test, 1);
        let out = ampc_connected_components(&g, &cfg());
        assert!(validate::is_correct_components(&g, &out.label));
    }
}
