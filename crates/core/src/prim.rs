//! Flat parallel primitives over reusable scratch (DESIGN.md §11).
//!
//! The lockstep hop loops of the adaptive kernels used to rebuild their
//! survivor/frontier vectors from scratch every hop — a fresh
//! allocation plus a reallocation-prone `filter().collect()` on paths
//! executed hundreds of times per round. These primitives replace that
//! churn with **caller-owned output buffers**: each call clears and
//! refills a `Vec` the kernel keeps across hops and epochs (usually one
//! of the [`ampc_runtime::executor::ScratchBuffers`] arenas), so
//! steady-state loops allocate nothing once buffers reach their
//! high-water capacity.
//!
//! Above [`PAR_MIN`] elements and with more than one executor thread,
//! the primitives stripe over the persistent
//! [`ampc_runtime::pool::WorkerPool`]: pass 1 counts survivors per
//! stripe in parallel, pass 2 scatters each stripe into its disjoint,
//! pre-sized window of the output (safe `split_at_mut` windows — no
//! aliasing, no locks). Output order equals input order for every
//! thread count, so the primitives are schedule-deterministic by
//! construction (§3). The predicate runs twice per element in the
//! striped path; that is the standard price of an allocation-free
//! two-pass pack and is far cheaper than the per-hop `Vec` growth it
//! replaces.

use ampc_dht::store::ampc_threads;
use ampc_runtime::pool::WorkerPool;

/// Below this many elements the striped paths fall back to a simple
/// sequential pass (stripe bookkeeping would dominate).
pub const PAR_MIN: usize = 1 << 16;

/// Splits `0..n` into at most `parts` contiguous, near-equal ranges.
fn stripe_bounds(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1).min(n.max(1));
    let per = n.div_ceil(parts);
    (0..parts)
        .map(|i| (i * per).min(n)..((i + 1) * per).min(n))
        .filter(|r| !r.is_empty())
        .collect()
}

/// Fills `out` with the indices `i` in `0..n` where `pred(i)` holds, in
/// ascending order, reusing `out`'s capacity. The striped replacement
/// for `(0..n).filter(pred).collect()` in sampling loops.
pub fn pack_range(n: usize, pred: impl Fn(usize) -> bool + Sync, out: &mut Vec<u32>) {
    pack_range_with_threads(n, pred, out, ampc_threads());
}

/// [`pack_range`] with an explicit thread count (test hook; results are
/// identical for every value).
pub fn pack_range_with_threads(
    n: usize,
    pred: impl Fn(usize) -> bool + Sync,
    out: &mut Vec<u32>,
    threads: usize,
) {
    assert!(n <= u32::MAX as usize, "pack_range indexes with u32");
    out.clear();
    if threads <= 1 || n < PAR_MIN {
        out.extend((0..n).filter(|&i| pred(i)).map(|i| i as u32));
        return;
    }
    let stripes = stripe_bounds(n, threads);
    let mut counts = vec![0usize; stripes.len()];
    let pred = &pred;
    {
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = stripes
            .iter()
            .zip(counts.iter_mut())
            .map(|(r, c)| {
                let r = r.clone();
                Box::new(move || *c = r.filter(|&i| pred(i)).count()) as Box<dyn FnOnce() + Send>
            })
            .collect();
        WorkerPool::global(threads).run_batch(tasks, threads);
    }
    let total: usize = counts.iter().sum();
    out.resize(total, 0);
    let mut rest = out.as_mut_slice();
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(stripes.len());
    for (r, &c) in stripes.iter().zip(&counts) {
        let (win, tail) = rest.split_at_mut(c);
        rest = tail;
        let r = r.clone();
        tasks.push(Box::new(move || {
            for (slot, i) in win.iter_mut().zip(r.filter(|&i| pred(i))) {
                *slot = i as u32;
            }
        }));
    }
    WorkerPool::global(threads).run_batch(tasks, threads);
}

/// Fills `out` with copies of the elements of `src` satisfying `pred`,
/// in input order, reusing `out`'s capacity.
pub fn filter_into<T>(src: &[T], pred: impl Fn(&T) -> bool + Sync, out: &mut Vec<T>)
where
    T: Copy + Send + Sync,
{
    filter_into_with_threads(src, pred, out, ampc_threads());
}

/// [`filter_into`] with an explicit thread count (test hook; results
/// are identical for every value).
pub fn filter_into_with_threads<T>(
    src: &[T],
    pred: impl Fn(&T) -> bool + Sync,
    out: &mut Vec<T>,
    threads: usize,
) where
    T: Copy + Send + Sync,
{
    out.clear();
    if threads <= 1 || src.len() < PAR_MIN {
        out.extend(src.iter().copied().filter(pred));
        return;
    }
    let stripes = stripe_bounds(src.len(), threads);
    let mut counts = vec![0usize; stripes.len()];
    let pred = &pred;
    {
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = stripes
            .iter()
            .zip(counts.iter_mut())
            .map(|(r, c)| {
                let seg = &src[r.clone()];
                Box::new(move || *c = seg.iter().filter(|t| pred(t)).count())
                    as Box<dyn FnOnce() + Send>
            })
            .collect();
        WorkerPool::global(threads).run_batch(tasks, threads);
    }
    let total: usize = counts.iter().sum();
    out.resize(total, src[0]);
    let mut rest = out.as_mut_slice();
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(stripes.len());
    for (r, &c) in stripes.iter().zip(&counts) {
        let (win, tail) = rest.split_at_mut(c);
        rest = tail;
        let seg = &src[r.clone()];
        tasks.push(Box::new(move || {
            for (slot, v) in win.iter_mut().zip(seg.iter().filter(|t| pred(t))) {
                *slot = *v;
            }
        }));
    }
    WorkerPool::global(threads).run_batch(tasks, threads);
}

/// Splits `src` into `yes` (elements satisfying `pred`) and `no` (the
/// rest), both in input order, reusing both buffers' capacity.
pub fn partition_into<T>(
    src: &[T],
    pred: impl Fn(&T) -> bool + Sync,
    yes: &mut Vec<T>,
    no: &mut Vec<T>,
) where
    T: Copy + Send + Sync,
{
    partition_into_with_threads(src, pred, yes, no, ampc_threads());
}

/// [`partition_into`] with an explicit thread count (test hook; results
/// are identical for every value).
pub fn partition_into_with_threads<T>(
    src: &[T],
    pred: impl Fn(&T) -> bool + Sync,
    yes: &mut Vec<T>,
    no: &mut Vec<T>,
    threads: usize,
) where
    T: Copy + Send + Sync,
{
    yes.clear();
    no.clear();
    if threads <= 1 || src.len() < PAR_MIN {
        for v in src {
            if pred(v) {
                yes.push(*v)
            } else {
                no.push(*v)
            }
        }
        return;
    }
    let stripes = stripe_bounds(src.len(), threads);
    let mut counts = vec![0usize; stripes.len()];
    let pred = &pred;
    {
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = stripes
            .iter()
            .zip(counts.iter_mut())
            .map(|(r, c)| {
                let seg = &src[r.clone()];
                Box::new(move || *c = seg.iter().filter(|t| pred(t)).count())
                    as Box<dyn FnOnce() + Send>
            })
            .collect();
        WorkerPool::global(threads).run_batch(tasks, threads);
    }
    let total_yes: usize = counts.iter().sum();
    yes.resize(total_yes, src[0]);
    no.resize(src.len() - total_yes, src[0]);
    let (mut rest_yes, mut rest_no) = (yes.as_mut_slice(), no.as_mut_slice());
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(stripes.len());
    for (r, &c) in stripes.iter().zip(&counts) {
        let (win_yes, tail) = rest_yes.split_at_mut(c);
        rest_yes = tail;
        let (win_no, tail) = rest_no.split_at_mut(r.len() - c);
        rest_no = tail;
        let seg = &src[r.clone()];
        tasks.push(Box::new(move || {
            let (mut iy, mut ino) = (0, 0);
            for v in seg {
                if pred(v) {
                    win_yes[iy] = *v;
                    iy += 1;
                } else {
                    win_no[ino] = *v;
                    ino += 1;
                }
            }
        }));
    }
    WorkerPool::global(threads).run_batch(tasks, threads);
}

/// Stable counting sort of `src` by a small integer key (`key(t) <
/// buckets`), written into `out`; `counts` is reusable scratch resized
/// to `buckets + 1`. The counting pass stripes over the pool; the
/// stable scatter is sequential (its positions interleave across
/// stripes, so a parallel scatter would need per-slot synchronization —
/// not worth it for the bucket counts the kernels use).
pub fn counting_sort_by_key<T: Copy>(
    src: &[T],
    buckets: usize,
    key: impl Fn(&T) -> usize,
    counts: &mut Vec<usize>,
    out: &mut Vec<T>,
) {
    counts.clear();
    counts.resize(buckets + 1, 0);
    for t in src {
        let k = key(t);
        debug_assert!(k < buckets, "key {k} out of range (buckets = {buckets})");
        counts[k + 1] += 1;
    }
    for i in 1..counts.len() {
        counts[i] += counts[i - 1];
    }
    out.clear();
    if let Some(&first) = src.first() {
        out.resize(src.len(), first);
        for t in src {
            let k = key(t);
            out[counts[k]] = *t;
            counts[k] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_dht::hasher::mix64;

    #[test]
    fn pack_range_matches_naive_for_every_thread_count() {
        let n = PAR_MIN + 1234;
        let pred = |i: usize| mix64(i as u64).is_multiple_of(3);
        let naive: Vec<u32> = (0..n).filter(|&i| pred(i)).map(|i| i as u32).collect();
        let mut out = Vec::new();
        for threads in [1, 2, 3, 8] {
            pack_range_with_threads(n, pred, &mut out, threads);
            assert_eq!(out, naive, "threads = {threads}");
        }
    }

    #[test]
    fn filter_into_matches_naive_and_reuses_capacity() {
        let src: Vec<u64> = (0..PAR_MIN as u64 + 99).map(mix64).collect();
        let pred = |v: &u64| v.is_multiple_of(2);
        let naive: Vec<u64> = src.iter().copied().filter(pred).collect();
        let mut out = Vec::new();
        for threads in [1, 2, 8] {
            filter_into_with_threads(&src, pred, &mut out, threads);
            assert_eq!(out, naive, "threads = {threads}");
        }
        let cap = out.capacity();
        filter_into_with_threads(&src, pred, &mut out, 2);
        assert_eq!(out.capacity(), cap, "steady state must not reallocate");
    }

    #[test]
    fn partition_preserves_order_and_covers() {
        let src: Vec<u64> = (0..PAR_MIN as u64 + 7).map(mix64).collect();
        let pred = |v: &u64| v % 5 < 2;
        let (mut yes, mut no) = (Vec::new(), Vec::new());
        let naive_yes: Vec<u64> = src.iter().copied().filter(pred).collect();
        let naive_no: Vec<u64> = src.iter().copied().filter(|v| !pred(v)).collect();
        for threads in [1, 4] {
            partition_into_with_threads(&src, pred, &mut yes, &mut no, threads);
            assert_eq!(yes, naive_yes, "threads = {threads}");
            assert_eq!(no, naive_no, "threads = {threads}");
        }
    }

    #[test]
    fn small_inputs_take_the_sequential_path() {
        let mut out = Vec::new();
        pack_range(10, |i| i % 2 == 0, &mut out);
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
        let mut f = Vec::new();
        filter_into(&[1u64, 2, 3, 4], |v| *v > 2, &mut f);
        assert_eq!(f, vec![3, 4]);
    }

    #[test]
    fn counting_sort_is_stable() {
        // (key, payload): payload order within a key must survive.
        let src: Vec<(usize, u64)> = (0..1000u64).map(|i| ((mix64(i) % 7) as usize, i)).collect();
        let (mut counts, mut out) = (Vec::new(), Vec::new());
        counting_sort_by_key(&src, 7, |t| t.0, &mut counts, &mut out);
        let mut naive = src.clone();
        naive.sort_by_key(|t| t.0); // sort_by_key is stable
        assert_eq!(out, naive);
        // Reuse: second call with the same scratch, different buckets.
        counting_sort_by_key(&src, 7, |t| t.0, &mut counts, &mut out);
        assert_eq!(out, naive);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let mut out = Vec::new();
        pack_range(0, |_| true, &mut out);
        assert!(out.is_empty());
        let mut counts = Vec::new();
        let mut sorted: Vec<u64> = Vec::new();
        counting_sort_by_key(&[], 4, |_: &u64| 0, &mut counts, &mut sorted);
        assert!(sorted.is_empty());
    }
}
