//! Random walks in AMPC — the §5.7 "Applicability" extension.
//!
//! *"The AMPC model can potentially help accelerate random-walk based
//! problems, such as PageRank and Personalized PageRank, since it
//! efficiently supports random access."* This module realizes that
//! suggestion: after one shuffle writes the adjacency into the DHT,
//! every walker advances step by step with one KV lookup per hop —
//! an O(1)-round computation that would cost one MPC round *per hop*
//! (cf. the 1-vs-2-cycle separation). Walkers sharing a machine move in
//! lockstep so each hop is one *batched* lookup (§5.3): the charged
//! round-trip depth is the walk length, not walkers × steps. A
//! visit-frequency PageRank estimator is built on top.

use crate::priorities::node_rank;
use ampc_dht::cache::DenseCache;
use ampc_dht::hasher::mix64;
use ampc_dht::store::{Dht, GenerationWriter};
use ampc_graph::{CsrGraph, NodeId};
use ampc_runtime::{AmpcConfig, Job, JobReport};

/// Result of a batch of random walks.
#[derive(Clone, Debug)]
pub struct WalkOutcome {
    /// The walks: `walks[i]` is the vertex sequence of walker `i`
    /// (length `steps + 1`, including the start).
    pub walks: Vec<Vec<NodeId>>,
    /// Execution record.
    pub report: JobReport,
}

/// Runs `walkers_per_node × n` independent random walks of `steps` hops
/// each, all inside a single KV round. Walks at a dead end (isolated
/// vertex) stay put. Deterministic given the seed.
pub fn ampc_random_walks(
    g: &CsrGraph,
    cfg: &AmpcConfig,
    walkers_per_node: usize,
    steps: usize,
) -> WalkOutcome {
    let mut job = Job::new(*cfg);
    let walks = ampc_random_walks_in_job(&mut job, g, walkers_per_node, steps);
    WalkOutcome {
        walks,
        report: job.into_report(),
    }
}

/// The in-job kernel body (the [`crate::algorithm::AmpcAlgorithm`]
/// entry point): runs the walks inside a caller-provided [`Job`],
/// returning one vertex sequence per walker.
// ampc-lint: budget(batched-requests = 2)
pub fn ampc_random_walks_in_job(
    job: &mut Job,
    g: &CsrGraph,
    walkers_per_node: usize,
    steps: usize,
) -> Vec<Vec<NodeId>> {
    let cfg = *job.config();
    let n = g.num_nodes();

    // WriteGraph shuffle + KV-write, like every AMPC algorithm here.
    // Host-side only vertex ids move; the simulated shuffle
    // redistributes the full adjacency record (id + length-prefixed
    // neighbor list), so the metered loads are those of the record.
    let vertices: Vec<NodeId> = g.nodes().collect();
    let buckets = job.shuffle_by_key_measured(
        "WriteGraph",
        vertices,
        |&v| v as u64,
        |&v| 12 + 4 * g.degree(v) as u64,
    );
    let mut dht: Dht<Vec<NodeId>> = Dht::new();
    let writer = GenerationWriter::new();
    job.kv_round_chunked(
        "KV-Write",
        dht.current(),
        Some(&writer),
        &buckets,
        |ctx, items: &[NodeId]| {
            // Independent writes share one round trip (§5.3). Each
            // adjacency list is materialized exactly once, owned by its
            // put — no intermediate record vector, no clone.
            ctx.handle
                .put_many(items.iter().map(|&v| (v as u64, g.neighbors(v).to_vec())));
            Vec::<()>::new()
        },
    );
    dht.push(writer.seal());

    // One KV round: every walker advances `steps` hops. The walkers on
    // a machine advance in **lockstep**: each adaptive step issues one
    // batched lookup for all walkers' current positions (§5.3 — the
    // round costs its adaptive depth, `steps`, not walkers × steps),
    // with repeats answered by the handle-mounted per-machine cache
    // when the caching optimization is on.
    let starts: Vec<(u64, NodeId)> = (0..walkers_per_node)
        .flat_map(|w| (0..n as NodeId).map(move |v| (w as u64, v)))
        .collect();
    let seed = cfg.seed;
    let caching = cfg.caching;
    let walks = job.kv_round("Walk", dht.current(), None, starts, |ctx, items| {
        if caching {
            ctx.handle.mount_cache(DenseCache::unbounded(n));
        }
        let mut cur: Vec<NodeId> = items.iter().map(|&(_, v)| v).collect();
        let mut paths: Vec<Vec<NodeId>> = cur
            .iter()
            .map(|&c| {
                let mut p = Vec::with_capacity(steps + 1);
                p.push(c);
                p
            })
            .collect();
        // Lockstep key buffer in the machine's scratch arena, reused
        // across hops and rounds: one batched lookup per adaptive
        // step, no per-hop allocation. The visitor form serves
        // adjacency *references* (cache or generation), so a cache
        // miss costs exactly one clone — the cache insert — and the
        // hop loop clones nothing.
        for s in 0..steps {
            ctx.scratch.keys.clear();
            ctx.scratch.keys.extend(cur.iter().map(|&c| c as u64));
            let mut moved = 0u64;
            let cur = &mut cur;
            let paths = &mut paths;
            ctx.handle
                .get_many_through_with(&ctx.scratch.keys, |i, nbrs| {
                    let nbrs = nbrs.expect("vertex record");
                    if nbrs.is_empty() {
                        paths[i].push(cur[i]);
                        return;
                    }
                    moved += 1;
                    let (w, _) = items[i];
                    let r = mix64(
                        seed ^ w.wrapping_mul(0x9E37_79B9).wrapping_add(cur[i] as u64)
                            ^ ((s as u64) << 32),
                    );
                    cur[i] = nbrs[(r % nbrs.len() as u64) as usize];
                    paths[i].push(cur[i]);
                });
            ctx.add_ops(moved);
        }
        paths
    });

    walks
}

/// Visit-frequency PageRank estimate from random walks with restarts:
/// walkers teleport with probability `1 - damping` (realized by chopping
/// walks into segments). Returns unnormalized visit counts per vertex.
pub fn pagerank_estimate(
    g: &CsrGraph,
    cfg: &AmpcConfig,
    walkers_per_node: usize,
    steps: usize,
    damping: f64,
) -> (Vec<f64>, JobReport) {
    assert!((0.0..1.0).contains(&damping), "damping must be in [0, 1)");
    let out = ampc_random_walks(g, cfg, walkers_per_node, steps);
    let mut visits = vec![0f64; g.num_nodes()];
    for walk in &out.walks {
        for (i, &v) in walk.iter().enumerate() {
            // Probability the walk survives i hops without teleporting.
            visits[v as usize] += damping.powi(i as i32);
        }
    }
    let total: f64 = visits.iter().sum();
    if total > 0.0 {
        for v in &mut visits {
            *v /= total;
        }
    }
    let _ = node_rank(cfg.seed, 0);
    (visits, out.report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::gen;

    fn cfg() -> AmpcConfig {
        AmpcConfig::for_tests()
    }

    #[test]
    fn walks_follow_edges() {
        let g = gen::erdos_renyi(60, 200, 3);
        let out = ampc_random_walks(&g, &cfg(), 1, 8);
        assert_eq!(out.walks.len(), 60);
        for walk in &out.walks {
            assert_eq!(walk.len(), 9);
            for w in walk.windows(2) {
                assert!(
                    w[0] == w[1] || g.has_edge(w[0], w[1]),
                    "walk took a non-edge {w:?}"
                );
            }
        }
    }

    #[test]
    fn single_kv_search_round() {
        let g = gen::erdos_renyi(40, 120, 1);
        let out = ampc_random_walks(&g, &cfg(), 2, 4);
        assert_eq!(out.report.num_shuffles(), 1);
        assert_eq!(out.report.num_kv_rounds(), 2); // KV-Write + Walk
    }

    #[test]
    fn deterministic() {
        let g = gen::erdos_renyi(50, 150, 2);
        let a = ampc_random_walks(&g, &cfg(), 1, 6);
        let b = ampc_random_walks(&g, &cfg(), 1, 6);
        assert_eq!(a.walks, b.walks);
        let c = ampc_random_walks(&g, &cfg().with_seed(99), 1, 6);
        assert_ne!(a.walks, c.walks);
    }

    #[test]
    fn isolated_vertices_stay_put() {
        let g = CsrGraph::empty(3);
        let out = ampc_random_walks(&g, &cfg(), 1, 5);
        for (v, walk) in out.walks.iter().enumerate() {
            assert!(walk.iter().all(|&x| x as usize == v));
        }
    }

    #[test]
    fn pagerank_favors_hubs() {
        // Star: the center should collect by far the most visit mass.
        let g = gen::star(50);
        let (pr, _) = pagerank_estimate(&g, &cfg(), 4, 10, 0.85);
        let center = pr[0];
        for &leaf in &pr[1..] {
            assert!(center > 5.0 * leaf, "center {center} vs leaf {leaf}");
        }
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn rejects_bad_damping() {
        let g = gen::path(4);
        pagerank_estimate(&g, &cfg(), 1, 2, 1.5);
    }
}
