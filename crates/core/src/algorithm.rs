//! The [`AmpcAlgorithm`] trait: one interface over every kernel family.
//!
//! The paper evaluates a fixed menu of algorithms (Table 3) on a fixed
//! harness; this trait is what lets the workspace compose *any*
//! registered algorithm with *any* graph source and *any* runtime
//! configuration instead. An implementation names itself, declares what
//! input it consumes ([`InputKind`]), runs inside a caller-provided
//! [`Job`] (the driver owns config resolution, fault wiring and report
//! finalization — see `ampc_runtime::driver`), and can validate its own
//! output against the input.
//!
//! The AMPC implementations of all six kernel families live here as
//! thin adapters over the in-job kernel entry points
//! (`ampc_mis_in_job` & co.); the MPC baselines implement the same
//! trait from the `ampc-mpc` crate, which is how the figure harnesses
//! and the `ampc` CLI treat the two models uniformly.

use crate::one_vs_two::CycleAnswer;
use crate::{connectivity, matching, mis, msf, one_vs_two, validate, walks};
use ampc_dht::hasher::mix64;
use ampc_graph::dynamic::{generate_batches, BatchMix};
use ampc_graph::{CsrGraph, NodeId, WeightedCsrGraph, WeightedEdge, NO_NODE};
use ampc_runtime::Job;

/// Which model backend an implementation simulates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Model {
    /// Adaptive MPC: machines query the DHT inside a round.
    Ampc,
    /// Classic MPC: all communication rides on shuffles.
    Mpc,
}

impl Model {
    /// Lowercase token (`"ampc"` / `"mpc"`) used by the CLI and JSON
    /// reports.
    pub fn token(&self) -> &'static str {
        match self {
            Model::Ampc => "ampc",
            Model::Mpc => "mpc",
        }
    }
}

/// What input a kernel family consumes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputKind {
    /// Any unweighted graph.
    Unweighted,
    /// A weighted graph (MSF).
    Weighted,
    /// A 2-regular unweighted graph — a disjoint union of cycles
    /// (the 1-vs-2-cycle problem).
    CycleUnion,
}

/// A borrowed input graph.
#[derive(Clone, Copy, Debug)]
pub enum AlgoInput<'g> {
    /// An unweighted graph.
    Unweighted(&'g CsrGraph),
    /// A weighted graph.
    Weighted(&'g WeightedCsrGraph),
}

impl<'g> AlgoInput<'g> {
    /// Vertex count.
    pub fn num_nodes(&self) -> usize {
        match self {
            AlgoInput::Unweighted(g) => g.num_nodes(),
            AlgoInput::Weighted(g) => g.num_nodes(),
        }
    }

    /// Edge count.
    pub fn num_edges(&self) -> usize {
        match self {
            AlgoInput::Unweighted(g) => g.num_edges(),
            AlgoInput::Weighted(g) => g.num_edges(),
        }
    }

    /// The unweighted structure (a weighted input's structure graph
    /// satisfies unweighted-input algorithms).
    pub fn structure(&self) -> &'g CsrGraph {
        match self {
            AlgoInput::Unweighted(g) => g,
            AlgoInput::Weighted(g) => g.structure(),
        }
    }

    /// The weighted graph, if this input carries weights.
    pub fn weighted(&self) -> Option<&'g WeightedCsrGraph> {
        match self {
            AlgoInput::Unweighted(_) => None,
            AlgoInput::Weighted(g) => Some(g),
        }
    }

    /// Whether this input satisfies `kind`.
    pub fn satisfies(&self, kind: InputKind) -> Result<(), String> {
        match kind {
            InputKind::Unweighted => Ok(()),
            InputKind::Weighted => {
                if self.weighted().is_some() {
                    Ok(())
                } else {
                    Err("algorithm requires a weighted graph".into())
                }
            }
            InputKind::CycleUnion => {
                let g = self.structure();
                if g.num_nodes() < 3 {
                    return Err("cycle instances need >= 3 vertices".into());
                }
                match g.nodes().find(|&v| g.degree(v) != 2) {
                    None => Ok(()),
                    Some(v) => Err(format!(
                        "1-vs-2-cycle input must be 2-regular (vertex {v} has degree {})",
                        g.degree(v)
                    )),
                }
            }
        }
    }
}

/// Unified kernel output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AlgoOutput {
    /// MIS membership per vertex.
    Mis(Vec<bool>),
    /// Matching partner per vertex (`NO_NODE` = unmatched).
    Matching(Vec<NodeId>),
    /// MSF edges (canonical order).
    Forest(Vec<WeightedEdge>),
    /// Component label per vertex.
    Components(Vec<NodeId>),
    /// 1-vs-2-cycle answer plus the cycle count found.
    Cycles {
        /// One cycle or more than one.
        answer: CycleAnswer,
        /// Number of cycles found (≥ 1).
        num_cycles: usize,
    },
    /// Random walks: one vertex sequence per walker.
    Walks(Vec<Vec<NodeId>>),
    /// Batch-dynamic connectivity: component labels per epoch
    /// (`[0]` = initial graph, `[i + 1]` = after update batch `i`).
    DynamicComponents(Vec<Vec<NodeId>>),
}

/// Order-sensitive digest fold (shared with the perf suite so tracked
/// digests stay comparable across harness entry points).
fn fold(digest: u64, x: u64) -> u64 {
    mix64(digest ^ x.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Digest of a `u64` sequence, order-sensitively.
pub fn digest_u64s(items: impl IntoIterator<Item = u64>) -> u64 {
    items.into_iter().fold(0x5EED, fold)
}

impl AlgoOutput {
    /// A short token naming the output kind (JSON `"kind"` field).
    pub fn kind(&self) -> &'static str {
        match self {
            AlgoOutput::Mis(_) => "mis",
            AlgoOutput::Matching(_) => "matching",
            AlgoOutput::Forest(_) => "forest",
            AlgoOutput::Components(_) => "components",
            AlgoOutput::Cycles { .. } => "cycles",
            AlgoOutput::Walks(_) => "walks",
            AlgoOutput::DynamicComponents(_) => "dynamic-components",
        }
    }

    /// The output's cardinality: set/matching/forest size, number of
    /// components, number of cycles, or number of walks.
    pub fn size(&self) -> usize {
        match self {
            AlgoOutput::Mis(v) => v.iter().filter(|&&b| b).count(),
            AlgoOutput::Matching(p) => p.iter().filter(|&&x| x != NO_NODE).count() / 2,
            AlgoOutput::Forest(e) => e.len(),
            AlgoOutput::Components(l) => {
                let mut seen: Vec<NodeId> = l.clone();
                seen.sort_unstable();
                seen.dedup();
                seen.len()
            }
            AlgoOutput::Cycles { num_cycles, .. } => *num_cycles,
            AlgoOutput::Walks(w) => w.len(),
            AlgoOutput::DynamicComponents(epochs) => epochs.len(),
        }
    }

    /// Order-sensitive digest of the full output. For the kernels the
    /// perf suite tracks, this matches the digests recorded in
    /// `BENCH_perf.json` exactly.
    pub fn digest(&self) -> u64 {
        match self {
            AlgoOutput::Mis(v) => digest_u64s(v.iter().map(|&b| b as u64)),
            AlgoOutput::Matching(p) => digest_u64s(p.iter().map(|&x| x as u64)),
            AlgoOutput::Forest(e) => {
                digest_u64s(e.iter().flat_map(|e| [e.u as u64, e.v as u64, e.w]))
            }
            AlgoOutput::Components(l) => digest_u64s(l.iter().map(|&x| x as u64)),
            AlgoOutput::Cycles { num_cycles, .. } => digest_u64s([*num_cycles as u64]),
            AlgoOutput::Walks(w) => digest_u64s(
                w.iter()
                    .flat_map(|walk| walk.iter().map(|&v| v as u64 + 1).chain([0])),
            ),
            // Epoch-separated fold: two runs agree iff the labels of
            // *every* epoch agree — equality of digests certifies
            // per-batch byte-identical labels.
            AlgoOutput::DynamicComponents(epochs) => digest_u64s(
                epochs
                    .iter()
                    .flat_map(|l| l.iter().map(|&v| v as u64 + 1).chain([0])),
            ),
        }
    }
}

/// One algorithm implementation, runnable by the driver against any
/// satisfying input.
pub trait AmpcAlgorithm: Sync {
    /// The kernel family name (`"mis"`, `"mm"`, `"msf"`, `"cc"`,
    /// `"one-vs-two"`, `"walks"`).
    fn name(&self) -> &'static str;

    /// Which model backend this implementation simulates.
    fn model(&self) -> Model;

    /// What input the implementation requires.
    fn input_kind(&self) -> InputKind;

    /// Runs the algorithm inside `job`. The caller (normally
    /// `ampc_runtime::driver::drive`) owns the job's lifecycle; `run`
    /// only appends stages. Implementations may assume
    /// `input.satisfies(self.input_kind())` holds — the driver-facing
    /// callers check it first.
    fn run(&self, job: &mut Job, input: &AlgoInput<'_>) -> AlgoOutput;

    /// Checks `output` against `input`, returning a human-readable
    /// reason on failure.
    fn validate(&self, input: &AlgoInput<'_>, output: &AlgoOutput) -> Result<(), String>;
}

/// Shared validators, so the AMPC and MPC implementations of one family
/// agree on what "correct" means.
fn validate_family(family: &str, input: &AlgoInput<'_>, output: &AlgoOutput) -> Result<(), String> {
    let g = input.structure();
    match output {
        AlgoOutput::Mis(in_mis) => {
            if in_mis.len() != g.num_nodes() {
                return Err(format!("{family}: output length != vertex count"));
            }
            if !validate::is_maximal_independent_set(g, in_mis) {
                return Err(format!("{family}: not a maximal independent set"));
            }
            Ok(())
        }
        AlgoOutput::Matching(partner) => {
            if partner.len() != g.num_nodes() {
                return Err(format!("{family}: output length != vertex count"));
            }
            for v in 0..partner.len() {
                let p = partner[v];
                if p != NO_NODE && partner[p as usize] != v as NodeId {
                    return Err(format!("{family}: asymmetric matching at vertex {v}"));
                }
            }
            let pairs = matching::pairs_from_partners(partner);
            if !validate::is_maximal_matching(g, &pairs) {
                return Err(format!("{family}: not a maximal matching"));
            }
            Ok(())
        }
        AlgoOutput::Forest(edges) => {
            let w = input
                .weighted()
                .ok_or_else(|| format!("{family}: forest output needs a weighted input"))?;
            if !validate::is_min_spanning_forest(w, edges) {
                return Err(format!("{family}: not a minimum spanning forest"));
            }
            Ok(())
        }
        AlgoOutput::Components(label) => {
            if !validate::is_correct_components(g, label) {
                return Err(format!("{family}: component labels are wrong"));
            }
            Ok(())
        }
        AlgoOutput::Cycles { answer, .. } => {
            let truth = ampc_graph::stats::connected_components(g).num_components;
            let expect = if truth == 1 {
                CycleAnswer::One
            } else {
                CycleAnswer::Two
            };
            if *answer != expect {
                return Err(format!(
                    "{family}: answered {answer:?} but the instance has {truth} cycle(s)"
                ));
            }
            Ok(())
        }
        AlgoOutput::Walks(walk_list) => {
            for (i, walk) in walk_list.iter().enumerate() {
                if walk.is_empty() {
                    return Err(format!("{family}: walk {i} is empty"));
                }
                for pair in walk.windows(2) {
                    let stay_put = pair[0] == pair[1] && g.degree(pair[0]) == 0;
                    if !stay_put && !g.has_edge(pair[0], pair[1]) {
                        return Err(format!(
                            "{family}: walk {i} took a non-edge {} -> {}",
                            pair[0], pair[1]
                        ));
                    }
                }
            }
            Ok(())
        }
        AlgoOutput::DynamicComponents(epochs) => {
            // The family validator sees the input but not the update
            // schedule: it checks the shape and the initial epoch. The
            // trait impls (which know the schedule) replay every batch
            // through `crate::dynamic::validate_dynamic_labels`.
            if epochs.is_empty() {
                return Err(format!("{family}: no label epochs"));
            }
            if let Some(bad) = epochs.iter().position(|l| l.len() != g.num_nodes()) {
                return Err(format!("{family}: epoch {bad} has wrong label length"));
            }
            let oracle = ampc_graph::stats::connected_components(g).label;
            if epochs[0] != oracle {
                return Err(format!(
                    "{family}: initial labels differ from the canonical oracle"
                ));
            }
            Ok(())
        }
    }
}

// --------------------------------------------------------------------
// AMPC implementations: thin adapters over the in-job kernel entry
// points.
// --------------------------------------------------------------------

/// AMPC MIS (Figure 1; Proposition 4.2). Caching follows the job
/// configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct AmpcMis;

impl AmpcAlgorithm for AmpcMis {
    fn name(&self) -> &'static str {
        "mis"
    }
    fn model(&self) -> Model {
        Model::Ampc
    }
    fn input_kind(&self) -> InputKind {
        InputKind::Unweighted
    }
    fn run(&self, job: &mut Job, input: &AlgoInput<'_>) -> AlgoOutput {
        let opts = mis::MisOptions {
            caching: job.config().caching,
            ..Default::default()
        };
        AlgoOutput::Mis(mis::ampc_mis_in_job(job, input.structure(), opts))
    }
    fn validate(&self, input: &AlgoInput<'_>, output: &AlgoOutput) -> Result<(), String> {
        validate_family(self.name(), input, output)
    }
}

/// AMPC maximal matching (§4.2, §5.4). Caching follows the job
/// configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct AmpcMatching;

impl AmpcAlgorithm for AmpcMatching {
    fn name(&self) -> &'static str {
        "mm"
    }
    fn model(&self) -> Model {
        Model::Ampc
    }
    fn input_kind(&self) -> InputKind {
        InputKind::Unweighted
    }
    fn run(&self, job: &mut Job, input: &AlgoInput<'_>) -> AlgoOutput {
        let opts = matching::MatchingOptions {
            caching: job.config().caching,
            ..Default::default()
        };
        AlgoOutput::Matching(matching::ampc_matching_in_job(job, input.structure(), opts))
    }
    fn validate(&self, input: &AlgoInput<'_>, output: &AlgoOutput) -> Result<(), String> {
        validate_family(self.name(), input, output)
    }
}

/// AMPC MSF — the §5.5 production pipeline.
#[derive(Clone, Copy, Debug, Default)]
pub struct AmpcMsf;

impl AmpcAlgorithm for AmpcMsf {
    fn name(&self) -> &'static str {
        "msf"
    }
    fn model(&self) -> Model {
        Model::Ampc
    }
    fn input_kind(&self) -> InputKind {
        InputKind::Weighted
    }
    fn run(&self, job: &mut Job, input: &AlgoInput<'_>) -> AlgoOutput {
        let w = input.weighted().expect("driver checked input kind");
        AlgoOutput::Forest(msf::ampc_msf_in_job(job, w))
    }
    fn validate(&self, input: &AlgoInput<'_>, output: &AlgoOutput) -> Result<(), String> {
        validate_family(self.name(), input, output)
    }
}

/// AMPC connected components (Theorem 1: random-weight MSF + forest
/// connectivity).
#[derive(Clone, Copy, Debug, Default)]
pub struct AmpcConnectivity;

impl AmpcAlgorithm for AmpcConnectivity {
    fn name(&self) -> &'static str {
        "cc"
    }
    fn model(&self) -> Model {
        Model::Ampc
    }
    fn input_kind(&self) -> InputKind {
        InputKind::Unweighted
    }
    fn run(&self, job: &mut Job, input: &AlgoInput<'_>) -> AlgoOutput {
        AlgoOutput::Components(connectivity::ampc_connected_components_in_job(
            job,
            input.structure(),
        ))
    }
    fn validate(&self, input: &AlgoInput<'_>, output: &AlgoOutput) -> Result<(), String> {
        validate_family(self.name(), input, output)
    }
}

/// AMPC 1-vs-2-cycle (§5.6) at a configurable inverse sampling rate.
#[derive(Clone, Copy, Debug)]
pub struct AmpcOneVsTwo {
    /// Inverse sampling rate (paper: 1024).
    pub sample_inv: u64,
}

impl Default for AmpcOneVsTwo {
    fn default() -> Self {
        AmpcOneVsTwo { sample_inv: 1024 }
    }
}

impl AmpcAlgorithm for AmpcOneVsTwo {
    fn name(&self) -> &'static str {
        "one-vs-two"
    }
    fn model(&self) -> Model {
        Model::Ampc
    }
    fn input_kind(&self) -> InputKind {
        InputKind::CycleUnion
    }
    fn run(&self, job: &mut Job, input: &AlgoInput<'_>) -> AlgoOutput {
        let (answer, num_cycles) =
            one_vs_two::ampc_one_vs_two_in_job(job, input.structure(), self.sample_inv);
        AlgoOutput::Cycles { answer, num_cycles }
    }
    fn validate(&self, input: &AlgoInput<'_>, output: &AlgoOutput) -> Result<(), String> {
        validate_family(self.name(), input, output)
    }
}

/// AMPC random walks (§5.7): `walkers_per_node × n` walks of `steps`
/// hops, all inside one KV round.
#[derive(Clone, Copy, Debug)]
pub struct AmpcWalks {
    /// Walkers started per vertex.
    pub walkers_per_node: usize,
    /// Hops per walk.
    pub steps: usize,
}

impl Default for AmpcWalks {
    fn default() -> Self {
        AmpcWalks {
            walkers_per_node: 1,
            steps: 8,
        }
    }
}

impl AmpcAlgorithm for AmpcWalks {
    fn name(&self) -> &'static str {
        "walks"
    }
    fn model(&self) -> Model {
        Model::Ampc
    }
    fn input_kind(&self) -> InputKind {
        InputKind::Unweighted
    }
    fn run(&self, job: &mut Job, input: &AlgoInput<'_>) -> AlgoOutput {
        AlgoOutput::Walks(walks::ampc_random_walks_in_job(
            job,
            input.structure(),
            self.walkers_per_node,
            self.steps,
        ))
    }
    fn validate(&self, input: &AlgoInput<'_>, output: &AlgoOutput) -> Result<(), String> {
        validate_walks_shape(input, output, self.walkers_per_node, self.steps)?;
        validate_family(self.name(), input, output)
    }
}

/// AMPC batch-dynamic connectivity: component labels *maintained*
/// across a seeded schedule of edge-update batches (one DHT-generation
/// epoch per batch; see [`crate::dynamic`]). The update schedule is
/// regenerated deterministically from the input graph and these
/// parameters, so the AMPC (maintained) and MPC (recompute) backends
/// consume identical batches by construction.
#[derive(Clone, Copy, Debug)]
pub struct AmpcDynamicCc {
    /// Number of update batches.
    pub batches: usize,
    /// Updates per batch.
    pub ops: usize,
    /// Insert/delete composition of the schedule.
    pub mix: BatchMix,
    /// Schedule seed (decoupled from the algorithm seed).
    pub schedule_seed: u64,
}

impl Default for AmpcDynamicCc {
    fn default() -> Self {
        AmpcDynamicCc {
            batches: 4,
            ops: 64,
            mix: BatchMix::Churn,
            schedule_seed: ampc_graph::dynamic::DEFAULT_SCHEDULE_SEED,
        }
    }
}

impl AmpcAlgorithm for AmpcDynamicCc {
    fn name(&self) -> &'static str {
        "dyn-cc"
    }
    fn model(&self) -> Model {
        Model::Ampc
    }
    fn input_kind(&self) -> InputKind {
        InputKind::Unweighted
    }
    fn run(&self, job: &mut Job, input: &AlgoInput<'_>) -> AlgoOutput {
        let g = input.structure();
        let batches = generate_batches(g, self.batches, self.ops, self.mix, self.schedule_seed);
        AlgoOutput::DynamicComponents(crate::dynamic::ampc_dynamic_cc_in_job(job, g, &batches))
    }
    fn validate(&self, input: &AlgoInput<'_>, output: &AlgoOutput) -> Result<(), String> {
        // `validate_dynamic_output` subsumes the family validator's
        // shape + epoch-0 checks (it replays every epoch against the
        // oracle), so the generic pass is not repeated here.
        validate_dynamic_output(
            input,
            output,
            self.batches,
            self.ops,
            self.mix,
            self.schedule_seed,
        )
    }
}

/// Full per-epoch validation for a dynamic-connectivity output:
/// regenerates the schedule from the parameters and pins every epoch's
/// labels to the oracle. Shared by the AMPC and MPC trait impls so both
/// models validate under the same rule.
pub fn validate_dynamic_output(
    input: &AlgoInput<'_>,
    output: &AlgoOutput,
    batches: usize,
    ops: usize,
    mix: BatchMix,
    schedule_seed: u64,
) -> Result<(), String> {
    let AlgoOutput::DynamicComponents(labels) = output else {
        return Err("dyn-cc: wrong output kind".into());
    };
    let g = input.structure();
    let schedule = generate_batches(g, batches, ops, mix, schedule_seed);
    crate::dynamic::validate_dynamic_labels(g, &schedule, labels)
}

/// Walk-shape check shared by both walks backends (AMPC and the MPC
/// shuffle-per-hop baseline): `walkers_per_node × n` walks, each of
/// length `steps + 1`. Kept in one place so the two models always
/// validate under the same rule.
pub fn validate_walks_shape(
    input: &AlgoInput<'_>,
    output: &AlgoOutput,
    walkers_per_node: usize,
    steps: usize,
) -> Result<(), String> {
    let AlgoOutput::Walks(w) = output else {
        return Err("walks: wrong output kind".into());
    };
    let expected = walkers_per_node * input.num_nodes();
    if w.len() != expected {
        return Err(format!("walks: {} walks, expected {expected}", w.len()));
    }
    if let Some(bad) = w.iter().position(|walk| walk.len() != steps + 1) {
        return Err(format!("walks: walk {bad} has wrong length"));
    }
    Ok(())
}

/// Validates output for an arbitrary implementation of a known family —
/// exposed for the MPC-side impls so both models share one notion of
/// correctness.
pub fn validate_output(
    family: &str,
    input: &AlgoInput<'_>,
    output: &AlgoOutput,
) -> Result<(), String> {
    validate_family(family, input, output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::gen;
    use ampc_runtime::driver::drive;
    use ampc_runtime::AmpcConfig;

    fn cfg() -> AmpcConfig {
        AmpcConfig::for_tests()
    }

    #[test]
    fn trait_run_matches_direct_mis() {
        let g = gen::erdos_renyi(120, 360, 3);
        let c = cfg();
        let direct = mis::ampc_mis(&g, &c);
        let alg = AmpcMis;
        let input = AlgoInput::Unweighted(&g);
        let driven = drive(&c, |job| alg.run(job, &input));
        assert_eq!(driven.output, AlgoOutput::Mis(direct.in_mis));
        assert_eq!(driven.report.num_shuffles(), direct.report.num_shuffles());
        assert_eq!(driven.report.sim_ns(), direct.report.sim_ns());
        alg.validate(&input, &driven.output).unwrap();
    }

    #[test]
    fn input_kind_checks() {
        let g = gen::erdos_renyi(30, 60, 1);
        let input = AlgoInput::Unweighted(&g);
        assert!(input.satisfies(InputKind::Unweighted).is_ok());
        assert!(input.satisfies(InputKind::Weighted).is_err());
        assert!(input.satisfies(InputKind::CycleUnion).is_err());

        let cyc = gen::single_cycle(50, 2);
        assert!(AlgoInput::Unweighted(&cyc)
            .satisfies(InputKind::CycleUnion)
            .is_ok());

        let w = gen::degree_weights(&g);
        let wi = AlgoInput::Weighted(&w);
        assert!(wi.satisfies(InputKind::Weighted).is_ok());
        assert!(wi.satisfies(InputKind::Unweighted).is_ok());
    }

    #[test]
    fn output_sizes_and_digests() {
        let mis_out = AlgoOutput::Mis(vec![true, false, true]);
        assert_eq!(mis_out.size(), 2);
        assert_eq!(mis_out.kind(), "mis");
        let m = AlgoOutput::Matching(vec![1, 0, NO_NODE]);
        assert_eq!(m.size(), 1);
        let c = AlgoOutput::Components(vec![0, 0, 2]);
        assert_eq!(c.size(), 2);
        // Digests are order-sensitive and distinguish unequal outputs.
        let a = AlgoOutput::Mis(vec![true, false]);
        let b = AlgoOutput::Mis(vec![false, true]);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn validate_rejects_wrong_components() {
        let g = gen::path(4);
        let input = AlgoInput::Unweighted(&g);
        let bad = AlgoOutput::Components(vec![0, 0, 1, 1]);
        assert!(validate_output("cc", &input, &bad).is_err());
    }

    #[test]
    fn walks_validation_checks_shape() {
        let g = gen::erdos_renyi(20, 60, 5);
        let alg = AmpcWalks {
            walkers_per_node: 1,
            steps: 3,
        };
        let input = AlgoInput::Unweighted(&g);
        let driven = drive(&cfg(), |job| alg.run(job, &input));
        alg.validate(&input, &driven.output).unwrap();
        let AlgoOutput::Walks(mut w) = driven.output else {
            unreachable!()
        };
        w[0].pop();
        assert!(alg.validate(&input, &AlgoOutput::Walks(w)).is_err());
    }
}
