//! # ampc-core — constant-round AMPC graph algorithms
//!
//! The primary contribution of the paper, implemented over the simulated
//! AMPC substrate (`ampc-runtime` + `ampc-dht`):
//!
//! * [`mis`] — maximal independent set via the Yoshida et al. query
//!   process run inside a single KV round (Figure 1 / Proposition 4.2;
//!   §5.3 case study), with the caching and multithreading optimizations.
//! * [`matching`] — maximal matching: the O(1)-round vertex-truncated
//!   query process of §4.2 (Theorem 2, part 2), the O(log log n)-round
//!   subsampled algorithm of §4.1 (Algorithm 4), and the approximation
//!   wrappers of Corollary 4.1.
//! * [`msf`] — minimum spanning forest: Algorithm 1 (TruncatedPrim),
//!   Algorithm 2 (ternarization), the §5.5 five-shuffle production
//!   pipeline, the DenseMSF fallback (Proposition 3.1), and the
//!   Karger–Klein–Tarjan sampling reduction (Algorithm 3 + Appendix B)
//!   that yields Theorem 1's O(m + n log² n) query bound.
//! * [`connectivity`] — connected components from a spanning forest plus
//!   forest connectivity (Proposition 3.2).
//! * [`dynamic`] — batch-dynamic connectivity: component labels
//!   maintained across edge-update batches, one DHT-generation epoch
//!   per batch, byte-identical to recomputation after every batch.
//! * [`one_vs_two`] — the O(1)-round 1-vs-2-cycle algorithm (§5.6).
//! * [`validate`] — result checkers used across the test suites.
//! * [`algorithm`] — the [`AmpcAlgorithm`] trait that exposes every
//!   kernel family (and, from `ampc-mpc`, every baseline) through one
//!   driver-composable interface: name, input requirements, in-job
//!   `run`, output validation.
//! * [`priorities`] — the shared random priorities: AMPC and MPC
//!   implementations seeded identically compute the *same* lex-first
//!   MIS/matching and the same (unique) MSF, which is the paper's own
//!   cross-validation strategy and ours.
//!
//! Every algorithm returns its result together with the
//! [`ampc_runtime::JobReport`] that the benchmark harness turns into the
//! paper's tables and figures.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod algorithm;
pub mod connectivity;
pub mod dynamic;
pub mod matching;
pub mod mis;
pub mod msf;
pub mod one_vs_two;
pub mod prim;
pub mod priorities;
pub mod validate;
pub mod walks;

pub use algorithm::{AlgoInput, AlgoOutput, AmpcAlgorithm, InputKind, Model};
