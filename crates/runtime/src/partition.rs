//! Data partitioning across machines.
//!
//! Two strategies, matching what the paper's stages do: contiguous
//! chunking (for pre-balanced vertex ranges) and hash partitioning by
//! key (what a real shuffle does — and the source of the join skew the
//! paper observes on high-degree ClueWeb vertices).

use ampc_dht::hasher::mix64;

/// Splits `items` into `p` contiguous chunks whose sizes differ by at
/// most one. Returns exactly `p` vectors (some possibly empty).
pub fn chunk<T>(items: Vec<T>, p: usize) -> Vec<Vec<T>> {
    assert!(p >= 1);
    let n = items.len();
    let base = n / p;
    let extra = n % p;
    let mut out = Vec::with_capacity(p);
    let mut it = items.into_iter();
    for i in 0..p {
        let take = base + usize::from(i < extra);
        out.push(it.by_ref().take(take).collect());
    }
    out
}

/// Hash-partitions `items` into `p` buckets by `key(item)`; all items
/// with equal keys land on the same machine (the shuffle guarantee).
/// A `salt` decorrelates placement across stages.
pub fn by_key<T>(items: Vec<T>, p: usize, salt: u64, key: impl Fn(&T) -> u64) -> Vec<Vec<T>> {
    assert!(p >= 1);
    let mut out: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
    for item in items {
        let h = mix64(key(&item) ^ salt);
        out[(h % p as u64) as usize].push(item);
    }
    out
}

/// The machine a key lands on under [`by_key`] partitioning.
#[inline]
pub fn machine_of(key: u64, p: usize, salt: u64) -> usize {
    (mix64(key ^ salt) % p as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_balanced() {
        let parts = chunk((0..10).collect::<Vec<_>>(), 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], vec![0, 1, 2, 3]);
        assert_eq!(parts[1], vec![4, 5, 6]);
        assert_eq!(parts[2], vec![7, 8, 9]);
    }

    #[test]
    fn chunk_more_machines_than_items() {
        let parts = chunk(vec![1, 2], 5);
        assert_eq!(parts.len(), 5);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 2);
    }

    #[test]
    fn by_key_groups_equal_keys() {
        let items: Vec<u64> = (0..100).map(|i| i % 7).collect();
        let parts = by_key(items, 4, 0, |&x| x);
        for part in &parts {
            // within a part, check every key appears wholly here
            for &k in part {
                assert_eq!(
                    machine_of(k, 4, 0),
                    parts.iter().position(|p| p.contains(&k)).unwrap()
                );
            }
        }
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 100);
    }

    #[test]
    fn salt_changes_placement() {
        let keys: Vec<u64> = (0..64).collect();
        let a: Vec<usize> = keys.iter().map(|&k| machine_of(k, 8, 1)).collect();
        let b: Vec<usize> = keys.iter().map(|&k| machine_of(k, 8, 2)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn by_key_spreads_distinct_keys() {
        let items: Vec<u64> = (0..1000).collect();
        let parts = by_key(items, 10, 0, |&x| x);
        let max = parts.iter().map(Vec::len).max().unwrap();
        let min = parts.iter().map(Vec::len).min().unwrap();
        assert!(max < 2 * min.max(1), "imbalanced: {min}..{max}");
    }
}
