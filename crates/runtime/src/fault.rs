//! Fault injection: preemption of a machine mid-round, and replay.
//!
//! §2 of the paper: *"An important characteristic of the AMPC model is
//! that it is amenable to fault tolerant implementation … A fault
//! tolerant implementation of AMPC can be derived by observing that each
//! DHT can be made fault-tolerant."* Concretely: a round only reads
//! sealed (immutable) generations, so if a machine is preempted —
//! routine in the low-priority batch tier the paper targets (§5.1) —
//! the scheduler replays its partition against the same inputs and gets
//! the same outputs.
//!
//! [`FaultPlan`] requests such a preemption during a chosen stage; the
//! [`crate::Job`] kills the machine's first attempt (discarding its
//! outputs), replays it, and charges the extra simulated time. The
//! integration tests assert the end result is byte-identical to a
//! fault-free run.

/// A planned preemption.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Index of the stage (0-based, counting every stage of the job)
    /// during which the machine is preempted.
    pub stage_index: usize,
    /// The machine to preempt. Clamped to the machine count at
    /// execution time.
    pub machine: usize,
    /// Fraction of the machine's work completed before the preemption
    /// (only affects the simulated-time charge for the wasted attempt).
    /// The runtime charges the sanitized value
    /// ([`Self::charge_progress`]): clamped to `[0, 1]`, with
    /// non-finite inputs treated as the 0.5 default (and rejected by a
    /// debug assertion in [`Self::with_progress`]).
    pub progress: f64,
}

/// Clamps a progress fraction to `[0, 1]`; non-finite values fall back
/// to the 0.5 default.
#[inline]
fn sanitize_progress(p: f64) -> f64 {
    if p.is_finite() {
        p.clamp(0.0, 1.0)
    } else {
        0.5
    }
}

impl FaultPlan {
    /// Preempt `machine` during stage `stage_index`, halfway through.
    pub fn new(stage_index: usize, machine: usize) -> Self {
        FaultPlan {
            stage_index,
            machine,
            progress: 0.5,
        }
    }

    /// Sets the progress fraction, sanitized at construction: clamped
    /// to `[0, 1]`. Non-finite values panic in debug builds and fall
    /// back to the 0.5 default in release builds.
    pub fn with_progress(mut self, progress: f64) -> Self {
        debug_assert!(
            progress.is_finite(),
            "FaultPlan progress must be finite, got {progress}"
        );
        self.progress = sanitize_progress(progress);
        self
    }

    /// The progress fraction the runtime charges wasted time with:
    /// [`Self::progress`] sanitized to a finite value in `[0, 1]`
    /// (the field itself stays public and uncooked for back-compat
    /// with struct-literal construction).
    #[inline]
    pub fn charge_progress(&self) -> f64 {
        sanitize_progress(self.progress)
    }

    /// Does this plan fire for the given stage?
    #[inline]
    pub fn fires_at(&self, stage_index: usize) -> bool {
        self.stage_index == stage_index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_only_on_its_stage() {
        let f = FaultPlan::new(2, 1);
        assert!(!f.fires_at(0));
        assert!(f.fires_at(2));
        assert!(!f.fires_at(3));
    }

    #[test]
    fn with_progress_clamps_to_unit_interval() {
        assert_eq!(FaultPlan::new(0, 0).with_progress(-0.5).progress, 0.0);
        assert_eq!(FaultPlan::new(0, 0).with_progress(7.0).progress, 1.0);
        assert_eq!(FaultPlan::new(0, 0).with_progress(0.25).progress, 0.25);
    }

    #[test]
    fn charge_progress_sanitizes_raw_field() {
        let mut f = FaultPlan::new(0, 0);
        f.progress = 3.0;
        assert_eq!(f.charge_progress(), 1.0);
        f.progress = -1.0;
        assert_eq!(f.charge_progress(), 0.0);
        f.progress = f64::NAN;
        assert_eq!(f.charge_progress(), 0.5);
        f.progress = f64::INFINITY;
        assert_eq!(f.charge_progress(), 0.5);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "must be finite")]
    fn with_progress_rejects_non_finite_in_debug() {
        let _ = FaultPlan::new(0, 0).with_progress(f64::NAN);
    }
}
