//! Fault injection: preemption of a machine mid-round, and replay.
//!
//! §2 of the paper: *"An important characteristic of the AMPC model is
//! that it is amenable to fault tolerant implementation … A fault
//! tolerant implementation of AMPC can be derived by observing that each
//! DHT can be made fault-tolerant."* Concretely: a round only reads
//! sealed (immutable) generations, so if a machine is preempted —
//! routine in the low-priority batch tier the paper targets (§5.1) —
//! the scheduler replays its partition against the same inputs and gets
//! the same outputs.
//!
//! [`FaultPlan`] requests such a preemption during a chosen stage; the
//! [`crate::Job`] kills the machine's first attempt (discarding its
//! outputs), replays it, and charges the extra simulated time. The
//! integration tests assert the end result is byte-identical to a
//! fault-free run.

/// A planned preemption.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Index of the stage (0-based, counting every stage of the job)
    /// during which the machine is preempted.
    pub stage_index: usize,
    /// The machine to preempt. Clamped to the machine count at
    /// execution time.
    pub machine: usize,
    /// Fraction of the machine's work completed before the preemption
    /// (only affects the simulated-time charge for the wasted attempt).
    pub progress: f64,
}

impl FaultPlan {
    /// Preempt `machine` during stage `stage_index`, halfway through.
    pub fn new(stage_index: usize, machine: usize) -> Self {
        FaultPlan {
            stage_index,
            machine,
            progress: 0.5,
        }
    }

    /// Does this plan fire for the given stage?
    #[inline]
    pub fn fires_at(&self, stage_index: usize) -> bool {
        self.stage_index == stage_index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_only_on_its_stage() {
        let f = FaultPlan::new(2, 1);
        assert!(!f.fires_at(0));
        assert!(f.fires_at(2));
        assert!(!f.fires_at(3));
    }
}
