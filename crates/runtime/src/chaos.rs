//! Seeded chaos schedules: deterministic multi-fault injection.
//!
//! [`crate::fault::FaultPlan`] preempts one machine during one stage.
//! Production conditions — the low-priority batch tier of the paper's
//! §5.1 serving environment — are messier: several machines die in the
//! same round, the same machine dies repeatedly, a whole rack stripe
//! fails together, and DHT request batches time out and are re-sent.
//! A [`ChaosSpec`] describes such a schedule, either as explicit kill
//! lists or as seeded random generation, and a [`FaultSchedule`]
//! materializes it for one job. Everything is a pure function of the
//! spec: no wall clock, no ambient randomness (DESIGN.md §3), so the
//! same spec replays the same faults in the same order on every run.
//!
//! Recovery is the §2 argument made executable: rounds read only
//! *sealed* (immutable) DHT generations, so a killed machine's
//! partition is replayed against the same inputs and produces the same
//! outputs; replayed writes re-resolve duplicate keys by lowest machine
//! id, so the sealed result is byte-identical too. For the
//! batch-dynamic `dyn-cc` pipeline, epoch kills ([`ChaosSpec::with_epoch_kill`])
//! fire at the first KV round of their epoch — mid-epoch, after the
//! previous batch's generation sealed — and recovery replays the
//! affected partition against that last sealed generation. The full
//! grammar, charging rules and determinism argument are in DESIGN.md
//! §10.

use ampc_dht::fault::DropPlan;

/// Maximum number of explicit kill events per list (`kill=` and
/// `ekill=` each): the spec stays `Copy` (it rides inside
/// [`crate::AmpcConfig`], which jobs take by value), so the lists are
/// fixed-capacity arrays. Eight planned kills per list is far beyond
/// any test schedule; seeded generation covers unbounded schedules.
pub const MAX_EXPLICIT_KILLS: usize = 8;

/// Default retry cap for dropped DHT batches: after this many
/// consecutive drops of one batch, the next attempt always succeeds.
pub const DEFAULT_RETRY_CAP: u8 = 4;

/// Upper bound accepted for `retries=` in the spec grammar: the
/// exponential backoff of a batch that dropped `k` times contributes
/// `2^k − 1` backoff units, so the cap keeps charged time bounded.
pub const MAX_RETRY_CAP: u8 = 16;

/// SplitMix64 finalizer — the seeded mixer behind every chaos decision.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One seeded roll in `0..1000` (per-mille), keyed by a salt and two
/// coordinates (stage/machine, stage/group, …).
#[inline]
fn roll_pm(seed: u64, salt: u64, a: u64, b: u64) -> u64 {
    mix64(seed ^ salt ^ mix64(a ^ mix64(b))) % 1000
}

const KILL_SALT: u64 = 0x4B49_4C4C; // "KILL"
const PROGRESS_SALT: u64 = 0x5052_4F47; // "PROG"
const DROP_SALT: u64 = 0x4452_4F50; // "DROP"

/// A chaos schedule: which machines die when, and how lossy the DHT is.
///
/// Constructed from the `AMPC_CHAOS` / `--chaos` spec grammar
/// ([`ChaosSpec::parse`], DESIGN.md §10) or programmatically via the
/// builders. `parse ∘ describe = id`: [`ChaosSpec::describe`] renders
/// the canonical spec string (defaults omitted, segments in canonical
/// order) and parsing it back yields an equal spec.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosSpec {
    /// Seed for every seeded decision (kills, wasted-progress
    /// fractions, batch drops).
    pub seed: u64,
    /// Seeded preemption probability per `(stage, machine)` — or per
    /// `(stage, stripe group)` when [`Self::stripe`] is set — in
    /// per-mille (`0..=1000`). `0` disables seeded kills.
    pub rate_pm: u16,
    /// Per-attempt DHT batch drop probability in per-mille
    /// (`0..=1000`). `0` disables the DHT fault mode.
    pub drop_pm: u16,
    /// Retry cap for dropped batches (`0..=`[`MAX_RETRY_CAP`]).
    pub retries: u8,
    /// Correlated-failure stripe width: when `> 1`, seeded kill
    /// decisions are made per group `g = machine % stripe`, and a
    /// firing group kills **every** machine in that stripe together
    /// (the rack-failure pattern). `0` or `1` means independent
    /// per-machine decisions.
    pub stripe: u16,
    kills: [(u32, u32); MAX_EXPLICIT_KILLS],
    n_kills: u8,
    ekills: [(u32, u32); MAX_EXPLICIT_KILLS],
    n_ekills: u8,
}

impl ChaosSpec {
    /// An empty schedule seeded with `seed`: no kills, no drops, until
    /// builders add them. Useful as the programmatic starting point.
    pub fn new(seed: u64) -> Self {
        ChaosSpec {
            seed,
            rate_pm: 0,
            drop_pm: 0,
            retries: DEFAULT_RETRY_CAP,
            stripe: 0,
            kills: [(0, 0); MAX_EXPLICIT_KILLS],
            n_kills: 0,
            ekills: [(0, 0); MAX_EXPLICIT_KILLS],
            n_ekills: 0,
        }
    }

    /// The default *seeded random* schedule for a bare-integer
    /// `AMPC_CHAOS=<seed>`: a 6% per-(stage, machine) preemption rate
    /// and a 4% per-attempt batch drop rate — enough to exercise every
    /// kernel family without drowning the run in replays.
    pub fn seeded(seed: u64) -> Self {
        ChaosSpec {
            rate_pm: 60,
            drop_pm: 40,
            ..ChaosSpec::new(seed)
        }
    }

    /// Sets the seeded per-(stage, machine) kill rate in per-mille.
    ///
    /// # Panics
    /// Panics if `rate_pm > 1000`.
    pub fn with_rate(mut self, rate_pm: u16) -> Self {
        assert!(rate_pm <= 1000, "rate is per-mille (0..=1000)");
        self.rate_pm = rate_pm;
        self
    }

    /// Sets the per-attempt DHT batch drop rate in per-mille.
    ///
    /// # Panics
    /// Panics if `drop_pm > 1000`.
    pub fn with_drop(mut self, drop_pm: u16) -> Self {
        assert!(drop_pm <= 1000, "drop is per-mille (0..=1000)");
        self.drop_pm = drop_pm;
        self
    }

    /// Sets the retry cap for dropped batches.
    ///
    /// # Panics
    /// Panics if `retries > `[`MAX_RETRY_CAP`].
    pub fn with_retries(mut self, retries: u8) -> Self {
        assert!(retries <= MAX_RETRY_CAP, "retry cap is 0..={MAX_RETRY_CAP}");
        self.retries = retries;
        self
    }

    /// Sets the correlated-failure stripe width.
    pub fn with_stripe(mut self, stripe: u16) -> Self {
        self.stripe = stripe;
        self
    }

    /// Adds an explicit kill: preempt `machine` (modulo the machine
    /// count at execution time) during global stage `stage`. The same
    /// `(stage, machine)` pair may be added repeatedly — each
    /// occurrence is a separate preemption and a separate replay.
    ///
    /// # Panics
    /// Panics past [`MAX_EXPLICIT_KILLS`] events.
    pub fn with_kill(mut self, stage: u32, machine: u32) -> Self {
        let n = self.n_kills as usize;
        assert!(
            n < MAX_EXPLICIT_KILLS,
            "at most {MAX_EXPLICIT_KILLS} kill events"
        );
        self.kills[n] = (stage, machine);
        self.n_kills += 1;
        self
    }

    /// Adds an explicit epoch kill: preempt `machine` at the **first KV
    /// round** of epoch `epoch` (0-based, in [`crate::Job::epoch`]
    /// order) — a mid-epoch crash for the batch-dynamic kernels, recovered
    /// by replaying against the last sealed generation.
    ///
    /// # Panics
    /// Panics past [`MAX_EXPLICIT_KILLS`] events.
    pub fn with_epoch_kill(mut self, epoch: u32, machine: u32) -> Self {
        let n = self.n_ekills as usize;
        assert!(
            n < MAX_EXPLICIT_KILLS,
            "at most {MAX_EXPLICIT_KILLS} ekill events"
        );
        self.ekills[n] = (epoch, machine);
        self.n_ekills += 1;
        self
    }

    /// The explicit `(stage, machine)` kill events, in insertion order.
    pub fn kills(&self) -> &[(u32, u32)] {
        &self.kills[..self.n_kills as usize]
    }

    /// The explicit `(epoch, machine)` kill events, in insertion order.
    pub fn epoch_kills(&self) -> &[(u32, u32)] {
        &self.ekills[..self.n_ekills as usize]
    }

    /// Parses a chaos spec (the `AMPC_CHAOS` / `--chaos` grammar,
    /// DESIGN.md §10):
    ///
    /// ```text
    /// chaos:seed=S[:rate=R][:drop=D][:retries=C][:stripe=K]
    ///      [:kill=a.b+c.d+…][:ekill=e.m+…]
    /// ```
    ///
    /// or a bare unsigned integer, shorthand for the default seeded
    /// random schedule [`ChaosSpec::seeded`]. Segment order is free on
    /// input; duplicate keys, unknown keys, out-of-range values and
    /// overlong kill lists are errors. [`Self::describe`] renders the
    /// canonical form and `parse(describe(s)) == s` for every spec.
    pub fn parse(spec: &str) -> Result<ChaosSpec, String> {
        if let Ok(seed) = spec.trim().parse::<u64>() {
            return Ok(ChaosSpec::seeded(seed));
        }
        let rest = spec.strip_prefix("chaos:").ok_or_else(|| {
            format!("chaos spec must start with `chaos:` or be a bare seed: {spec:?}")
        })?;
        let mut out = ChaosSpec::new(0);
        let mut seen: Vec<&str> = Vec::new();
        for seg in rest.split(':') {
            let (key, value) = seg
                .split_once('=')
                .ok_or_else(|| format!("chaos spec segment {seg:?} is not key=value"))?;
            if seen.contains(&key) {
                return Err(format!("duplicate chaos spec key {key:?}"));
            }
            seen.push(key);
            let num = |what: &str, v: &str| -> Result<u64, String> {
                v.parse::<u64>()
                    .map_err(|_| format!("chaos spec {what}={v:?} is not an unsigned integer"))
            };
            let pm = |what: &str, v: &str| -> Result<u16, String> {
                let n = num(what, v)?;
                if n > 1000 {
                    return Err(format!("chaos spec {what}={n} exceeds 1000 (per-mille)"));
                }
                Ok(n as u16)
            };
            match key {
                "seed" => out.seed = num("seed", value)?,
                "rate" => out.rate_pm = pm("rate", value)?,
                "drop" => out.drop_pm = pm("drop", value)?,
                "retries" => {
                    let n = num("retries", value)?;
                    if n > u64::from(MAX_RETRY_CAP) {
                        return Err(format!("chaos spec retries={n} exceeds {MAX_RETRY_CAP}"));
                    }
                    out.retries = n as u8;
                }
                "stripe" => {
                    let n = num("stripe", value)?;
                    if n > u64::from(u16::MAX) {
                        return Err(format!("chaos spec stripe={n} is out of range"));
                    }
                    out.stripe = n as u16;
                }
                "kill" | "ekill" => {
                    for pair in value.split('+') {
                        let (a, b) = pair.split_once('.').ok_or_else(|| {
                            format!("chaos spec {key} pair {pair:?} is not <at>.<machine>")
                        })?;
                        let at = num(key, a)?;
                        let machine = num(key, b)?;
                        if at > u64::from(u32::MAX) || machine > u64::from(u32::MAX) {
                            return Err(format!("chaos spec {key} pair {pair:?} is out of range"));
                        }
                        out = if key == "kill" {
                            if out.n_kills as usize == MAX_EXPLICIT_KILLS {
                                return Err(format!(
                                    "chaos spec kill list exceeds {MAX_EXPLICIT_KILLS} events"
                                ));
                            }
                            out.with_kill(at as u32, machine as u32)
                        } else {
                            if out.n_ekills as usize == MAX_EXPLICIT_KILLS {
                                return Err(format!(
                                    "chaos spec ekill list exceeds {MAX_EXPLICIT_KILLS} events"
                                ));
                            }
                            out.with_epoch_kill(at as u32, machine as u32)
                        };
                    }
                }
                _ => return Err(format!("unknown chaos spec key {key:?}")),
            }
        }
        Ok(out)
    }

    /// Renders the canonical spec string: `seed=` always, every other
    /// segment only when it differs from its default, in the fixed
    /// order `rate`, `drop`, `retries`, `stripe`, `kill`, `ekill`.
    /// Inverse of [`Self::parse`] (`parse ∘ describe = id`).
    pub fn describe(&self) -> String {
        use std::fmt::Write;
        let mut out = format!("chaos:seed={}", self.seed);
        if self.rate_pm != 0 {
            let _ = write!(out, ":rate={}", self.rate_pm);
        }
        if self.drop_pm != 0 {
            let _ = write!(out, ":drop={}", self.drop_pm);
        }
        if self.retries != DEFAULT_RETRY_CAP {
            let _ = write!(out, ":retries={}", self.retries);
        }
        if self.stripe != 0 {
            let _ = write!(out, ":stripe={}", self.stripe);
        }
        for (label, events) in [("kill", self.kills()), ("ekill", self.epoch_kills())] {
            if events.is_empty() {
                continue;
            }
            let pairs: Vec<String> = events.iter().map(|(a, m)| format!("{a}.{m}")).collect();
            let _ = write!(out, ":{label}={}", pairs.join("+"));
        }
        out
    }
}

/// A [`ChaosSpec`] materialized for one job: answers, per stage, who
/// dies, how much wasted progress each death charges, and how lossy the
/// DHT is. Stateless and `Copy` — every answer is a pure function of
/// the spec and the stage coordinates, which is what makes replay
/// deterministic.
#[derive(Clone, Copy, Debug)]
pub struct FaultSchedule {
    spec: ChaosSpec,
}

impl FaultSchedule {
    /// Materializes `spec`.
    pub fn new(spec: ChaosSpec) -> Self {
        FaultSchedule { spec }
    }

    /// The underlying spec.
    pub fn spec(&self) -> &ChaosSpec {
        &self.spec
    }

    /// The machines preempted during KV stage `stage`, **sorted
    /// ascending** (the documented deterministic replay order), with
    /// duplicates preserved (a machine listed twice is killed and
    /// replayed twice). `epoch_first_kv` is `Some(e)` when this stage
    /// is the first KV round of epoch `e` — the point where `ekill=`
    /// events fire. Machine indices wrap modulo `machines`.
    ///
    /// Per stage the victim count is bounded by the explicit events
    /// plus one seeded kill per machine, so replays can never loop
    /// unboundedly (the preemption analogue of the DHT retry cap).
    pub fn victims(
        &self,
        stage: usize,
        epoch_first_kv: Option<usize>,
        machines: usize,
    ) -> Vec<usize> {
        let mut v = Vec::new();
        if machines == 0 {
            return v;
        }
        for &(s, m) in self.spec.kills() {
            if s as usize == stage {
                v.push(m as usize % machines);
            }
        }
        if let Some(epoch) = epoch_first_kv {
            for &(e, m) in self.spec.epoch_kills() {
                if e as usize == epoch {
                    v.push(m as usize % machines);
                }
            }
        }
        let rate = u64::from(self.spec.rate_pm);
        if rate > 0 {
            if self.spec.stripe > 1 {
                // Correlated mode: one roll per stripe group; a firing
                // group takes its whole stripe down together.
                let groups = (self.spec.stripe as usize).min(machines);
                for g in 0..groups {
                    if roll_pm(self.spec.seed, KILL_SALT, stage as u64, g as u64) < rate {
                        v.extend((g..machines).step_by(groups));
                    }
                }
            } else {
                for m in 0..machines {
                    if roll_pm(self.spec.seed, KILL_SALT, stage as u64, m as u64) < rate {
                        v.push(m);
                    }
                }
            }
        }
        v.sort_unstable();
        v
    }

    /// The fraction of `machine`'s work completed before its preemption
    /// in `stage` — the wasted-attempt charge, in `[0, 1]`. Seeded, so
    /// the charge (and hence the simulated time) is deterministic.
    pub fn progress(&self, stage: usize, machine: usize) -> f64 {
        (roll_pm(self.spec.seed, PROGRESS_SALT, stage as u64, machine as u64) + 1) as f64 / 1000.0
    }

    /// The DHT drop plan for `stage`, or `None` when the DHT fault mode
    /// is off. The plan's seed is mixed with the stage index so each
    /// stage rolls fresh drops, while a replay of the same stage rolls
    /// the same ones.
    pub fn drop_plan(&self, stage: usize) -> Option<DropPlan> {
        if self.spec.drop_pm == 0 {
            return None;
        }
        Some(DropPlan {
            seed: mix64(self.spec.seed ^ DROP_SALT ^ stage as u64),
            drop_pm: self.spec.drop_pm,
            retry_cap: self.spec.retries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_describe_round_trips() {
        let specs = [
            "chaos:seed=0",
            "chaos:seed=42",
            "chaos:seed=7:rate=150",
            "chaos:seed=7:drop=80",
            "chaos:seed=7:rate=60:drop=40",
            "chaos:seed=9:rate=100:drop=50:retries=2:stripe=4",
            "chaos:seed=1:kill=0.2",
            "chaos:seed=1:kill=0.2+0.2+3.1:ekill=1.0+2.3",
            "chaos:seed=1:retries=0",
        ];
        for s in specs {
            let parsed = ChaosSpec::parse(s).unwrap();
            assert_eq!(parsed.describe(), s, "describe must be canonical");
            assert_eq!(ChaosSpec::parse(&parsed.describe()).unwrap(), parsed);
        }
    }

    #[test]
    fn bare_seed_is_the_seeded_default() {
        let spec = ChaosSpec::parse("1234").unwrap();
        assert_eq!(spec, ChaosSpec::seeded(1234));
        assert!(spec.rate_pm > 0 && spec.drop_pm > 0);
        // The canonical form of the shorthand round-trips too.
        assert_eq!(ChaosSpec::parse(&spec.describe()).unwrap(), spec);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "chaos",
            "chaos:",
            "chaos:seed",
            "chaos:seed=x",
            "chaos:seed=1:seed=2",
            "chaos:rate=1001",
            "chaos:drop=2000",
            "chaos:retries=17",
            "chaos:stripe=70000",
            "chaos:kill=1",
            "chaos:kill=1.x",
            "chaos:frobnicate=1",
            "mayhem:seed=1",
            "-5",
            "chaos:kill=0.0+0.0+0.0+0.0+0.0+0.0+0.0+0.0+0.0",
        ] {
            assert!(ChaosSpec::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn builders_match_grammar() {
        let built = ChaosSpec::new(9)
            .with_rate(100)
            .with_drop(50)
            .with_retries(2)
            .with_stripe(4)
            .with_kill(0, 2)
            .with_epoch_kill(1, 0);
        let parsed =
            ChaosSpec::parse("chaos:seed=9:rate=100:drop=50:retries=2:stripe=4:kill=0.2:ekill=1.0")
                .unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn victims_sorted_with_repeats_and_wraparound() {
        let spec = ChaosSpec::new(1)
            .with_kill(2, 3)
            .with_kill(2, 3)
            .with_kill(2, 5);
        let sched = FaultSchedule::new(spec);
        // machine 5 % 4 = 1; sorted ascending with the repeat preserved.
        assert_eq!(sched.victims(2, None, 4), vec![1, 3, 3]);
        assert!(sched.victims(0, None, 4).is_empty());
        assert!(sched.victims(2, None, 0).is_empty());
    }

    #[test]
    fn epoch_kills_fire_only_at_their_epochs_first_kv_round() {
        let spec = ChaosSpec::new(1).with_epoch_kill(1, 2);
        let sched = FaultSchedule::new(spec);
        assert!(sched.victims(5, None, 4).is_empty());
        assert!(sched.victims(5, Some(0), 4).is_empty());
        assert_eq!(sched.victims(5, Some(1), 4), vec![2]);
    }

    #[test]
    fn seeded_kills_are_deterministic_and_rate_sensitive() {
        let sched = FaultSchedule::new(ChaosSpec::new(77).with_rate(300));
        let all: Vec<Vec<usize>> = (0..32).map(|s| sched.victims(s, None, 8)).collect();
        assert_eq!(
            all,
            (0..32)
                .map(|s| sched.victims(s, None, 8))
                .collect::<Vec<_>>()
        );
        let total: usize = all.iter().map(Vec::len).sum();
        assert!(total > 0, "a 30% rate over 256 cells must kill someone");
        let none = FaultSchedule::new(ChaosSpec::new(77));
        assert!((0..32).all(|s| none.victims(s, None, 8).is_empty()));
    }

    #[test]
    fn stripe_kills_whole_groups() {
        let sched = FaultSchedule::new(ChaosSpec::new(5).with_rate(400).with_stripe(2));
        for stage in 0..16 {
            let v = sched.victims(stage, None, 8);
            // Victims arrive in whole stripes: all even or all odd
            // machines (or both, or none).
            for group in [0usize, 1] {
                let members: Vec<usize> = (group..8).step_by(2).collect();
                let hit = members.iter().filter(|m| v.contains(m)).count();
                assert!(
                    hit == 0 || hit == members.len(),
                    "stage {stage}: partial stripe {group} in {v:?}"
                );
            }
        }
    }

    #[test]
    fn progress_is_in_unit_interval() {
        let sched = FaultSchedule::new(ChaosSpec::new(3).with_rate(1000));
        for stage in 0..8 {
            for m in 0..8 {
                let p = sched.progress(stage, m);
                assert!((0.0..=1.0).contains(&p), "{p}");
            }
        }
    }

    #[test]
    fn drop_plan_varies_by_stage_but_not_by_run() {
        let sched = FaultSchedule::new(ChaosSpec::new(11).with_drop(200));
        let a = sched.drop_plan(0).unwrap();
        let b = sched.drop_plan(1).unwrap();
        assert_ne!(a.seed, b.seed, "stages roll independent drops");
        assert_eq!(sched.drop_plan(0).unwrap(), a);
        assert_eq!(a.retry_cap, DEFAULT_RETRY_CAP);
        assert!(FaultSchedule::new(ChaosSpec::new(11))
            .drop_plan(0)
            .is_none());
    }
}
