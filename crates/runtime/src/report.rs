//! Per-stage and per-job execution reports.
//!
//! Everything the paper's evaluation plots is a function of these
//! records: shuffle counts (Table 3), bytes shuffled and KV-store bytes
//! (Figures 3 & 9), running-time breakdowns by stage (Figures 5–7),
//! and scaling over machines (Figure 8).

use ampc_dht::cost::format_ns;
use ampc_dht::metrics::CommStats;
use serde::{Deserialize, Serialize};

/// The kind of a stage, determining how it is charged.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StageKind {
    /// A dataflow shuffle: data regrouped by key and persisted to
    /// durable storage. The "costly rounds" counted in Table 3.
    Shuffle,
    /// An AMPC round: machines process their partition while querying
    /// the key-value store.
    KvRound,
    /// A single-machine in-memory step (the "switch to in-memory"
    /// finish used by both model's implementations).
    Local,
}

/// Metrics of one executed stage.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StageReport {
    /// Stage name (e.g. `"DirectGraph"`, `"IsInMIS"`, `"Contract"`).
    pub name: String,
    /// How the stage was charged.
    pub kind: StageKind,
    /// Merged KV-store communication of all machines.
    pub comm: CommStats,
    /// Total bytes moved by the shuffle (0 for non-shuffle stages).
    pub shuffle_bytes: u64,
    /// Bytes handled by the most loaded machine in the shuffle —
    /// captures the join skew the paper observes on ClueWeb (§5.3).
    pub shuffle_bytes_max_machine: u64,
    /// Serialized size of the sealed generation this stage read (KV
    /// rounds only; 0 elsewhere). Read from the size cached at seal
    /// time, so recording it is O(1) per round.
    pub gen_bytes: u64,
    /// Local computation operations (summed over machines).
    pub ops: u64,
    /// Simulated time of the stage (deterministic; the bottleneck
    /// machine's cost plus fixed overheads).
    pub sim_ns: u64,
    /// Wall-clock time the simulation itself took (informational).
    pub wall_ns: u64,
    /// Machines killed and replayed during this stage by fault
    /// injection (legacy single-fault plan plus chaos schedules —
    /// see [`crate::chaos`]). Zero outside fault runs; a machine
    /// killed twice in one stage counts twice.
    #[serde(default)]
    pub replays: u64,
}

/// An epoch boundary: a named position in the stage sequence. The
/// batch-dynamic kernels mark one epoch per update batch (each epoch
/// seals exactly one DHT generation), so reports can attribute rounds
/// and communication to batches.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EpochMark {
    /// Epoch name (e.g. `"DynEpoch-b3"`).
    pub name: String,
    /// Index (into [`JobReport::stages`]) of the epoch's first stage.
    pub first_stage: usize,
}

/// The full record of a job execution.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct JobReport {
    /// Stages in execution order.
    pub stages: Vec<StageReport>,
    /// Epoch boundaries, in execution order (empty for one-shot jobs).
    pub epochs: Vec<EpochMark>,
    /// Machine count the job ran with.
    pub num_machines: usize,
    /// Times a machine was killed and replayed by fault injection.
    pub replays: u64,
}

impl JobReport {
    /// New empty report for a `p`-machine job.
    pub fn new(p: usize) -> Self {
        JobReport {
            stages: Vec::new(),
            epochs: Vec::new(),
            num_machines: p,
            replays: 0,
        }
    }

    /// Number of epoch boundaries marked (0 for one-shot jobs).
    pub fn num_epochs(&self) -> usize {
        self.epochs.len()
    }

    /// The stage range `[first, end)` belonging to epoch `i`.
    pub fn epoch_stage_range(&self, i: usize) -> std::ops::Range<usize> {
        let first = self.epochs[i].first_stage;
        let end = self
            .epochs
            .get(i + 1)
            .map_or(self.stages.len(), |m| m.first_stage);
        first..end
    }

    /// Number of shuffles — the paper's primary round-cost metric
    /// (Table 3: *"A shuffle … is the only way a Flume-C++ worker can
    /// exchange big amounts of data"*).
    pub fn num_shuffles(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| s.kind == StageKind::Shuffle)
            .count()
    }

    /// Number of KV rounds (AMPC rounds that touch the hash table).
    pub fn num_kv_rounds(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| s.kind == StageKind::KvRound)
            .count()
    }

    /// Total simulated running time.
    pub fn sim_ns(&self) -> u64 {
        self.stages.iter().map(|s| s.sim_ns).sum()
    }

    /// Total wall-clock time of the simulation.
    pub fn wall_ns(&self) -> u64 {
        self.stages.iter().map(|s| s.wall_ns).sum()
    }

    /// Total bytes moved by shuffles (Figure 3's `*-Shuffle` bars).
    pub fn shuffle_bytes(&self) -> u64 {
        self.stages.iter().map(|s| s.shuffle_bytes).sum()
    }

    /// Merged KV communication (Figure 3's `AMPC-KV-Communication` bar,
    /// Figure 9's y-axis).
    pub fn kv_comm(&self) -> CommStats {
        CommStats::merged(self.stages.iter().map(|s| &s.comm))
    }

    /// Size of the largest sealed generation any KV round read — the
    /// job's peak DHT storage footprint (tracked by `perf_suite`).
    /// O(stages): each stage's figure was cached at seal time.
    pub fn peak_generation_bytes(&self) -> u64 {
        self.stages.iter().map(|s| s.gen_bytes).max().unwrap_or(0)
    }

    /// Charged KV round trips across all stages: one per batch under
    /// the §5.3 batching optimization, one per key in the single-key
    /// baseline. This is what lookup latency is billed on.
    pub fn kv_round_trips(&self) -> u64 {
        self.kv_comm().round_trips()
    }

    /// Simulated time attributed to each stage, as `(name, sim_ns)` in
    /// execution order — the running-time breakdowns of Figures 5–7.
    pub fn breakdown(&self) -> Vec<(String, u64)> {
        self.stages
            .iter()
            .map(|s| (s.name.clone(), s.sim_ns))
            .collect()
    }

    /// Simulated time of all stages whose name matches `name`.
    pub fn stage_sim_ns(&self, name: &str) -> u64 {
        self.stages
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.sim_ns)
            .sum()
    }

    /// Appends a stage.
    pub fn push(&mut self, stage: StageReport) {
        self.stages.push(stage);
    }

    /// Merges another report's stages after this one's (used when an
    /// algorithm delegates to a sub-algorithm and wants one flat
    /// report).
    pub fn absorb(&mut self, other: JobReport) {
        let offset = self.stages.len();
        self.epochs.extend(other.epochs.into_iter().map(|mut m| {
            m.first_stage += offset;
            m
        }));
        self.stages.extend(other.stages);
        self.replays += other.replays;
    }

    /// Multi-line human-readable summary.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "job on {} machines: {} stages ({} shuffles), sim time {}",
            self.num_machines,
            self.stages.len(),
            self.num_shuffles(),
            format_ns(self.sim_ns()),
        );
        for s in &self.stages {
            let _ = writeln!(
                out,
                "  [{:?}] {:<16} sim {:>9}  kv q={:<9} rt={:<7} kvB={:<11} shufB={:<11}",
                s.kind,
                s.name,
                format_ns(s.sim_ns),
                s.comm.queries,
                s.comm.round_trips(),
                s.comm.kv_bytes(),
                s.shuffle_bytes,
            );
        }
        let kv = self.kv_comm();
        let _ = writeln!(
            out,
            "  totals: kv bytes {} (hit rate {:.0}%), round trips {} of {} ops, \
             shuffle bytes {}, replays {}",
            kv.kv_bytes(),
            kv.cache_hit_rate() * 100.0,
            kv.round_trips(),
            kv.network_ops(),
            self.shuffle_bytes(),
            self.replays,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(name: &str, kind: StageKind, sim: u64) -> StageReport {
        StageReport {
            name: name.into(),
            kind,
            comm: CommStats::default(),
            shuffle_bytes: if kind == StageKind::Shuffle { 100 } else { 0 },
            shuffle_bytes_max_machine: 0,
            gen_bytes: if kind == StageKind::KvRound { 40 } else { 0 },
            ops: 0,
            sim_ns: sim,
            wall_ns: 1,
            replays: 0,
        }
    }

    #[test]
    fn counts_and_totals() {
        let mut r = JobReport::new(4);
        r.push(stage("a", StageKind::Shuffle, 10));
        r.push(stage("b", StageKind::KvRound, 20));
        r.push(stage("c", StageKind::Shuffle, 30));
        assert_eq!(r.num_shuffles(), 2);
        assert_eq!(r.num_kv_rounds(), 1);
        assert_eq!(r.sim_ns(), 60);
        assert_eq!(r.shuffle_bytes(), 200);
        assert_eq!(r.breakdown()[1], ("b".into(), 20));
        assert_eq!(r.stage_sim_ns("c"), 30);
        assert_eq!(r.peak_generation_bytes(), 40);
    }

    #[test]
    fn absorb_concatenates() {
        let mut a = JobReport::new(2);
        a.push(stage("x", StageKind::Local, 5));
        let mut b = JobReport::new(2);
        b.push(stage("y", StageKind::Local, 7));
        b.replays = 3;
        a.absorb(b);
        assert_eq!(a.stages.len(), 2);
        assert_eq!(a.replays, 3);
    }

    #[test]
    fn absorb_offsets_epoch_marks() {
        let mut a = JobReport::new(2);
        a.push(stage("x", StageKind::Local, 5));
        let mut b = JobReport::new(2);
        b.epochs.push(EpochMark {
            name: "e1".into(),
            first_stage: 0,
        });
        b.push(stage("y", StageKind::Local, 7));
        b.epochs.push(EpochMark {
            name: "e2".into(),
            first_stage: 1,
        });
        b.push(stage("z", StageKind::Local, 7));
        a.absorb(b);
        assert_eq!(a.num_epochs(), 2);
        assert_eq!(a.epochs[0].first_stage, 1);
        assert_eq!(a.epoch_stage_range(0), 1..2);
        assert_eq!(a.epoch_stage_range(1), 2..3);
    }

    #[test]
    fn summary_mentions_stage_names() {
        let mut r = JobReport::new(2);
        r.push(stage("IsInMIS", StageKind::KvRound, 5));
        assert!(r.summary().contains("IsInMIS"));
    }
}
