//! Runtime configuration.
//!
//! Environment knobs: every `AMPC_*` variable the workspace reads is
//! registered in the [`knobs`] registry re-exported here — `knobs::all()`
//! enumerates them with accepted values and defaults. The
//! `env-knob-registry` conformance rule (`ampc-lint` R6) keeps raw
//! `std::env::var` calls out of the rest of the tree.

use crate::chaos::ChaosSpec;
use crate::fault::FaultPlan;
use ampc_dht::cost::CostConfig;
use ampc_dht::store::StoreKind;

pub use ampc_knobs as knobs;

/// Configuration of a simulated AMPC/MPC execution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AmpcConfig {
    /// Optional fault injection: preempt a machine mid-stage and replay
    /// it (see [`crate::fault`]). `None` disables injection.
    pub fault: Option<FaultPlan>,
    /// Optional chaos schedule: seeded multi-fault kills and DHT batch
    /// drops with retry/backoff (see [`crate::chaos`]). `None` — the
    /// default unless the `AMPC_CHAOS` knob is set — disables it.
    pub chaos: Option<ChaosSpec>,
    /// Number of machines `P`.
    pub num_machines: usize,
    /// The model's space exponent: each machine has `S = Θ(n^epsilon)`
    /// space (in items, i.e. graph words). The paper notes that in
    /// practice ε ≥ 1/2 (§2 footnote); our default is 0.75.
    pub epsilon: f64,
    /// Cost-model constants.
    pub cost: CostConfig,
    /// Whether the per-machine caching optimization (§5.3) is enabled.
    pub caching: bool,
    /// Whether the §5.3 batching optimization is enabled: machines issue
    /// their independent lookups as one accounted batch
    /// (`MachineHandle::get_many` / `put_many`), so the cost model
    /// charges lookup latency per *batch* instead of per key. Disabling
    /// it (`AMPC_BATCH=off`, or [`Self::with_batching`]) is the
    /// single-key baseline: identical queries, bytes and outputs, one
    /// round trip per key.
    pub batching: bool,
    /// Per-machine hot-key replica capacity (`AMPC_HOT_KEYS`,
    /// DESIGN.md §11): keys a machine reads repeatedly within one
    /// round are replicated onto the machine, top-K first-come, so
    /// skewed read distributions stop hammering the sealed generation.
    /// `0` (the default) disables replication. Purely an
    /// execution-strategy knob: replica-served reads charge identical
    /// queries/bytes, so outputs and `CommStats` are byte-identical
    /// for every value.
    pub hot_keys: usize,
    /// Concurrency of the simulation itself: how many machine bodies
    /// may execute at once. `1` (the forced value under
    /// `AMPC_THREADS=1`) runs every machine inline on the caller
    /// thread; higher values dispatch machines as work items to the
    /// persistent executor pool ([`crate::pool::WorkerPool`]). Purely a
    /// wall-clock knob: outputs, round counts and `CommStats` are
    /// identical for every value. Defaults to `AMPC_THREADS`, falling
    /// back to the machine's available parallelism.
    pub threads: usize,
    /// When true, rounds use the pre-pool executor (one fresh OS thread
    /// per machine per round) instead of the persistent pool. The
    /// `perf_suite` A/B baseline; never the default.
    pub legacy_spawn: bool,
    /// Seed for all algorithm randomness (vertex/edge priorities,
    /// sampling). Two runs with equal seeds produce identical outputs.
    pub seed: u64,
    /// Sealed-generation storage substrate override (DESIGN.md §12).
    /// `None` — the default — leaves the ambient mode in force (the
    /// `AMPC_STORE` knob, or whatever a suite forced programmatically);
    /// `Some(kind)` makes [`crate::driver::drive`] force that substrate
    /// before the job starts. Like the layout itself, purely an
    /// execution-strategy knob: outputs, round counts and `CommStats`
    /// are identical for every value.
    pub store: Option<StoreKind>,
    /// The "switch to in-memory" threshold used by the paper's MPC
    /// implementations: once a (sub)problem has at most this many edges
    /// it is solved on a single machine (§5.4: `s = 5 × 10⁷`, scaled
    /// down here with the datasets).
    pub in_memory_threshold: usize,
}

/// Default batching mode: on, unless the `AMPC_BATCH` environment knob
/// says `off`/`0`/`false` (the CI knob that keeps the single-key
/// baseline exercised). Read via the [`knobs`] registry.
fn batching_default() -> bool {
    knobs::ampc_batch()
}

/// Default chaos schedule: the `AMPC_CHAOS` environment knob, parsed by
/// [`ChaosSpec::parse`] (a `chaos:` spec string or a bare seed). Unset,
/// empty, or malformed values disable chaos — the env default must
/// never panic library consumers; the CLI's `--chaos` flag is the loud
/// path for typos.
fn chaos_default() -> Option<ChaosSpec> {
    knobs::ampc_chaos().and_then(|v| ChaosSpec::parse(&v).ok())
}

impl Default for AmpcConfig {
    fn default() -> Self {
        AmpcConfig {
            fault: None,
            chaos: chaos_default(),
            num_machines: 10,
            epsilon: 0.75,
            cost: CostConfig::default(),
            caching: true,
            batching: batching_default(),
            hot_keys: knobs::ampc_hot_keys(),
            threads: ampc_dht::store::ampc_threads(),
            legacy_spawn: false,
            store: None,
            seed: 0xA3C5,
            // Paper uses 5e7 on billion-edge graphs (~1/1000 of the
            // largest input); our bench analogues are ~1000x smaller.
            in_memory_threshold: 50_000,
        }
    }
}

impl AmpcConfig {
    /// A quick small configuration for tests.
    pub fn for_tests() -> Self {
        AmpcConfig {
            num_machines: 4,
            in_memory_threshold: 500,
            ..Default::default()
        }
    }

    /// Sets the machine count.
    pub fn with_machines(mut self, p: usize) -> Self {
        assert!(p >= 1, "need at least one machine");
        self.num_machines = p;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the cost model.
    pub fn with_cost(mut self, cost: CostConfig) -> Self {
        self.cost = cost;
        self
    }

    /// Enables/disables the caching optimization.
    pub fn with_caching(mut self, caching: bool) -> Self {
        self.caching = caching;
        self
    }

    /// Enables/disables the §5.3 batching optimization.
    pub fn with_batching(mut self, batching: bool) -> Self {
        self.batching = batching;
        self
    }

    /// Sets the per-machine hot-key replica capacity (see
    /// [`Self::hot_keys`]; `0` disables replication).
    pub fn with_hot_keys(mut self, k: usize) -> Self {
        self.hot_keys = k;
        self
    }

    /// Sets the simulation's execution concurrency (see
    /// [`Self::threads`]; `1` means fully inline).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one executor thread");
        self.threads = threads;
        self
    }

    /// Selects the pre-pool spawn-per-machine executor (the `perf_suite`
    /// baseline).
    pub fn with_legacy_spawn(mut self, legacy: bool) -> Self {
        self.legacy_spawn = legacy;
        self
    }

    /// Forces a sealed-storage substrate for jobs driven under this
    /// configuration (see [`Self::store`]).
    pub fn with_store(mut self, kind: StoreKind) -> Self {
        self.store = Some(kind);
        self
    }

    /// The execution policy rounds run under.
    pub fn exec_policy(&self) -> crate::executor::ExecPolicy {
        crate::executor::ExecPolicy {
            threads: self.threads,
            legacy_spawn: self.legacy_spawn,
        }
    }

    /// Arms fault injection for jobs run under this configuration.
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Arms a chaos schedule for jobs run under this configuration
    /// (see [`crate::chaos`]).
    pub fn with_chaos(mut self, chaos: ChaosSpec) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// The per-machine space `S = n^epsilon` (at least 16), in items.
    pub fn space_per_machine(&self, n: usize) -> u64 {
        ((n.max(2) as f64).powf(self.epsilon).ceil() as u64).max(16)
    }

    /// The per-search truncation budget `n^epsilon` used by the truncated
    /// query processes (§4.2, Algorithm 1's stopping condition (1) uses
    /// `n^{epsilon/2}` — see [`Self::prim_budget`]).
    pub fn search_budget(&self, n: usize) -> u64 {
        self.space_per_machine(n)
    }

    /// Algorithm 1's exploration budget `n^{epsilon/2}` per Prim search.
    pub fn prim_budget(&self, n: usize) -> u64 {
        ((n.max(2) as f64).powf(self.epsilon / 2.0).ceil() as u64).max(4)
    }

    /// Per-machine, per-round query budget. The model allows `O(S)`
    /// communication per machine per round; the constant here is
    /// generous (×8) because our machines also absorb the skew that a
    /// production scheduler would rebalance.
    pub fn query_budget(&self, n: usize) -> u64 {
        8 * self.space_per_machine(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_grows_with_epsilon() {
        let a = AmpcConfig {
            epsilon: 0.5,
            ..Default::default()
        };
        let b = AmpcConfig {
            epsilon: 0.9,
            ..Default::default()
        };
        assert!(a.space_per_machine(1_000_000) < b.space_per_machine(1_000_000));
    }

    #[test]
    fn prim_budget_is_sqrt_of_search_budget() {
        let cfg = AmpcConfig::default();
        let n = 1_000_000;
        let s = cfg.search_budget(n) as f64;
        let p = cfg.prim_budget(n) as f64;
        assert!((p * p / s - 1.0).abs() < 0.1, "p^2 = {} vs s = {s}", p * p);
    }

    #[test]
    fn builders_chain() {
        let cfg = AmpcConfig::default()
            .with_machines(3)
            .with_seed(9)
            .with_caching(false)
            .with_batching(false);
        assert_eq!(cfg.num_machines, 3);
        assert_eq!(cfg.seed, 9);
        assert!(!cfg.caching);
        assert!(!cfg.batching);
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_rejected() {
        AmpcConfig::default().with_machines(0);
    }

    #[test]
    fn minimum_space_floor() {
        let cfg = AmpcConfig::default();
        assert!(cfg.space_per_machine(2) >= 16);
        assert!(cfg.prim_budget(2) >= 4);
    }
}
