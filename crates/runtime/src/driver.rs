//! The workload driver: the orchestration every kernel used to
//! hand-roll.
//!
//! Before this module existed, all six kernel families (and every MPC
//! baseline) duplicated the same scaffolding: build a [`Job`] from an
//! [`AmpcConfig`] (which arms the fault plan), run the algorithm body,
//! call [`Job::into_report`], and — for the truncated query processes —
//! maintain a round counter, a per-search budget with its `n^ε`
//! escalation rule, the `O(S)` handle budget derived from it, and the
//! `"IsInX-r{round}"` stage-naming convention. The driver owns those
//! concerns now:
//!
//! * [`drive`] — run a job body under a configuration and finalize it
//!   into a [`Driven`] record (output + report + wall-clock).
//! * [`AdaptiveRounds`] — the round/budget bookkeeping of the truncated
//!   multi-round query processes (§4.2 / \[19\]): round cap, budget
//!   escalation, stage tags, handle budgets.
//! * [`DriverOptions`] — config resolution: one place where CLI flags
//!   and environment knobs (`AMPC_THREADS`, `AMPC_BATCH`, machine
//!   count, network profile, seed, scale calibration) are folded over a
//!   base configuration.
//! * [`RunSummary`] — report finalization into the flat,
//!   machine-readable record the `ampc` workload CLI and the harness
//!   emit as JSON (hand-rolled writer: the workspace vendors no JSON
//!   serializer).

use crate::chaos::ChaosSpec;
use crate::config::AmpcConfig;
use crate::fault::FaultPlan;
use crate::job::Job;
use crate::report::{JobReport, StageKind};
use ampc_dht::cost::Network;
use std::time::Instant;

/// The finalized record of one driven run.
#[derive(Clone, Debug)]
pub struct Driven<R> {
    /// Whatever the job body produced.
    pub output: R,
    /// The job's execution report.
    pub report: JobReport,
    /// Wall-clock time of the whole body, in nanoseconds.
    pub wall_ns: u64,
}

/// Runs `body` inside a fresh [`Job`] under `cfg` (fault plan and all)
/// and finalizes the report — the entry point the registry and the
/// `ampc` CLI use so that every algorithm shares one code path from
/// configuration to report.
pub fn drive<R>(cfg: &AmpcConfig, body: impl FnOnce(&mut Job) -> R) -> Driven<R> {
    if cfg.store.is_some() {
        ampc_dht::store::force_store(cfg.store);
    }
    // Shard-process lifecycle, job-start edge: under the socket
    // substrate, every shard server must be alive before the first
    // seal (a no-op otherwise — DESIGN.md §12).
    ampc_dht::socket::ensure_if_active();
    // ampc-lint: allow(no-wall-clock-or-ambient-rng) -- wall_ns is a reported
    // measurement only: it never feeds algorithm state, and perf_suite --check
    // excludes it from the deterministic fields.
    let start = Instant::now();
    let mut job = Job::new(*cfg);
    let output = body(&mut job);
    Driven {
        output,
        report: job.into_report(),
        wall_ns: start.elapsed().as_nanos() as u64,
    }
}

/// The enforced per-machine handle budget backing a round of truncated
/// searches: room for every per-search budget over the whole pending
/// set, so legitimate runs never trip the handle while it still
/// backstops the `O(S)` contract (saturating at `u64::MAX` for the
/// untruncated configuration).
pub fn round_handle_budget(per_search_budget: u64, pending: usize) -> u64 {
    per_search_budget
        .saturating_mul(pending.max(1) as u64)
        .max(per_search_budget)
}

/// Round/budget bookkeeping for the truncated multi-round query
/// processes (MIS Figure 1 / the §4.2 vertex process): each round runs
/// the pending searches under a per-search budget; unresolved searches
/// go to the next round with the budget multiplied by `n^ε` (\[19\]),
/// and a round cap turns non-convergence into a loud failure instead of
/// a hang.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveRounds {
    round: usize,
    budget: u64,
    cap: usize,
}

impl AdaptiveRounds {
    /// Rounds after which [`Self::begin`] panics — no workspace kernel
    /// legitimately needs more (the practical configuration resolves in
    /// one).
    pub const DEFAULT_CAP: usize = 64;

    /// Starts the loop with the given per-search budget (`u64::MAX`
    /// for the untruncated single-round configuration).
    pub fn new(initial_budget: u64) -> Self {
        AdaptiveRounds {
            round: 0,
            budget: initial_budget,
            cap: Self::DEFAULT_CAP,
        }
    }

    /// Begins the next round, returning its per-search budget.
    ///
    /// # Panics
    /// Panics (with `what` in the message) once the round cap is
    /// exceeded — the query process failed to converge.
    pub fn begin(&mut self, what: &str) -> u64 {
        self.round += 1;
        assert!(self.round <= self.cap, "{what} failed to converge");
        self.budget
    }

    /// 1-based index of the round begun most recently.
    pub fn round(&self) -> usize {
        self.round
    }

    /// The current per-search budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// The stage name for the current round: `base` for round 1,
    /// `"{base}-r{round}"` afterwards (the convention the figure
    /// harnesses match stage names against).
    pub fn stage_name(&self, base: &str) -> String {
        if self.round <= 1 {
            base.to_string()
        } else {
            format!("{base}-r{}", self.round)
        }
    }

    /// The enforced per-machine handle budget for this round given the
    /// pending search count (see [`round_handle_budget`]).
    pub fn handle_budget(&self, pending: usize) -> u64 {
        round_handle_budget(self.budget, pending)
    }

    /// Escalates the per-search budget for the next round by `factor`
    /// (the `n^ε` rule; factors below 2 are clamped so the loop always
    /// makes progress).
    pub fn escalate(&mut self, factor: u64) {
        self.budget = self.budget.saturating_mul(factor.max(2));
    }
}

/// Config resolution: optional overrides folded over a base
/// [`AmpcConfig`] in one place, so the CLI, the registry and the figure
/// harnesses stop each re-implementing flag/env wiring.
#[derive(Clone, Copy, Debug, Default)]
pub struct DriverOptions {
    /// Machine count `P`.
    pub machines: Option<usize>,
    /// Algorithm seed.
    pub seed: Option<u64>,
    /// Simulation execution threads (see [`AmpcConfig::threads`]).
    pub threads: Option<usize>,
    /// §5.3 batching toggle.
    pub batching: Option<bool>,
    /// §5.3 caching toggle.
    pub caching: Option<bool>,
    /// KV transport profile (Table 4).
    pub network: Option<Network>,
    /// Switch-to-in-memory threshold.
    pub in_memory_threshold: Option<usize>,
    /// Cost-model calibration factor (DESIGN.md §6).
    pub data_scale: Option<u64>,
    /// Space exponent ε.
    pub epsilon: Option<f64>,
    /// Fault injection plan.
    pub fault: Option<FaultPlan>,
    /// Chaos schedule (multi-fault kills + DHT drops; `--chaos`).
    pub chaos: Option<ChaosSpec>,
    /// Sealed-storage substrate (`--store`, mirroring `AMPC_STORE`;
    /// DESIGN.md §12).
    pub store: Option<ampc_dht::store::StoreKind>,
}

impl DriverOptions {
    /// Applies the set overrides to `base`, leaving everything else
    /// untouched (including `base`'s own env-derived defaults).
    pub fn apply(&self, mut base: AmpcConfig) -> AmpcConfig {
        if let Some(p) = self.machines {
            base = base.with_machines(p);
        }
        if let Some(s) = self.seed {
            base = base.with_seed(s);
        }
        if let Some(t) = self.threads {
            base = base.with_threads(t);
        }
        if let Some(b) = self.batching {
            base = base.with_batching(b);
        }
        if let Some(c) = self.caching {
            base = base.with_caching(c);
        }
        if let Some(n) = self.network {
            base.cost.network = n;
        }
        if let Some(t) = self.in_memory_threshold {
            base.in_memory_threshold = t;
        }
        if let Some(d) = self.data_scale {
            base.cost.data_scale = d;
        }
        if let Some(e) = self.epsilon {
            base.epsilon = e;
        }
        if let Some(f) = self.fault {
            base = base.with_fault(f);
        }
        if let Some(c) = self.chaos {
            base = base.with_chaos(c);
        }
        if let Some(s) = self.store {
            base = base.with_store(s);
        }
        base
    }
}

/// Flat, machine-readable summary of one run — what the `ampc` CLI
/// emits per run and what the registry equivalence suite diffs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunSummary {
    /// Machine count the job ran with.
    pub num_machines: usize,
    /// Epoch boundaries marked by the job (batch-dynamic kernels mark
    /// one per update batch; 0 for one-shot kernels).
    pub epochs: usize,
    /// Shuffle stages (the paper's costly rounds, Table 3).
    pub shuffles: usize,
    /// KV rounds.
    pub kv_rounds: usize,
    /// Single-machine in-memory stages.
    pub local_stages: usize,
    /// Total KV queries.
    pub queries: u64,
    /// Charged KV round trips (per batch under §5.3 batching).
    pub round_trips: u64,
    /// KV bytes moved (read + written).
    pub kv_bytes: u64,
    /// Lookups answered locally by per-machine caches.
    pub cache_hits: u64,
    /// Bytes moved by shuffles.
    pub shuffle_bytes: u64,
    /// Largest sealed generation any KV round read.
    pub peak_generation_bytes: u64,
    /// Total simulated time, ns.
    pub sim_ns: u64,
    /// Wall-clock of the simulation, ns.
    pub wall_ns: u64,
    /// Machines killed and replayed by fault injection.
    pub replays: u64,
    /// DHT batch attempts dropped and re-sent by chaos injection
    /// (summed over stages; zero outside chaos runs).
    pub retries: u64,
    /// Accounted batches that suffered at least one chaos drop.
    pub wasted_batches: u64,
    /// Per-stage `(name, kind, sim_ns, replays)` in execution order.
    pub stages: Vec<(String, &'static str, u64, u64)>,
}

/// Stage kind as the lowercase token the JSON schema uses.
fn kind_token(kind: StageKind) -> &'static str {
    match kind {
        StageKind::Shuffle => "shuffle",
        StageKind::KvRound => "kv",
        StageKind::Local => "local",
    }
}

impl RunSummary {
    /// Builds the summary from a finished report plus the measured
    /// wall-clock.
    pub fn from_report(report: &JobReport, wall_ns: u64) -> Self {
        let kv = report.kv_comm();
        RunSummary {
            num_machines: report.num_machines,
            epochs: report.num_epochs(),
            shuffles: report.num_shuffles(),
            kv_rounds: report.num_kv_rounds(),
            local_stages: report
                .stages
                .iter()
                .filter(|s| s.kind == StageKind::Local)
                .count(),
            queries: kv.queries,
            round_trips: kv.round_trips(),
            kv_bytes: kv.kv_bytes(),
            cache_hits: kv.cache_hits,
            shuffle_bytes: report.shuffle_bytes(),
            peak_generation_bytes: report.peak_generation_bytes(),
            sim_ns: report.sim_ns(),
            wall_ns,
            replays: report.replays,
            retries: kv.retries,
            wasted_batches: kv.wasted_batches,
            stages: report
                .stages
                .iter()
                .map(|s| (s.name.clone(), kind_token(s.kind), s.sim_ns, s.replays))
                .collect(),
        }
    }

    /// Renders the summary as a JSON object, each line prefixed by
    /// `indent` spaces (the `"report"` value of the CLI's run record).
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|(name, kind, sim, replays)| {
                format!(
                    "{pad}    {{\"name\": {}, \"kind\": \"{kind}\", \"sim_ns\": {sim}, \
                     \"replays\": {replays}}}",
                    json_string(name)
                )
            })
            .collect();
        format!(
            "{pad}{{\n\
             {pad}  \"num_machines\": {},\n\
             {pad}  \"epochs\": {},\n\
             {pad}  \"shuffles\": {},\n\
             {pad}  \"kv_rounds\": {},\n\
             {pad}  \"local_stages\": {},\n\
             {pad}  \"queries\": {},\n\
             {pad}  \"round_trips\": {},\n\
             {pad}  \"kv_bytes\": {},\n\
             {pad}  \"cache_hits\": {},\n\
             {pad}  \"shuffle_bytes\": {},\n\
             {pad}  \"peak_generation_bytes\": {},\n\
             {pad}  \"sim_ns\": {},\n\
             {pad}  \"wall_ns\": {},\n\
             {pad}  \"replays\": {},\n\
             {pad}  \"retries\": {},\n\
             {pad}  \"wasted_batches\": {},\n\
             {pad}  \"stages\": [\n{}\n{pad}  ]\n\
             {pad}}}",
            self.num_machines,
            self.epochs,
            self.shuffles,
            self.kv_rounds,
            self.local_stages,
            self.queries,
            self.round_trips,
            self.kv_bytes,
            self.cache_hits,
            self.shuffle_bytes,
            self.peak_generation_bytes,
            self.sim_ns,
            self.wall_ns,
            self.replays,
            self.retries,
            self.wasted_batches,
            stages.join(",\n"),
        )
    }
}

/// Renders `s` as a JSON string literal (quotes included), escaping
/// the characters RFC 8259 requires.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_dht::store::Generation;

    #[test]
    fn drive_finalizes_report() {
        let cfg = AmpcConfig::for_tests();
        let read: Generation<u64> = Generation::from_iter((0..8u64).map(|k| (k, k)));
        let driven = drive(&cfg, |job| {
            job.shuffle_balanced("S", 100);
            job.kv_round("R", &read, None, (0..8u64).collect(), |ctx, items| {
                items
                    .iter()
                    .map(|&k| *ctx.handle.get(k).unwrap())
                    .collect::<Vec<u64>>()
            })
        });
        assert_eq!(driven.output, (0..8).collect::<Vec<u64>>());
        assert_eq!(driven.report.num_shuffles(), 1);
        assert_eq!(driven.report.num_kv_rounds(), 1);
    }

    #[test]
    fn drive_matches_handrolled_job() {
        let cfg = AmpcConfig::for_tests();
        let direct = {
            let mut job = Job::new(cfg);
            job.shuffle_balanced("S", 4_096);
            job.into_report()
        };
        let driven = drive(&cfg, |job| job.shuffle_balanced("S", 4_096));
        assert_eq!(direct.stages.len(), driven.report.stages.len());
        assert_eq!(direct.sim_ns(), driven.report.sim_ns());
    }

    #[test]
    fn adaptive_rounds_bookkeeping() {
        let mut r = AdaptiveRounds::new(10);
        assert_eq!(r.begin("X"), 10);
        assert_eq!(r.stage_name("IsInX"), "IsInX");
        r.escalate(4);
        assert_eq!(r.begin("X"), 40);
        assert_eq!(r.stage_name("IsInX"), "IsInX-r2");
        assert_eq!(r.handle_budget(3), 120);
        // Escalation factors below 2 are clamped.
        r.escalate(1);
        assert_eq!(r.budget(), 80);
    }

    #[test]
    #[should_panic(expected = "Proc failed to converge")]
    fn adaptive_rounds_cap_trips() {
        let mut r = AdaptiveRounds::new(1);
        for _ in 0..=AdaptiveRounds::DEFAULT_CAP {
            r.begin("Proc");
        }
    }

    #[test]
    fn round_handle_budget_saturates() {
        assert_eq!(round_handle_budget(u64::MAX, 100), u64::MAX);
        assert_eq!(round_handle_budget(5, 0), 5);
        assert_eq!(round_handle_budget(5, 7), 35);
    }

    #[test]
    fn options_apply_overrides_only_whats_set() {
        let base = AmpcConfig::for_tests();
        let opts = DriverOptions {
            machines: Some(7),
            seed: Some(99),
            network: Some(Network::Tcp),
            ..Default::default()
        };
        let cfg = opts.apply(base);
        assert_eq!(cfg.num_machines, 7);
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.cost.network, Network::Tcp);
        assert_eq!(cfg.in_memory_threshold, base.in_memory_threshold);
        assert_eq!(cfg.caching, base.caching);
    }

    #[test]
    fn summary_counts_and_json_shape() {
        let cfg = AmpcConfig::for_tests();
        let driven = drive(&cfg, |job| {
            job.shuffle_balanced("Build", 1_000);
            job.local("Finish", 10, || ());
        });
        let s = RunSummary::from_report(&driven.report, driven.wall_ns);
        assert_eq!(s.shuffles, 1);
        assert_eq!(s.local_stages, 1);
        assert_eq!(s.stages.len(), 2);
        let json = s.to_json(2);
        assert!(json.contains("\"shuffles\": 1"));
        assert!(json.contains("\"kind\": \"local\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("plain"), "\"plain\"");
    }
}
