//! Job orchestration: stages, cost charging, fault replay.

use crate::chaos::{ChaosSpec, FaultSchedule};
use crate::config::AmpcConfig;
use crate::executor::{self, MachineCtx, MachineRoundStats, RoundScratch, RoundSpec};
use crate::fault::FaultPlan;
use crate::partition;
use crate::report::{JobReport, StageKind, StageReport};
use ampc_dht::measured::Measured;
use ampc_dht::metrics::CommStats;
use ampc_dht::store::{Generation, GenerationWriter};
use ampc_dht::wire::Wire;
use std::time::Instant;

/// An executing job: the sequence of stages an algorithm runs, with
/// cost accounting and (optional) fault injection.
pub struct Job {
    cfg: AmpcConfig,
    report: JobReport,
    fault: Option<FaultPlan>,
    chaos: Option<FaultSchedule>,
    stage_index: usize,
    /// True between an [`Self::epoch`] mark and the next KV round: that
    /// round is the epoch's first, where `ekill=` chaos events fire.
    epoch_kv_pending: bool,
    /// Per-machine buffer arenas, lent to every round so kernel hot
    /// loops reuse capacity across rounds and epochs (DESIGN.md §11).
    scratch: RoundScratch,
}

impl Job {
    /// Starts a job under the given configuration (inheriting its fault
    /// plan and chaos schedule, if any).
    pub fn new(cfg: AmpcConfig) -> Self {
        let p = cfg.num_machines;
        let fault = cfg.fault;
        let chaos = cfg.chaos.map(FaultSchedule::new);
        Job {
            cfg,
            report: JobReport::new(p),
            fault,
            chaos,
            stage_index: 0,
            epoch_kv_pending: false,
            scratch: RoundScratch::new(),
        }
    }

    /// Arms fault injection.
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Arms a chaos schedule (see [`crate::chaos`]).
    pub fn with_chaos(mut self, spec: ChaosSpec) -> Self {
        self.chaos = Some(FaultSchedule::new(spec));
        self
    }

    /// The configuration.
    #[inline]
    pub fn config(&self) -> &AmpcConfig {
        &self.cfg
    }

    /// The report so far.
    #[inline]
    pub fn report(&self) -> &JobReport {
        &self.report
    }

    /// Finishes the job, yielding the report.
    pub fn into_report(self) -> JobReport {
        self.report
    }

    /// Absorbs the stages of a sub-job's report (used when an algorithm
    /// invokes another one, e.g. MSF → ForestConnectivity).
    pub fn absorb(&mut self, sub: JobReport) {
        self.stage_index += sub.stages.len();
        self.report.absorb(sub);
    }

    fn next_stage_index(&mut self) -> usize {
        let i = self.stage_index;
        self.stage_index += 1;
        i
    }

    /// Marks an epoch boundary: all stages appended until the next mark
    /// belong to this epoch. The batch-dynamic kernels call this once
    /// per update batch (one sealed DHT generation per epoch), so the
    /// report can attribute rounds and communication per batch.
    pub fn epoch(&mut self, name: &str) {
        self.report.epochs.push(crate::report::EpochMark {
            name: name.to_string(),
            first_stage: self.report.stages.len(),
        });
        self.epoch_kv_pending = true;
    }

    /// Meters a shuffle stage with explicit byte loads: `total_bytes`
    /// across all machines, of which the most loaded machine handles
    /// `max_machine_bytes`. Simulated time = round overhead + the
    /// bottleneck machine's transfer time.
    pub fn shuffle_metered(&mut self, name: &str, total_bytes: u64, max_machine_bytes: u64) {
        let _ = self.next_stage_index();
        let sim =
            self.cfg.cost.round_overhead_ns + self.cfg.cost.shuffle_time_ns(max_machine_bytes);
        self.report.push(StageReport {
            name: name.to_string(),
            kind: StageKind::Shuffle,
            comm: CommStats::default(),
            shuffle_bytes: total_bytes,
            shuffle_bytes_max_machine: max_machine_bytes,
            gen_bytes: 0,
            ops: 0,
            sim_ns: sim,
            wall_ns: 0,
            replays: 0,
        });
    }

    /// Meters a shuffle whose records spread evenly over machines.
    pub fn shuffle_balanced(&mut self, name: &str, total_bytes: u64) {
        let per = total_bytes / self.cfg.num_machines as u64;
        self.shuffle_metered(name, total_bytes, per);
    }

    /// Performs (and meters) a real shuffle: partitions `items` by
    /// `key`, returning per-machine buckets. Byte loads are measured per
    /// machine, so key skew (many records hashing to one machine — the
    /// paper's ClueWeb join pathology) surfaces in the simulated time.
    pub fn shuffle_by_key<T: Measured>(
        &mut self,
        name: &str,
        items: Vec<T>,
        key: impl Fn(&T) -> u64,
    ) -> Vec<Vec<T>> {
        self.shuffle_by_key_measured(name, items, key, |t| t.size_bytes() as u64)
    }

    /// Like [`Self::shuffle_by_key`] but with caller-supplied per-record
    /// byte measurement. The zero-copy kernel restructures (DESIGN.md
    /// §11) shuffle a light host-side record (e.g. just a vertex id)
    /// while the *simulated* shuffle still moves the full record the
    /// algorithm logically redistributes; `record_bytes` must describe
    /// that simulated record, so restructuring a kernel's host
    /// representation never changes its reported shuffle loads.
    pub fn shuffle_by_key_measured<T>(
        &mut self,
        name: &str,
        items: Vec<T>,
        key: impl Fn(&T) -> u64,
        record_bytes: impl Fn(&T) -> u64,
    ) -> Vec<Vec<T>> {
        let salt = self.cfg.seed ^ (self.stage_index as u64).wrapping_mul(0x9E37);
        let buckets = partition::by_key(items, self.cfg.num_machines, salt, key);
        let per_bytes: Vec<u64> = buckets
            .iter()
            .map(|b| b.iter().map(&record_bytes).sum())
            .collect();
        let total: u64 = per_bytes.iter().sum();
        let max = per_bytes.iter().copied().max().unwrap_or(0);
        self.shuffle_metered(name, total, max);
        buckets
    }

    /// Runs a parallel KV round: `items` are chunked contiguously over
    /// machines and `body` runs once per machine with a metered handle.
    /// Returns all outputs in machine order.
    pub fn kv_round<V, T, R, F>(
        &mut self,
        name: &str,
        read: &Generation<V>,
        write: Option<&GenerationWriter<V>>,
        items: Vec<T>,
        body: F,
    ) -> Vec<R>
    where
        V: Measured + Clone + PartialEq + Sync + Send + Wire,
        T: Sync + Send,
        R: Send,
        F: Fn(&mut MachineCtx<'_, V>, &[T]) -> Vec<R> + Sync,
    {
        self.kv_round_budgeted(name, read, write, items, u64::MAX, body)
    }

    /// Like [`Self::kv_round`] but with an *enforced* per-machine query
    /// budget (the model's `O(S)`): the handle debug-panics on plain
    /// `get` past the budget and signals `BudgetExhausted` through
    /// `try_get`, so truncated query processes can make the budget a
    /// real stopping condition rather than an advisory counter.
    pub fn kv_round_budgeted<V, T, R, F>(
        &mut self,
        name: &str,
        read: &Generation<V>,
        write: Option<&GenerationWriter<V>>,
        items: Vec<T>,
        budget: u64,
        body: F,
    ) -> Vec<R>
    where
        V: Measured + Clone + PartialEq + Sync + Send + Wire,
        T: Sync + Send,
        R: Send,
        F: Fn(&mut MachineCtx<'_, V>, &[T]) -> Vec<R> + Sync,
    {
        let chunks = partition::chunk(items, self.cfg.num_machines);
        self.kv_round_chunked_budgeted(name, read, write, &chunks, budget, body)
    }

    /// Like [`Self::kv_round`] but with caller-controlled placement
    /// (e.g. buckets from [`Self::shuffle_by_key`]).
    pub fn kv_round_chunked<V, T, R, F>(
        &mut self,
        name: &str,
        read: &Generation<V>,
        write: Option<&GenerationWriter<V>>,
        chunks: &[Vec<T>],
        body: F,
    ) -> Vec<R>
    where
        V: Measured + Clone + PartialEq + Sync + Send + Wire,
        T: Sync,
        R: Send,
        F: Fn(&mut MachineCtx<'_, V>, &[T]) -> Vec<R> + Sync,
    {
        self.kv_round_chunked_budgeted(name, read, write, chunks, u64::MAX, body)
    }

    /// The fully-general KV round: caller-controlled placement and an
    /// enforced per-machine query budget.
    pub fn kv_round_chunked_budgeted<V, T, R, F>(
        &mut self,
        name: &str,
        read: &Generation<V>,
        write: Option<&GenerationWriter<V>>,
        chunks: &[Vec<T>],
        budget: u64,
        body: F,
    ) -> Vec<R>
    where
        V: Measured + Clone + PartialEq + Sync + Send + Wire,
        T: Sync,
        R: Send,
        F: Fn(&mut MachineCtx<'_, V>, &[T]) -> Vec<R> + Sync,
    {
        let stage = self.next_stage_index();
        let policy = self.cfg.exec_policy();
        let spec = RoundSpec {
            budget,
            batching: self.cfg.batching,
            drops: self.chaos.and_then(|c| c.drop_plan(stage)),
            hot_keys: self.cfg.hot_keys,
        };
        // Epoch bookkeeping: the first KV round after an epoch mark is
        // where epoch kills fire; the flag is consumed either way.
        let epoch_first_kv = if self.epoch_kv_pending {
            Some(self.report.epochs.len().saturating_sub(1))
        } else {
            None
        };
        self.epoch_kv_pending = false;
        // Shard-process lifecycle, round edge: a socket shard server
        // that died mid-job is respawned (and the surviving generations
        // it lost will fail loudly rather than silently read stale
        // data). No-op under the in-memory substrates (DESIGN.md §12).
        ampc_dht::socket::ensure_if_active();
        // ampc-lint: allow(no-wall-clock-or-ambient-rng) -- stage wall time is a
        // reported measurement only, never algorithm input; perf_suite --check
        // excludes it from the deterministic fields.
        let wall = Instant::now();
        // Lend the job's persistent arenas to the round (taken out of
        // `self` so replay below can borrow both `self` and the arenas).
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut outcome =
            executor::run_machines(read, write, chunks, spec, policy, &mut scratch, &body);

        // Fault injection: each victim's first attempt is thrown away
        // and its chunk replayed against the same sealed input, in
        // ascending machine order (deterministic replay order; repeats
        // allowed — a machine killed twice is replayed twice). Victims
        // come from the legacy single-fault plan plus the chaos
        // schedule's explicit and seeded kills.
        let mut victims: Vec<(usize, f64)> = Vec::new();
        if !chunks.is_empty() {
            if let Some(f) = self.fault {
                if f.fires_at(stage) {
                    victims.push((f.machine % chunks.len(), f.charge_progress()));
                }
            }
            if let Some(c) = self.chaos {
                for m in c.victims(stage, epoch_first_kv, chunks.len()) {
                    victims.push((m, c.progress(stage, m)));
                }
            }
            victims.sort_by_key(|v| v.0);
        }
        let mut extra_sim = 0u64;
        let stage_replays = victims.len() as u64;
        for &(victim, progress) in &victims {
            let wasted =
                (self.machine_time_ns(&outcome.per_machine[victim]) as f64 * progress) as u64;
            let (replayed, stats) = executor::run_one_machine(
                victim,
                read,
                write,
                &chunks[victim],
                spec,
                scratch.machine(victim),
                &body,
            );
            // Splice the replayed outputs over the victim's originals
            // (length-preserving, so offsets stay valid across victims).
            let start: usize = (0..victim)
                .map(|i| chunk_output_len(&outcome, i, chunks))
                .sum();
            let len = chunk_output_len(&outcome, victim, chunks);
            outcome.outputs.splice(start..start + len, replayed);
            extra_sim += wasted + self.machine_time_ns(&stats);
            self.report.replays += 1;
        }
        self.scratch = scratch;

        let comm = CommStats::merged(outcome.per_machine.iter().map(|m| &m.comm));
        let ops: u64 = outcome.per_machine.iter().map(|m| m.ops).sum();
        let bottleneck = outcome
            .per_machine
            .iter()
            .map(|m| self.machine_time_ns(m))
            .max()
            .unwrap_or(0);
        self.report.push(StageReport {
            name: name.to_string(),
            kind: StageKind::KvRound,
            comm,
            shuffle_bytes: 0,
            shuffle_bytes_max_machine: 0,
            // Cached at seal time, so recording it per round is O(1)
            // (the pre-flat layout re-walked every shard here).
            gen_bytes: read.size_bytes() as u64,
            ops,
            sim_ns: self.cfg.cost.stage_overhead_ns + bottleneck + extra_sim,
            wall_ns: wall.elapsed().as_nanos() as u64,
            replays: stage_replays,
        });
        outcome.outputs
    }

    /// Runs a parallel map stage that touches no DHT (the "no shuffle"
    /// steps of the MPC baselines, e.g. local-minima detection): items
    /// are chunked over machines and only compute is charged.
    pub fn map_round<T, R, F>(&mut self, name: &str, items: Vec<T>, body: F) -> Vec<R>
    where
        T: Sync + Send,
        R: Send,
        F: Fn(&mut MachineCtx<'_, u32>, &[T]) -> Vec<R> + Sync,
    {
        let empty: Generation<u32> = Generation::empty();
        self.kv_round(name, &empty, None, items, body)
    }

    /// A machine's simulated time this round: compute plus KV traffic,
    /// with lookup latency charged per *round trip*
    /// ([`CommStats::round_trips`]: one per batch, one per single-key
    /// op) and bandwidth per byte — so a chain of dependent batches
    /// costs its depth, not its key volume.
    fn machine_time_ns(&self, m: &MachineRoundStats) -> u64 {
        self.cfg.cost.compute_time_ns(m.ops)
            + self
                .cfg
                .cost
                .kv_time_ns(m.comm.round_trips(), m.comm.kv_bytes())
            + self
                .cfg
                .cost
                .retry_time_ns(m.comm.retries, m.comm.backoff_units)
    }

    /// Runs a single-machine in-memory step, charging `ops` local
    /// operations (the "switch to in-memory algorithm" step used by both
    /// the AMPC and MPC implementations once the problem is small).
    pub fn local<R>(&mut self, name: &str, ops: u64, f: impl FnOnce() -> R) -> R {
        let _ = self.next_stage_index();
        // ampc-lint: allow(no-wall-clock-or-ambient-rng) -- stage wall time is a
        // reported measurement only, never algorithm input; perf_suite --check
        // excludes it from the deterministic fields.
        let wall = Instant::now();
        let out = f();
        self.report.push(StageReport {
            name: name.to_string(),
            kind: StageKind::Local,
            comm: CommStats::default(),
            shuffle_bytes: 0,
            shuffle_bytes_max_machine: 0,
            gen_bytes: 0,
            ops,
            sim_ns: self.cfg.cost.stage_overhead_ns + self.cfg.cost.compute_time_ns(ops),
            wall_ns: wall.elapsed().as_nanos() as u64,
            replays: 0,
        });
        out
    }
}

/// Output length contributed by machine `i` — valid because bodies emit
/// one output per input item in all workspace algorithms that enable
/// fault injection. For variable-arity bodies, fault injection replays
/// the whole job instead (see integration tests).
fn chunk_output_len<R, T>(
    outcome: &executor::RoundOutcome<R>,
    i: usize,
    chunks: &[Vec<T>],
) -> usize {
    // If total outputs == total inputs, per-machine output length equals
    // its chunk length (1:1 bodies). Otherwise we cannot attribute:
    // conservatively treat all outputs as machine 0's when i == 0.
    let total_in: usize = chunks.iter().map(Vec::len).sum();
    if outcome.outputs.len() == total_in {
        chunks[i].len()
    } else if i == 0 {
        outcome.outputs.len()
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_job() -> Job {
        Job::new(AmpcConfig::for_tests())
    }

    #[test]
    fn shuffle_stage_recorded() {
        let mut job = test_job();
        job.shuffle_balanced("build", 1_000_000);
        let r = job.into_report();
        assert_eq!(r.num_shuffles(), 1);
        assert_eq!(r.shuffle_bytes(), 1_000_000);
        assert!(r.sim_ns() >= r.stages[0].sim_ns);
    }

    #[test]
    fn shuffle_by_key_meters_skew() {
        let mut job = test_job();
        // All records share one key: one machine takes everything.
        let items: Vec<(u64, u64)> = (0..100).map(|_| (7u64, 0u64)).collect();
        let buckets = job.shuffle_by_key("skewed", items, |t| t.0);
        let r = job.report();
        assert_eq!(
            r.stages[0].shuffle_bytes_max_machine,
            r.stages[0].shuffle_bytes
        );
        assert_eq!(buckets.iter().filter(|b| !b.is_empty()).count(), 1);
    }

    #[test]
    fn kv_round_merges_stats() {
        let mut job = test_job();
        let read: Generation<u64> = Generation::from_iter((0..16u64).map(|k| (k, k)));
        let out: Vec<u64> =
            job.kv_round("read", &read, None, (0..16u64).collect(), |ctx, items| {
                items.iter().map(|&k| *ctx.handle.get(k).unwrap()).collect()
            });
        assert_eq!(out.len(), 16);
        let r = job.report();
        assert_eq!(r.stages[0].comm.queries, 16);
        assert_eq!(r.num_kv_rounds(), 1);
    }

    #[test]
    fn local_stage_charges_compute() {
        let mut job = test_job();
        let v = job.local("kruskal", 1_000_000, || 42);
        assert_eq!(v, 42);
        let r = job.report();
        assert_eq!(r.stages[0].kind, StageKind::Local);
        assert!(r.stages[0].sim_ns >= 1_000_000 * job.config().cost.compute_ns_per_op);
    }

    #[test]
    fn fault_replay_produces_same_outputs() {
        let read: Generation<u64> = Generation::from_iter((0..64u64).map(|k| (k, k * 7)));
        let run = |fault: Option<FaultPlan>| -> (Vec<u64>, u64) {
            let mut job = Job::new(AmpcConfig::for_tests());
            if let Some(f) = fault {
                job = job.with_fault(f);
            }
            let out = job.kv_round("r", &read, None, (0..64u64).collect(), |ctx, items| {
                items
                    .iter()
                    .map(|&k| *ctx.handle.get(k).unwrap())
                    .collect::<Vec<_>>()
            });
            let replays = job.report().replays;
            (out, replays)
        };
        let (clean, r0) = run(None);
        let (faulted, r1) = run(Some(FaultPlan::new(0, 2)));
        assert_eq!(clean, faulted);
        assert_eq!(r0, 0);
        assert_eq!(r1, 1);
    }

    #[test]
    fn fault_charges_extra_time() {
        let read: Generation<u64> = Generation::from_iter((0..64u64).map(|k| (k, k)));
        let body = |ctx: &mut MachineCtx<'_, u64>, items: &[u64]| {
            items
                .iter()
                .map(|&k| *ctx.handle.get(k).unwrap())
                .collect::<Vec<u64>>()
        };
        let mut clean = Job::new(AmpcConfig::for_tests());
        clean.kv_round("r", &read, None, (0..64u64).collect(), body);
        let mut faulty = Job::new(AmpcConfig::for_tests()).with_fault(FaultPlan::new(0, 1));
        faulty.kv_round("r", &read, None, (0..64u64).collect(), body);
        assert!(faulty.report().sim_ns() > clean.report().sim_ns());
    }

    #[test]
    fn batching_lowers_round_trips_and_time_only() {
        let read: Generation<u64> = Generation::from_iter((0..256u64).map(|k| (k, k)));
        let body = |ctx: &mut MachineCtx<'_, u64>, items: &[u64]| {
            let keys: Vec<u64> = items.to_vec();
            ctx.handle
                .get_many(&keys)
                .into_iter()
                .map(|v| *v.unwrap())
                .collect::<Vec<u64>>()
        };
        let run = |batching: bool| {
            let mut job = Job::new(AmpcConfig::for_tests().with_batching(batching));
            let out = job.kv_round("r", &read, None, (0..256u64).collect(), body);
            (out, job.into_report())
        };
        let (out_on, rep_on) = run(true);
        let (out_off, rep_off) = run(false);
        assert_eq!(out_on, out_off);
        let (on, off) = (rep_on.kv_comm(), rep_off.kv_comm());
        assert_eq!(on.queries, off.queries);
        assert_eq!(on.bytes_read, off.bytes_read);
        assert!(
            on.batches < off.batches,
            "{} vs {}",
            on.batches,
            off.batches
        );
        assert_eq!(off.batches, off.queries);
        assert!(rep_on.sim_ns() < rep_off.sim_ns());
    }

    #[test]
    fn budgeted_round_enforces_truncation() {
        let read: Generation<u64> = Generation::from_iter((0..64u64).map(|k| (k, k + 1)));
        let mut job = test_job();
        let out: Vec<u64> =
            job.kv_round_budgeted("truncated", &read, None, vec![0u64; 4], 3, |ctx, items| {
                items
                    .iter()
                    .map(|&start| {
                        let mut cur = start;
                        while let Ok(Some(&next)) = ctx.handle.try_get(cur) {
                            cur = next;
                        }
                        cur
                    })
                    .collect()
            });
        // 4 machines × 1 item each, each cut off after 3 hops.
        assert_eq!(out, vec![3, 3, 3, 3]);
        assert_eq!(job.report().stages[0].comm.queries, 4 * 3);
    }

    #[test]
    fn absorb_advances_stage_counter() {
        let mut outer = test_job();
        let mut inner = test_job();
        inner.shuffle_balanced("inner", 10);
        outer.absorb(inner.into_report());
        outer.shuffle_balanced("outer", 10);
        let r = outer.into_report();
        assert_eq!(r.stages.len(), 2);
        assert_eq!(r.stages[0].name, "inner");
    }
}
