//! Parallel execution of machine bodies.
//!
//! Machines are **work items** executed on the persistent
//! [`crate::pool::WorkerPool`] that the process creates once and reuses
//! across all rounds of all jobs (the pre-pool executor spawned one
//! fresh OS thread per machine per round — hundreds of spawns per round
//! in the 100-machine cycle configurations, pure simulation overhead).
//! With `AMPC_THREADS=1` (or a single machine) the round runs inline on
//! the caller thread through the exact same per-machine entry point
//! that fault injection replays ([`run_one_machine`]), so replays are
//! byte-identical whichever execution policy produced the original
//! round. Each machine gets a metered [`MachineHandle`] onto the DHT
//! plus a local operation counter; the round's outcome carries
//! per-machine statistics so the cost model can charge the *bottleneck*
//! machine.

use crate::pool::WorkerPool;
use ampc_dht::fault::DropPlan;
use ampc_dht::handle::MachineHandle;
use ampc_dht::measured::Measured;
use ampc_dht::metrics::CommStats;
use ampc_dht::store::{Generation, GenerationWriter};
use ampc_dht::wire::Wire;

/// How a round's machines are executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecPolicy {
    /// Concurrency bound: `1` runs every machine inline on the caller
    /// thread; anything higher dispatches machines to the persistent
    /// pool with at most `threads` of them executing at once (the
    /// submitting thread plus up to `threads - 1` pool workers — see
    /// [`WorkerPool::run_batch`]).
    pub threads: usize,
    /// When true, falls back to the pre-pool executor that spawns one
    /// scoped OS thread per machine per round. Kept for A/B measurement
    /// (the `perf_suite` baseline); never the default.
    pub legacy_spawn: bool,
}

impl ExecPolicy {
    /// Run everything inline on the caller thread.
    pub fn inline() -> Self {
        ExecPolicy {
            threads: 1,
            legacy_spawn: false,
        }
    }

    /// The default policy: pool execution with `threads` concurrency.
    pub fn pooled(threads: usize) -> Self {
        ExecPolicy {
            threads,
            legacy_spawn: false,
        }
    }
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy::pooled(ampc_dht::store::ampc_threads())
    }
}

/// Per-round execution parameters a machine body runs under, bundled so
/// the replay entry point ([`run_one_machine`]) provably receives the
/// exact parameters of the original round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundSpec {
    /// Per-machine query budget (`O(S)` in the model; `u64::MAX` means
    /// unenforced).
    pub budget: u64,
    /// Batched round-trip accounting vs the single-key baseline (see
    /// [`MachineHandle::get_many`]).
    pub batching: bool,
    /// Chaos DHT fault mode for every machine's handle (retry counters
    /// only — see [`DropPlan`]).
    pub drops: Option<DropPlan>,
    /// Per-machine hot-key replica capacity (`0` disables; see
    /// [`ampc_dht::cache::HotSet`]).
    pub hot_keys: usize,
}

impl RoundSpec {
    /// Batched execution with no budget, no chaos, no replication.
    pub fn unbudgeted() -> Self {
        RoundSpec {
            budget: u64::MAX,
            batching: true,
            drops: None,
            hot_keys: 0,
        }
    }
}

impl Default for RoundSpec {
    fn default() -> Self {
        RoundSpec::unbudgeted()
    }
}

/// One machine's reusable buffer arena. Kernels route their per-hop
/// allocations (batched lookup keys, fixed-size results, frontiers,
/// index permutations) through these vectors instead of allocating
/// fresh ones every adaptive step; the arena persists across rounds and
/// epochs of a [`crate::job::Job`], so steady-state hot loops allocate
/// nothing.
///
/// Contents are **unspecified garbage** at body entry — whatever the
/// previous round left behind. Bodies must `clear()` (or overwrite via
/// `*_into` calls, which clear internally) before reading; in exchange,
/// capacity is retained. Determinism is unaffected: a replayed machine
/// may see different leftover capacity but never reads stale *values*.
#[derive(Debug, Default)]
pub struct ScratchBuffers {
    /// Batched lookup keys.
    pub keys: Vec<u64>,
    /// Fixed-size (`u64`) lookup results: labels, successors, parents.
    pub vals: Vec<u64>,
    /// General `u64` workspace (frontiers, second key batches).
    pub aux: Vec<u64>,
    /// Index workspace (pack/partition survivor lists).
    pub idx: Vec<u32>,
}

/// The per-machine scratch arenas of a job, indexed by machine id.
/// Owned by the [`crate::job::Job`] and lent to every round, so buffer
/// capacity survives across rounds and epochs.
#[derive(Debug, Default)]
pub struct RoundScratch {
    per_machine: Vec<ScratchBuffers>,
}

impl RoundScratch {
    /// An empty arena set; machines are added lazily on first use.
    pub fn new() -> Self {
        RoundScratch::default()
    }

    /// The arenas for `p` machines, growing the set if needed.
    pub fn for_machines(&mut self, p: usize) -> &mut [ScratchBuffers] {
        if self.per_machine.len() < p {
            self.per_machine.resize_with(p, ScratchBuffers::default);
        }
        &mut self.per_machine[..p]
    }

    /// The arena of machine `i` (for fault replay).
    pub fn machine(&mut self, i: usize) -> &mut ScratchBuffers {
        &mut self.for_machines(i + 1)[i]
    }
}

/// Everything a machine body can touch during a round.
pub struct MachineCtx<'a, V> {
    /// This machine's index in `0..P`.
    pub machine_id: usize,
    /// Metered DHT access.
    pub handle: MachineHandle<'a, V>,
    /// This machine's reusable buffer arena (see [`ScratchBuffers`]).
    pub scratch: &'a mut ScratchBuffers,
    ops: u64,
}

impl<'a, V: Measured + Clone + PartialEq + Send + Wire> MachineCtx<'a, V> {
    /// Records `n` units of local computation (charged by the cost
    /// model at `compute_ns_per_op` each).
    #[inline]
    pub fn add_ops(&mut self, n: u64) {
        self.ops += n;
    }

    /// Local operations recorded so far.
    #[inline]
    pub fn ops(&self) -> u64 {
        self.ops
    }
}

/// Per-machine outcome of one round.
#[derive(Clone, Copy, Debug, Default)]
pub struct MachineRoundStats {
    /// The machine's DHT communication.
    pub comm: CommStats,
    /// The machine's local operation count.
    pub ops: u64,
}

/// Outcome of a parallel round.
pub struct RoundOutcome<R> {
    /// Outputs of all machines concatenated in machine order (so the
    /// result is deterministic regardless of thread scheduling).
    pub outputs: Vec<R>,
    /// Per-machine statistics, indexed by machine id.
    pub per_machine: Vec<MachineRoundStats>,
}

impl<R> RoundOutcome<R> {
    /// Assembles the final outcome from per-machine results in machine
    /// order (identical for every execution policy).
    fn collect(results: Vec<Option<(Vec<R>, MachineRoundStats)>>) -> Self {
        let mut outputs = Vec::new();
        let mut per_machine = Vec::with_capacity(results.len());
        for r in results {
            let (out, stats) = r.expect("machine result missing");
            outputs.extend(out);
            per_machine.push(stats);
        }
        RoundOutcome {
            outputs,
            per_machine,
        }
    }
}

/// Runs `body` once per machine over the given per-machine `chunks`.
/// Reads go to the sealed generation `read`; writes (if `write` is
/// provided) go into the next generation under construction.
///
/// `spec` carries the per-round execution parameters (query budget,
/// batching mode, chaos drops, hot-key replication); `policy` selects
/// inline, pooled or legacy spawn-per-machine execution; `scratch`
/// lends each machine its persistent buffer arena. Outputs, per-machine
/// statistics and the sealed result of `write` are identical across
/// policies — execution policy is a wall-clock knob, never a semantic
/// one.
pub fn run_machines<V, T, R, F>(
    read: &Generation<V>,
    write: Option<&GenerationWriter<V>>,
    chunks: &[Vec<T>],
    spec: RoundSpec,
    policy: ExecPolicy,
    scratch: &mut RoundScratch,
    body: F,
) -> RoundOutcome<R>
where
    V: Measured + Clone + PartialEq + Sync + Send + Wire,
    T: Sync,
    R: Send,
    F: Fn(&mut MachineCtx<'_, V>, &[T]) -> Vec<R> + Sync,
{
    let p = chunks.len();
    let mut results: Vec<Option<(Vec<R>, MachineRoundStats)>> = (0..p).map(|_| None).collect();
    let arenas = scratch.for_machines(p);

    if policy.legacy_spawn {
        // The pre-pool baseline, bit-for-bit: one fresh scoped OS
        // thread per machine per round, even when `p == 1` or
        // `threads == 1` — exactly what every round paid before the
        // pool existed.
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for ((machine_id, chunk), arena) in chunks.iter().enumerate().zip(arenas.iter_mut()) {
                let body = &body;
                handles.push(scope.spawn(move || {
                    run_one_machine(machine_id, read, write, chunk, spec, arena, body)
                }));
            }
            for (slot, h) in results.iter_mut().zip(handles) {
                *slot = Some(h.join().expect("machine thread panicked"));
            }
        });
    } else if p <= 1 || policy.threads <= 1 {
        // Single machine or single thread: no dispatch at all — run on
        // the caller thread through the replay entry point.
        for (machine_id, ((chunk, slot), arena)) in chunks
            .iter()
            .zip(results.iter_mut())
            .zip(arenas.iter_mut())
            .enumerate()
        {
            *slot = Some(run_one_machine(
                machine_id, read, write, chunk, spec, arena, &body,
            ));
        }
    } else {
        // Machines become work items on the persistent pool. Each task
        // owns disjoint `&mut` slices of the results and arenas.
        let body = &body;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
            .iter()
            .zip(results.iter_mut())
            .zip(arenas.iter_mut())
            .enumerate()
            .map(|(machine_id, ((chunk, slot), arena))| {
                Box::new(move || {
                    *slot = Some(run_one_machine(
                        machine_id, read, write, chunk, spec, arena, body,
                    ));
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        WorkerPool::global(policy.threads).run_batch(tasks, policy.threads);
    }

    RoundOutcome::collect(results)
}

/// Runs a single machine's share of a round. This is both the inline
/// execution path and the replay path used by fault injection —
/// replaying against the same sealed generation necessarily reproduces
/// the same result, whichever policy ran the original round.
pub fn run_one_machine<V, T, R, F>(
    machine_id: usize,
    read: &Generation<V>,
    write: Option<&GenerationWriter<V>>,
    chunk: &[T],
    spec: RoundSpec,
    scratch: &mut ScratchBuffers,
    body: &F,
) -> (Vec<R>, MachineRoundStats)
where
    V: Measured + Clone + PartialEq + Send + Wire,
    F: Fn(&mut MachineCtx<'_, V>, &[T]) -> Vec<R>,
{
    let mut ctx = MachineCtx {
        machine_id,
        handle: MachineHandle::new(read, write)
            .with_budget(spec.budget)
            .with_machine(machine_id as u32)
            .with_batching(spec.batching)
            .with_chaos_drops(spec.drops)
            .with_hot_keys(spec.hot_keys),
        scratch,
        ops: 0,
    };
    let out = body(&mut ctx, chunk);
    let stats = MachineRoundStats {
        comm: *ctx.handle.stats(),
        ops: ctx.ops,
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition;

    /// Policies a round must behave identically under.
    fn policies() -> [ExecPolicy; 3] {
        [
            ExecPolicy::inline(),
            ExecPolicy::pooled(4),
            ExecPolicy {
                threads: 4,
                legacy_spawn: true,
            },
        ]
    }

    #[test]
    fn outputs_in_machine_order() {
        let read: Generation<u64> = Generation::from_iter((0..100u64).map(|k| (k, k * 10)));
        let chunks = partition::chunk((0..100u64).collect(), 4);
        let mut scratch = RoundScratch::new();
        for policy in policies() {
            let outcome = run_machines(
                &read,
                None,
                &chunks,
                RoundSpec::unbudgeted(),
                policy,
                &mut scratch,
                |ctx, items| {
                    items
                        .iter()
                        .map(|&k| *ctx.handle.get(k).unwrap())
                        .collect::<Vec<_>>()
                },
            );
            let expect: Vec<u64> = (0..100u64).map(|k| k * 10).collect();
            assert_eq!(outcome.outputs, expect, "{policy:?}");
        }
    }

    #[test]
    fn per_machine_stats_collected() {
        let read: Generation<u64> = Generation::from_iter((0..40u64).map(|k| (k, k)));
        let chunks = partition::chunk((0..40u64).collect(), 4);
        let mut scratch = RoundScratch::new();
        for policy in policies() {
            let outcome = run_machines(
                &read,
                None,
                &chunks,
                RoundSpec::unbudgeted(),
                policy,
                &mut scratch,
                |ctx, items| {
                    for &k in items {
                        ctx.handle.get(k);
                        ctx.add_ops(3);
                    }
                    Vec::<()>::new()
                },
            );
            assert_eq!(outcome.per_machine.len(), 4);
            for m in &outcome.per_machine {
                assert_eq!(m.comm.queries, 10, "{policy:?}");
                assert_eq!(m.ops, 30, "{policy:?}");
            }
        }
    }

    #[test]
    fn writes_visible_after_seal_under_every_policy() {
        for policy in policies() {
            let read: Generation<u64> = Generation::empty();
            let writer = GenerationWriter::new();
            let chunks = partition::chunk((0..20u64).collect(), 3);
            let mut scratch = RoundScratch::new();
            run_machines(
                &read,
                Some(&writer),
                &chunks,
                RoundSpec::unbudgeted(),
                policy,
                &mut scratch,
                |ctx, items| {
                    for &k in items {
                        ctx.handle.put(k, k + 1);
                    }
                    Vec::<()>::new()
                },
            );
            let sealed = writer.seal();
            assert_eq!(sealed.len(), 20, "{policy:?}");
            assert_eq!(sealed.get(7), Some(&8), "{policy:?}");
        }
    }

    /// The pool and the legacy spawn executor must seal byte-identical
    /// generations from racing duplicate writers.
    #[test]
    fn pool_and_spawn_seal_identical_generations() {
        let run = |policy: ExecPolicy| {
            let read: Generation<u64> = Generation::empty();
            let writer = GenerationWriter::new();
            // Every machine writes the shared keys with equal values
            // (the StatusWrite pattern) plus private keys.
            let chunks: Vec<Vec<u64>> = (0..8u64).map(|m| vec![m]).collect();
            let mut scratch = RoundScratch::new();
            run_machines(
                &read,
                Some(&writer),
                &chunks,
                RoundSpec::unbudgeted(),
                policy,
                &mut scratch,
                |ctx, items| {
                    for &m in items {
                        for i in 0..50u64 {
                            ctx.handle.put(m * 100 + i, i * 3);
                            ctx.handle.put(10_000 + i, i);
                        }
                    }
                    Vec::<()>::new()
                },
            );
            writer.seal_with_threads(1)
        };
        let pooled = run(ExecPolicy::pooled(4));
        let spawned = run(ExecPolicy {
            threads: 4,
            legacy_spawn: true,
        });
        let inline = run(ExecPolicy::inline());
        assert_eq!(pooled.layout_fingerprint(), spawned.layout_fingerprint());
        assert_eq!(pooled.layout_fingerprint(), inline.layout_fingerprint());
        let pairs = |g: &Generation<u64>| g.iter().map(|(k, v)| (k, *v)).collect::<Vec<_>>();
        assert_eq!(pairs(&pooled), pairs(&spawned));
        assert_eq!(pairs(&pooled), pairs(&inline));
    }

    #[test]
    fn replay_reproduces_outputs() {
        let read: Generation<u64> = Generation::from_iter((0..30u64).map(|k| (k, k * k)));
        let chunk: Vec<u64> = (5..15).collect();
        let body = |ctx: &mut MachineCtx<'_, u64>, items: &[u64]| {
            items
                .iter()
                .map(|&k| *ctx.handle.get(k).unwrap())
                .collect::<Vec<_>>()
        };
        let mut scratch = RoundScratch::new();
        let spec = RoundSpec::unbudgeted();
        let (a, sa) = run_one_machine(0, &read, None, &chunk, spec, scratch.machine(0), &body);
        let (b, sb) = run_one_machine(0, &read, None, &chunk, spec, scratch.machine(0), &body);
        assert_eq!(a, b);
        assert_eq!(sa.comm, sb.comm);
    }

    #[test]
    fn batched_round_counts_fewer_round_trips() {
        let read: Generation<u64> = Generation::from_iter((0..64u64).map(|k| (k, k)));
        let chunks = partition::chunk((0..64u64).collect(), 4);
        let body = |ctx: &mut MachineCtx<'_, u64>, items: &[u64]| {
            let keys: Vec<u64> = items.to_vec();
            ctx.handle
                .get_many(&keys)
                .into_iter()
                .map(|v| *v.unwrap())
                .collect::<Vec<u64>>()
        };
        let mut scratch = RoundScratch::new();
        let on = run_machines(
            &read,
            None,
            &chunks,
            RoundSpec::unbudgeted(),
            ExecPolicy::inline(),
            &mut scratch,
            body,
        );
        let off = run_machines(
            &read,
            None,
            &chunks,
            RoundSpec {
                batching: false,
                ..RoundSpec::unbudgeted()
            },
            ExecPolicy::inline(),
            &mut scratch,
            body,
        );
        assert_eq!(on.outputs, off.outputs);
        for (a, b) in on.per_machine.iter().zip(&off.per_machine) {
            assert_eq!(a.comm.queries, b.comm.queries);
            assert_eq!(a.comm.bytes_read, b.comm.bytes_read);
            assert_eq!(a.comm.batches, 1);
            assert_eq!(b.comm.batches, b.comm.queries);
        }
    }

    /// The `O(S)` budget is enforced at the handle: an Algorithm-1-style
    /// search that keeps exploring is truncated exactly at the budget.
    #[test]
    fn enforced_budget_truncates_machine_searches() {
        let read: Generation<u64> = Generation::from_iter((0..1000u64).map(|k| (k, k + 1)));
        let chunks = partition::chunk(vec![0u64, 500], 2);
        let budget = 5u64;
        let mut scratch = RoundScratch::new();
        for policy in policies() {
            let outcome = run_machines(
                &read,
                None,
                &chunks,
                RoundSpec {
                    budget,
                    ..RoundSpec::unbudgeted()
                },
                policy,
                &mut scratch,
                |ctx, items| {
                    items
                        .iter()
                        .map(|&start| {
                            let mut cur = start;
                            loop {
                                match ctx.handle.try_get(cur) {
                                    Ok(Some(&next)) => cur = next,
                                    Ok(None) | Err(_) => break cur,
                                }
                            }
                        })
                        .collect::<Vec<u64>>()
                },
            );
            // Each machine ran one chain and was cut off after `budget` hops.
            assert_eq!(outcome.outputs, vec![budget, 500 + budget], "{policy:?}");
            for m in &outcome.per_machine {
                assert_eq!(m.comm.queries, budget, "{policy:?}");
            }
        }
    }

    #[test]
    fn machine_panic_propagates_from_the_pool() {
        let read: Generation<u64> = Generation::from_iter((0..8u64).map(|k| (k, k)));
        let chunks = partition::chunk((0..8u64).collect(), 4);
        let mut scratch = RoundScratch::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_machines(
                &read,
                None,
                &chunks,
                RoundSpec::unbudgeted(),
                ExecPolicy::pooled(4),
                &mut scratch,
                |ctx, items| {
                    if ctx.machine_id == 2 {
                        panic!("injected machine failure");
                    }
                    items.to_vec()
                },
            )
        }));
        assert!(result.is_err());
    }
}
