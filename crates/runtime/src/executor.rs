//! Parallel execution of machine bodies.
//!
//! One simulated machine = one OS thread for the duration of a round
//! (rounds are few and coarse, so thread spawn cost is negligible).
//! Each machine gets a metered [`MachineHandle`] onto the DHT plus a
//! local operation counter; the round's outcome carries per-machine
//! statistics so the cost model can charge the *bottleneck* machine.

use ampc_dht::handle::MachineHandle;
use ampc_dht::measured::Measured;
use ampc_dht::metrics::CommStats;
use ampc_dht::store::{Generation, GenerationWriter};

/// Everything a machine body can touch during a round.
pub struct MachineCtx<'a, V> {
    /// This machine's index in `0..P`.
    pub machine_id: usize,
    /// Metered DHT access.
    pub handle: MachineHandle<'a, V>,
    ops: u64,
}

impl<'a, V: Measured + Clone + PartialEq> MachineCtx<'a, V> {
    /// Records `n` units of local computation (charged by the cost
    /// model at `compute_ns_per_op` each).
    #[inline]
    pub fn add_ops(&mut self, n: u64) {
        self.ops += n;
    }

    /// Local operations recorded so far.
    #[inline]
    pub fn ops(&self) -> u64 {
        self.ops
    }
}

/// Per-machine outcome of one round.
#[derive(Clone, Copy, Debug, Default)]
pub struct MachineRoundStats {
    /// The machine's DHT communication.
    pub comm: CommStats,
    /// The machine's local operation count.
    pub ops: u64,
}

/// Outcome of a parallel round.
pub struct RoundOutcome<R> {
    /// Outputs of all machines concatenated in machine order (so the
    /// result is deterministic regardless of thread scheduling).
    pub outputs: Vec<R>,
    /// Per-machine statistics, indexed by machine id.
    pub per_machine: Vec<MachineRoundStats>,
}

/// Runs `body` once per machine over the given per-machine `chunks`,
/// in parallel. Reads go to the sealed generation `read`; writes (if
/// `write` is provided) go into the next generation under construction.
///
/// `budget` is the per-machine query budget (`O(S)` in the model);
/// `batching` selects batched round-trip accounting vs the single-key
/// baseline (see [`MachineHandle::get_many`]).
pub fn run_machines<V, T, R, F>(
    read: &Generation<V>,
    write: Option<&GenerationWriter<V>>,
    chunks: &[Vec<T>],
    budget: u64,
    batching: bool,
    body: F,
) -> RoundOutcome<R>
where
    V: Measured + Clone + PartialEq + Sync + Send,
    T: Sync,
    R: Send,
    F: Fn(&mut MachineCtx<'_, V>, &[T]) -> Vec<R> + Sync,
{
    let p = chunks.len();
    let mut results: Vec<Option<(Vec<R>, MachineRoundStats)>> = (0..p).map(|_| None).collect();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (machine_id, chunk) in chunks.iter().enumerate() {
            let body = &body;
            handles.push(scope.spawn(move || {
                run_one_machine(machine_id, read, write, chunk, budget, batching, body)
            }));
        }
        for (slot, h) in results.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("machine thread panicked"));
        }
    });

    let mut outputs = Vec::new();
    let mut per_machine = Vec::with_capacity(p);
    for r in results {
        let (out, stats) = r.unwrap();
        outputs.extend(out);
        per_machine.push(stats);
    }
    RoundOutcome {
        outputs,
        per_machine,
    }
}

/// Runs a single machine's share of a round (also the replay path used
/// by fault injection — replaying against the same sealed generation
/// necessarily reproduces the same result).
pub fn run_one_machine<V, T, R, F>(
    machine_id: usize,
    read: &Generation<V>,
    write: Option<&GenerationWriter<V>>,
    chunk: &[T],
    budget: u64,
    batching: bool,
    body: &F,
) -> (Vec<R>, MachineRoundStats)
where
    V: Measured + Clone + PartialEq,
    F: Fn(&mut MachineCtx<'_, V>, &[T]) -> Vec<R>,
{
    let mut ctx = MachineCtx {
        machine_id,
        handle: MachineHandle::new(read, write)
            .with_budget(budget)
            .with_machine(machine_id as u32)
            .with_batching(batching),
        ops: 0,
    };
    let out = body(&mut ctx, chunk);
    let stats = MachineRoundStats {
        comm: *ctx.handle.stats(),
        ops: ctx.ops,
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition;

    #[test]
    fn outputs_in_machine_order() {
        let read: Generation<u64> = Generation::from_iter((0..100u64).map(|k| (k, k * 10)));
        let chunks = partition::chunk((0..100u64).collect(), 4);
        let outcome = run_machines(&read, None, &chunks, u64::MAX, true, |ctx, items| {
            items
                .iter()
                .map(|&k| *ctx.handle.get(k).unwrap())
                .collect::<Vec<_>>()
        });
        let expect: Vec<u64> = (0..100u64).map(|k| k * 10).collect();
        assert_eq!(outcome.outputs, expect);
    }

    #[test]
    fn per_machine_stats_collected() {
        let read: Generation<u64> = Generation::from_iter((0..40u64).map(|k| (k, k)));
        let chunks = partition::chunk((0..40u64).collect(), 4);
        let outcome = run_machines(&read, None, &chunks, u64::MAX, true, |ctx, items| {
            for &k in items {
                ctx.handle.get(k);
                ctx.add_ops(3);
            }
            Vec::<()>::new()
        });
        assert_eq!(outcome.per_machine.len(), 4);
        for m in &outcome.per_machine {
            assert_eq!(m.comm.queries, 10);
            assert_eq!(m.ops, 30);
        }
    }

    #[test]
    fn writes_visible_after_seal() {
        let read: Generation<u64> = Generation::empty();
        let writer = GenerationWriter::new();
        let chunks = partition::chunk((0..20u64).collect(), 3);
        run_machines(&read, Some(&writer), &chunks, u64::MAX, true, |ctx, items| {
            for &k in items {
                ctx.handle.put(k, k + 1);
            }
            Vec::<()>::new()
        });
        let sealed = writer.seal();
        assert_eq!(sealed.len(), 20);
        assert_eq!(sealed.get(7), Some(&8));
    }

    #[test]
    fn replay_reproduces_outputs() {
        let read: Generation<u64> = Generation::from_iter((0..30u64).map(|k| (k, k * k)));
        let chunk: Vec<u64> = (5..15).collect();
        let body = |ctx: &mut MachineCtx<'_, u64>, items: &[u64]| {
            items
                .iter()
                .map(|&k| *ctx.handle.get(k).unwrap())
                .collect::<Vec<_>>()
        };
        let (a, sa) = run_one_machine(0, &read, None, &chunk, u64::MAX, true, &body);
        let (b, sb) = run_one_machine(0, &read, None, &chunk, u64::MAX, true, &body);
        assert_eq!(a, b);
        assert_eq!(sa.comm, sb.comm);
    }

    #[test]
    fn batched_round_counts_fewer_round_trips() {
        let read: Generation<u64> = Generation::from_iter((0..64u64).map(|k| (k, k)));
        let chunks = partition::chunk((0..64u64).collect(), 4);
        let body = |ctx: &mut MachineCtx<'_, u64>, items: &[u64]| {
            let keys: Vec<u64> = items.to_vec();
            ctx.handle
                .get_many(&keys)
                .into_iter()
                .map(|v| *v.unwrap())
                .collect::<Vec<u64>>()
        };
        let on = run_machines(&read, None, &chunks, u64::MAX, true, body);
        let off = run_machines(&read, None, &chunks, u64::MAX, false, body);
        assert_eq!(on.outputs, off.outputs);
        for (a, b) in on.per_machine.iter().zip(&off.per_machine) {
            assert_eq!(a.comm.queries, b.comm.queries);
            assert_eq!(a.comm.bytes_read, b.comm.bytes_read);
            assert_eq!(a.comm.batches, 1);
            assert_eq!(b.comm.batches, b.comm.queries);
        }
    }

    /// The `O(S)` budget is enforced at the handle: an Algorithm-1-style
    /// search that keeps exploring is truncated exactly at the budget.
    #[test]
    fn enforced_budget_truncates_machine_searches() {
        let read: Generation<u64> = Generation::from_iter((0..1000u64).map(|k| (k, k + 1)));
        let chunks = partition::chunk(vec![0u64, 500], 2);
        let budget = 5u64;
        let outcome = run_machines(&read, None, &chunks, budget, true, |ctx, items| {
            items
                .iter()
                .map(|&start| {
                    let mut cur = start;
                    loop {
                        match ctx.handle.try_get(cur) {
                            Ok(Some(&next)) => cur = next,
                            Ok(None) | Err(_) => break cur,
                        }
                    }
                })
                .collect::<Vec<u64>>()
        });
        // Each machine ran one chain and was cut off after `budget` hops.
        assert_eq!(outcome.outputs, vec![budget, 500 + budget]);
        for m in &outcome.per_machine {
            assert_eq!(m.comm.queries, budget);
        }
    }
}
