//! # ampc-runtime — the simulated multi-machine dataflow runtime
//!
//! The paper's implementations run on Flume-C++ (a fault-tolerant
//! dataflow framework) with AMPC algorithms additionally querying a
//! distributed key-value store from inside a stage (§5.1). This crate is
//! the laptop-scale stand-in for that environment:
//!
//! * A **job** ([`job::Job`]) is a sequence of **stages**. Stages come in
//!   three kinds, mirroring what the paper meters:
//!   [`report::StageKind::Shuffle`] (the costly rounds of Table 3 — data
//!   regrouped by key and persisted to durable storage),
//!   [`report::StageKind::KvRound`] (an AMPC round where machines query
//!   the DHT), and [`report::StageKind::Local`] (the "switch to an
//!   in-memory algorithm on one machine" step both the AMPC and MPC
//!   implementations use).
//! * The **executor** ([`executor`]) runs machine bodies as work items
//!   on a **persistent worker pool** ([`pool::WorkerPool`]) created
//!   once per process and reused across all rounds of all jobs (sized
//!   by `AMPC_THREADS`; `AMPC_THREADS=1` — and any single-machine round
//!   — runs inline on the caller thread with no dispatch at all). Each
//!   machine's DHT traffic is metered through an
//!   [`ampc_dht::MachineHandle`] that carries the machine's id (for
//!   deterministic duplicate-write resolution), its enforced `O(S)`
//!   query budget, and the §5.3 batching mode — lookup latency is
//!   charged per batched round trip, bandwidth per key. The execution
//!   policy is purely a wall-clock knob: outputs, round counts and
//!   `CommStats` are identical under every policy, including the
//!   retained pre-pool spawn-per-machine baseline.
//! * Every stage appends a [`report::StageReport`]; the final
//!   [`report::JobReport`] carries everything the benchmark harness needs
//!   to regenerate the paper's tables and figures: shuffle counts
//!   (Table 3), bytes shuffled and KV bytes (Figures 3 & 9), per-stage
//!   simulated time breakdowns (Figures 5–7), and machine-count scaling
//!   (Figure 8).
//! * [`fault`] demonstrates the fault-tolerance property of §2: because
//!   sealed DHT generations are immutable, replaying a preempted
//!   machine's work yields byte-identical results. [`chaos`] generalizes
//!   it to seeded multi-fault **schedules** — several machines per
//!   stage, repeated kills, correlated stripes, epoch-targeted kills
//!   for the dynamic kernels, and DHT batch drops retried with capped
//!   exponential backoff — under the same invariant: outputs stay
//!   byte-identical, only simulated time and retry counters change.
//! * [`driver`] owns the orchestration kernels used to hand-roll —
//!   job lifecycle ([`driver::drive`]), truncated-round budget
//!   bookkeeping ([`driver::AdaptiveRounds`]), config resolution
//!   ([`driver::DriverOptions`]) and report flattening
//!   ([`driver::RunSummary`]) — so every algorithm behind the
//!   `AmpcAlgorithm` trait shares one code path from configuration to
//!   finished report (DESIGN.md §7).
//!
//! Simulated time is deterministic given the job's [`config::AmpcConfig`]
//! and is the primary "running time" in all reproduced figures; see
//! `DESIGN.md` §6 for the calibration of the cost constants.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod chaos;
pub mod config;
pub mod driver;
pub mod executor;
pub mod fault;
pub mod job;
pub mod partition;
pub mod pool;
pub mod report;

pub use chaos::{ChaosSpec, FaultSchedule};
pub use config::AmpcConfig;
pub use job::Job;
pub use report::{JobReport, StageKind, StageReport};
