//! The persistent executor worker pool.
//!
//! Before this pool existed, every [`crate::executor::run_machines`]
//! round spawned one fresh OS thread per simulated machine — with the
//! paper's 100-machine cycle configurations that is hundreds of spawns
//! per round, pure simulation overhead the paper's wall-clock claims
//! (§5, "Theory meets Practice") never pay. The pool is created once
//! per process, sized by `AMPC_THREADS`
//! ([`ampc_dht::store::ampc_threads`]), and reused across all rounds of
//! all jobs: each round's machines become **tasks** of one batch, and
//! pool workers (alongside the submitting thread itself) drain them.
//!
//! Design notes:
//!
//! * **Caller helps, concurrency is bounded.** [`WorkerPool::run_batch`]
//!   keeps the batch's tasks in a queue of its own and enlists up to
//!   `limit - 1` pool workers as *runners* that drain it; the
//!   submitting thread is always the first runner. At most `limit` of
//!   the batch's tasks execute concurrently (the `AmpcConfig::threads`
//!   contract), batches cannot deadlock on an undersized pool, and a
//!   0-idle-worker pool still makes progress through the caller.
//! * **Borrowed work.** Machine bodies borrow the sealed generation,
//!   the next generation's writer and the round closure from the
//!   caller's stack. `run_batch` blocks until every item of its batch
//!   has finished, which is what makes handing those borrows to
//!   longer-lived worker threads sound (the same reasoning as
//!   `std::thread::scope`, with the scope replaced by the batch
//!   completion latch). The lifetime erasure this requires is the one
//!   `unsafe` in the workspace and is documented at the cast.
//! * **Panics propagate.** A panicking work item is caught on the
//!   worker, recorded in its batch, and re-raised on the submitting
//!   thread after the batch completes — identical observable behavior
//!   to the old spawn-per-machine executor.

#![allow(unsafe_code)] // lifetime erasure for scoped work items; see run_batch.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A unit of pool work: a **runner** for one batch. A runner drains its
/// batch's own task queue until empty, so the number of runners — not
/// the pool size — bounds how many of the batch's tasks execute
/// concurrently.
struct WorkItem {
    batch: Arc<BatchState>,
}

/// One `run_batch` call: its pending tasks, completion latch, and panic
/// mailbox.
struct BatchState {
    /// Tasks not yet started (lifetimes erased; see `run_batch`).
    tasks: Mutex<VecDeque<Box<dyn FnOnce() + Send + 'static>>>,
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl BatchState {
    fn new(n: usize) -> Arc<Self> {
        Arc::new(BatchState {
            tasks: Mutex::new(VecDeque::with_capacity(n)),
            remaining: Mutex::new(n),
            done: Condvar::new(),
            panic: Mutex::new(None),
        })
    }

    /// Runs this batch's pending tasks until none remain, catching
    /// panics into the mailbox and releasing one latch unit per task.
    fn drain(self: &Arc<Self>) {
        loop {
            let Some(task) = self.tasks.lock().expect("task queue poisoned").pop_front() else {
                return;
            };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                let mut slot = self.panic.lock().expect("panic mailbox poisoned");
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            let mut remaining = self.remaining.lock().expect("latch poisoned");
            *remaining -= 1;
            if *remaining == 0 {
                self.done.notify_all();
            }
        }
    }
}

/// Shared pool state: the work queue and its signal.
struct Shared {
    queue: Mutex<VecDeque<WorkItem>>,
    ready: Condvar,
}

/// A persistent pool of worker threads executing queued machine bodies.
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Number of worker threads (the submitting thread adds one more
    /// executor during `run_batch`).
    workers: usize,
}

/// The process-wide pool used by the executor, created on first use.
static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();

impl WorkerPool {
    /// Creates a pool with `workers` dedicated threads (≥ 1). Workers
    /// are detached; they park on the queue condvar when idle and live
    /// for the life of the process (the intended use is one
    /// process-wide pool — see [`WorkerPool::global`]).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        });
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("ampc-exec-{i}"))
                .spawn(move || loop {
                    let item = {
                        let mut q = shared.queue.lock().expect("queue poisoned");
                        loop {
                            if let Some(item) = q.pop_front() {
                                break item;
                            }
                            q = shared.ready.wait(q).expect("queue poisoned");
                        }
                    };
                    item.batch.drain();
                })
                .expect("failed to spawn executor worker");
        }
        WorkerPool { shared, workers }
    }

    /// The process-wide pool, sized on first use to
    /// `max(requested, AMPC_THREADS) - 1` workers (the submitting
    /// thread is the remaining executor). Later calls reuse the pool
    /// whatever their `requested` value: pool *size* bounds concurrency,
    /// never correctness — excess machines simply queue.
    pub fn global(requested: usize) -> &'static WorkerPool {
        GLOBAL.get_or_init(|| {
            WorkerPool::new(
                requested
                    .max(ampc_dht::store::ampc_threads())
                    .saturating_sub(1),
            )
        })
    }

    /// Number of dedicated worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every closure in `tasks` to completion, with at most
    /// `limit` of them executing concurrently (the calling thread is
    /// one of the executors; up to `limit - 1` pool workers join it as
    /// batch runners). Blocks until all tasks have finished; if any
    /// panicked, the first panic payload is re-raised here (after the
    /// whole batch has drained, so no task is left running with
    /// dangling borrows).
    pub fn run_batch<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>, limit: usize) {
        if tasks.is_empty() {
            return;
        }
        let n = tasks.len();
        let batch = BatchState::new(n);
        {
            let mut q = batch.tasks.lock().expect("task queue poisoned");
            for task in tasks {
                // SAFETY: the closure borrows from `'env` (the caller's
                // stack). We erase that lifetime to hand the box to
                // worker threads, and re-establish soundness by never
                // returning from this function until the batch latch
                // reports every task finished (panicked tasks release
                // the latch too, after unwinding out of the closure).
                // Tasks cannot outlive the wait below, so the borrows
                // never dangle — the same contract `std::thread::scope`
                // enforces with its implicit join.
                let run: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
                q.push_back(run);
            }
        }
        // Enlist up to `limit - 1` pool workers as runners for this
        // batch (a runner finding the batch already drained returns
        // immediately, so over-enlisting is harmless).
        let runners = limit.saturating_sub(1).min(n.saturating_sub(1));
        if runners > 0 {
            let mut q = self.shared.queue.lock().expect("queue poisoned");
            for _ in 0..runners {
                q.push_back(WorkItem {
                    batch: Arc::clone(&batch),
                });
            }
            self.shared.ready.notify_all();
        }
        // The submitting thread is the batch's first runner.
        batch.drain();
        // Wait for stragglers still running on workers.
        let mut remaining = batch.remaining.lock().expect("latch poisoned");
        while *remaining > 0 {
            remaining = batch.done.wait(remaining).expect("latch poisoned");
        }
        drop(remaining);
        let panicked = batch.panic.lock().expect("panic mailbox poisoned").take();
        if let Some(payload) = panicked {
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_all_tasks_with_borrowed_state() {
        let pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        let mut results = vec![0usize; 100];
        {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = results
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| {
                    let counter = &counter;
                    Box::new(move || {
                        counter.fetch_add(1, Ordering::Relaxed);
                        *slot = i * 2;
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_batch(tasks, 3);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r, i * 2);
        }
    }

    #[test]
    fn batches_reuse_the_same_pool() {
        let pool = WorkerPool::new(2);
        for round in 0..50usize {
            let mut out = [0usize; 8];
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = out
                .iter_mut()
                .map(|slot| Box::new(move || *slot = round + 1) as Box<dyn FnOnce() + Send + '_>)
                .collect();
            pool.run_batch(tasks, 2);
            assert!(out.iter().all(|&v| v == round + 1), "round {round}");
        }
    }

    #[test]
    fn panic_in_task_propagates_after_batch_drains() {
        let pool = WorkerPool::new(2);
        let completed = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..6)
                .map(|i| {
                    let completed = &completed;
                    Box::new(move || {
                        if i == 3 {
                            panic!("machine body panicked");
                        }
                        completed.fetch_add(1, Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_batch(tasks, 2);
        }));
        assert!(result.is_err(), "panic must propagate to the submitter");
        assert_eq!(
            completed.load(Ordering::Relaxed),
            5,
            "other items still ran"
        );
    }

    #[test]
    fn limit_bounds_batch_concurrency() {
        let pool = WorkerPool::new(4);
        let active = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..16)
            .map(|_| {
                let (active, peak) = (&active, &peak);
                Box::new(move || {
                    let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    active.fetch_sub(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_batch(tasks, 2);
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "limit=2 exceeded: peak {}",
            peak.load(Ordering::SeqCst)
        );
        assert_eq!(active.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let pool = WorkerPool::new(1);
        pool.run_batch(Vec::new(), 4);
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = WorkerPool::global(2) as *const _;
        let b = WorkerPool::global(9) as *const _;
        assert_eq!(a, b);
    }
}
