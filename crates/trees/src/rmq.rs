//! Sparse-table range queries (O(n log n) build, O(1) query).
//!
//! Appendix B: *"A possible approach is to compute an auxiliary array
//! b_{x,y} … Andoni et al. showed how to compute the RMQ data structure
//! in the MPC model in O(1) rounds using O(k log k) total
//! communication."* This is the in-memory equivalent; the MSF pipeline
//! charges its construction cost through the runtime's accounting.

/// Whether a table answers minimum or maximum queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RmqKind {
    /// Range minimum.
    Min,
    /// Range maximum.
    Max,
}

/// A sparse table over a value array, answering idempotent range
/// queries in O(1). Returns the *index* of the extremal element so
/// callers can recover positions (needed by LCA).
#[derive(Clone, Debug)]
pub struct SparseTable {
    /// `table[y]` holds, for each x, the index of the extremal value in
    /// `values[x .. x + 2^y]`.
    table: Vec<Vec<u32>>,
    values: Vec<u64>,
    kind: RmqKind,
}

impl SparseTable {
    /// Builds a table of the given kind over `values`.
    pub fn new(values: Vec<u64>, kind: RmqKind) -> Self {
        let n = values.len();
        let levels = if n <= 1 { 1 } else { n.ilog2() as usize + 1 };
        let mut table: Vec<Vec<u32>> = Vec::with_capacity(levels);
        table.push((0..n as u32).collect());
        let better = |a: u32, b: u32, values: &[u64]| -> u32 {
            let (va, vb) = (values[a as usize], values[b as usize]);
            let a_wins = match kind {
                RmqKind::Min => va <= vb,
                RmqKind::Max => va >= vb,
            };
            if a_wins {
                a
            } else {
                b
            }
        };
        for y in 1..levels {
            let half = 1usize << (y - 1);
            let width = 1usize << y;
            if width > n {
                break;
            }
            let prev = &table[y - 1];
            let mut row = Vec::with_capacity(n - width + 1);
            for x in 0..=(n - width) {
                row.push(better(prev[x], prev[x + half], &values));
            }
            table.push(row);
        }
        SparseTable {
            table,
            values,
            kind,
        }
    }

    /// Number of elements indexed.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The kind of query this table answers.
    pub fn kind(&self) -> RmqKind {
        self.kind
    }

    /// Index of the extremal value in the **inclusive** range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or `hi` is out of bounds.
    pub fn query(&self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi && hi < self.values.len(), "bad range {lo}..={hi}");
        let width = hi - lo + 1;
        let y = width.ilog2() as usize;
        let a = self.table[y][lo];
        let b = self.table[y][hi + 1 - (1 << y)];
        let (va, vb) = (self.values[a as usize], self.values[b as usize]);
        let a_wins = match self.kind {
            RmqKind::Min => va <= vb,
            RmqKind::Max => va >= vb,
        };
        if a_wins {
            a as usize
        } else {
            b as usize
        }
    }

    /// The extremal *value* in `[lo, hi]`.
    pub fn query_value(&self, lo: usize, hi: usize) -> u64 {
        self.values[self.query(lo, hi)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn min_queries_match_naive() {
        let mut rng = SmallRng::seed_from_u64(1);
        let values: Vec<u64> = (0..200).map(|_| rng.gen_range(0..1000)).collect();
        let st = SparseTable::new(values.clone(), RmqKind::Min);
        for _ in 0..500 {
            let a = rng.gen_range(0..200);
            let b = rng.gen_range(a..200);
            let naive = *values[a..=b].iter().min().unwrap();
            assert_eq!(st.query_value(a, b), naive);
        }
    }

    #[test]
    fn max_queries_match_naive() {
        let mut rng = SmallRng::seed_from_u64(2);
        let values: Vec<u64> = (0..137).map(|_| rng.gen_range(0..50)).collect();
        let st = SparseTable::new(values.clone(), RmqKind::Max);
        for a in 0..137 {
            for b in a..137.min(a + 20) {
                let naive = *values[a..=b].iter().max().unwrap();
                assert_eq!(st.query_value(a, b), naive);
            }
        }
    }

    #[test]
    fn single_element() {
        let st = SparseTable::new(vec![42], RmqKind::Min);
        assert_eq!(st.query(0, 0), 0);
        assert_eq!(st.query_value(0, 0), 42);
    }

    #[test]
    fn returns_index_of_extremum() {
        let st = SparseTable::new(vec![5, 1, 3, 1, 9], RmqKind::Min);
        // Ties: either index 1 or 3 is acceptable; value must be 1.
        let idx = st.query(0, 4);
        assert!(idx == 1 || idx == 3);
        assert_eq!(st.query_value(2, 4), 1);
        let st = SparseTable::new(vec![5, 1, 3, 1, 9], RmqKind::Max);
        assert_eq!(st.query(0, 4), 4);
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn rejects_reversed_range() {
        SparseTable::new(vec![1, 2, 3], RmqKind::Min).query(2, 1);
    }
}
