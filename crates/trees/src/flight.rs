//! F-light / F-heavy edge classification — Algorithm 5 of the paper.
//!
//! Definition 3.7: for a forest `F ⊆ G` and vertices `x, y`, `w_F(x, y)`
//! is the maximum edge weight on the unique `x`–`y` path in `F` (∞ if
//! they are in different components). An edge `uw ∈ E(G)` is **F-light**
//! if `w(uw) ≤ w_F(u, w)` and **F-heavy** otherwise. Proposition 3.8:
//! every MSF edge is F-light for any forest F, so F-heavy edges can be
//! discarded — the filtering step of the Karger–Klein–Tarjan sampling
//! reduction (Algorithm 3) that brings the MSF query complexity down to
//! `O(m + n log² n)` (Theorem 1).
//!
//! The implementation follows Algorithm 5 line by line: root each
//! component, compute levels, Euler tour + RMQ for LCA, heavy-light
//! decomposition + RMQ per heavy path for max-weight-on-path queries.

use crate::hld::Hld;
use crate::lca::LcaIndex;
use crate::rooting::{root_forest, RootedForest};
use ampc_graph::{GraphBuilder, NodeId, Weight, WeightedEdge};

/// Classification of a graph edge relative to a forest `F`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeClass {
    /// `w(uw) ≤ w_F(u, w)` — must be kept when computing the MSF.
    Light,
    /// `w(uw) > w_F(u, w)` — cannot be in the MSF (Proposition 3.8).
    Heavy,
}

/// A prepared index for F-light queries against a fixed forest.
pub struct FlightIndex {
    forest: RootedForest,
    lca: LcaIndex,
    hld: Hld,
}

impl FlightIndex {
    /// Builds the index from the forest's edges over vertex set `0..n`.
    ///
    /// # Panics
    /// Panics if `forest_edges` contains a cycle.
    pub fn new(n: usize, forest_edges: &[WeightedEdge]) -> Self {
        let mut b = GraphBuilder::with_capacity(n, forest_edges.len());
        for e in forest_edges {
            b.push_edge(e.u, e.v, e.w);
        }
        let fg = b.build_weighted();
        let forest = root_forest(fg.structure());
        // Parent-edge weights.
        let mut pw = vec![0 as Weight; n];
        for v in 0..n as NodeId {
            if !forest.is_root(v) {
                let p = forest.parent[v as usize];
                let idx = fg
                    .neighbors(v)
                    .binary_search(&p)
                    .expect("parent edge present");
                pw[v as usize] = fg.weights_of(v)[idx];
            }
        }
        let lca = LcaIndex::new(&forest);
        let hld = Hld::new(&forest, &pw);
        FlightIndex { forest, lca, hld }
    }

    /// `w_F(u, w)`: the max edge weight on the forest path, or `None`
    /// for ∞ (different components).
    pub fn path_max(&self, u: NodeId, w: NodeId) -> Option<Weight> {
        let l = self.lca.lca(u, w)?;
        // Same component. `max_edge_on_path` is None only when u == w.
        Some(self.hld.max_edge_on_path(u, w, l).unwrap_or(0))
    }

    /// Classifies one edge.
    pub fn classify(&self, e: &WeightedEdge) -> EdgeClass {
        match self.path_max(e.u, e.v) {
            None => EdgeClass::Light, // w_F = ∞
            Some(m) if e.w <= m => EdgeClass::Light,
            Some(_) => EdgeClass::Heavy,
        }
    }

    /// The rooted forest backing the index.
    pub fn forest(&self) -> &RootedForest {
        &self.forest
    }
}

/// Classifies every edge of the graph against the forest (Algorithm 5).
/// Returns classes aligned with `edges`.
pub fn classify_edges(
    n: usize,
    edges: &[WeightedEdge],
    forest_edges: &[WeightedEdge],
) -> Vec<EdgeClass> {
    let index = FlightIndex::new(n, forest_edges);
    edges.iter().map(|e| index.classify(e)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::gen;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Brute-force w_F via BFS on the forest.
    fn naive_path_max(
        n: usize,
        forest_edges: &[WeightedEdge],
        u: NodeId,
        w: NodeId,
    ) -> Option<Weight> {
        let mut adj: Vec<Vec<(NodeId, Weight)>> = vec![Vec::new(); n];
        for e in forest_edges {
            adj[e.u as usize].push((e.v, e.w));
            adj[e.v as usize].push((e.u, e.w));
        }
        // DFS from u tracking max weight.
        let mut best = vec![None::<Weight>; n];
        best[u as usize] = Some(0);
        let mut stack = vec![u];
        while let Some(v) = stack.pop() {
            let b = best[v as usize].unwrap();
            for &(x, wt) in &adj[v as usize] {
                if best[x as usize].is_none() {
                    best[x as usize] = Some(b.max(wt));
                    stack.push(x);
                }
            }
        }
        if u == w {
            return Some(0);
        }
        best[w as usize]
    }

    #[test]
    fn different_components_are_light() {
        // forest: single edge 0-1; graph edge 2-3 crosses components.
        let forest = [WeightedEdge::new(0, 1, 5)];
        let idx = FlightIndex::new(4, &forest);
        assert_eq!(
            idx.classify(&WeightedEdge::new(2, 3, 100)),
            EdgeClass::Light
        );
    }

    #[test]
    fn forest_edges_are_light() {
        let forest = [WeightedEdge::new(0, 1, 5), WeightedEdge::new(1, 2, 7)];
        let idx = FlightIndex::new(3, &forest);
        assert_eq!(idx.classify(&WeightedEdge::new(0, 1, 5)), EdgeClass::Light);
        assert_eq!(idx.classify(&WeightedEdge::new(1, 2, 7)), EdgeClass::Light);
    }

    #[test]
    fn heavy_edge_detected() {
        // path 0 -5- 1 -7- 2; edge (0,2) with weight 8 > max(5,7) = heavy;
        // with weight 6 <= 7 = light.
        let forest = [WeightedEdge::new(0, 1, 5), WeightedEdge::new(1, 2, 7)];
        let idx = FlightIndex::new(3, &forest);
        assert_eq!(idx.classify(&WeightedEdge::new(0, 2, 8)), EdgeClass::Heavy);
        assert_eq!(idx.classify(&WeightedEdge::new(0, 2, 6)), EdgeClass::Light);
        assert_eq!(idx.classify(&WeightedEdge::new(0, 2, 7)), EdgeClass::Light);
    }

    #[test]
    fn matches_naive_on_random_instances() {
        let mut rng = SmallRng::seed_from_u64(77);
        for seed in 0..4 {
            let n = 80;
            let tree = gen::random_tree(n, seed);
            let forest_edges: Vec<WeightedEdge> = tree
                .edges()
                .map(|e| WeightedEdge::new(e.u, e.v, rng.gen_range(1..100)))
                .collect();
            let idx = FlightIndex::new(n, &forest_edges);
            for _ in 0..300 {
                let u = rng.gen_range(0..n) as NodeId;
                let w = rng.gen_range(0..n) as NodeId;
                if u == w {
                    continue;
                }
                let wt = rng.gen_range(1..100);
                let e = WeightedEdge::new(u, w, wt);
                let expected = match naive_path_max(n, &forest_edges, u, w) {
                    None => EdgeClass::Light,
                    Some(m) if wt <= m => EdgeClass::Light,
                    Some(_) => EdgeClass::Heavy,
                };
                assert_eq!(idx.classify(&e), expected, "({u},{w},{wt})");
            }
        }
    }

    #[test]
    fn classify_edges_bulk() {
        let forest = [WeightedEdge::new(0, 1, 5), WeightedEdge::new(1, 2, 7)];
        let edges = [
            WeightedEdge::new(0, 2, 8),
            WeightedEdge::new(0, 2, 3),
            WeightedEdge::new(0, 1, 5),
        ];
        let classes = classify_edges(3, &edges, &forest);
        assert_eq!(
            classes,
            vec![EdgeClass::Heavy, EdgeClass::Light, EdgeClass::Light]
        );
    }
}
