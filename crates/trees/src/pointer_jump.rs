//! Pointer jumping: resolving directed trees to their roots.
//!
//! The "PointerJump" stage of the §5.5 MSF implementation: *"Our
//! implementation of pointer-jumping simply repeatedly queries the
//! parent of a vertex until it hits a tree root. Although the worst-case
//! depth of this algorithm could be as much as O(n), in practice, the
//! trees constructed by the algorithm are very shallow (we observed a
//! maximum query length of 33 over all graphs)."* This module provides
//! the in-memory primitive plus the same chain-length statistics; the
//! distributed variant in `ampc-core` issues the queries through the DHT
//! and inherits the statistics from its metered handle.

use ampc_graph::NodeId;

/// Statistics of a pointer-jumping pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JumpStats {
    /// The longest parent chain any vertex followed (the paper observed
    /// a maximum of 33 on its inputs).
    pub max_chain: usize,
    /// Total parent queries performed (without memoization this is the
    /// quantity a distributed implementation pays for).
    pub total_queries: u64,
}

/// Resolves the root of every vertex in a directed forest given as a
/// parent array (`parent[v] == v` marks roots). Uses memoization so the
/// total work is O(n), while `stats.max_chain` reports the *unmemoized*
/// chain length — what each distributed search would have paid.
///
/// # Panics
/// Panics if the parent pointers contain a cycle.
pub fn find_roots(parent: &[NodeId]) -> (Vec<NodeId>, JumpStats) {
    let n = parent.len();
    let mut root = vec![ampc_graph::NO_NODE; n];
    let mut depth = vec![0u32; n];
    let mut stats = JumpStats::default();
    let mut chain = Vec::new();
    for s in 0..n as NodeId {
        if root[s as usize] != ampc_graph::NO_NODE {
            continue;
        }
        // Walk up until a known root or a self-loop, recording the chain.
        let mut v = s;
        chain.clear();
        let (r, base_depth) = loop {
            if root[v as usize] != ampc_graph::NO_NODE {
                break (root[v as usize], depth[v as usize]);
            }
            let p = parent[v as usize];
            if p == v {
                break (v, 0);
            }
            chain.push(v);
            assert!(chain.len() <= n, "cycle detected in parent array (via {s})");
            v = p;
        };
        root[v as usize] = r;
        // Unwind the chain, assigning true (unmemoized) depths.
        for (i, &u) in chain.iter().rev().enumerate() {
            root[u as usize] = r;
            depth[u as usize] = base_depth + i as u32 + 1;
            stats.max_chain = stats.max_chain.max(depth[u as usize] as usize);
        }
        stats.total_queries += chain.len() as u64 + 1;
    }
    (root, stats)
}

/// The unmemoized chain length from each vertex — the per-search query
/// count a distributed pointer-jump pays. Used by the MSF pipeline's
/// accounting.
pub fn chain_lengths(parent: &[NodeId]) -> Vec<u32> {
    let n = parent.len();
    let mut len = vec![u32::MAX; n];
    let mut chain = Vec::new();
    for s in 0..n as NodeId {
        if len[s as usize] != u32::MAX {
            continue;
        }
        let mut v = s;
        chain.clear();
        while len[v as usize] == u32::MAX && parent[v as usize] != v {
            chain.push(v);
            assert!(chain.len() <= n, "cycle in parent array");
            v = parent[v as usize];
        }
        let base = if parent[v as usize] == v {
            len[v as usize] = 0;
            0
        } else {
            len[v as usize]
        };
        for (i, &u) in chain.iter().rev().enumerate() {
            len[u as usize] = base + i as u32 + 1;
        }
    }
    len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_chain() {
        // 4 -> 3 -> 2 -> 1 -> 0 (root)
        let parent = vec![0, 0, 1, 2, 3];
        let (roots, stats) = find_roots(&parent);
        assert_eq!(roots, vec![0; 5]);
        assert_eq!(stats.max_chain, 4);
    }

    #[test]
    fn multiple_trees() {
        let parent = vec![0, 0, 2, 2, 3];
        let (roots, _) = find_roots(&parent);
        assert_eq!(roots, vec![0, 0, 2, 2, 2]);
    }

    #[test]
    fn all_roots() {
        let parent: Vec<NodeId> = (0..5).collect();
        let (roots, stats) = find_roots(&parent);
        assert_eq!(roots, parent);
        assert_eq!(stats.max_chain, 0);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn detects_cycles() {
        find_roots(&[1, 2, 0]);
    }

    #[test]
    fn chain_lengths_exact() {
        let parent = vec![0, 0, 1, 2, 3];
        assert_eq!(chain_lengths(&parent), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn chain_lengths_branching() {
        // star rooted at 0: every leaf one hop.
        let parent = vec![0, 0, 0, 0];
        assert_eq!(chain_lengths(&parent), vec![0, 1, 1, 1]);
    }
}
