//! Heavy-light decomposition with maximum-edge-weight path queries.
//!
//! Appendix B: *"For each non-leaf vertex v of T, … choose the subtree of
//! the largest size … and mark the edge from v to the child with the
//! largest subtree as heavy. … For each vertex v ∈ T, the path T[v, r]
//! consists of O(log n) light edges and O(log n) contiguous segments,
//! each being a subpath of a heavy path."* Combined with an RMQ per
//! concatenated heavy-path order, the maximum edge weight on any
//! vertex-to-ancestor path is answered in O(log n) table lookups — the
//! machinery behind Algorithm 5's F-light classification.

use crate::rmq::{RmqKind, SparseTable};
use crate::rooting::RootedForest;
use ampc_graph::{NodeId, Weight};

/// Heavy-light decomposition of a rooted forest, with the weight of each
/// vertex's parent edge indexed for max-on-path queries.
pub struct Hld {
    head: Vec<NodeId>,
    pos: Vec<usize>,
    parent: Vec<NodeId>,
    level: Vec<u32>,
    root: Vec<NodeId>,
    /// `edge_at[pos[v]]` = weight of the edge `v → parent(v)`.
    rmq: SparseTable,
}

impl Hld {
    /// Builds the decomposition. `parent_edge_weight[v]` is the weight of
    /// the edge from `v` to its parent (ignored for roots).
    pub fn new(forest: &RootedForest, parent_edge_weight: &[Weight]) -> Self {
        let n = forest.len();
        assert_eq!(parent_edge_weight.len(), n);
        let sizes = forest.subtree_sizes();
        let children = forest.children();

        // Heavy child of each vertex (largest subtree, ties to smallest id).
        let mut heavy = vec![ampc_graph::NO_NODE; n];
        for v in 0..n {
            let mut best = ampc_graph::NO_NODE;
            let mut best_size = 0u32;
            for &c in &children[v] {
                if sizes[c as usize] > best_size {
                    best_size = sizes[c as usize];
                    best = c;
                }
            }
            heavy[v] = best;
        }

        // DFS visiting the heavy child first so each heavy path is
        // contiguous in `pos` order.
        let mut head = vec![ampc_graph::NO_NODE; n];
        let mut pos = vec![usize::MAX; n];
        let mut weights_by_pos = vec![0 as Weight; n];
        let mut counter = 0usize;
        let mut stack: Vec<(NodeId, NodeId)> = Vec::new(); // (vertex, its head)
        for r in forest.roots() {
            stack.push((r, r));
            while let Some((v, h)) = stack.pop() {
                head[v as usize] = h;
                pos[v as usize] = counter;
                weights_by_pos[counter] = parent_edge_weight[v as usize];
                counter += 1;
                // Push light children first (processed later), heavy last
                // (processed immediately next, keeping the path contiguous).
                let hv = heavy[v as usize];
                for &c in children[v as usize].iter().rev() {
                    if c != hv {
                        stack.push((c, c));
                    }
                }
                if hv != ampc_graph::NO_NODE {
                    stack.push((hv, h));
                }
            }
        }
        debug_assert_eq!(counter, n);
        Hld {
            head,
            pos,
            parent: forest.parent.clone(),
            level: forest.level.clone(),
            root: forest.root.clone(),
            rmq: SparseTable::new(weights_by_pos, RmqKind::Max),
        }
    }

    /// The head (topmost vertex) of `v`'s heavy path.
    #[inline]
    pub fn head_of(&self, v: NodeId) -> NodeId {
        self.head[v as usize]
    }

    /// Maximum edge weight on the path from `v` up to its ancestor `a`
    /// (`None` if `v == a`, i.e. the empty path).
    ///
    /// # Panics
    /// Panics in debug builds if `a` is not an ancestor of `v`.
    pub fn max_edge_to_ancestor(&self, mut v: NodeId, a: NodeId) -> Option<Weight> {
        debug_assert_eq!(self.root[v as usize], self.root[a as usize]);
        debug_assert!(self.level[a as usize] <= self.level[v as usize]);
        if v == a {
            return None;
        }
        let mut best: Weight = 0;
        let mut any = false;
        while self.head[v as usize] != self.head[a as usize] {
            let h = self.head[v as usize];
            // Segment: edges stored at pos[h] ..= pos[v] (pos[h] holds
            // h's own parent edge, which the jump traverses).
            let w = self
                .rmq
                .query_value(self.pos[h as usize], self.pos[v as usize]);
            best = best.max(w);
            any = true;
            v = self.parent[h as usize];
        }
        if v != a {
            // Same heavy path: edges at pos[a] + 1 ..= pos[v].
            let w = self
                .rmq
                .query_value(self.pos[a as usize] + 1, self.pos[v as usize]);
            best = best.max(w);
            any = true;
        }
        any.then_some(best)
    }

    /// Maximum edge weight on the tree path between `u` and `w`, given
    /// their LCA (`None` for the empty path `u == w`).
    pub fn max_edge_on_path(&self, u: NodeId, w: NodeId, lca: NodeId) -> Option<Weight> {
        let a = self.max_edge_to_ancestor(u, lca);
        let b = self.max_edge_to_ancestor(w, lca);
        match (a, b) {
            (None, x) => x,
            (x, None) => x,
            (Some(x), Some(y)) => Some(x.max(y)),
        }
    }

    /// Number of heavy-path segments on the path from `v` to its root —
    /// Lemma B.1 bounds this by O(log n); tested as a property.
    pub fn segments_to_root(&self, mut v: NodeId) -> usize {
        let mut segments = 1;
        while self.head[v as usize] != self.root[v as usize] {
            v = self.parent[self.head[v as usize] as usize];
            segments += 1;
        }
        segments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lca::LcaIndex;
    use crate::rooting::root_forest;
    use ampc_graph::{gen, WeightedEdge};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Builds (forest, parent edge weights) from weighted tree edges.
    fn setup(n: usize, edges: &[WeightedEdge]) -> (RootedForest, Vec<Weight>) {
        let mut b = ampc_graph::GraphBuilder::new(n);
        for e in edges {
            b.push_edge(e.u, e.v, e.w);
        }
        let g = b.build_weighted();
        let forest = root_forest(g.structure());
        let mut pw = vec![0 as Weight; n];
        for v in 0..n as NodeId {
            if !forest.is_root(v) {
                let p = forest.parent[v as usize];
                let idx = g.neighbors(v).binary_search(&p).unwrap();
                pw[v as usize] = g.weights_of(v)[idx];
            }
        }
        (forest, pw)
    }

    /// Brute force: max edge weight on the unique u-w path.
    fn naive_max(forest: &RootedForest, pw: &[Weight], u: NodeId, w: NodeId) -> Option<Weight> {
        // climb both to the same level, then together.
        let (mut a, mut b) = (u, w);
        let mut best: Option<Weight> = None;
        let mut upd = |x: Weight| best = Some(best.map_or(x, |c: Weight| c.max(x)));
        while forest.level[a as usize] > forest.level[b as usize] {
            upd(pw[a as usize]);
            a = forest.parent[a as usize];
        }
        while forest.level[b as usize] > forest.level[a as usize] {
            upd(pw[b as usize]);
            b = forest.parent[b as usize];
        }
        while a != b {
            upd(pw[a as usize]);
            upd(pw[b as usize]);
            a = forest.parent[a as usize];
            b = forest.parent[b as usize];
        }
        best
    }

    #[test]
    fn path_query() {
        // path 0-1-2-3 with weights 5, 9, 2
        let edges = [
            WeightedEdge::new(0, 1, 5),
            WeightedEdge::new(1, 2, 9),
            WeightedEdge::new(2, 3, 2),
        ];
        let (forest, pw) = setup(4, &edges);
        let hld = Hld::new(&forest, &pw);
        assert_eq!(hld.max_edge_to_ancestor(3, 0), Some(9));
        assert_eq!(hld.max_edge_to_ancestor(1, 0), Some(5));
        assert_eq!(hld.max_edge_to_ancestor(0, 0), None);
    }

    #[test]
    fn matches_naive_on_random_trees() {
        for seed in 0..4 {
            let n = 150;
            let tree = gen::random_tree(n, seed);
            let mut rng = SmallRng::seed_from_u64(seed);
            let edges: Vec<WeightedEdge> = tree
                .edges()
                .map(|e| WeightedEdge::new(e.u, e.v, rng.gen_range(1..1000)))
                .collect();
            let (forest, pw) = setup(n, &edges);
            let hld = Hld::new(&forest, &pw);
            let lca = LcaIndex::new(&forest);
            for _ in 0..400 {
                let u = rng.gen_range(0..n) as NodeId;
                let w = rng.gen_range(0..n) as NodeId;
                let l = lca.lca(u, w).unwrap();
                assert_eq!(
                    hld.max_edge_on_path(u, w, l),
                    naive_max(&forest, &pw, u, w),
                    "u={u} w={w} lca={l}"
                );
            }
        }
    }

    #[test]
    fn segment_count_logarithmic() {
        // Lemma B.1: O(log n) heavy segments from any vertex to the root.
        let n = 1 << 12;
        let tree = gen::random_tree(n, 11);
        let edges: Vec<WeightedEdge> = tree
            .edges()
            .map(|e| WeightedEdge::new(e.u, e.v, 1))
            .collect();
        let (forest, pw) = setup(n, &edges);
        let hld = Hld::new(&forest, &pw);
        let bound = 2 * (n as f64).log2() as usize + 2;
        for v in 0..n as NodeId {
            assert!(
                hld.segments_to_root(v) <= bound,
                "v={v}: {} segments",
                hld.segments_to_root(v)
            );
        }
    }

    #[test]
    fn forest_with_multiple_trees() {
        let edges = [WeightedEdge::new(0, 1, 3), WeightedEdge::new(2, 3, 8)];
        let (forest, pw) = setup(4, &edges);
        let hld = Hld::new(&forest, &pw);
        assert_eq!(hld.max_edge_to_ancestor(1, 0), Some(3));
        assert_eq!(hld.max_edge_to_ancestor(3, 2), Some(8));
    }
}
