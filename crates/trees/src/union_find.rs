//! Disjoint-set union with path halving and union by rank.

use ampc_graph::NodeId;

/// Classic union-find over dense ids `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<NodeId>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as NodeId).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    #[inline]
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s set (with path halving).
    #[inline]
    pub fn find(&mut self, mut x: NodeId) -> NodeId {
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
    }

    /// Read-only find (no compression) — usable through `&self`.
    #[inline]
    pub fn find_const(&self, mut x: NodeId) -> NodeId {
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were
    /// previously disjoint.
    pub fn union(&mut self, a: NodeId, b: NodeId) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.components -= 1;
        let (ra, rb) = (ra as usize, rb as usize);
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb as NodeId,
            std::cmp::Ordering::Greater => self.parent[rb] = ra as NodeId,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra as NodeId;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// True if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: NodeId, b: NodeId) -> bool {
        self.find(a) == self.find(b)
    }

    /// Canonical labelling: `label[v]` = smallest element of `v`'s set
    /// (directly comparable to BFS component labels).
    pub fn labels(&mut self) -> Vec<NodeId> {
        let n = self.parent.len();
        let mut min_of_root = vec![NodeId::MAX; n];
        for v in 0..n as NodeId {
            let r = self.find(v) as usize;
            min_of_root[r] = min_of_root[r].min(v);
        }
        (0..n as NodeId)
            .map(|v| {
                let r = self.find_const(v) as usize;
                min_of_root[r]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_reduces_components() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert_eq!(uf.num_components(), 3);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
    }

    #[test]
    fn labels_are_canonical() {
        let mut uf = UnionFind::new(6);
        uf.union(4, 2);
        uf.union(2, 5);
        uf.union(0, 1);
        let labels = uf.labels();
        assert_eq!(labels, vec![0, 0, 2, 3, 2, 2]);
    }

    #[test]
    fn transitive_union() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_components(), 1);
        assert!(uf.connected(0, 99));
    }

    #[test]
    fn matches_bfs_components_on_random_graph() {
        let g = ampc_graph::gen::erdos_renyi(200, 150, 3);
        let mut uf = UnionFind::new(200);
        for e in g.edges() {
            uf.union(e.u, e.v);
        }
        let bfs = ampc_graph::stats::connected_components(&g);
        assert_eq!(uf.labels(), bfs.label);
        assert_eq!(uf.num_components(), bfs.num_components);
    }
}
