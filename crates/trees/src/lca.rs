//! Lowest common ancestors via Euler tour + sparse-table RMQ.
//!
//! Appendix B line 6 of Algorithm 5: *"For each uw ∈ E(G) such that u
//! and w are in the same connected component of F, compute LCA(u, w)."*
//! With the Euler tour's level array, LCA(u, w) is the minimum-level
//! vertex between the first occurrences of u and w — one O(1) RMQ.

use crate::euler::{euler_tour, EulerTour};
use crate::rmq::{RmqKind, SparseTable};
use crate::rooting::RootedForest;
use ampc_graph::NodeId;

/// An LCA index over a rooted forest.
pub struct LcaIndex {
    tour: EulerTour,
    rmq: SparseTable,
    root: Vec<NodeId>,
}

impl LcaIndex {
    /// Builds the index (O(n log n)).
    pub fn new(forest: &RootedForest) -> Self {
        let tour = euler_tour(forest);
        let rmq = SparseTable::new(tour.levels.clone(), RmqKind::Min);
        LcaIndex {
            tour,
            rmq,
            root: forest.root.clone(),
        }
    }

    /// The lowest common ancestor of `u` and `w`, or `None` if they are
    /// in different trees.
    pub fn lca(&self, u: NodeId, w: NodeId) -> Option<NodeId> {
        if self.root[u as usize] != self.root[w as usize] {
            return None;
        }
        let (a, b) = {
            let (fu, fw) = (self.tour.first[u as usize], self.tour.first[w as usize]);
            if fu <= fw {
                (fu, fw)
            } else {
                (fw, fu)
            }
        };
        let idx = self.rmq.query(a, b);
        Some(self.tour.tour[idx])
    }

    /// The Euler tour backing the index.
    pub fn tour(&self) -> &EulerTour {
        &self.tour
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rooting::root_forest;
    use ampc_graph::{gen, NodeId};

    /// Brute-force LCA by walking parent chains.
    fn naive_lca(f: &RootedForest, u: NodeId, w: NodeId) -> Option<NodeId> {
        if f.root[u as usize] != f.root[w as usize] {
            return None;
        }
        let pu = f.path_to_root(u);
        let set: std::collections::HashSet<NodeId> = pu.into_iter().collect();
        f.path_to_root(w).into_iter().find(|&x| set.contains(&x))
    }

    #[test]
    fn lca_on_path() {
        let f = root_forest(&gen::path(6));
        let idx = LcaIndex::new(&f);
        assert_eq!(idx.lca(5, 2), Some(2));
        assert_eq!(idx.lca(2, 5), Some(2));
        assert_eq!(idx.lca(3, 3), Some(3));
        assert_eq!(idx.lca(0, 5), Some(0));
    }

    #[test]
    fn lca_across_trees_is_none() {
        let g = ampc_graph::GraphBuilder::new(4)
            .add_edge(0, 1)
            .add_edge(2, 3)
            .build();
        let f = root_forest(&g);
        let idx = LcaIndex::new(&f);
        assert_eq!(idx.lca(0, 3), None);
        assert_eq!(idx.lca(0, 1), Some(0));
    }

    #[test]
    fn matches_naive_on_random_trees() {
        for seed in 0..5 {
            let f = root_forest(&gen::random_tree(120, seed));
            let idx = LcaIndex::new(&f);
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed + 100);
            for _ in 0..300 {
                let u = rng.gen_range(0..120) as NodeId;
                let w = rng.gen_range(0..120) as NodeId;
                assert_eq!(idx.lca(u, w), naive_lca(&f, u, w), "u={u} w={w}");
            }
        }
    }
}
