//! Ternary treaps (Appendix A of the paper).
//!
//! Given a tree `T` with maximum degree ≤ 3 and a priority per vertex,
//! the **ternary treap** is the unique recursive structure rooted at the
//! minimum-priority vertex, whose removal splits `T` into ≤ 3 pieces,
//! each recursively a ternary treap attached as a child. The paper uses
//! it purely analytically: Lemma A.1 shows its height is O(log n)
//! w.h.p., and Lemma A.2 bounds each truncated Prim search by the size
//! of the searching vertex's treap subtree. We build it explicitly so
//! the test suite can *verify* both lemmas on random instances — and so
//! the MSF query-complexity claim (Lemma 3.4, `O(n log n)` w.h.p.) is
//! checked against its own proof apparatus.

use ampc_graph::{CsrGraph, NodeId, NO_NODE};

/// The ternary treap of a (≤3-degree) forest under a vertex priority.
#[derive(Clone, Debug)]
pub struct TernaryTreap {
    /// Treap parent of each vertex (`v` itself for treap roots).
    pub parent: Vec<NodeId>,
    /// Depth in the treap (roots have depth 0).
    pub depth: Vec<u32>,
    /// Size of each vertex's treap subtree.
    pub subtree_size: Vec<u32>,
}

impl TernaryTreap {
    /// The height (max depth + 1) of the tallest treap in the forest;
    /// 0 for an empty forest.
    pub fn height(&self) -> u32 {
        self.depth.iter().map(|&d| d + 1).max().unwrap_or(0)
    }
}

/// Builds the ternary treap of `tree` (every component) under
/// `priority`. Priorities must be distinct for uniqueness; ties are
/// broken by vertex id.
///
/// # Panics
/// Panics if any vertex has degree > 3 (the input must be ternarized)
/// or if `tree` contains a cycle.
pub fn ternary_treap(tree: &CsrGraph, priority: &[u64]) -> TernaryTreap {
    let n = tree.num_nodes();
    assert_eq!(priority.len(), n);
    assert!(
        tree.max_degree() <= 3,
        "ternary treaps require max degree <= 3 (got {})",
        tree.max_degree()
    );

    let key = |v: NodeId| (priority[v as usize], v);

    let mut parent = vec![NO_NODE; n];
    let mut depth = vec![0u32; n];

    // `removed[v]`: v was already chosen as a split vertex.
    let mut removed = vec![false; n];
    // Work stack of (treap-parent, seed vertex of a sub-piece, depth).
    // Each stack entry denotes the connected piece of `tree \ removed`
    // containing `seed`.
    let mut stack: Vec<(NodeId, NodeId, u32)> = Vec::new();
    // Scratch for BFS over a piece.
    let mut piece: Vec<NodeId> = Vec::new();
    let mut seen = vec![false; n];

    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.sort_by_key(|&v| key(v));

    for &start in &order {
        if removed[start as usize] {
            continue;
        }
        // `start` begins a fresh component (its piece has no treap parent
        // yet). Because we iterate in priority order, `start` is the
        // minimum-priority vertex of its component.
        stack.push((NO_NODE, start, 0));
        while let Some((tparent, seed, d)) = stack.pop() {
            // Collect the piece containing `seed` and find its min.
            piece.clear();
            piece.push(seed);
            seen[seed as usize] = true;
            let mut head = 0;
            let mut best = seed;
            while head < piece.len() {
                let v = piece[head];
                head += 1;
                if key(v) < key(best) {
                    best = v;
                }
                for &u in tree.neighbors(v) {
                    if !removed[u as usize] && !seen[u as usize] {
                        seen[u as usize] = true;
                        piece.push(u);
                    }
                }
            }
            for &v in &piece {
                seen[v as usize] = false;
            }
            // `best` is this piece's treap node.
            removed[best as usize] = true;
            parent[best as usize] = if tparent == NO_NODE { best } else { tparent };
            depth[best as usize] = d;
            // Each still-unremoved neighbor of `best` seeds a sub-piece.
            for &u in tree.neighbors(best) {
                if !removed[u as usize] {
                    stack.push((best, u, d + 1));
                }
            }
        }
    }

    // Subtree sizes by processing vertices deepest-first.
    let mut order_by_depth: Vec<NodeId> = (0..n as NodeId).collect();
    order_by_depth.sort_unstable_by_key(|&v| std::cmp::Reverse(depth[v as usize]));
    let mut subtree_size = vec![1u32; n];
    for &v in &order_by_depth {
        let p = parent[v as usize];
        if p != v && p != NO_NODE {
            subtree_size[p as usize] += subtree_size[v as usize];
        }
    }

    TernaryTreap {
        parent,
        depth,
        subtree_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::gen;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_priorities(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        // Distinct priorities via a random permutation.
        let mut p: Vec<u64> = (0..n as u64).collect();
        for i in (1..n).rev() {
            p.swap(i, rng.gen_range(0..=i));
        }
        p
    }

    #[test]
    fn root_is_min_priority() {
        let tree = gen::path(7);
        let pri = vec![5, 3, 0, 9, 4, 8, 7];
        let t = ternary_treap(&tree, &pri);
        assert_eq!(t.parent[2], 2); // vertex 2 has priority 0
        assert_eq!(t.depth[2], 0);
        assert_eq!(t.subtree_size[2], 7);
    }

    #[test]
    fn path_with_sorted_priorities_degenerates() {
        // Worst case: priorities increasing along the path -> height n.
        let n = 50;
        let tree = gen::path(n);
        let pri: Vec<u64> = (0..n as u64).collect();
        let t = ternary_treap(&tree, &pri);
        assert_eq!(t.height(), n as u32);
    }

    #[test]
    fn heap_property_holds() {
        let tree = gen::random_tree(200, 3);
        // random_tree has unbounded degree; restrict to a path instead.
        let tree = if tree.max_degree() > 3 {
            gen::path(200)
        } else {
            tree
        };
        let pri = random_priorities(200, 4);
        let t = ternary_treap(&tree, &pri);
        for v in 0..200u32 {
            let p = t.parent[v as usize];
            if p != v {
                assert!(
                    pri[p as usize] < pri[v as usize],
                    "parent must have smaller priority"
                );
            }
        }
    }

    #[test]
    fn height_logarithmic_with_random_priorities() {
        // Lemma A.1: height O(log n) w.h.p. Check a generous constant.
        let n = 1 << 13;
        let tree = gen::path(n); // max degree 2 <= 3
        for seed in 0..3 {
            let pri = random_priorities(n, seed);
            let t = ternary_treap(&tree, &pri);
            let bound = 5.0 * (n as f64).log2();
            assert!(
                (t.height() as f64) < bound,
                "height {} exceeds {bound}",
                t.height()
            );
        }
    }

    #[test]
    fn subtree_sizes_sum_per_component() {
        let tree = gen::two_cycles(5, 1);
        // cycles are not trees; use two paths instead.
        let g = ampc_graph::GraphBuilder::new(6)
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(3, 4)
            .add_edge(4, 5)
            .build();
        let _ = tree;
        let pri = vec![3, 1, 2, 6, 4, 5];
        let t = ternary_treap(&g, &pri);
        // Roots: vertex 1 (pri 1) and vertex 4 (pri 4).
        assert_eq!(t.parent[1], 1);
        assert_eq!(t.parent[4], 4);
        assert_eq!(t.subtree_size[1], 3);
        assert_eq!(t.subtree_size[4], 3);
    }

    #[test]
    #[should_panic(expected = "max degree")]
    fn rejects_high_degree() {
        ternary_treap(&gen::star(6), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn depth_consistent_with_parent() {
        let tree = gen::path(100);
        let pri = random_priorities(100, 9);
        let t = ternary_treap(&tree, &pri);
        for v in 0..100u32 {
            let p = t.parent[v as usize];
            if p != v {
                assert_eq!(t.depth[v as usize], t.depth[p as usize] + 1);
            }
        }
    }
}
