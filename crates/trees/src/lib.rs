//! # ampc-trees — tree-algorithm substrate
//!
//! Everything the paper's MSF pipeline needs to manipulate forests:
//!
//! * [`union_find`] — disjoint sets (the in-memory Kruskal/contraction
//!   primitive, and the oracle tests compare distributed labellings to);
//! * [`rooting`] — BFS rooting of a forest: parents, levels, orders;
//! * [`euler`] — Euler tours of rooted forests;
//! * [`rmq`] — O(1)-query sparse-table range min/max (Appendix B cites
//!   the MPC RMQ construction of Andoni et al.; this is the in-memory
//!   equivalent);
//! * [`lca`] — lowest common ancestors via Euler tour + RMQ;
//! * [`hld`] — heavy-light decomposition (Appendix B, Lemma B.1);
//! * [`flight`] — the F-light / F-heavy edge classification of
//!   Algorithm 5, combining all of the above;
//! * [`pointer_jump`] — root finding in directed forests (the
//!   "PointerJump" stage of the §5.5 MSF implementation);
//! * [`treap`] — ternary treaps (Appendix A), used by property tests to
//!   verify the O(log n) height and the Prim-search/subtree-cost bound
//!   of Lemma A.2.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod euler;
pub mod flight;
pub mod hld;
pub mod lca;
pub mod pointer_jump;
pub mod rmq;
pub mod rooting;
pub mod treap;
pub mod union_find;

pub use flight::{classify_edges, EdgeClass};
pub use lca::LcaIndex;
pub use rooting::RootedForest;
pub use union_find::UnionFind;
