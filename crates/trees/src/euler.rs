//! Euler tours of rooted forests.
//!
//! Algorithm 5 line 4: *"Compute an Euler tour traversal of each tree T
//! of F. Within the traversal sequence, assign to each vertex the weight
//! equal to its level and compute an RMQ data structure."* The tour +
//! level sequence is the classic ±1 reduction from LCA to RMQ.

use crate::rooting::RootedForest;
use ampc_graph::NodeId;

/// An Euler tour of every tree in a rooted forest, concatenated.
#[derive(Clone, Debug)]
pub struct EulerTour {
    /// The tour: vertices in DFS entry/return order; length `2n - #trees`.
    pub tour: Vec<NodeId>,
    /// `levels[i]` = level of `tour[i]` (the RMQ weight array).
    pub levels: Vec<u64>,
    /// `first[v]` = first index of `v` in the tour.
    pub first: Vec<usize>,
}

/// Computes the Euler tour (iterative DFS, safe for deep trees).
pub fn euler_tour(forest: &RootedForest) -> EulerTour {
    let n = forest.len();
    let children = forest.children();
    let mut tour = Vec::with_capacity(2 * n);
    let mut levels = Vec::with_capacity(2 * n);
    let mut first = vec![usize::MAX; n];

    // Explicit DFS stack of (vertex, next-child-index).
    let mut stack: Vec<(NodeId, usize)> = Vec::new();
    for r in forest.roots() {
        stack.push((r, 0));
        while let Some(&mut (v, ref mut ci)) = stack.last_mut() {
            if *ci == 0 {
                // First visit.
                if first[v as usize] == usize::MAX {
                    first[v as usize] = tour.len();
                }
                tour.push(v);
                levels.push(forest.level[v as usize] as u64);
            }
            if *ci < children[v as usize].len() {
                let c = children[v as usize][*ci];
                *ci += 1;
                stack.push((c, 0));
            } else {
                stack.pop();
                // Returning to the parent re-visits it.
                if let Some(&(p, _)) = stack.last() {
                    tour.push(p);
                    levels.push(forest.level[p as usize] as u64);
                }
            }
        }
    }
    EulerTour {
        tour,
        levels,
        first,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rooting::root_forest;
    use ampc_graph::gen;

    #[test]
    fn path_tour() {
        let f = root_forest(&gen::path(3));
        let t = euler_tour(&f);
        assert_eq!(t.tour, vec![0, 1, 2, 1, 0]);
        assert_eq!(t.levels, vec![0, 1, 2, 1, 0]);
        assert_eq!(t.first, vec![0, 1, 2]);
    }

    #[test]
    fn tour_length_is_2n_minus_trees() {
        let g = ampc_graph::GraphBuilder::new(7)
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(3, 4)
            .build(); // trees: {0,1,2}, {3,4}, {5}, {6}
        let f = root_forest(&g);
        let t = euler_tour(&f);
        assert_eq!(t.tour.len(), 2 * 7 - 4);
    }

    #[test]
    fn adjacent_tour_levels_differ_by_one_within_tree() {
        let f = root_forest(&gen::random_tree(80, 5));
        let t = euler_tour(&f);
        for w in t.levels.windows(2) {
            let d = (w[0] as i64 - w[1] as i64).abs();
            assert_eq!(d, 1, "tour levels must be ±1 within a tree");
        }
    }

    #[test]
    fn every_vertex_appears() {
        let f = root_forest(&gen::random_tree(50, 9));
        let t = euler_tour(&f);
        for v in 0..50u32 {
            assert!(t.first[v as usize] < t.tour.len());
            assert_eq!(t.tour[t.first[v as usize]], v);
        }
    }
}
