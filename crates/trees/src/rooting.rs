//! Rooting a forest: parents, levels, traversal orders.
//!
//! Appendix B's Algorithm 5 begins *"Root each connected component of F;
//! for each vertex in F, compute its level in the tree it belongs to."*
//! This module is that step (in-memory): BFS from the minimum-id vertex
//! of each component.

use ampc_graph::{CsrGraph, NodeId, NO_NODE};
use std::collections::VecDeque;

/// A rooted forest over `0..n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RootedForest {
    /// `parent[v]`; roots have `parent[v] == v`.
    pub parent: Vec<NodeId>,
    /// `level[v]` = edge-distance from `v` to its root.
    pub level: Vec<u32>,
    /// `root[v]` = the root of `v`'s tree.
    pub root: Vec<NodeId>,
    /// All vertices in BFS order (parents before children), concatenated
    /// across trees.
    pub order: Vec<NodeId>,
}

impl RootedForest {
    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if there are no vertices.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// True if `v` is a root.
    #[inline]
    pub fn is_root(&self, v: NodeId) -> bool {
        self.parent[v as usize] == v
    }

    /// Iterator over the roots.
    pub fn roots(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.parent.len() as NodeId).filter(move |&v| self.is_root(v))
    }

    /// The path from `v` up to (and including) its root.
    pub fn path_to_root(&self, mut v: NodeId) -> Vec<NodeId> {
        let mut path = vec![v];
        while !self.is_root(v) {
            v = self.parent[v as usize];
            path.push(v);
        }
        path
    }

    /// Children lists (computed on demand).
    pub fn children(&self) -> Vec<Vec<NodeId>> {
        let mut ch: Vec<Vec<NodeId>> = vec![Vec::new(); self.parent.len()];
        for v in 0..self.parent.len() as NodeId {
            if !self.is_root(v) {
                ch[self.parent[v as usize] as usize].push(v);
            }
        }
        ch
    }

    /// Subtree sizes, by a reverse-BFS-order sweep.
    pub fn subtree_sizes(&self) -> Vec<u32> {
        let mut size = vec![1u32; self.parent.len()];
        for &v in self.order.iter().rev() {
            if !self.is_root(v) {
                size[self.parent[v as usize] as usize] += size[v as usize];
            }
        }
        size
    }
}

/// Roots every component of a forest at its minimum-id vertex.
///
/// # Panics
/// Panics if `forest` contains a cycle (it must be a forest).
pub fn root_forest(forest: &CsrGraph) -> RootedForest {
    let n = forest.num_nodes();
    assert!(
        forest.num_edges() < n || n == 0,
        "input has >= n edges; not a forest"
    );
    let mut parent = vec![NO_NODE; n];
    let mut level = vec![0u32; n];
    let mut root = vec![NO_NODE; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = VecDeque::new();
    for s in 0..n as NodeId {
        if parent[s as usize] != NO_NODE {
            continue;
        }
        parent[s as usize] = s;
        root[s as usize] = s;
        level[s as usize] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &u in forest.neighbors(v) {
                if parent[u as usize] == NO_NODE {
                    parent[u as usize] = v;
                    root[u as usize] = s;
                    level[u as usize] = level[v as usize] + 1;
                    queue.push_back(u);
                } else {
                    // u already visited: it must be v's parent, else
                    // there is a cycle.
                    assert!(
                        parent[v as usize] == u || parent[u as usize] == v || u == v,
                        "cycle detected at edge ({v}, {u}): not a forest"
                    );
                }
            }
        }
    }
    RootedForest {
        parent,
        level,
        root,
        order,
    }
}

/// Builds a rooted forest directly from a parent array (roots are
/// vertices with `parent[v] == v`). Levels and orders are derived.
///
/// # Panics
/// Panics if the parent pointers contain a cycle.
pub fn from_parents(parent: Vec<NodeId>) -> RootedForest {
    let n = parent.len();
    let mut level = vec![u32::MAX; n];
    let mut root = vec![NO_NODE; n];
    // Resolve levels iteratively with an explicit chain stack.
    let mut chain = Vec::new();
    for s in 0..n as NodeId {
        if level[s as usize] != u32::MAX {
            continue;
        }
        let mut v = s;
        chain.clear();
        while level[v as usize] == u32::MAX {
            chain.push(v);
            let p = parent[v as usize];
            if p == v {
                level[v as usize] = 0;
                root[v as usize] = v;
                break;
            }
            assert!(
                !chain.contains(&p) || level[p as usize] != u32::MAX,
                "cycle in parent array at {p}"
            );
            v = p;
        }
        // Unwind.
        while let Some(u) = chain.pop() {
            if level[u as usize] == u32::MAX {
                let p = parent[u as usize];
                level[u as usize] = level[p as usize] + 1;
                root[u as usize] = root[p as usize];
            }
        }
    }
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.sort_by_key(|&v| level[v as usize]);
    RootedForest {
        parent,
        level,
        root,
        order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ampc_graph::gen;

    #[test]
    fn roots_path_at_zero() {
        let f = root_forest(&gen::path(5));
        assert_eq!(f.parent, vec![0, 0, 1, 2, 3]);
        assert_eq!(f.level, vec![0, 1, 2, 3, 4]);
        assert!(f.is_root(0));
        assert_eq!(f.roots().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn multi_component_forest() {
        // edges 0-1, 2-3 and isolated 4
        let g = ampc_graph::GraphBuilder::new(5)
            .add_edge(0, 1)
            .add_edge(2, 3)
            .build();
        let f = root_forest(&g);
        assert_eq!(f.roots().count(), 3);
        assert_eq!(f.root, vec![0, 0, 2, 2, 4]);
    }

    #[test]
    #[should_panic(expected = "not a forest")]
    fn rejects_cycles() {
        root_forest(&gen::single_cycle(4, 0));
    }

    #[test]
    fn path_to_root_walks_up() {
        let f = root_forest(&gen::path(4));
        assert_eq!(f.path_to_root(3), vec![3, 2, 1, 0]);
        assert_eq!(f.path_to_root(0), vec![0]);
    }

    #[test]
    fn subtree_sizes_of_star() {
        let f = root_forest(&gen::star(5));
        let sizes = f.subtree_sizes();
        assert_eq!(sizes[0], 5);
        for &leaf in &sizes[1..5] {
            assert_eq!(leaf, 1);
        }
    }

    #[test]
    fn from_parents_matches_root_forest() {
        let g = gen::random_tree(50, 7);
        let f = root_forest(&g);
        let f2 = from_parents(f.parent.clone());
        assert_eq!(f.level, f2.level);
        assert_eq!(f.root, f2.root);
    }

    #[test]
    fn bfs_order_parents_first() {
        let f = root_forest(&gen::random_tree(100, 3));
        let mut pos = vec![0usize; 100];
        for (i, &v) in f.order.iter().enumerate() {
            pos[v as usize] = i;
        }
        for v in 0..100u32 {
            if !f.is_root(v) {
                assert!(pos[f.parent[v as usize] as usize] < pos[v as usize]);
            }
        }
    }
}
