//! Property suite for the socket-substrate wire codec (DESIGN.md §12).
//!
//! The codec laws the `Wire` trait documents are pinned here over
//! adversarial inputs: `decode ∘ encode = id` with the buffer fully
//! consumed (round trip), equal values encode to equal bytes
//! (determinism), concatenated encodings decode back in order
//! (self-framing — what the batched `LOAD`/`GET` frames rely on), every
//! strict prefix of an encoding decodes to `None` (truncation is loud),
//! and arbitrary junk never panics the decoder.

use ampc_dht::wire::{encode_to_vec, Wire};
use proptest::collection::vec;
use proptest::prelude::*;

/// Round-trips one value, asserting full consumption.
fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
    let enc = encode_to_vec(v);
    let mut buf = &enc[..];
    let back = T::wire_decode(&mut buf);
    assert_eq!(back.as_ref(), Some(v), "decode(encode(v)) != v");
    assert!(buf.is_empty(), "decode left {} bytes unread", buf.len());
}

/// Every strict prefix of an encoding must decode to `None` — a
/// truncated frame is a corrupt frame, never a shorter value.
fn prefixes_fail<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
    let enc = encode_to_vec(v);
    for cut in 0..enc.len() {
        let mut buf = &enc[..cut];
        assert_eq!(
            T::wire_decode(&mut buf),
            None,
            "strict prefix of length {cut}/{} decoded",
            enc.len()
        );
    }
}

/// Uniform 64 random bits (the shim's range strategies are half-open,
/// so the full domain is assembled from two 32-bit halves).
fn bits64() -> impl Strategy<Value = u64> {
    ((0u64..(1 << 32)), (0u64..(1 << 32))).prop_map(|(h, l)| (h << 32) | l)
}

/// Keys with the edge cases the substrate index cares about (0, MAX —
/// the open-index empty sentinel — and dense small ids) mixed into the
/// uniform stream.
fn adversarial_key() -> impl Strategy<Value = u64> {
    ((0usize..8), bits64()).prop_map(|(sel, r)| match sel {
        0 => 0,
        1 => u64::MAX,
        2 => u64::MAX - 1,
        3 | 4 => r % 4096,
        _ => r,
    })
}

/// Adjacency-shaped values: what the kernels actually store.
fn adjacency() -> impl Strategy<Value = Vec<u32>> {
    vec(bits64().prop_map(|r| r as u32), 0..48)
}

/// `Option<u64>` from a tag bit plus a payload.
fn opt64() -> impl Strategy<Value = Option<u64>> {
    ((0u64..2), bits64()).prop_map(|(tag, v)| (tag == 1).then_some(v))
}

/// Arbitrary bytes.
fn junk_bytes() -> impl Strategy<Value = Vec<u8>> {
    vec((0u64..256).prop_map(|b| b as u8), 0..96)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn primitives_round_trip(a in bits64(), (b, c) in (bits64(), bits64())) {
        round_trip(&a);
        round_trip(&(a as i64));
        round_trip(&(b as u32));
        round_trip(&(b as u8));
        round_trip(&(((a as u128) << 64) | b as u128));
        round_trip(&(c % 2 == 0));
        round_trip(&(a, b as u32));
        round_trip(&(a as u8, b as i64, c));
    }

    #[test]
    fn floats_round_trip_bit_exact(bits in bits64()) {
        // NaN payloads included: compare bit patterns, not float eq.
        let v = f64::from_bits(bits);
        let enc = encode_to_vec(&v);
        let mut buf = &enc[..];
        let back = f64::wire_decode(&mut buf).expect("f64 decodes");
        prop_assert_eq!(back.to_bits(), bits);
        prop_assert!(buf.is_empty());
    }

    #[test]
    fn containers_round_trip(keys in vec(adversarial_key(), 0..64),
                             adj in adjacency(),
                             opt in opt64()) {
        round_trip(&keys);
        round_trip(&adj);
        round_trip(&opt);
        round_trip(&keys.clone().into_boxed_slice());
    }

    #[test]
    fn key_value_batches_are_self_framing(
        batch in vec((adversarial_key(), adjacency()), 0..32),
    ) {
        // Encode the whole batch back-to-back — the shape of a LOAD
        // frame body — and decode it entry by entry.
        let mut frame = Vec::new();
        for (k, v) in &batch {
            k.wire_encode(&mut frame);
            v.wire_encode(&mut frame);
        }
        let mut buf = &frame[..];
        for (k, v) in &batch {
            prop_assert_eq!(u64::wire_decode(&mut buf), Some(*k));
            prop_assert_eq!(Vec::<u32>::wire_decode(&mut buf).as_ref(), Some(v));
        }
        prop_assert!(buf.is_empty(), "batch decode left bytes unread");
    }

    #[test]
    fn encoding_is_deterministic(batch in vec((adversarial_key(), adjacency()), 0..16)) {
        let copy = batch.clone();
        prop_assert_eq!(encode_to_vec(&batch), encode_to_vec(&copy));
    }

    #[test]
    fn truncation_always_fails(keys in vec(adversarial_key(), 0..8),
                               adj in adjacency(),
                               k in adversarial_key()) {
        prefixes_fail(&k);
        prefixes_fail(&keys);
        prefixes_fail(&adj);
        prefixes_fail(&Some(k));
        prefixes_fail(&(k, adj));
    }

    #[test]
    fn junk_never_panics(junk in junk_bytes()) {
        // Whatever the bytes, decoding returns (it may succeed — junk
        // can be a valid encoding — but it must not panic and must not
        // read past the buffer).
        let mut buf = &junk[..];
        let _ = u64::wire_decode(&mut buf);
        let mut buf = &junk[..];
        let _ = Vec::<u64>::wire_decode(&mut buf);
        let mut buf = &junk[..];
        let _ = Vec::<Vec<u32>>::wire_decode(&mut buf);
        let mut buf = &junk[..];
        let _ = Option::<(u64, u32)>::wire_decode(&mut buf);
        let mut buf = &junk[..];
        let _ = bool::wire_decode(&mut buf);
    }
}
