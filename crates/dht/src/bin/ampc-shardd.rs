//! `ampc-shardd` — one socket-substrate shard server (DESIGN.md §12).
//!
//! Usage: `ampc-shardd <socket-path>`. Binds a Unix-domain listener at
//! the given path and serves the shard protocol
//! ([`ampc_dht::socket::serve_listener`]) until it receives `SHUTDOWN`
//! or its stdin closes. The supervising client spawns it with stdin
//! piped: if the client crashes, the pipe closes and the watchdog below
//! exits the process, so no orphan servers outlive their job.

use std::io::Read;

fn main() {
    let mut args = std::env::args_os().skip(1);
    let (Some(path), None) = (args.next(), args.next()) else {
        eprintln!("usage: ampc-shardd <socket-path>");
        std::process::exit(2);
    };
    let path = std::path::PathBuf::from(path);

    // Orphan watchdog: the supervisor holds our stdin pipe open for as
    // long as it lives. EOF means the supervising process is gone, so
    // the accept loop (blocked in `accept`/`read`) must not linger.
    // ampc-lint: allow(no-raw-spawn) -- this is a standalone server
    // binary, not runtime machine work; the executor pool does not
    // exist in this process.
    std::thread::spawn(|| {
        let mut sink = [0u8; 64];
        let mut stdin = std::io::stdin().lock();
        while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
        std::process::exit(0);
    });

    if let Err(e) = ampc_dht::socket::run_server(&path) {
        eprintln!("ampc-shardd: {}: {e}", path.display());
        std::process::exit(1);
    }
    // Orderly SHUTDOWN: remove the socket file so a stale path never
    // masquerades as a live server.
    let _ = std::fs::remove_file(&path);
}
