//! The deterministic wire codec for the socket substrate (DESIGN.md §12).
//!
//! When shards live in separate OS processes (`AMPC_STORE=socket`),
//! values cross a Unix-domain socket as bytes. [`Wire`] is the codec
//! contract: a **deterministic, little-endian, length-prefixed**
//! encoding whose decode is the exact inverse (`decode ∘ encode = id`,
//! pinned by the round-trip property suite in `tests/wire_prop.rs`).
//! Determinism matters for more than correctness: the §3 contract says
//! outputs may not depend on the substrate, and a value that encoded
//! differently on two machines would make the shard servers'
//! byte-compare diagnostics (and any future content digests)
//! schedule-dependent.
//!
//! The impl set deliberately mirrors [`crate::measured::Measured`]: any
//! type the workspace stores in the DHT is both measurable (for
//! CommStats accounting) and wireable (for the socket substrate).
//! Containers are length-prefixed with a `u64`; `Option` is a one-byte
//! tag plus the payload. The encoded size is *not* required to equal
//! [`Measured::size_bytes`] — accounting charges the model's simulated
//! sizes, the wire carries whatever the codec needs — but for the
//! fixed-size primitives the two coincide.

use crate::measured::Measured;

/// Deterministic byte codec for values crossing the socket substrate.
///
/// Laws (pinned by `tests/wire_prop.rs`):
/// * round-trip: `Wire::wire_decode(&mut &encode(v)[..]) == Some(v)`
///   with the buffer fully consumed;
/// * determinism: equal values encode to equal bytes;
/// * self-framing: decode consumes exactly the bytes encode produced,
///   so values can be concatenated back-to-back in a batch frame.
pub trait Wire {
    /// Appends the encoding of `self` to `out`.
    fn wire_encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the front of `buf`, advancing it past the
    /// consumed bytes. Returns `None` on truncated or malformed input
    /// (never panics — the transport treats that as a corrupt frame).
    fn wire_decode(buf: &mut &[u8]) -> Option<Self>
    where
        Self: Sized;
}

/// Encodes a value into a fresh buffer (test/driver convenience).
pub fn encode_to_vec<T: Wire + ?Sized>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.wire_encode(&mut out);
    out
}

/// Splits `n` bytes off the front of `buf`, or `None` if it is short.
#[inline]
fn take<'b>(buf: &mut &'b [u8], n: usize) -> Option<&'b [u8]> {
    if buf.len() < n {
        return None;
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Some(head)
}

macro_rules! impl_wire_int {
    ($($t:ty),*) => {
        $(impl Wire for $t {
            #[inline]
            fn wire_encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            #[inline]
            fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
                let raw = take(buf, std::mem::size_of::<$t>())?;
                Some(<$t>::from_le_bytes(raw.try_into().ok()?))
            }
        })*
    };
}

impl_wire_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128, f32, f64);

/// `usize`/`isize` travel as 8 bytes regardless of host width, so the
/// format does not depend on the machine that sealed the generation.
impl Wire for usize {
    #[inline]
    fn wire_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as u64).to_le_bytes());
    }

    #[inline]
    fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
        let v = u64::wire_decode(buf)?;
        usize::try_from(v).ok()
    }
}

impl Wire for isize {
    #[inline]
    fn wire_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as i64).to_le_bytes());
    }

    #[inline]
    fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
        let v = i64::wire_decode(buf)?;
        isize::try_from(v).ok()
    }
}

impl Wire for bool {
    #[inline]
    fn wire_encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    #[inline]
    fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
        match u8::wire_decode(buf)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl Wire for () {
    #[inline]
    fn wire_encode(&self, _out: &mut Vec<u8>) {}

    #[inline]
    fn wire_decode(_buf: &mut &[u8]) -> Option<Self> {
        Some(())
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    #[inline]
    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.0.wire_encode(out);
        self.1.wire_encode(out);
    }

    #[inline]
    fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
        Some((A::wire_decode(buf)?, B::wire_decode(buf)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    #[inline]
    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.0.wire_encode(out);
        self.1.wire_encode(out);
        self.2.wire_encode(out);
    }

    #[inline]
    fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
        Some((
            A::wire_decode(buf)?,
            B::wire_decode(buf)?,
            C::wire_decode(buf)?,
        ))
    }
}

/// Length-prefixed sequence encoding shared by `Vec` and `Box<[T]>`.
#[inline]
fn encode_seq<T: Wire>(items: &[T], out: &mut Vec<u8>) {
    (items.len() as u64).wire_encode(out);
    for item in items {
        item.wire_encode(out);
    }
}

#[inline]
fn decode_seq<T: Wire>(buf: &mut &[u8]) -> Option<Vec<T>> {
    let len = usize::wire_decode(buf)?;
    // A truncated buffer cannot hold more elements than bytes; reject
    // absurd prefixes before reserving (each element is ≥ 1 byte except
    // `()`, which no container in the workspace stores).
    let mut items = Vec::with_capacity(len.min(buf.len().max(16)));
    for _ in 0..len {
        items.push(T::wire_decode(buf)?);
    }
    Some(items)
}

impl<T: Wire> Wire for Vec<T> {
    #[inline]
    fn wire_encode(&self, out: &mut Vec<u8>) {
        encode_seq(self, out);
    }

    #[inline]
    fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
        decode_seq(buf)
    }
}

impl<T: Wire> Wire for Box<[T]> {
    #[inline]
    fn wire_encode(&self, out: &mut Vec<u8>) {
        encode_seq(self, out);
    }

    #[inline]
    fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
        decode_seq(buf).map(Vec::into_boxed_slice)
    }
}

impl<T: Wire> Wire for Option<T> {
    #[inline]
    fn wire_encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.wire_encode(out);
            }
        }
    }

    #[inline]
    fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
        match u8::wire_decode(buf)? {
            0 => Some(None),
            1 => Some(Some(T::wire_decode(buf)?)),
            _ => None,
        }
    }
}

impl<T: Wire> Wire for std::sync::Arc<T> {
    #[inline]
    fn wire_encode(&self, out: &mut Vec<u8>) {
        (**self).wire_encode(out);
    }

    #[inline]
    fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
        T::wire_decode(buf).map(std::sync::Arc::new)
    }
}

/// Sanity bridge used by debug assertions in the socket substrate: a
/// decoded value must measure the same as the value that was encoded
/// (`Measured` is substrate-independent by contract).
pub fn measures_like<T: Wire + Measured>(a: &T, b: &T) -> bool {
    a.size_bytes() == b.size_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = encode_to_vec(&v);
        let mut buf = &bytes[..];
        let back = T::wire_decode(&mut buf).expect("decodes");
        assert_eq!(back, v);
        assert!(buf.is_empty(), "decode must consume exactly the encoding");
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u8::MAX);
        round_trip(0x1234u16);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX);
        round_trip(u128::MAX - 7);
        round_trip(-1i64);
        round_trip(i32::MIN);
        round_trip(3.5f64);
        round_trip(true);
        round_trip(false);
        round_trip(());
        round_trip(usize::MAX);
        round_trip(-9isize);
    }

    #[test]
    fn containers_round_trip() {
        round_trip(Vec::<u64>::new());
        round_trip(vec![1u32, 2, 3]);
        round_trip(vec![vec![1u64, 2], vec![], vec![3]]);
        round_trip(vec![9u64; 1000].into_boxed_slice());
        round_trip(Some(7u64));
        round_trip(None::<u64>);
        round_trip((1u64, vec![2u32, 3]));
        round_trip((1u8, 2u64, vec![3u32]));
    }

    #[test]
    fn encoding_is_deterministic_and_self_framing() {
        let a = encode_to_vec(&vec![5u64, 6, 7]);
        let b = encode_to_vec(&vec![5u64, 6, 7]);
        assert_eq!(a, b);
        // Two values concatenated decode back as two values.
        let mut stream = encode_to_vec(&42u64);
        vec![1u32, 2].wire_encode(&mut stream);
        let mut buf = &stream[..];
        assert_eq!(u64::wire_decode(&mut buf), Some(42));
        assert_eq!(Vec::<u32>::wire_decode(&mut buf), Some(vec![1, 2]));
        assert!(buf.is_empty());
    }

    #[test]
    fn truncated_and_malformed_inputs_decode_to_none() {
        let bytes = encode_to_vec(&vec![1u64, 2, 3]);
        for cut in 0..bytes.len() {
            let mut buf = &bytes[..cut];
            assert_eq!(Vec::<u64>::wire_decode(&mut buf), None, "cut {cut}");
        }
        // Bad Option/bool tags.
        let mut buf: &[u8] = &[2u8, 0, 0, 0, 0, 0, 0, 0, 0];
        assert_eq!(Option::<u64>::wire_decode(&mut buf), None);
        let mut buf: &[u8] = &[9u8];
        assert_eq!(bool::wire_decode(&mut buf), None);
        // Absurd length prefix on a short buffer.
        let mut long = Vec::new();
        (u64::MAX).wire_encode(&mut long);
        let mut buf = &long[..];
        assert_eq!(Vec::<u64>::wire_decode(&mut buf), None);
    }

    #[test]
    fn usize_is_width_independent() {
        let mut out = Vec::new();
        7usize.wire_encode(&mut out);
        assert_eq!(out.len(), 8, "usize always travels as 8 bytes");
    }
}
