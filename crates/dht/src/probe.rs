//! Clone-accounting probe for the zero-copy read contract.
//!
//! The perf suite asserts that converted hot paths stay clone-free:
//! every place the dht layer clones a stored value (cache inserts,
//! owned read-through results, hot-key replica promotion) reports the
//! clone here, and `perf_suite` samples the counter around each kernel
//! to report `bytes_cloned` and pin the uncached read paths at zero.
//!
//! This is an observability counter, **not** part of [`crate::metrics::CommStats`]:
//! clone traffic is a host-side implementation cost, while `CommStats`
//! models simulated communication and must stay byte-identical across
//! configurations that change only the host-side strategy (e.g.
//! hot-key replication on vs off).

use std::sync::atomic::{AtomicU64, Ordering};

static BYTES_CLONED: AtomicU64 = AtomicU64::new(0);
static VALUES_CLONED: AtomicU64 = AtomicU64::new(0);

/// Records one stored-value clone of `bytes` serialized bytes.
#[inline]
pub fn record_clone(bytes: usize) {
    BYTES_CLONED.fetch_add(bytes as u64, Ordering::Relaxed);
    VALUES_CLONED.fetch_add(1, Ordering::Relaxed);
}

/// Total serialized bytes of stored values cloned since process start
/// (monotonic; sample before/after a region and subtract).
#[inline]
pub fn bytes_cloned() -> u64 {
    BYTES_CLONED.load(Ordering::Relaxed)
}

/// Total number of stored-value clones since process start.
#[inline]
pub fn values_cloned() -> u64 {
    VALUES_CLONED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_accumulates() {
        let b0 = bytes_cloned();
        let v0 = values_cloned();
        record_clone(24);
        record_clone(8);
        assert!(bytes_cloned() >= b0 + 32);
        assert!(values_cloned() >= v0 + 2);
    }
}
