//! Byte-size measurement for communication accounting.
//!
//! The model bounds per-machine communication by `O(S)` *words*; our
//! accounting is in bytes. Every value stored in the DHT (and every
//! record shuffled by the runtime) implements [`Measured`] so the
//! harness can report bytes read/written/shuffled the way Figures 3
//! and 9 of the paper do.

/// Types whose wire size (in bytes) can be computed.
pub trait Measured {
    /// Serialized size of `self` in bytes.
    fn size_bytes(&self) -> usize;
}

macro_rules! impl_measured_primitive {
    ($($t:ty),*) => {
        $(impl Measured for $t {
            #[inline]
            fn size_bytes(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

impl_measured_primitive!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool);

impl Measured for () {
    #[inline]
    fn size_bytes(&self) -> usize {
        0
    }
}

impl<A: Measured, B: Measured> Measured for (A, B) {
    #[inline]
    fn size_bytes(&self) -> usize {
        self.0.size_bytes() + self.1.size_bytes()
    }
}

impl<A: Measured, B: Measured, C: Measured> Measured for (A, B, C) {
    #[inline]
    fn size_bytes(&self) -> usize {
        self.0.size_bytes() + self.1.size_bytes() + self.2.size_bytes()
    }
}

impl<T: Measured> Measured for Vec<T> {
    #[inline]
    fn size_bytes(&self) -> usize {
        // 8-byte length prefix plus elements (assumes fixed-size
        // elements dominate, which holds for all workspace value types).
        8 + self.iter().map(Measured::size_bytes).sum::<usize>()
    }
}

impl<T: Measured> Measured for Box<[T]> {
    #[inline]
    fn size_bytes(&self) -> usize {
        8 + self.iter().map(Measured::size_bytes).sum::<usize>()
    }
}

impl<T: Measured> Measured for Option<T> {
    #[inline]
    fn size_bytes(&self) -> usize {
        1 + self.as_ref().map_or(0, Measured::size_bytes)
    }
}

impl<T: Measured + ?Sized> Measured for std::sync::Arc<T> {
    #[inline]
    fn size_bytes(&self) -> usize {
        (**self).size_bytes()
    }
}

impl<T: Measured> Measured for [T] {
    #[inline]
    fn size_bytes(&self) -> usize {
        8 + self.iter().map(Measured::size_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(7u32.size_bytes(), 4);
        assert_eq!(7u64.size_bytes(), 8);
        assert_eq!(true.size_bytes(), 1);
    }

    #[test]
    fn composites() {
        assert_eq!((1u32, 2u64).size_bytes(), 12);
        assert_eq!(vec![1u32, 2, 3].size_bytes(), 8 + 12);
        assert_eq!(Some(5u64).size_bytes(), 9);
        assert_eq!(None::<u64>.size_bytes(), 1);
    }

    #[test]
    fn arc_measures_inner() {
        let a: std::sync::Arc<Vec<u32>> = std::sync::Arc::new(vec![1, 2]);
        assert_eq!(a.size_bytes(), 8 + 8);
    }
}
