//! Byte-size measurement for communication accounting.
//!
//! The model bounds per-machine communication by `O(S)` *words*; our
//! accounting is in bytes. Every value stored in the DHT (and every
//! record shuffled by the runtime) implements [`Measured`] so the
//! harness can report bytes read/written/shuffled the way Figures 3
//! and 9 of the paper do.

/// Types whose wire size (in bytes) can be computed.
pub trait Measured {
    /// When every value of the type serializes to the same number of
    /// bytes, that number — letting containers measure themselves in
    /// O(1) (`len × element`) instead of walking their elements. The
    /// DHT read path charges bytes on **every** query, so an O(len)
    /// `size_bytes` on adjacency-list values would cost O(degree) per
    /// lookup. `None` (the default) means per-value measurement.
    const FIXED_SIZE: Option<usize> = None;

    /// Serialized size of `self` in bytes.
    fn size_bytes(&self) -> usize;
}

macro_rules! impl_measured_primitive {
    ($($t:ty),*) => {
        $(impl Measured for $t {
            const FIXED_SIZE: Option<usize> = Some(std::mem::size_of::<$t>());

            #[inline]
            fn size_bytes(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

impl_measured_primitive!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool
);

impl Measured for () {
    const FIXED_SIZE: Option<usize> = Some(0);

    #[inline]
    fn size_bytes(&self) -> usize {
        0
    }
}

/// Sum of two element sizes when both are fixed (const-evaluable glue
/// for tuple impls).
const fn fixed_sum(a: Option<usize>, b: Option<usize>) -> Option<usize> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a + b),
        _ => None,
    }
}

impl<A: Measured, B: Measured> Measured for (A, B) {
    const FIXED_SIZE: Option<usize> = fixed_sum(A::FIXED_SIZE, B::FIXED_SIZE);

    #[inline]
    fn size_bytes(&self) -> usize {
        self.0.size_bytes() + self.1.size_bytes()
    }
}

impl<A: Measured, B: Measured, C: Measured> Measured for (A, B, C) {
    const FIXED_SIZE: Option<usize> =
        fixed_sum(A::FIXED_SIZE, fixed_sum(B::FIXED_SIZE, C::FIXED_SIZE));

    #[inline]
    fn size_bytes(&self) -> usize {
        self.0.size_bytes() + self.1.size_bytes() + self.2.size_bytes()
    }
}

/// Length-prefixed slice measurement: O(1) for fixed-size elements
/// (every adjacency-list value in the workspace), O(len) otherwise.
#[inline]
fn slice_size_bytes<T: Measured>(items: &[T]) -> usize {
    match T::FIXED_SIZE {
        Some(s) => 8 + s * items.len(),
        None => 8 + items.iter().map(Measured::size_bytes).sum::<usize>(),
    }
}

impl<T: Measured> Measured for Vec<T> {
    #[inline]
    fn size_bytes(&self) -> usize {
        slice_size_bytes(self)
    }
}

impl<T: Measured> Measured for Box<[T]> {
    #[inline]
    fn size_bytes(&self) -> usize {
        slice_size_bytes(self)
    }
}

impl<T: Measured> Measured for Option<T> {
    #[inline]
    fn size_bytes(&self) -> usize {
        1 + self.as_ref().map_or(0, Measured::size_bytes)
    }
}

impl<T: Measured + ?Sized> Measured for std::sync::Arc<T> {
    #[inline]
    fn size_bytes(&self) -> usize {
        (**self).size_bytes()
    }
}

impl<T: Measured> Measured for [T] {
    #[inline]
    fn size_bytes(&self) -> usize {
        slice_size_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(7u32.size_bytes(), 4);
        assert_eq!(7u64.size_bytes(), 8);
        assert_eq!(true.size_bytes(), 1);
    }

    #[test]
    fn composites() {
        assert_eq!((1u32, 2u64).size_bytes(), 12);
        assert_eq!(vec![1u32, 2, 3].size_bytes(), 8 + 12);
        assert_eq!(Some(5u64).size_bytes(), 9);
        assert_eq!(None::<u64>.size_bytes(), 1);
    }

    #[test]
    fn arc_measures_inner() {
        let a: std::sync::Arc<Vec<u32>> = std::sync::Arc::new(vec![1, 2]);
        assert_eq!(a.size_bytes(), 8 + 8);
    }
}
