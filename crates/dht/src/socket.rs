//! The socket-backed shard transport (DESIGN.md §12).
//!
//! Under `AMPC_STORE=socket`, sealed generations offload their values to
//! **shard servers in separate OS processes**, reached over Unix-domain
//! sockets with a length-prefixed deterministic wire format. This module
//! owns the transport half of the substrate: the frame codec, the shard
//! server loop (run by the `ampc-shardd` binary, or by an in-process
//! listener thread when the binary is not on disk), and the client-side
//! [`SocketCluster`] that spawns, supervises and reconnects to the
//! servers.
//!
//! # Wire format
//!
//! Every message is one **frame**: a little-endian `u32` byte length
//! followed by that many payload bytes. A request payload is
//! `[op: u8][generation: u64][count: u32][entries…]` with the entry
//! layout per opcode:
//!
//! * `LOAD` — `count × (key: u64, len: u32, bytes)`; response `[1]`.
//! * `GET` — `count × key: u64`; response `count × (present: u8,
//!   [len: u32, bytes] if present)`, **in request order** (that order
//!   is what makes the format deterministic: equal batches produce
//!   byte-identical frames in both directions).
//! * `DROP_GEN` — no entries; the server frees the generation.
//! * `PING` / `SHUTDOWN` — health check / orderly exit; response `[1]`.
//!
//! Integers are little-endian throughout (the same [`crate::wire`]
//! codec values use). Blobs are opaque to the server: it never decodes
//! a value, so one server binary serves every value type.
//!
//! # Supervision and retry
//!
//! The cluster spawns one server per shard (`AMPC_SOCKET_SHARDS`) with
//! its stdin piped — the server exits when the pipe closes, so a
//! crashed or killed client never leaks orphan processes. A failed
//! request reconnects under the same capped exponential backoff shape
//! as the chaos engine's drop retries (`2^k − 1` backoff units,
//! [`crate::fault::DropPlan::backoff_units`]), respawning the server
//! process if it died. Transport retries are **real** and therefore
//! live in the process-global [`WireMetrics`], never in `CommStats` —
//! the model's accounting stays byte-identical to the in-memory
//! substrate by construction.

use crate::fault::DropPlan;
use crate::hasher::{mix64, FxHashMap};
use crate::wire::Wire;
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Request opcodes (one byte on the wire).
pub mod op {
    /// Store a batch of `(key, blob)` pairs for a generation.
    pub const LOAD: u8 = 1;
    /// Fetch a batch of keys from a generation, responses in request order.
    pub const GET: u8 = 2;
    /// Free everything stored for a generation.
    pub const DROP_GEN: u8 = 3;
    /// Health check.
    pub const PING: u8 = 4;
    /// Orderly server exit (used by standalone clusters in tests).
    pub const SHUTDOWN: u8 = 5;
}

/// Upper bound on a single frame: corrupt length prefixes fail fast
/// instead of attempting a gigabyte allocation.
const MAX_FRAME: usize = 1 << 30;

/// `LOAD` batches are split so no single frame exceeds this many bytes
/// of payload (plus one entry): bounded buffering on both sides.
const LOAD_CHUNK_BYTES: usize = 4 << 20;

/// Reconnect attempts before a transport error is fatal. The sleep
/// before attempt `k` is `DropPlan::backoff_units(k)` backoff units —
/// the same capped exponential shape `CommStats::backoff_units`
/// charges for simulated drop retries (DESIGN.md §10).
const RECONNECT_CAP: u32 = 6;

/// One real-time backoff unit for transport retries.
const BACKOFF_UNIT: std::time::Duration = std::time::Duration::from_millis(2);

/// The shard-server binary name the cluster looks for next to the
/// current executable (`target/<profile>/ampc-shardd`).
pub const SHARDD_BIN: &str = "ampc-shardd";

// ---------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------

/// Writes one length-prefixed frame.
fn write_frame(stream: &mut UnixStream, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Reads one length-prefixed frame.
fn read_frame(stream: &mut UnixStream) -> std::io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame length exceeds sanity bound",
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(payload)
}

/// Starts a request payload: `[op][generation][count]`.
fn request_header(opcode: u8, generation: u64, count: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(13);
    out.push(opcode);
    generation.wire_encode(&mut out);
    count.wire_encode(&mut out);
    out
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

/// Binds `path` and serves shard requests until `SHUTDOWN` (the
/// `ampc-shardd` binary's whole job). A stale socket file at `path` is
/// removed first.
pub fn run_server(path: &Path) -> std::io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    serve_listener(listener)
}

/// The shard-server accept loop: one client connection at a time (each
/// client process holds exactly one connection per shard), requests
/// answered in arrival order. Returns after a `SHUTDOWN` request.
///
/// The blob store is type-agnostic — `generation → key → bytes` — so
/// one server serves every value type; ordering-sensitive iteration
/// never happens (all responses follow request order).
pub fn serve_listener(listener: UnixListener) -> std::io::Result<()> {
    let mut generations: FxHashMap<u64, FxHashMap<u64, Box<[u8]>>> = FxHashMap::default();
    loop {
        let (mut stream, _) = listener.accept()?;
        // Client closed or reconnecting ends the inner loop: accept anew.
        while let Ok(frame) = read_frame(&mut stream) {
            let (reply, shutdown) = handle_request(&frame, &mut generations);
            if write_frame(&mut stream, &reply).is_err() {
                break;
            }
            if shutdown {
                return Ok(());
            }
        }
    }
}

/// Decodes and executes one request, returning `(reply, shutdown)`.
/// Malformed frames get an empty reply (the client treats a bad reply
/// as a transport error and retries).
fn handle_request(
    frame: &[u8],
    generations: &mut FxHashMap<u64, FxHashMap<u64, Box<[u8]>>>,
) -> (Vec<u8>, bool) {
    let mut buf = frame;
    let parsed = (|| {
        let opcode = u8::wire_decode(&mut buf)?;
        let generation = u64::wire_decode(&mut buf)?;
        let count = u32::wire_decode(&mut buf)?;
        Some((opcode, generation, count))
    })();
    let Some((opcode, generation, count)) = parsed else {
        return (Vec::new(), false);
    };
    match opcode {
        op::LOAD => {
            let store = generations.entry(generation).or_default();
            for _ in 0..count {
                let Some((key, blob)) = decode_load_entry(&mut buf) else {
                    return (Vec::new(), false);
                };
                store.insert(key, blob);
            }
            (vec![1], false)
        }
        op::GET => {
            let store = generations.get(&generation);
            let mut reply = Vec::new();
            for _ in 0..count {
                let Some(key) = u64::wire_decode(&mut buf) else {
                    return (Vec::new(), false);
                };
                match store.and_then(|s| s.get(&key)) {
                    Some(blob) => {
                        reply.push(1);
                        (blob.len() as u32).wire_encode(&mut reply);
                        reply.extend_from_slice(blob);
                    }
                    None => reply.push(0),
                }
            }
            (reply, false)
        }
        op::DROP_GEN => {
            generations.remove(&generation);
            (vec![1], false)
        }
        op::PING => (vec![1], false),
        op::SHUTDOWN => (vec![1], true),
        _ => (Vec::new(), false),
    }
}

/// One `LOAD` entry: `key u64, len u32, bytes`.
fn decode_load_entry(buf: &mut &[u8]) -> Option<(u64, Box<[u8]>)> {
    let key = u64::wire_decode(buf)?;
    let len = u32::wire_decode(buf)? as usize;
    if buf.len() < len {
        return None;
    }
    let (blob, rest) = buf.split_at(len);
    *buf = rest;
    Some((key, blob.to_vec().into_boxed_slice()))
}

// ---------------------------------------------------------------------
// Wire metrics
// ---------------------------------------------------------------------

static WIRE_REQUESTS: AtomicU64 = AtomicU64::new(0);
static WIRE_BYTES_SENT: AtomicU64 = AtomicU64::new(0);
static WIRE_BYTES_RECEIVED: AtomicU64 = AtomicU64::new(0);
static WIRE_RECONNECTS: AtomicU64 = AtomicU64::new(0);
static WIRE_SPAWNS: AtomicU64 = AtomicU64::new(0);

/// Process-global transport counters, for the perf suite's real-wire
/// rows and the engagement assertions in the equivalence tests. These
/// are *host-side* measurements of the real transport; the model's
/// [`crate::metrics::CommStats`] never reads them (and must not — the
/// §3 contract pins CommStats byte-identical across substrates).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireMetrics {
    /// Request frames sent (one per shard per batch).
    pub requests: u64,
    /// Request payload bytes written.
    pub bytes_sent: u64,
    /// Response payload bytes read.
    pub bytes_received: u64,
    /// Reconnect attempts after a transport error.
    pub reconnects: u64,
    /// Shard servers spawned (initial spawns and respawns).
    pub spawns: u64,
}

/// Snapshot of the process-global wire counters.
pub fn wire_metrics() -> WireMetrics {
    WireMetrics {
        requests: WIRE_REQUESTS.load(Ordering::Relaxed),
        bytes_sent: WIRE_BYTES_SENT.load(Ordering::Relaxed),
        bytes_received: WIRE_BYTES_RECEIVED.load(Ordering::Relaxed),
        reconnects: WIRE_RECONNECTS.load(Ordering::Relaxed),
        spawns: WIRE_SPAWNS.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------
// Client: shards and the cluster
// ---------------------------------------------------------------------

/// How a shard server is being run.
enum ServerHandle {
    /// A separate OS process (the intended mode), held with its stdin
    /// pipe: dropping the child (or this process dying) closes the
    /// pipe and the server exits.
    Process(std::process::Child),
    /// In-process listener thread fallback, used when the
    /// `ampc-shardd` binary is not next to the current executable
    /// (e.g. a downstream crate's test run that never built it). Same
    /// listener loop, same wire protocol, still real socket traffic.
    Thread,
}

/// One shard: its socket path, the supervised server, and the single
/// client connection (requests from concurrent machine threads are
/// serialized per shard — the server answers in request order).
struct Shard {
    path: PathBuf,
    server: Mutex<Option<ServerHandle>>,
    conn: Mutex<Option<UnixStream>>,
}

impl Shard {
    fn new(path: PathBuf) -> Shard {
        Shard {
            path,
            server: Mutex::new(None),
            conn: Mutex::new(None),
        }
    }

    /// Spawns (or respawns) this shard's server, preferring a separate
    /// OS process and falling back to an in-process listener thread.
    fn spawn_server(&self) {
        let mut server = self.server.lock();
        // Reap a dead child before respawning over it.
        if let Some(ServerHandle::Process(child)) = server.as_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
        let _ = std::fs::remove_file(&self.path);
        WIRE_SPAWNS.fetch_add(1, Ordering::Relaxed);
        if let Some(bin) = find_shardd_binary() {
            let spawned = std::process::Command::new(&bin)
                .arg(&self.path)
                .stdin(std::process::Stdio::piped())
                .spawn();
            if let Ok(child) = spawned {
                // Wait for the server to bind before first use.
                for _ in 0..500 {
                    if self.path.exists() {
                        *server = Some(ServerHandle::Process(child));
                        return;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                // Never bound: fall through to the thread fallback.
            }
        }
        let listener =
            UnixListener::bind(&self.path).expect("socket substrate: cannot bind shard listener");
        // ampc-lint: allow(no-raw-spawn) -- shard-server fallback when the
        // ampc-shardd binary is absent: a detached listener thread speaking
        // the same wire protocol; it must outlive any one job, so it cannot
        // run on the executor pool.
        std::thread::spawn(move || {
            let _ = serve_listener(listener);
        });
        *server = Some(ServerHandle::Thread);
    }

    /// One request/response exchange over the cached connection.
    fn try_request_once(&self, payload: &[u8]) -> std::io::Result<Vec<u8>> {
        let mut conn = self.conn.lock();
        if conn.is_none() {
            *conn = Some(UnixStream::connect(&self.path)?);
        }
        let stream = conn.as_mut().expect("connection just established");
        let result = write_frame(stream, payload).and_then(|()| read_frame(stream));
        if result.is_err() {
            *conn = None; // poisoned: reconnect on the next attempt
        }
        result
    }

    /// Sends one request, reconnecting (and respawning a dead server)
    /// under the capped exponential backoff described in the module
    /// docs. Panics after `RECONNECT_CAP` failed attempts — a shard
    /// that stays unreachable is a deployment failure, and limping on
    /// would silently break the determinism contract.
    fn request(&self, payload: &[u8]) -> Vec<u8> {
        WIRE_REQUESTS.fetch_add(1, Ordering::Relaxed);
        WIRE_BYTES_SENT.fetch_add(payload.len() as u64, Ordering::Relaxed);
        for attempt in 0..=RECONNECT_CAP {
            match self.try_request_once(payload) {
                Ok(reply) if !reply.is_empty() || payload.first() == Some(&op::GET) => {
                    WIRE_BYTES_RECEIVED.fetch_add(reply.len() as u64, Ordering::Relaxed);
                    return reply;
                }
                // An empty reply to a non-GET op is the server's
                // malformed-frame signal; treat it like an I/O error.
                Ok(_) | Err(_) => {
                    WIRE_RECONNECTS.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(BACKOFF_UNIT * DropPlan::backoff_units(attempt + 1) as u32);
                    self.respawn_if_unreachable();
                }
            }
        }
        panic!(
            "socket substrate: shard at {} unreachable after {} attempts",
            self.path.display(),
            RECONNECT_CAP + 1
        );
    }

    /// Respawns the server if a fresh probe connection cannot be made
    /// (dead process, dropped listener, or stale socket file).
    fn respawn_if_unreachable(&self) {
        let dead_child = {
            let mut server = self.server.lock();
            match server.as_mut() {
                Some(ServerHandle::Process(child)) => {
                    matches!(child.try_wait(), Ok(Some(_)) | Err(_))
                }
                _ => false,
            }
        };
        if dead_child || UnixStream::connect(&self.path).is_err() {
            self.spawn_server();
        }
    }

    /// Health check; respawns on failure so the next round starts with
    /// a live server.
    fn ensure_healthy(&self) {
        let ping = request_header(op::PING, 0, 0);
        // `request` already retries + respawns; a healthy shard answers
        // on the first attempt.
        let _ = self.request(&ping);
    }
}

/// The client-side view of the shard-server fleet: one shard handle per
/// server process. Keys map to shards by `mix64(key) % shards`, the
/// same splitting rule the lock-striped writer uses.
pub struct SocketCluster {
    shards: Vec<Shard>,
    /// True for the process-global cluster (never torn down; servers
    /// exit via the stdin pipe). Standalone clusters shut their
    /// servers down on drop.
    global: bool,
}

impl SocketCluster {
    /// Spawns a standalone cluster of `n` shard servers with fresh
    /// socket paths. Production code uses the process-global
    /// [`cluster`]; standalone clusters exist so supervision tests can
    /// kill and respawn servers without disturbing concurrent tests.
    pub fn spawn(n: usize) -> SocketCluster {
        static NEXT_PATH: AtomicU64 = AtomicU64::new(0);
        let n = n.max(1);
        let shards = (0..n)
            .map(|_| {
                let seq = NEXT_PATH.fetch_add(1, Ordering::Relaxed);
                let path = std::env::temp_dir().join(format!(
                    "ampc-shardd-{}-{}.sock",
                    std::process::id(),
                    seq
                ));
                let shard = Shard::new(path);
                shard.spawn_server();
                shard
            })
            .collect();
        SocketCluster {
            shards,
            global: false,
        }
    }

    /// Number of shard servers.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard holds `key`.
    pub fn shard_of(&self, key: u64) -> usize {
        (mix64(key) % self.shards.len() as u64) as usize
    }

    /// Pings every shard, respawning any that died — the runtime calls
    /// this at job start and round boundaries when the socket substrate
    /// is active, so a crashed server is replaced before it is needed.
    pub fn ensure_healthy(&self) {
        for shard in &self.shards {
            shard.ensure_healthy();
        }
    }

    /// Offloads encoded `(key, blob)` pairs of one generation to the
    /// shard that owns them, in bounded-size `LOAD` frames.
    pub(crate) fn load(&self, generation: u64, shard: usize, entries: &[(u64, Vec<u8>)]) {
        let mut i = 0;
        while i < entries.len() {
            let mut payload = request_header(op::LOAD, generation, 0);
            let mut count = 0u32;
            while i < entries.len() && (count == 0 || payload.len() < LOAD_CHUNK_BYTES) {
                let (key, blob) = &entries[i];
                key.wire_encode(&mut payload);
                (blob.len() as u32).wire_encode(&mut payload);
                payload.extend_from_slice(blob);
                count += 1;
                i += 1;
            }
            payload[9..13].copy_from_slice(&count.to_le_bytes());
            let reply = self.shards[shard].request(&payload);
            assert_eq!(reply, [1], "socket substrate: shard rejected LOAD");
        }
    }

    /// Fetches a batch of keys from one shard, blobs returned in
    /// request order (`None` = the server does not hold the key).
    pub(crate) fn get_batch(
        &self,
        generation: u64,
        shard: usize,
        keys: &[u64],
    ) -> Vec<Option<Vec<u8>>> {
        let mut payload = request_header(op::GET, generation, keys.len() as u32);
        for key in keys {
            key.wire_encode(&mut payload);
        }
        let reply = self.shards[shard].request(&payload);
        let mut buf = &reply[..];
        let mut out = Vec::with_capacity(keys.len());
        for _ in keys {
            match u8::wire_decode(&mut buf) {
                Some(0) => out.push(None),
                Some(1) => {
                    let len = u32::wire_decode(&mut buf)
                        .expect("socket substrate: truncated GET reply")
                        as usize;
                    assert!(buf.len() >= len, "socket substrate: truncated GET blob");
                    let (blob, rest) = buf.split_at(len);
                    buf = rest;
                    out.push(Some(blob.to_vec()));
                }
                _ => panic!("socket substrate: malformed GET reply"),
            }
        }
        out
    }

    /// Frees a generation on every shard (best-effort; called from the
    /// sealed generation's drop).
    pub(crate) fn drop_gen(&self, generation: u64) {
        let payload = request_header(op::DROP_GEN, generation, 0);
        for shard in &self.shards {
            // Best-effort: a dead shard has already lost the data.
            let _ = shard.try_request_once(&payload);
        }
    }

    /// Sends `SHUTDOWN` to every shard server (standalone clusters and
    /// supervision tests; the global cluster's servers exit with the
    /// process via their stdin pipe).
    pub fn shutdown(&self) {
        let payload = request_header(op::SHUTDOWN, 0, 0);
        for shard in &self.shards {
            let _ = shard.try_request_once(&payload);
            *shard.conn.lock() = None;
            let mut server = shard.server.lock();
            if let Some(ServerHandle::Process(child)) = server.as_mut() {
                let _ = child.wait();
            }
            *server = None;
        }
    }

    /// Kills the shard servers *without* cleanup — simulating a crash
    /// so supervision tests can exercise respawn. Connections are left
    /// in place so the next request fails like a real partition.
    pub fn kill_servers_for_test(&self) {
        for shard in &self.shards {
            let mut server = shard.server.lock();
            match server.take() {
                Some(ServerHandle::Process(mut child)) => {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                Some(ServerHandle::Thread) => {
                    // No process to kill: shut the loop down and drop
                    // the listener by removing its socket file.
                    let payload = request_header(op::SHUTDOWN, 0, 0);
                    let _ = shard.try_request_once(&payload);
                    *shard.conn.lock() = None;
                }
                None => {}
            }
            let _ = std::fs::remove_file(&shard.path);
        }
    }
}

impl Drop for SocketCluster {
    fn drop(&mut self) {
        if !self.global {
            self.shutdown();
            for shard in &self.shards {
                let _ = std::fs::remove_file(&shard.path);
            }
        }
    }
}

/// Locates the `ampc-shardd` binary next to the current executable
/// (tests run from `target/<profile>/deps/…`, the binary lives one
/// directory up; binaries run from `target/<profile>/` directly).
fn find_shardd_binary() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    exe.ancestors()
        .skip(1)
        .take(3)
        .map(|dir| dir.join(SHARDD_BIN))
        .find(|candidate| candidate.is_file())
}

/// The process-global cluster serving every socket-sealed generation,
/// spawned lazily on first use (`D0` loads can precede any runtime
/// involvement) and sized by `AMPC_SOCKET_SHARDS`.
pub fn cluster() -> &'static SocketCluster {
    static CLUSTER: OnceLock<SocketCluster> = OnceLock::new();
    CLUSTER.get_or_init(|| {
        let mut c = SocketCluster::spawn(ampc_knobs::ampc_socket_shards());
        c.global = true;
        c
    })
}

/// Runtime lifecycle hook: when the socket substrate is the active
/// store, make sure every shard server is alive (respawning crashed
/// ones). A no-op under the in-memory substrates, so the executor can
/// call it unconditionally at round boundaries.
pub fn ensure_if_active() {
    if crate::store::store_kind() == crate::store::StoreKind::Socket {
        cluster().ensure_healthy();
    }
}

/// Allocates a process-unique generation id for a socket-sealed
/// generation (ids key the blob namespace on the shard servers).
pub(crate) fn next_gen_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(bytes: &[u8]) -> Vec<u8> {
        bytes.to_vec()
    }

    #[test]
    fn load_get_drop_round_trip() {
        let c = SocketCluster::spawn(2);
        let generation = next_gen_id();
        for shard in 0..2 {
            let entries: Vec<(u64, Vec<u8>)> = (0..50u64)
                .map(|k| (k * 2 + shard as u64, blob(&k.to_le_bytes())))
                .collect();
            c.load(generation, shard, &entries);
        }
        let got = c.get_batch(generation, 0, &[0, 2, 4, 999]);
        assert_eq!(got[0], Some(blob(&0u64.to_le_bytes())));
        assert_eq!(got[1], Some(blob(&1u64.to_le_bytes())));
        assert_eq!(got[2], Some(blob(&2u64.to_le_bytes())));
        assert_eq!(got[3], None);
        c.drop_gen(generation);
        let gone = c.get_batch(generation, 0, &[0]);
        assert_eq!(gone, vec![None]);
    }

    #[test]
    fn generations_are_isolated_namespaces() {
        let c = SocketCluster::spawn(1);
        let g1 = next_gen_id();
        let g2 = next_gen_id();
        c.load(g1, 0, &[(7, blob(b"one"))]);
        c.load(g2, 0, &[(7, blob(b"two"))]);
        assert_eq!(c.get_batch(g1, 0, &[7]), vec![Some(blob(b"one"))]);
        assert_eq!(c.get_batch(g2, 0, &[7]), vec![Some(blob(b"two"))]);
        c.drop_gen(g1);
        assert_eq!(c.get_batch(g1, 0, &[7]), vec![None]);
        assert_eq!(c.get_batch(g2, 0, &[7]), vec![Some(blob(b"two"))]);
    }

    #[test]
    fn get_replies_follow_request_order() {
        let c = SocketCluster::spawn(1);
        let generation = next_gen_id();
        c.load(generation, 0, &[(1, blob(b"a")), (2, blob(b"bb"))]);
        let got = c.get_batch(generation, 0, &[2, 99, 1, 2]);
        assert_eq!(
            got,
            vec![Some(blob(b"bb")), None, Some(blob(b"a")), Some(blob(b"bb"))]
        );
    }

    #[test]
    fn large_loads_chunk_into_multiple_frames() {
        let c = SocketCluster::spawn(1);
        let generation = next_gen_id();
        // ~9 MB of blobs: must split into ≥ 3 LOAD frames.
        let entries: Vec<(u64, Vec<u8>)> = (0..9u64).map(|k| (k, vec![k as u8; 1 << 20])).collect();
        let before = wire_metrics().requests;
        c.load(generation, 0, &entries);
        assert!(wire_metrics().requests - before >= 3);
        let got = c.get_batch(generation, 0, &[8]);
        assert_eq!(got[0].as_deref(), Some(&vec![8u8; 1 << 20][..]));
    }

    #[test]
    fn killed_server_is_respawned_and_new_loads_work() {
        let c = SocketCluster::spawn(1);
        let g1 = next_gen_id();
        c.load(g1, 0, &[(1, blob(b"x"))]);
        let before = wire_metrics();
        c.kill_servers_for_test();
        // The next request rides the reconnect/respawn path…
        let g2 = next_gen_id();
        c.load(g2, 0, &[(2, blob(b"y"))]);
        assert_eq!(c.get_batch(g2, 0, &[2]), vec![Some(blob(b"y"))]);
        let after = wire_metrics();
        assert!(after.reconnects > before.reconnects, "reconnects counted");
        assert!(after.spawns > before.spawns, "server respawned");
        // …but the crashed server's data is gone, loudly absent.
        assert_eq!(c.get_batch(g1, 0, &[1]), vec![None]);
    }

    #[test]
    fn ping_health_check_succeeds() {
        let c = SocketCluster::spawn(3);
        c.ensure_healthy();
        assert_eq!(c.shard_count(), 3);
    }
}
