//! The generational key-value store.
//!
//! The model (§2): *"At the start of the computation, the input data is
//! stored in D0 … In the i-th round, each machine can read data from
//! D_{i−1} and write to D_i."* A [`Dht`] is the sequence `D0, D1, …`;
//! each generation is written concurrently through a lock-striped
//! [`GenerationWriter`], then **sealed** into an immutable [`Generation`]
//! that later rounds read lock-free. Past generations are never mutated
//! — which is exactly why a preempted machine can replay its round
//! against the same inputs (the fault-tolerance property of §2).

use crate::hasher::{mix64, FxHashMap};
use crate::measured::Measured;
use parking_lot::Mutex;

/// Number of lock stripes in a writer. Plenty for the machine counts the
/// simulator runs (≤ a few hundred).
const DEFAULT_SHARDS: usize = 64;

/// A write-only, lock-striped generation under construction.
///
/// Duplicate keys are resolved **deterministically**: every write
/// carries the id of the machine that issued it (threaded through
/// [`crate::MachineHandle::put`]) and the entry from the *lowest*
/// machine id wins, regardless of thread schedule. Writes from the same
/// machine are sequential, so among them the last one wins. This is the
/// §3 determinism contract: a sealed generation is a pure function of
/// *what* was written, never of *when* the OS scheduled the writers —
/// which is also what makes fault replay exact.
pub struct GenerationWriter<V> {
    /// Each entry carries the writing machine's id as its precedence.
    shards: Vec<Mutex<FxHashMap<u64, (u32, V)>>>,
    /// When true (the default), cross-machine writes of *different*
    /// values to the same key trip a `debug_assert` — workspace
    /// algorithms only ever race equal values (e.g. idempotent status
    /// markers), so a conflicting duplicate is a kernel bug.
    strict: bool,
}

impl<V: Measured + Clone + PartialEq> GenerationWriter<V> {
    /// New writer with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// New writer with an explicit shard count (must be ≥ 1).
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards >= 1);
        GenerationWriter {
            shards: (0..shards).map(|_| Mutex::new(FxHashMap::default())).collect(),
            strict: true,
        }
    }

    /// Disables the conflicting-write `debug_assert`, keeping the
    /// deterministic lowest-machine-id resolution. For tests and
    /// experiments that intentionally race different values.
    pub fn relaxed(mut self) -> Self {
        self.strict = false;
        self
    }

    #[inline]
    fn shard_of(&self, key: u64) -> usize {
        (mix64(key) % self.shards.len() as u64) as usize
    }

    /// Inserts a key-value pair on behalf of machine 0 (the
    /// single-threaded load path). See [`Self::put_from`].
    pub fn put(&self, key: u64, value: V) -> usize {
        self.put_from(0, key, value)
    }

    /// Inserts a key-value pair written by `machine`. On duplicate keys
    /// the entry from the lowest machine id wins (ties: the same
    /// machine overwrites its own earlier write — deterministic because
    /// one machine's writes are sequential). Returns the serialized
    /// size of the pair for the caller's accounting.
    ///
    /// # Panics
    /// In debug builds (unless [`Self::relaxed`]), panics when two
    /// *different* machines write *different* values for one key.
    pub fn put_from(&self, machine: u32, key: u64, value: V) -> usize {
        let bytes = 8 + value.size_bytes();
        let mut shard = self.shards[self.shard_of(key)].lock();
        match shard.entry(key) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert((machine, value));
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let (prev_machine, prev_value) = e.get();
                if self.strict && *prev_machine != machine {
                    debug_assert!(
                        *prev_value == value,
                        "conflicting cross-machine writes for key {key} \
                         (machines {prev_machine} and {machine}): the §3 \
                         determinism contract forbids schedule-dependent values"
                    );
                }
                if machine <= *prev_machine {
                    e.insert((machine, value));
                }
            }
        }
        bytes
    }

    /// Seals the writer into an immutable generation.
    pub fn seal(self) -> Generation<V> {
        Generation {
            shards: self
                .shards
                .into_iter()
                .map(|m| {
                    m.into_inner()
                        .into_iter()
                        .map(|(k, (_, v))| (k, v))
                        .collect()
                })
                .collect(),
        }
    }
}

impl<V: Measured + Clone + PartialEq> Default for GenerationWriter<V> {
    fn default() -> Self {
        Self::new()
    }
}

/// An immutable, sealed generation: reads need no locks.
pub struct Generation<V> {
    shards: Vec<FxHashMap<u64, V>>,
}

impl<V: Measured + Clone> Generation<V> {
    /// An empty generation.
    pub fn empty() -> Self {
        Generation { shards: vec![FxHashMap::default()] }
    }

    #[inline]
    fn shard_of(&self, key: u64) -> usize {
        (mix64(key) % self.shards.len() as u64) as usize
    }

    /// Looks a key up. Returns a reference into the sealed store.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        self.shards[self.shard_of(key)].get(&key)
    }

    /// Number of key-value pairs stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True if no pairs are stored.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Total serialized size of all pairs.
    pub fn size_bytes(&self) -> usize {
        self.shards
            .iter()
            .flat_map(|s| s.values())
            .map(|v| 8 + v.size_bytes())
            .sum()
    }

    /// Iterates all pairs (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> + '_ {
        self.shards
            .iter()
            .flat_map(|s| s.iter().map(|(&k, v)| (k, v)))
    }
}

/// Builds a generation directly from an iterator (single-threaded load
/// path for `D0`).
impl<V: Measured + Clone + PartialEq> FromIterator<(u64, V)> for Generation<V> {
    fn from_iter<I: IntoIterator<Item = (u64, V)>>(items: I) -> Self {
        let w = GenerationWriter::with_shards(DEFAULT_SHARDS);
        for (k, v) in items {
            w.put(k, v);
        }
        w.seal()
    }
}

/// The collection `D0, D1, D2, …` of hash-table generations.
pub struct Dht<V> {
    generations: Vec<Generation<V>>,
}

impl<V: Measured + Clone> Dht<V> {
    /// A DHT whose `D0` holds the given input data.
    pub fn with_input(d0: Generation<V>) -> Self {
        Dht {
            generations: vec![d0],
        }
    }

    /// A DHT with an empty `D0`.
    pub fn new() -> Self {
        Self::with_input(Generation::empty())
    }

    /// Index of the newest sealed generation.
    pub fn current_index(&self) -> usize {
        self.generations.len() - 1
    }

    /// The newest sealed generation (what the next round reads).
    pub fn current(&self) -> &Generation<V> {
        self.generations.last().unwrap()
    }

    /// A specific sealed generation.
    pub fn generation(&self, i: usize) -> &Generation<V> {
        &self.generations[i]
    }

    /// Seals `next` as the newest generation (the round boundary).
    pub fn push(&mut self, next: Generation<V>) {
        self.generations.push(next);
    }

    /// Number of sealed generations (including `D0`).
    pub fn num_generations(&self) -> usize {
        self.generations.len()
    }
}

impl<V: Measured + Clone> Default for Dht<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_seal_roundtrip() {
        let w: GenerationWriter<u64> = GenerationWriter::new();
        for k in 0..500u64 {
            w.put(k, k * 3);
        }
        let g = w.seal();
        assert_eq!(g.len(), 500);
        for k in 0..500u64 {
            assert_eq!(g.get(k), Some(&(k * 3)));
        }
        assert_eq!(g.get(999), None);
    }

    #[test]
    fn put_returns_pair_size() {
        let w: GenerationWriter<Vec<u32>> = GenerationWriter::new();
        let sz = w.put(1, vec![1, 2, 3]);
        assert_eq!(sz, 8 + 8 + 12);
    }

    #[test]
    fn concurrent_writes() {
        let w: GenerationWriter<u64> = GenerationWriter::new();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let w = &w;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        w.put(t * 1000 + i, i);
                    }
                });
            }
        });
        let g = w.seal();
        assert_eq!(g.len(), 8000);
    }

    #[test]
    fn dht_generations_advance() {
        let mut dht: Dht<u32> = Dht::new();
        assert_eq!(dht.current_index(), 0);
        let w = GenerationWriter::new();
        w.put(7, 7u32);
        dht.push(w.seal());
        assert_eq!(dht.current_index(), 1);
        assert_eq!(dht.current().get(7), Some(&7));
        assert_eq!(dht.generation(0).get(7), None);
    }

    #[test]
    fn generation_iter_and_size() {
        let g = Generation::from_iter((0..10u64).map(|k| (k, k as u32)));
        assert_eq!(g.iter().count(), 10);
        assert_eq!(g.size_bytes(), 10 * 12);
        assert!(!g.is_empty());
        assert!(Generation::<u32>::empty().is_empty());
    }

    #[test]
    fn same_machine_last_write_wins() {
        let w: GenerationWriter<u32> = GenerationWriter::new();
        w.put(5, 1);
        w.put(5, 2);
        let g = w.seal();
        assert_eq!(g.get(5), Some(&2));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn lowest_machine_id_wins_regardless_of_order() {
        // Conflicting values (relaxed mode): the winner is the machine
        // with the lowest id, in every arrival order.
        for order in [[3u32, 1, 2], [1, 2, 3], [2, 3, 1]] {
            let w: GenerationWriter<u32> = GenerationWriter::new().relaxed();
            for m in order {
                w.put_from(m, 9, 100 + m);
            }
            let g = w.seal();
            assert_eq!(g.get(9), Some(&101), "order {order:?}");
        }
    }

    #[test]
    fn duplicate_equal_values_are_not_conflicts() {
        let w: GenerationWriter<u64> = GenerationWriter::new();
        w.put_from(2, 7, 42);
        w.put_from(0, 7, 42); // strict mode: equal values, no panic
        assert_eq!(w.seal().get(7), Some(&42));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "conflicting cross-machine writes")]
    fn strict_mode_rejects_conflicting_values() {
        let w: GenerationWriter<u64> = GenerationWriter::new();
        w.put_from(0, 7, 1);
        w.put_from(1, 7, 2);
    }

    /// The §3 stress test: many machines racing duplicate keys under two
    /// very different thread schedules must seal byte-identical
    /// generations.
    #[test]
    fn schedules_seal_identical_generations() {
        fn run(reverse: bool) -> Vec<(u64, u64)> {
            let w: GenerationWriter<u64> = GenerationWriter::new();
            std::thread::scope(|s| {
                let machines: Vec<u32> = if reverse {
                    (0..8u32).rev().collect()
                } else {
                    (0..8u32).collect()
                };
                for m in machines {
                    let w = &w;
                    s.spawn(move || {
                        if reverse {
                            // Skew the schedule: late spawns run first.
                            std::thread::yield_now();
                        }
                        for i in 0..200u64 {
                            // Private keys, plus shared keys every machine
                            // writes with the machine-independent value
                            // (the StatusWrite pattern).
                            w.put_from(m, m as u64 * 1000 + i, i * 3);
                            w.put_from(m, 100_000 + i, i);
                        }
                    });
                }
            });
            let mut pairs: Vec<(u64, u64)> =
                w.seal().iter().map(|(k, v)| (k, *v)).collect();
            pairs.sort_unstable();
            pairs
        }
        let a = run(false);
        let b = run(true);
        assert_eq!(a.len(), 8 * 200 + 200);
        assert_eq!(a, b);
    }
}
