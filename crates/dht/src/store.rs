//! The generational key-value store.
//!
//! The model (§2): *"At the start of the computation, the input data is
//! stored in D0 … In the i-th round, each machine can read data from
//! D_{i−1} and write to D_i."* A [`Dht`] is the sequence `D0, D1, …`;
//! each generation is written concurrently through a lock-striped
//! [`GenerationWriter`], then **sealed** into an immutable [`Generation`]
//! that later rounds read lock-free. Past generations are never mutated
//! — which is exactly why a preempted machine can replay its round
//! against the same inputs (the fault-tolerance property of §2).
//!
//! # Sealed layout (DESIGN.md §5.4)
//!
//! Sealing **flattens** the lock-striped writer into one of two
//! single-level layouts, chosen from the key set alone (so the choice is
//! deterministic):
//!
//! * [`ReprKind::Dense`] — a direct-index array with an occupancy
//!   bitmap, used when the keys are a dense `0..n` domain (the common
//!   case: every kernel keys the DHT by vertex id). `get` is one bounds
//!   check and one slot read — **zero** hashes.
//! * [`ReprKind::Open`] — one open-addressed, linearly-probed table for
//!   everything else. `get` hashes **once** ([`mix64`]) and probes
//!   flat memory; there is no per-shard indirection and no second hash
//!   (the pre-flat layout hashed twice: `mix64` to pick a shard, then
//!   the shard's `FxHashMap` hashed again).
//!
//! The pre-flat shard-of-hashmaps layout is retained as
//! [`ReprKind::Sharded`] behind the `AMPC_STORE=sharded` knob so the
//! perf suite can measure old-vs-new on identical workloads and the
//! regression tests can pin `get`/`get_many` equivalence. All layouts
//! are observationally identical: same values, same `len`/`size_bytes`,
//! same communication accounting.
//!
//! # Substrates (DESIGN.md §12)
//!
//! The physical layouts now live behind the
//! [`crate::substrate::Substrate`] trait. Besides the in-memory
//! substrates above, `AMPC_STORE=socket` ([`StoreKind::Socket`]) seals
//! the same flat layout and then **offloads the values to shard-server
//! processes** over Unix-domain sockets ([`crate::socket`]), keeping
//! only the key index in this process. The socket substrate reports the
//! same [`ReprKind`] and layout fingerprint as the flat layout it
//! mirrors; [`Generation::backend`] tells the two apart.
//!
//! Both flat layouts are **canonical**: the physical slot assignment is
//! a pure function of the sealed key-value set, never of thread
//! schedule or seal parallelism (dense assigns slot `k` to key `k`;
//! open inserts in ascending key order). `len()` and `size_bytes()` are
//! computed once at seal time and cached, so the per-round report path
//! reads them in O(1) instead of re-walking every entry.

#![allow(unsafe_code)] // disjoint-stripe scatter in the parallel seal; see seal_dense_scatter.

use crate::hasher::{mix64, FxHashMap};
use crate::measured::Measured;
use crate::substrate::{
    BitIter, DenseSubstrate, OpenSubstrate, ShardedSubstrate, SocketSubstrate, Substrate,
    DENSE_MAX_WASTE,
};
use crate::wire::Wire;
use parking_lot::Mutex;

pub use crate::substrate::{ReprKind, StoreBackend};

/// Number of lock stripes in a writer. Plenty for the machine counts the
/// simulator runs (≤ a few hundred).
const DEFAULT_SHARDS: usize = 64;

/// Sealing drains and resolves the writer's stripes in parallel once a
/// generation holds at least this many entries; below it, one thread
/// finishes faster than workers can be handed their stripes.
const PARALLEL_SEAL_MIN: usize = 1 << 16;

/// The `AMPC_THREADS` environment knob (cached after the first read):
/// the worker count used by parallel seals here and by the runtime's
/// persistent executor pool. The read itself lives in the
/// [`ampc_knobs`] registry; this re-export keeps the historical entry
/// point callers already use.
pub use ampc_knobs::ampc_threads;

/// Store mode: resolved once from `AMPC_STORE`, overridable at runtime
/// by [`force_store`] (an atomic, so the hot write path never touches
/// the process environment lock).
const MODE_ENV: u8 = 0;
const MODE_FLAT: u8 = 1;
const MODE_SHARDED: u8 = 2;
const MODE_SOCKET: u8 = 3;
static STORE_MODE: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(MODE_ENV);

/// Which substrate [`GenerationWriter::seal`] produces — the
/// `AMPC_STORE` knob as a type (DESIGN.md §12).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreKind {
    /// The flat in-memory layouts (dense or open) — the default.
    Flat,
    /// The pre-flat shard-of-hashmaps in-memory baseline.
    Sharded,
    /// Values in shard-server processes behind Unix-domain sockets.
    Socket,
}

impl StoreKind {
    /// Parses an `AMPC_STORE` value (case-insensitive). `None` for
    /// anything that is not `flat`, `sharded` or `socket` — callers
    /// (the CLI's `--store` flag) reject loudly rather than default.
    pub fn parse(s: &str) -> Option<StoreKind> {
        match s.to_ascii_lowercase().as_str() {
            "flat" => Some(StoreKind::Flat),
            "sharded" => Some(StoreKind::Sharded),
            "socket" => Some(StoreKind::Socket),
            _ => None,
        }
    }

    /// The knob value naming this substrate (inverse of
    /// [`StoreKind::parse`]; echoed into run records).
    pub fn as_str(self) -> &'static str {
        match self {
            StoreKind::Flat => "flat",
            StoreKind::Sharded => "sharded",
            StoreKind::Socket => "socket",
        }
    }
}

/// The store kind currently in force: a [`force_store`] override if one
/// is set, else `AMPC_STORE` (resolved once and cached).
pub fn store_kind() -> StoreKind {
    use std::sync::atomic::Ordering;
    match STORE_MODE.load(Ordering::Relaxed) {
        MODE_FLAT => StoreKind::Flat,
        MODE_SHARDED => StoreKind::Sharded,
        MODE_SOCKET => StoreKind::Socket,
        _ => {
            let kind = StoreKind::parse(ampc_knobs::ampc_store()).unwrap_or(StoreKind::Flat);
            force_store(Some(kind));
            kind
        }
    }
}

/// Overrides the substrate choice at runtime, as `AMPC_STORE` would,
/// without mutating the process environment: `Some(kind)` forces that
/// substrate for subsequent seals, `None` re-reads `AMPC_STORE` on next
/// use. Process-global — intended for the perf suite's A/B runs and the
/// runtime's `--store` flag, not for concurrent use under live jobs
/// (the substrates are observationally equivalent, so a racing seal
/// merely picks either one).
pub fn force_store(kind: Option<StoreKind>) {
    let mode = match kind {
        Some(StoreKind::Flat) => MODE_FLAT,
        Some(StoreKind::Sharded) => MODE_SHARDED,
        Some(StoreKind::Socket) => MODE_SOCKET,
        None => MODE_ENV,
    };
    STORE_MODE.store(mode, std::sync::atomic::Ordering::Relaxed);
}

/// Historical two-way form of [`force_store`]: `Some(true)` forces the
/// pre-flat sharded baseline, `Some(false)` the flat layout, `None`
/// re-reads `AMPC_STORE`. Kept for the perf suite's existing A/B entry
/// points.
pub fn force_store_layout(sharded: Option<bool>) {
    force_store(kind_of_legacy(sharded));
}

fn kind_of_legacy(sharded: Option<bool>) -> Option<StoreKind> {
    sharded.map(|s| {
        if s {
            StoreKind::Sharded
        } else {
            StoreKind::Flat
        }
    })
}

/// One logged write: `(key, writing machine, value)`. Stripes are
/// append-only until seal; duplicate resolution happens once, at seal
/// time, instead of per write.
type LogEntry<V> = (u64, u32, V);

/// A pool of recycled stripe buffers, so epoch loops (dyn-cc publishes
/// one generation per batch) reuse the writer's log allocations instead
/// of growing fresh `Vec`s every epoch. Checked out by
/// [`GenerationWriter::with_arena`], returned by
/// [`GenerationWriter::seal_recycle`]. Buffers come back cleared but
/// with capacity intact; the arena itself is cheap to create and holds
/// nothing until a seal returns buffers to it.
pub struct StripeArena<V> {
    bufs: Mutex<Vec<Vec<LogEntry<V>>>>,
}

impl<V> StripeArena<V> {
    /// An empty arena.
    pub fn new() -> Self {
        StripeArena {
            bufs: Mutex::new(Vec::new()),
        }
    }

    /// Number of buffers currently parked in the arena (test hook).
    pub fn parked(&self) -> usize {
        self.bufs.lock().len()
    }
}

impl<V> Default for StripeArena<V> {
    fn default() -> Self {
        Self::new()
    }
}

/// A write-only, lock-striped generation under construction.
///
/// Each stripe is an **append log** of `(key, machine, value)` entries;
/// writes never hash into a map. Duplicate keys are resolved
/// **deterministically at seal time**: every write carries the id of
/// the machine that issued it (threaded through
/// [`crate::MachineHandle::put`]) and the entry from the *lowest*
/// machine id wins, regardless of thread schedule. Writes from the same
/// machine are appended sequentially, so among them the last one wins.
/// This is the §3 determinism contract: a sealed generation is a pure
/// function of *what* was written, never of *when* the OS scheduled the
/// writers — within a stripe, one machine's entries keep their issue
/// order under every interleaving, and "last entry from the lowest
/// machine" names the same winner in all of them. That is also what
/// makes fault replay exact.
pub struct GenerationWriter<V> {
    /// Append logs, lock-striped by `mix64(key) % stripes`.
    shards: Vec<Mutex<Vec<LogEntry<V>>>>,
    /// When true (the default), cross-machine writes of *different*
    /// values to the same key trip a `debug_assert` at seal time —
    /// workspace algorithms only ever race equal values (e.g.
    /// idempotent status markers), so a conflicting duplicate is a
    /// kernel bug.
    strict: bool,
}

impl<V: Measured + Clone + PartialEq + Send + Wire> GenerationWriter<V> {
    /// New writer with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// New writer with an explicit shard count (must be ≥ 1).
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards >= 1);
        GenerationWriter {
            shards: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            strict: true,
        }
    }

    /// New writer whose stripe buffers are checked out of `arena`
    /// (falling back to fresh `Vec`s when the arena runs dry). Pair
    /// with [`Self::seal_recycle`] to close the loop.
    pub fn with_arena(arena: &StripeArena<V>) -> Self {
        let mut pooled = arena.bufs.lock();
        let shards = (0..DEFAULT_SHARDS)
            .map(|_| Mutex::new(pooled.pop().unwrap_or_default()))
            .collect();
        GenerationWriter {
            shards,
            strict: true,
        }
    }

    /// Disables the conflicting-write `debug_assert`, keeping the
    /// deterministic lowest-machine-id resolution. For tests and
    /// experiments that intentionally race different values.
    pub fn relaxed(mut self) -> Self {
        self.strict = false;
        self
    }

    #[inline]
    fn shard_of(&self, key: u64) -> usize {
        (mix64(key) % self.shards.len() as u64) as usize
    }

    /// Inserts a key-value pair on behalf of machine 0 (the
    /// single-threaded load path). See [`Self::put_from`].
    pub fn put(&self, key: u64, value: V) -> usize {
        self.put_from(0, key, value)
    }

    /// Inserts a key-value pair written by `machine`. On duplicate keys
    /// the entry from the lowest machine id wins (ties: the same
    /// machine overwrites its own earlier write — deterministic because
    /// one machine's writes are sequential). Resolution happens at seal
    /// time; the write itself is one lock and one `Vec` push. Returns
    /// the serialized size of the pair for the caller's accounting.
    ///
    /// # Panics
    /// In debug builds (unless [`Self::relaxed`]), sealing panics when
    /// two *different* machines wrote *different* values for one key.
    pub fn put_from(&self, machine: u32, key: u64, value: V) -> usize {
        let bytes = 8 + value.size_bytes();
        self.shards[self.shard_of(key)]
            .lock()
            .push((key, machine, value));
        bytes
    }

    /// Inserts a batch of pairs written by `machine`. Per-pair
    /// semantics are exactly [`Self::put_from`]: same deterministic
    /// lowest-machine-id resolution (at seal), same conflict
    /// `debug_assert`, and the returned byte total is the sum of the
    /// per-pair sizes. Returns `(pairs_written, total_bytes)`.
    ///
    /// With append-log stripes there is no per-key map work to batch,
    /// so the batch form is a plain loop over [`Self::put_from`] —
    /// each value moves exactly once, out of the iterator and into its
    /// stripe log, with no intermediate batch buffer.
    pub fn put_many_from(
        &self,
        machine: u32,
        pairs: impl IntoIterator<Item = (u64, V)>,
    ) -> (u64, usize) {
        let mut written = 0u64;
        let mut total_bytes = 0usize;
        for (k, v) in pairs {
            total_bytes += self.put_from(machine, k, v);
            written += 1;
        }
        (written, total_bytes)
    }

    /// Seals the writer into an immutable generation on the substrate
    /// [`store_kind`] currently selects (see the module docs for the
    /// in-memory layout selection rule; large flat seals parallelize
    /// across the writer's stripes with [`ampc_threads`] workers).
    /// Under `AMPC_STORE=socket` the flat seal runs first — same
    /// canonical layout, byte for byte — and the values are then
    /// offloaded to the shard servers.
    pub fn seal(self) -> Generation<V> {
        self.seal_current_mode()
    }

    /// [`Self::seal`], returning the drained stripe buffers to `arena`
    /// for the next epoch's writer. The sealed generation is identical
    /// to a plain `seal`; only the allocation lifecycle differs.
    pub fn seal_recycle(self, arena: &StripeArena<V>) -> Generation<V> {
        let g = self.seal_current_mode();
        let mut pooled = arena.bufs.lock();
        pooled.extend(self.shards.into_iter().map(|m| {
            let mut buf = m.into_inner();
            buf.clear(); // drained by the seal; belt and braces
            buf
        }));
        g
    }

    /// Seal dispatch over the process-wide store mode.
    fn seal_current_mode(&self) -> Generation<V> {
        match store_kind() {
            StoreKind::Sharded => self.seal_sharded_drain(),
            StoreKind::Flat => self.seal_flat(ampc_threads()),
            StoreKind::Socket => self.seal_flat(ampc_threads()).offload_to_socket(),
        }
    }

    /// Seals into the flat layout with an explicit worker count
    /// (`threads = 1` seals entirely on the calling thread), ignoring
    /// the store mode — the determinism suites use this to pin the
    /// canonical in-memory layout regardless of `AMPC_STORE`. The
    /// sealed layout is byte-identical for every `threads` value: the
    /// dense scatter distributes whole stripes over workers, and the
    /// physical layout is canonical (see module docs).
    pub fn seal_with_threads(self, threads: usize) -> Generation<V> {
        self.seal_flat(threads)
    }

    /// Flat seal over the stripe logs. Resolution and layout selection
    /// in one sweep:
    ///
    /// 1. A scan over the logs finds the total logged entry count and
    ///    the maximum key. The *distinct* key count is not yet known
    ///    (logs may hold duplicates), so the scan only rules layouts
    ///    *out*: if even the logged count cannot justify a dense array,
    ///    no subset of it can.
    /// 2. Dense-eligible logs scatter into the direct-index array with
    ///    a `machines` side array carrying write precedence; the true
    ///    distinct count falls out, and a duplicate-heavy log that
    ///    turns out sparse is compacted into the open table (the
    ///    bitmap yields pairs in ascending key order for free).
    /// 3. Sparse logs resolve per stripe by a stable `(key, machine)`
    ///    sort — "last entry of the lowest-machine run" is exactly the
    ///    deterministic winner — then build the open table in ascending
    ///    key order.
    fn seal_flat(&self, threads: usize) -> Generation<V> {
        let mut logged = 0usize;
        let mut max_key = 0u64;
        for m in &self.shards {
            let log = m.lock();
            logged += log.len();
            for &(k, _, _) in log.iter() {
                max_key = max_key.max(k);
            }
        }
        if logged == 0 {
            return Generation::empty();
        }
        let dense_slots = max_key as usize + 1;
        if (max_key as usize) < u32::MAX as usize
            && dense_slots <= logged.saturating_mul(DENSE_MAX_WASTE)
        {
            self.seal_dense_scatter(dense_slots, logged, threads)
        } else {
            // distinct ≤ logged, so dense_slots > distinct × waste too:
            // the layout rule can only choose Open here.
            self.seal_open_sorted(logged)
        }
    }

    /// Dense-path seal: scatter the logs into the direct-index array,
    /// resolving duplicates via the `machines` precedence array (the
    /// incremental `machine <= holder` replacement rule, replayed in
    /// log order). Stripes partition the key space, so whole stripes
    /// can scatter in parallel: a slot is only ever touched by the
    /// worker owning its key's stripe. Falls back to the open table
    /// when the resolved occupancy turns out sparse.
    fn seal_dense_scatter(
        &self,
        dense_slots: usize,
        logged: usize,
        threads: usize,
    ) -> Generation<V> {
        use std::sync::atomic::{AtomicU64, Ordering};
        let words = dense_slots.div_ceil(64);
        let mut slots: Vec<Option<V>> = vec![None; dense_slots];
        let mut machines: Vec<u32> = vec![0; dense_slots];
        let workers = threads.min(self.shards.len()).max(1);
        let mut len = 0usize;
        let occupied: Vec<u64> = if workers > 1 && logged >= PARALLEL_SEAL_MIN {
            let occupied: Vec<AtomicU64> = (0..words).map(|_| AtomicU64::new(0)).collect();
            struct RawParts<V> {
                slots: *mut Option<V>,
                machines: *mut u32,
            }
            // SAFETY: `RawParts` is shared across scoped workers, but a
            // key lives in exactly one stripe (`shard_of` is a pure
            // function of the key) and each stripe is drained by
            // exactly one worker, so any slot/machine index is accessed
            // by at most one thread. The bitmap is atomic because
            // distinct keys sharing a 64-bit word may live in
            // different stripes.
            unsafe impl<V> Sync for RawParts<V> {}
            let parts = RawParts {
                slots: slots.as_mut_ptr(),
                machines: machines.as_mut_ptr(),
            };
            let nstripes = self.shards.len();
            let shards = &self.shards;
            let strict = self.strict;
            let parts = &parts;
            let occ = &occupied;
            len = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        scope.spawn(move || {
                            // Worker w owns stripes w, w+W, w+2W, …; the
                            // locks are uncontended (writers are done).
                            let mut inserted = 0usize;
                            let mut i = w;
                            while i < nstripes {
                                for (k, mach, v) in shards[i].lock().drain(..) {
                                    let s = k as usize;
                                    let bit = 1u64 << (s % 64);
                                    let word = &occ[s / 64];
                                    // SAFETY: slot `s` belongs to stripe
                                    // `i`, owned by this worker alone
                                    // (see RawParts above); the atomic
                                    // bit is read after this worker's
                                    // own fetch_or, so same-thread
                                    // ordering suffices.
                                    unsafe {
                                        let slot = &mut *parts.slots.add(s);
                                        let owner = &mut *parts.machines.add(s);
                                        if word.load(Ordering::Relaxed) & bit == 0 {
                                            word.fetch_or(bit, Ordering::Relaxed);
                                            *slot = Some(v);
                                            *owner = mach;
                                            inserted += 1;
                                        } else {
                                            if strict && *owner != mach {
                                                let prev = *owner;
                                                debug_assert!(
                                                    slot.as_ref() == Some(&v),
                                                    "conflicting cross-machine writes for key {k} \
                                                     (machines {prev} and {mach}): the §3 \
                                                     determinism contract forbids \
                                                     schedule-dependent values"
                                                );
                                            }
                                            if mach <= *owner {
                                                *owner = mach;
                                                *slot = Some(v);
                                            }
                                        }
                                    }
                                }
                                i += workers;
                            }
                            inserted
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("seal worker panicked"))
                    .sum()
            });
            occupied.into_iter().map(AtomicU64::into_inner).collect()
        } else {
            let mut occupied = vec![0u64; words];
            for m in &self.shards {
                for (k, mach, v) in m.lock().drain(..) {
                    let s = k as usize;
                    let bit = 1u64 << (s % 64);
                    if occupied[s / 64] & bit == 0 {
                        occupied[s / 64] |= bit;
                        slots[s] = Some(v);
                        machines[s] = mach;
                        len += 1;
                    } else {
                        if self.strict && machines[s] != mach {
                            let prev = machines[s];
                            debug_assert!(
                                slots[s].as_ref() == Some(&v),
                                "conflicting cross-machine writes for key {k} \
                                 (machines {prev} and {mach}): the §3 determinism \
                                 contract forbids schedule-dependent values"
                            );
                        }
                        if mach <= machines[s] {
                            machines[s] = mach;
                            slots[s] = Some(v);
                        }
                    }
                }
            }
            occupied
        };
        drop(machines);
        if dense_slots <= len.saturating_mul(DENSE_MAX_WASTE) {
            let mut size_bytes = 0usize;
            for (w, &bits) in occupied.iter().enumerate() {
                for k in (BitIter {
                    bits,
                    base: w as u64 * 64,
                }) {
                    size_bytes += 8 + slots[k as usize]
                        .as_ref()
                        .expect("bitmap/slot agree")
                        .size_bytes();
                }
            }
            Generation {
                repr: Repr::Dense(DenseSubstrate { slots, occupied }),
                len,
                size_bytes,
            }
        } else {
            // Duplicate-heavy log: the resolved key set is sparse after
            // all. The bitmap walks keys in ascending order, which is
            // exactly the canonical open-table insertion order.
            let mut pairs: Vec<(u64, V)> = Vec::with_capacity(len);
            for (w, &bits) in occupied.iter().enumerate() {
                for k in (BitIter {
                    bits,
                    base: w as u64 * 64,
                }) {
                    pairs.push((k, slots[k as usize].take().expect("bitmap/slot agree")));
                }
            }
            Self::build_open(pairs)
        }
    }

    /// Sparse-path seal: resolve each stripe's log with a stable
    /// `(key, machine)` sort (same-machine entries keep their append
    /// order, so the last entry of the lowest-machine run is the
    /// deterministic winner), then build the canonical open table.
    fn seal_open_sorted(&self, logged: usize) -> Generation<V> {
        let mut pairs: Vec<(u64, V)> = Vec::with_capacity(logged);
        for m in &self.shards {
            let mut log = m.lock();
            log.sort_by_key(|&(k, mach, _)| (k, mach));
            let mut cur: Option<LogEntry<V>> = None;
            for (k, mach, v) in log.drain(..) {
                match &mut cur {
                    Some((ck, cm, cv)) if *ck == k => {
                        if self.strict && mach != *cm {
                            debug_assert!(
                                *cv == v,
                                "conflicting cross-machine writes for key {k} \
                                 (machines {cm} and {mach}): the §3 determinism \
                                 contract forbids schedule-dependent values"
                            );
                        }
                        if mach == *cm {
                            *cv = v;
                        }
                    }
                    _ => {
                        if let Some((ck, _, cv)) = cur.take() {
                            pairs.push((ck, cv));
                        }
                        cur = Some((k, mach, v));
                    }
                }
            }
            if let Some((ck, _, cv)) = cur.take() {
                pairs.push((ck, cv));
            }
        }
        // Stripes interleave the key space; the canonical layout wants
        // one global ascending order.
        pairs.sort_unstable_by_key(|&(k, _)| k);
        Self::build_open(pairs)
    }

    /// Builds the canonical open-addressed layout from resolved pairs
    /// in ascending key order (the substrate's canonical seal input:
    /// capacity keeps load ≤ 50%, insertion order makes the probe
    /// layout a pure function of the key set).
    fn build_open(pairs: Vec<(u64, V)>) -> Generation<V> {
        let len = pairs.len();
        let size_bytes = pairs.iter().map(|(_, v)| 8 + v.size_bytes()).sum();
        Generation {
            repr: Repr::Open(OpenSubstrate::seal_pairs(pairs)),
            len,
            size_bytes,
        }
    }

    /// Seals into the pre-flat shard-of-hashmaps layout. Kept so the
    /// perf suite can A/B the layouts on identical workloads and the
    /// regression tests can pin read-path equivalence; kernels should
    /// let [`Self::seal`] pick.
    pub fn seal_sharded(self) -> Generation<V> {
        self.seal_sharded_drain()
    }

    /// Sharded seal body: replays each stripe's log through the
    /// incremental pre-flat resolution rule (stripe index ≡ shard
    /// index: both are `mix64(key) % n`).
    fn seal_sharded_drain(&self) -> Generation<V> {
        let mut len = 0usize;
        let mut size_bytes = 0usize;
        let shards: Vec<FxHashMap<u64, V>> = self
            .shards
            .iter()
            .map(|m| {
                let mut log = m.lock();
                let mut resolved: FxHashMap<u64, (u32, V)> = FxHashMap::default();
                resolved.reserve(log.len());
                for (k, mach, v) in log.drain(..) {
                    match resolved.entry(k) {
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert((mach, v));
                        }
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            let (prev_machine, prev_value) = e.get();
                            if self.strict && *prev_machine != mach {
                                debug_assert!(
                                    *prev_value == v,
                                    "conflicting cross-machine writes for key {k} \
                                     (machines {prev_machine} and {mach}): the §3 \
                                     determinism contract forbids schedule-dependent values"
                                );
                            }
                            if mach <= *prev_machine {
                                e.insert((mach, v));
                            }
                        }
                    }
                }
                let shard: FxHashMap<u64, V> =
                    resolved.into_iter().map(|(k, (_, v))| (k, v)).collect();
                len += shard.len();
                size_bytes += shard.values().map(|v| 8 + v.size_bytes()).sum::<usize>();
                shard
            })
            .collect();
        Generation {
            repr: Repr::Sharded(ShardedSubstrate { shards }),
            len,
            size_bytes,
        }
    }
}

impl<V: Measured + Clone + PartialEq + Send + Wire> Default for GenerationWriter<V> {
    fn default() -> Self {
        Self::new()
    }
}

/// Sealed storage: one of the four substrates behind the
/// [`Substrate`] narrow waist. The enum (rather than a boxed trait
/// object) keeps every in-memory read statically dispatched — the trait
/// is the contract, the `match` is the (zero-cost) vtable.
enum Repr<V> {
    /// Direct-index array over a dense key domain.
    Dense(DenseSubstrate<V>),
    /// Single open-addressed table.
    Open(OpenSubstrate<V>),
    /// Pre-flat shard-of-hashmaps baseline.
    Sharded(ShardedSubstrate<V>),
    /// Values in shard-server processes, key index local.
    Socket(SocketSubstrate<V>),
}

/// Statically dispatches a [`Substrate`] method over the concrete
/// substrate held by a generation.
macro_rules! with_substrate {
    ($gen:expr, $s:ident => $body:expr) => {
        match &$gen.repr {
            Repr::Dense($s) => $body,
            Repr::Open($s) => $body,
            Repr::Sharded($s) => $body,
            Repr::Socket($s) => $body,
        }
    };
}

/// An immutable, sealed generation: reads need no locks.
pub struct Generation<V> {
    repr: Repr<V>,
    /// Entry count, computed once at seal.
    len: usize,
    /// Total serialized bytes, computed once at seal.
    size_bytes: usize,
}

impl<V> Generation<V> {
    /// An empty generation.
    pub fn empty() -> Self {
        Generation {
            repr: Repr::Dense(DenseSubstrate {
                slots: Vec::new(),
                occupied: Vec::new(),
            }),
            len: 0,
            size_bytes: 0,
        }
    }

    /// Number of key-value pairs stored (cached at seal time).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no pairs are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total serialized size of all pairs (cached at seal time — the
    /// per-round report path reads this in O(1)). Substrate-independent
    /// by construction: the socket offload copies the flat seal's
    /// figure, so simulated accounting never depends on `AMPC_STORE`.
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.size_bytes
    }
}

impl<V: Measured + Clone + Wire> Generation<V> {
    /// Looks a key up. Returns a reference into the sealed store.
    ///
    /// Dense layout: one bounds check, no hash. Open layout: one
    /// [`mix64`] and a linear probe. Sharded (baseline) layout: the
    /// historical double hash. Socket substrate: index lookup locally,
    /// one wire fetch on first touch of a present key (memoized after).
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        with_substrate!(self, s => s.get(key))
    }

    /// Looks up a batch of keys, appending one `Option<&V>` per key to
    /// `out` (which is cleared first). The allocation-free counterpart
    /// of collecting [`Self::get`] results — lockstep kernels reuse one
    /// buffer across hops instead of allocating a fresh `Vec` per batch.
    /// In-memory substrates software-pipeline the lookups (slot `i + 16`
    /// prefetched while slot `i` is read); the socket substrate fetches
    /// the batch in one wire request per shard.
    pub fn get_many_into<'a>(&'a self, keys: &[u64], out: &mut Vec<Option<&'a V>>) {
        out.clear();
        out.reserve(keys.len());
        with_substrate!(self, s => s.get_batch_with(keys, &mut |_, v| out.push(v)));
    }

    /// Batched lookup fast path for fixed-size `Copy` values: copies
    /// each value into `out` (cleared first) instead of collecting
    /// references, so the caller can reuse one flat scratch buffer
    /// across hops with no borrow tying it to the generation. Same
    /// batched pipeline as [`Self::get_many_into`].
    ///
    /// # Panics
    /// When a key is absent — callers use this for keys they wrote
    /// themselves (the workspace invariant for chase/label tables).
    pub fn get_many_copied_into(&self, keys: &[u64], out: &mut Vec<V>)
    where
        V: Copy,
    {
        out.clear();
        out.reserve(keys.len());
        with_substrate!(self, s => s.get_batch_with(keys, &mut |_, v| {
            out.push(*v.expect("get_many_copied_into: key absent"));
        }));
    }

    /// Visitor form of the batched lookup: `f` is called once per key,
    /// in key order, with the index and the result — no output buffer
    /// at all. This is [`Substrate::get_batch_with`], the narrow waist
    /// every batched read funnels through.
    pub fn get_many_with<'a>(&'a self, keys: &[u64], mut f: impl FnMut(usize, Option<&'a V>)) {
        with_substrate!(self, s => s.get_batch_with(keys, &mut f));
    }

    /// Which physical layout this generation sealed into. A
    /// socket-backed generation reports the layout of its local key
    /// index (the flat layout it mirrors); see [`Self::backend`].
    pub fn repr_kind(&self) -> ReprKind {
        with_substrate!(self, s => s.kind())
    }

    /// Where this generation's values physically live: in this
    /// process's memory, or in shard-server processes behind the
    /// socket substrate (DESIGN.md §12).
    pub fn backend(&self) -> StoreBackend {
        with_substrate!(self, s => s.backend())
    }

    /// The physical slot layout, for determinism tests: the key stored
    /// at every slot index in slot order (`u64::MAX` marks an empty
    /// slot), prefixed by the layout kind. Two generations with equal
    /// fingerprints and equal [`Self::iter`] contents are byte-identical
    /// in memory layout. Sharded generations report per-shard key sets
    /// in sorted order (their in-shard layout is not canonical); a
    /// socket generation's fingerprint equals the flat layout's by
    /// construction (the key index *is* the flat slot structure).
    pub fn layout_fingerprint(&self) -> (ReprKind, Vec<u64>) {
        (
            self.repr_kind(),
            with_substrate!(self, s => s.fingerprint_slots()),
        )
    }

    /// Iterates all pairs. Dense generations iterate in ascending key
    /// order (driven by the occupancy bitmap); other layouts iterate in
    /// slot/shard order. Socket generations fetch any not-yet-memoized
    /// values first (in bounded per-shard batches), then iterate
    /// locally in the same order as the flat layout they mirror.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> + '_ {
        with_substrate!(self, s => s.iter_pairs())
    }

    /// Moves a flat-sealed generation's values to the socket shard
    /// servers, keeping the key index (and the cached `len`/
    /// `size_bytes`) local. Sharded and empty generations pass through
    /// untouched — an empty generation has nothing to serve, so it
    /// never costs wire traffic.
    fn offload_to_socket(self) -> Generation<V> {
        let Generation {
            repr,
            len,
            size_bytes,
        } = self;
        if len == 0 {
            return Generation {
                repr,
                len,
                size_bytes,
            };
        }
        let repr = match repr {
            Repr::Dense(d) => Repr::Socket(SocketSubstrate::offload_dense(d.slots, d.occupied)),
            Repr::Open(o) => Repr::Socket(SocketSubstrate::offload_open(o.slots, o.mask)),
            other => other,
        };
        Generation {
            repr,
            len,
            size_bytes,
        }
    }
}

/// Builds a generation directly from an iterator (single-threaded load
/// path for `D0`).
impl<V: Measured + Clone + PartialEq + Send + Wire> FromIterator<(u64, V)> for Generation<V> {
    fn from_iter<I: IntoIterator<Item = (u64, V)>>(items: I) -> Self {
        let w = GenerationWriter::with_shards(DEFAULT_SHARDS);
        for (k, v) in items {
            w.put(k, v);
        }
        w.seal()
    }
}

/// The collection `D0, D1, D2, …` of hash-table generations.
pub struct Dht<V> {
    generations: Vec<Generation<V>>,
}

impl<V: Measured + Clone> Dht<V> {
    /// A DHT whose `D0` holds the given input data.
    pub fn with_input(d0: Generation<V>) -> Self {
        Dht {
            generations: vec![d0],
        }
    }

    /// A DHT with an empty `D0`.
    pub fn new() -> Self {
        Self::with_input(Generation::empty())
    }

    /// Index of the newest sealed generation.
    pub fn current_index(&self) -> usize {
        self.generations.len() - 1
    }

    /// The newest sealed generation (what the next round reads).
    pub fn current(&self) -> &Generation<V> {
        self.generations.last().unwrap()
    }

    /// A specific sealed generation.
    pub fn generation(&self, i: usize) -> &Generation<V> {
        &self.generations[i]
    }

    /// Seals `next` as the newest generation (the round boundary).
    pub fn push(&mut self, next: Generation<V>) {
        self.generations.push(next);
    }

    /// Number of sealed generations (including `D0`).
    pub fn num_generations(&self) -> usize {
        self.generations.len()
    }

    /// Size in bytes of the largest generation sealed so far (each
    /// generation's size is cached at seal, so this is O(generations)).
    pub fn peak_generation_bytes(&self) -> usize {
        self.generations
            .iter()
            .map(Generation::size_bytes)
            .max()
            .unwrap_or(0)
    }
}

impl<V: Measured + Clone> Default for Dht<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_seal_roundtrip() {
        let w: GenerationWriter<u64> = GenerationWriter::new();
        for k in 0..500u64 {
            w.put(k, k * 3);
        }
        let g = w.seal();
        assert_eq!(g.len(), 500);
        for k in 0..500u64 {
            assert_eq!(g.get(k), Some(&(k * 3)));
        }
        assert_eq!(g.get(999), None);
    }

    #[test]
    fn put_returns_pair_size() {
        let w: GenerationWriter<Vec<u32>> = GenerationWriter::new();
        let sz = w.put(1, vec![1, 2, 3]);
        assert_eq!(sz, 8 + 8 + 12);
    }

    #[test]
    fn concurrent_writes() {
        let w: GenerationWriter<u64> = GenerationWriter::new();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let w = &w;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        w.put(t * 1000 + i, i);
                    }
                });
            }
        });
        let g = w.seal();
        assert_eq!(g.len(), 8000);
    }

    #[test]
    fn dht_generations_advance() {
        let mut dht: Dht<u32> = Dht::new();
        assert_eq!(dht.current_index(), 0);
        let w = GenerationWriter::new();
        w.put(7, 7u32);
        dht.push(w.seal());
        assert_eq!(dht.current_index(), 1);
        assert_eq!(dht.current().get(7), Some(&7));
        assert_eq!(dht.generation(0).get(7), None);
    }

    #[test]
    fn generation_iter_and_size() {
        let g = Generation::from_iter((0..10u64).map(|k| (k, k as u32)));
        assert_eq!(g.iter().count(), 10);
        assert_eq!(g.size_bytes(), 10 * 12);
        assert!(!g.is_empty());
        assert!(Generation::<u32>::empty().is_empty());
    }

    #[test]
    fn same_machine_last_write_wins() {
        let w: GenerationWriter<u32> = GenerationWriter::new();
        w.put(5, 1);
        w.put(5, 2);
        let g = w.seal();
        assert_eq!(g.get(5), Some(&2));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn lowest_machine_id_wins_regardless_of_order() {
        // Conflicting values (relaxed mode): the winner is the machine
        // with the lowest id, in every arrival order.
        for order in [[3u32, 1, 2], [1, 2, 3], [2, 3, 1]] {
            let w: GenerationWriter<u32> = GenerationWriter::new().relaxed();
            for m in order {
                w.put_from(m, 9, 100 + m);
            }
            let g = w.seal();
            assert_eq!(g.get(9), Some(&101), "order {order:?}");
        }
    }

    #[test]
    fn duplicate_equal_values_are_not_conflicts() {
        let w: GenerationWriter<u64> = GenerationWriter::new();
        w.put_from(2, 7, 42);
        w.put_from(0, 7, 42); // strict mode: equal values, no panic
        assert_eq!(w.seal().get(7), Some(&42));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "conflicting cross-machine writes")]
    fn strict_mode_rejects_conflicting_values() {
        let w: GenerationWriter<u64> = GenerationWriter::new();
        w.put_from(0, 7, 1);
        w.put_from(1, 7, 2);
        // Writes append; the conflict is detected when resolution runs.
        let _ = w.seal();
    }

    /// Arena-recycled writers must seal identically to fresh ones, and
    /// the drained stripe buffers must actually come back.
    #[test]
    fn arena_recycles_stripe_buffers() {
        let arena: StripeArena<u64> = StripeArena::new();
        let fresh = {
            let w = GenerationWriter::new();
            for k in 0..300u64 {
                w.put(k, k * 7);
            }
            w.seal()
        };
        for epoch in 0..3 {
            let w = GenerationWriter::with_arena(&arena);
            for k in 0..300u64 {
                w.put(k, k * 7);
            }
            let g = w.seal_recycle(&arena);
            assert_eq!(g.layout_fingerprint(), fresh.layout_fingerprint());
            assert_eq!(g.len(), fresh.len());
            assert_eq!(g.size_bytes(), fresh.size_bytes());
            assert_eq!(arena.parked(), DEFAULT_SHARDS, "epoch {epoch}");
        }
    }

    /// Dense 0..n keys must select the direct-index layout; sparse u64
    /// keys must fall back to the single open-addressed table.
    #[test]
    fn layout_selection_rule() {
        let dense = Generation::from_iter((0..1000u64).map(|k| (k, k)));
        assert_eq!(dense.repr_kind(), ReprKind::Dense);
        // Half-occupied 0..2n domain still qualifies as dense.
        let gappy = Generation::from_iter((0..1000u64).map(|k| (2 * k, k)));
        assert_eq!(gappy.repr_kind(), ReprKind::Dense);
        // Sparse: keys spread over the whole u64 space.
        let sparse =
            Generation::from_iter((0..1000u64).map(|k| (k.wrapping_mul(0x9E37_79B9_7F4A_7C15), k)));
        assert_eq!(sparse.repr_kind(), ReprKind::Open);
        for k in 0..1000u64 {
            assert_eq!(sparse.get(k.wrapping_mul(0x9E37_79B9_7F4A_7C15)), Some(&k));
            assert_eq!(gappy.get(2 * k), Some(&k));
            assert_eq!(gappy.get(2 * k + 1), None);
        }
        assert_eq!(sparse.get(12345), None);
    }

    /// The in-memory layouts must agree on every lookup: dense, sparse
    /// and shard-colliding adversarial key sets, hits and misses alike.
    #[test]
    fn flat_layouts_match_sharded_baseline() {
        // Keys that all land in mix64 bucket 0 of the 64 writer stripes
        // (the adversarial case for the old sharded layout: one shard
        // holds everything) — and stress one probe neighborhood of the
        // open table.
        let colliding: Vec<u64> = (0..200_000u64)
            .filter(|&k| mix64(k).is_multiple_of(64))
            .take(500)
            .collect();
        let sparse: Vec<u64> = (0..500u64)
            .map(|k| k.wrapping_mul(0xDEAD_BEEF_1234_5679) | 1 << 63)
            .collect();
        let dense: Vec<u64> = (0..500u64).collect();
        for keys in [colliding, sparse, dense] {
            let flat: Generation<u64> = {
                let w = GenerationWriter::new();
                for &k in &keys {
                    w.put(k, mix64(k));
                }
                w.seal_with_threads(1)
            };
            let sharded: Generation<u64> = {
                let w = GenerationWriter::new();
                for &k in &keys {
                    w.put(k, mix64(k));
                }
                w.seal_sharded()
            };
            assert_eq!(sharded.repr_kind(), ReprKind::Sharded);
            assert_eq!(flat.len(), sharded.len());
            assert_eq!(flat.size_bytes(), sharded.size_bytes());
            for &k in &keys {
                assert_eq!(flat.get(k), sharded.get(k), "key {k}");
                // Probing for absent neighbors must agree too.
                for probe in [k ^ 1, k.wrapping_add(64), !k] {
                    assert_eq!(flat.get(probe), sharded.get(probe), "probe {probe}");
                }
            }
            let mut a: Vec<(u64, u64)> = flat.iter().map(|(k, v)| (k, *v)).collect();
            let mut b: Vec<(u64, u64)> = sharded.iter().map(|(k, v)| (k, *v)).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    /// A socket-mode seal must be observationally identical to the flat
    /// seal it offloaded: same layout fingerprint, same lookups, same
    /// iteration, same cached `len`/`size_bytes` — with the values
    /// demonstrably living behind the wire.
    #[test]
    fn socket_mode_seal_matches_flat() {
        let build = || {
            let w: GenerationWriter<u64> = GenerationWriter::new();
            for k in 0..400u64 {
                w.put(k, mix64(k));
            }
            w
        };
        let flat = build().seal_with_threads(1);
        force_store(Some(StoreKind::Socket));
        let socket = build().seal();
        force_store(None);
        assert_eq!(socket.backend(), StoreBackend::Socket);
        assert_eq!(flat.backend(), StoreBackend::InMemory);
        assert_eq!(socket.layout_fingerprint(), flat.layout_fingerprint());
        assert_eq!(socket.len(), flat.len());
        assert_eq!(socket.size_bytes(), flat.size_bytes());
        for k in 0..500u64 {
            assert_eq!(socket.get(k), flat.get(k), "key {k}");
        }
        let a: Vec<(u64, u64)> = socket.iter().map(|(k, v)| (k, *v)).collect();
        let b: Vec<(u64, u64)> = flat.iter().map(|(k, v)| (k, *v)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn store_kind_parse_round_trips() {
        for kind in [StoreKind::Flat, StoreKind::Sharded, StoreKind::Socket] {
            assert_eq!(StoreKind::parse(kind.as_str()), Some(kind));
            assert_eq!(
                StoreKind::parse(&kind.as_str().to_ascii_uppercase()),
                Some(kind)
            );
        }
        assert_eq!(StoreKind::parse("tcp"), None);
        assert_eq!(StoreKind::parse(""), None);
    }

    #[test]
    fn get_many_into_reuses_buffer() {
        let g = Generation::from_iter((0..50u64).map(|k| (k, k * 2)));
        let mut buf = Vec::new();
        g.get_many_into(&[1, 2, 99], &mut buf);
        assert_eq!(buf, vec![Some(&2), Some(&4), None]);
        g.get_many_into(&[3], &mut buf);
        assert_eq!(buf, vec![Some(&6)]);
    }

    #[test]
    fn cached_len_and_size_match_recomputation() {
        let g = Generation::from_iter((0..77u64).map(|k| (k, vec![k as u32, 1, 2])));
        assert_eq!(g.len(), 77);
        let recomputed: usize = g.iter().map(|(_, v)| 8 + v.size_bytes()).sum();
        assert_eq!(g.size_bytes(), recomputed);
    }

    #[test]
    fn dense_iter_is_key_ordered() {
        let g = Generation::from_iter([(4u64, 40u64), (0, 0), (129, 1290), (64, 640)]);
        // 4 keys with max 129: 130 slots > 2*4, so this is Open — make a
        // genuinely dense one instead.
        assert_eq!(g.repr_kind(), ReprKind::Open);
        let g = Generation::from_iter((0..130u64).map(|k| (k, k * 10)));
        assert_eq!(g.repr_kind(), ReprKind::Dense);
        let keys: Vec<u64> = g.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    /// The §3 stress test: many machines racing duplicate keys under two
    /// very different thread schedules must seal **byte-identical flat
    /// generations** — same physical slot layout, same values — and the
    /// layout must also be independent of the seal's worker count
    /// (`AMPC_THREADS` 1 vs 8).
    #[test]
    fn schedules_seal_identical_generations() {
        fn run(reverse: bool, seal_threads: usize) -> Generation<u64> {
            let w: GenerationWriter<u64> = GenerationWriter::new();
            std::thread::scope(|s| {
                let machines: Vec<u32> = if reverse {
                    (0..8u32).rev().collect()
                } else {
                    (0..8u32).collect()
                };
                for m in machines {
                    let w = &w;
                    s.spawn(move || {
                        if reverse {
                            // Skew the schedule: late spawns run first.
                            std::thread::yield_now();
                        }
                        for i in 0..200u64 {
                            // Private keys, plus shared keys every machine
                            // writes with the machine-independent value
                            // (the StatusWrite pattern).
                            w.put_from(m, m as u64 * 1000 + i, i * 3);
                            w.put_from(m, 100_000 + i, i);
                        }
                    });
                }
            });
            w.seal_with_threads(seal_threads)
        }
        let a = run(false, 1);
        let pairs =
            |g: &Generation<u64>| -> Vec<(u64, u64)> { g.iter().map(|(k, v)| (k, *v)).collect() };
        assert_eq!(a.len(), 8 * 200 + 200);
        for (reverse, threads) in [(true, 1), (false, 8), (true, 8)] {
            let b = run(reverse, threads);
            assert_eq!(
                a.layout_fingerprint(),
                b.layout_fingerprint(),
                "layout differs (reverse={reverse}, threads={threads})"
            );
            // Identical layout + identical iteration contents ⇒ the
            // sealed representations are byte-identical.
            assert_eq!(
                pairs(&a),
                pairs(&b),
                "(reverse={reverse}, threads={threads})"
            );
        }
    }

    /// The parallel seal path (many entries, many workers) must produce
    /// the same canonical layout as the sequential seal.
    #[test]
    fn parallel_seal_is_canonical_above_threshold() {
        let build = || {
            let w: GenerationWriter<u64> = GenerationWriter::new();
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    let w = &w;
                    s.spawn(move || {
                        for i in 0..(PARALLEL_SEAL_MIN as u64 / 2) {
                            w.put(t * (PARALLEL_SEAL_MIN as u64) + i, i);
                        }
                    });
                }
            });
            w
        };
        let seq = build().seal_with_threads(1);
        let par = build().seal_with_threads(8);
        assert_eq!(seq.layout_fingerprint(), par.layout_fingerprint());
        assert_eq!(seq.len(), par.len());
        assert_eq!(seq.size_bytes(), par.size_bytes());
    }
}
