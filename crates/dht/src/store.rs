//! The generational key-value store.
//!
//! The model (§2): *"At the start of the computation, the input data is
//! stored in D0 … In the i-th round, each machine can read data from
//! D_{i−1} and write to D_i."* A [`Dht`] is the sequence `D0, D1, …`;
//! each generation is written concurrently through a lock-striped
//! [`GenerationWriter`], then **sealed** into an immutable [`Generation`]
//! that later rounds read lock-free. Past generations are never mutated
//! — which is exactly why a preempted machine can replay its round
//! against the same inputs (the fault-tolerance property of §2).
//!
//! # Sealed layout (DESIGN.md §5.4)
//!
//! Sealing **flattens** the lock-striped writer into one of two
//! single-level layouts, chosen from the key set alone (so the choice is
//! deterministic):
//!
//! * [`ReprKind::Dense`] — a direct-index array with an occupancy
//!   bitmap, used when the keys are a dense `0..n` domain (the common
//!   case: every kernel keys the DHT by vertex id). `get` is one bounds
//!   check and one slot read — **zero** hashes.
//! * [`ReprKind::Open`] — one open-addressed, linearly-probed table for
//!   everything else. `get` hashes **once** ([`mix64`]) and probes
//!   flat memory; there is no per-shard indirection and no second hash
//!   (the pre-flat layout hashed twice: `mix64` to pick a shard, then
//!   the shard's `FxHashMap` hashed again).
//!
//! The pre-flat shard-of-hashmaps layout is retained as
//! [`ReprKind::Sharded`] behind the `AMPC_STORE=sharded` knob so the
//! perf suite can measure old-vs-new on identical workloads and the
//! regression tests can pin `get`/`get_many` equivalence. All three
//! layouts are observationally identical: same values, same
//! `len`/`size_bytes`, same communication accounting.
//!
//! Both flat layouts are **canonical**: the physical slot assignment is
//! a pure function of the sealed key-value set, never of thread
//! schedule or seal parallelism (dense assigns slot `k` to key `k`;
//! open inserts in ascending key order). `len()` and `size_bytes()` are
//! computed once at seal time and cached, so the per-round report path
//! reads them in O(1) instead of re-walking every entry.

use crate::hasher::{mix64, FxHashMap};
use crate::measured::Measured;
use parking_lot::Mutex;

/// Number of lock stripes in a writer. Plenty for the machine counts the
/// simulator runs (≤ a few hundred).
const DEFAULT_SHARDS: usize = 64;

/// Sealing drains and resolves the writer's stripes in parallel once a
/// generation holds at least this many entries; below it, one thread
/// finishes faster than workers can be handed their stripes.
const PARALLEL_SEAL_MIN: usize = 1 << 16;

/// A dense direct-index layout is chosen when the largest key indexes an
/// array at most `DENSE_MAX_WASTE` times larger than the entry count
/// (≥ 50% occupancy) — the `0..n` vertex-id domain every kernel uses
/// gives 100%.
const DENSE_MAX_WASTE: usize = 2;

/// The `AMPC_THREADS` environment knob (cached after the first read):
/// the worker count used by parallel seals here and by the runtime's
/// persistent executor pool. The read itself lives in the
/// [`ampc_knobs`] registry; this re-export keeps the historical entry
/// point callers already use.
pub use ampc_knobs::ampc_threads;

/// Sealed-layout mode: resolved once from `AMPC_STORE`, overridable at
/// runtime by [`force_store_layout`] (an atomic, so the hot write path
/// never touches the process environment lock).
const MODE_ENV: u8 = 0;
const MODE_FLAT: u8 = 1;
const MODE_SHARDED: u8 = 2;
static STORE_MODE: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(MODE_ENV);

/// True when the pre-flat sharded sealed layout is in force
/// (`AMPC_STORE=sharded`, or a [`force_store_layout`] override).
fn sharded_store_requested() -> bool {
    use std::sync::atomic::Ordering;
    match STORE_MODE.load(Ordering::Relaxed) {
        MODE_FLAT => false,
        MODE_SHARDED => true,
        _ => {
            let sharded = ampc_knobs::ampc_store_sharded();
            let mode = if sharded { MODE_SHARDED } else { MODE_FLAT };
            STORE_MODE.store(mode, Ordering::Relaxed);
            sharded
        }
    }
}

/// Overrides the sealed-layout choice at runtime, as `AMPC_STORE`
/// would, without mutating the process environment: `Some(true)` forces
/// the pre-flat sharded baseline, `Some(false)` the flat layout, and
/// `None` re-reads `AMPC_STORE` on next use. Process-global — intended
/// for the perf suite's A/B runs, not for concurrent use under live
/// jobs (the layouts are observationally equivalent, so a racing seal
/// merely picks either layout).
pub fn force_store_layout(sharded: Option<bool>) {
    let mode = match sharded {
        Some(true) => MODE_SHARDED,
        Some(false) => MODE_FLAT,
        None => MODE_ENV,
    };
    STORE_MODE.store(mode, std::sync::atomic::Ordering::Relaxed);
}

/// A write-only, lock-striped generation under construction.
///
/// Duplicate keys are resolved **deterministically**: every write
/// carries the id of the machine that issued it (threaded through
/// [`crate::MachineHandle::put`]) and the entry from the *lowest*
/// machine id wins, regardless of thread schedule. Writes from the same
/// machine are sequential, so among them the last one wins. This is the
/// §3 determinism contract: a sealed generation is a pure function of
/// *what* was written, never of *when* the OS scheduled the writers —
/// which is also what makes fault replay exact.
pub struct GenerationWriter<V> {
    /// Each entry carries the writing machine's id as its precedence.
    shards: Vec<Mutex<FxHashMap<u64, (u32, V)>>>,
    /// When true (the default), cross-machine writes of *different*
    /// values to the same key trip a `debug_assert` — workspace
    /// algorithms only ever race equal values (e.g. idempotent status
    /// markers), so a conflicting duplicate is a kernel bug.
    strict: bool,
}

impl<V: Measured + Clone + PartialEq + Send> GenerationWriter<V> {
    /// New writer with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// New writer with an explicit shard count (must be ≥ 1).
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards >= 1);
        GenerationWriter {
            shards: (0..shards)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            strict: true,
        }
    }

    /// Disables the conflicting-write `debug_assert`, keeping the
    /// deterministic lowest-machine-id resolution. For tests and
    /// experiments that intentionally race different values.
    pub fn relaxed(mut self) -> Self {
        self.strict = false;
        self
    }

    #[inline]
    fn shard_of(&self, key: u64) -> usize {
        (mix64(key) % self.shards.len() as u64) as usize
    }

    /// Inserts a key-value pair on behalf of machine 0 (the
    /// single-threaded load path). See [`Self::put_from`].
    pub fn put(&self, key: u64, value: V) -> usize {
        self.put_from(0, key, value)
    }

    /// Inserts a key-value pair written by `machine`. On duplicate keys
    /// the entry from the lowest machine id wins (ties: the same
    /// machine overwrites its own earlier write — deterministic because
    /// one machine's writes are sequential). Returns the serialized
    /// size of the pair for the caller's accounting.
    ///
    /// # Panics
    /// In debug builds (unless [`Self::relaxed`]), panics when two
    /// *different* machines write *different* values for one key.
    pub fn put_from(&self, machine: u32, key: u64, value: V) -> usize {
        let bytes = 8 + value.size_bytes();
        let mut shard = self.shards[self.shard_of(key)].lock();
        match shard.entry(key) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert((machine, value));
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let (prev_machine, prev_value) = e.get();
                if self.strict && *prev_machine != machine {
                    debug_assert!(
                        *prev_value == value,
                        "conflicting cross-machine writes for key {key} \
                         (machines {prev_machine} and {machine}): the §3 \
                         determinism contract forbids schedule-dependent values"
                    );
                }
                if machine <= *prev_machine {
                    e.insert((machine, value));
                }
            }
        }
        bytes
    }

    /// Inserts a batch of pairs written by `machine`, locking each
    /// stripe **once** (and reserving its growth up front) instead of
    /// once per key — the write-side counterpart of the flat read path.
    /// Per-pair semantics are exactly [`Self::put_from`]: same
    /// deterministic lowest-machine-id resolution, same conflict
    /// `debug_assert`, and the returned byte total is the sum of the
    /// per-pair sizes. Returns `(pairs_written, total_bytes)`.
    pub fn put_many_from(
        &self,
        machine: u32,
        pairs: impl IntoIterator<Item = (u64, V)>,
    ) -> (u64, usize) {
        if sharded_store_requested() {
            // `AMPC_STORE=sharded` restores the pre-flat storage layer
            // end to end, write path included: one lock per key.
            let mut written = 0u64;
            let mut total_bytes = 0usize;
            for (k, v) in pairs {
                total_bytes += self.put_from(machine, k, v);
                written += 1;
            }
            return (written, total_bytes);
        }
        // Group the batch by stripe *by index*, not by moving payloads:
        // the pairs are materialized once, a counting sort over their
        // stripe ids yields the per-stripe visit order, and each value
        // is then moved exactly once — out of the batch, into its
        // stripe map. (The previous implementation pushed every pair
        // through a fresh `Vec<Vec<_>>` of stripe buckets: one extra
        // move per value plus `shards.len()` vector allocations on
        // every batched write.)
        let mut batch: Vec<Option<(u64, V)>> = pairs.into_iter().map(Some).collect();
        let written = batch.len() as u64;
        let nshards = self.shards.len();
        let mut total_bytes = 0usize;
        let mut stripe_of: Vec<u32> = Vec::with_capacity(batch.len());
        let mut counts: Vec<usize> = vec![0; nshards];
        for slot in &batch {
            let (key, value) = slot.as_ref().expect("just materialized");
            total_bytes += 8 + value.size_bytes();
            let s = self.shard_of(*key);
            stripe_of.push(s as u32);
            counts[s] += 1;
        }
        // Prefix sums → each stripe's index range in `order`.
        let mut starts: Vec<usize> = Vec::with_capacity(nshards + 1);
        let mut acc = 0usize;
        for &c in &counts {
            starts.push(acc);
            acc += c;
        }
        starts.push(acc);
        let mut cursor = starts[..nshards].to_vec();
        let mut order: Vec<u32> = vec![0; batch.len()];
        for (i, &s) in stripe_of.iter().enumerate() {
            order[cursor[s as usize]] = i as u32;
            cursor[s as usize] += 1;
        }
        for s in 0..nshards {
            let range = starts[s]..starts[s + 1];
            if range.is_empty() {
                continue;
            }
            // One lock + one reserve per touched stripe.
            let mut shard = self.shards[s].lock();
            shard.reserve(range.len());
            for &i in &order[range] {
                let (key, value) = batch[i as usize].take().expect("each index drained once");
                match shard.entry(key) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert((machine, value));
                    }
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let (prev_machine, prev_value) = e.get();
                        if self.strict && *prev_machine != machine {
                            debug_assert!(
                                *prev_value == value,
                                "conflicting cross-machine writes for key {key} \
                                 (machines {prev_machine} and {machine}): the §3 \
                                 determinism contract forbids schedule-dependent values"
                            );
                        }
                        if machine <= *prev_machine {
                            e.insert((machine, value));
                        }
                    }
                }
            }
        }
        (written, total_bytes)
    }

    /// Seals the writer into an immutable flat generation (see the
    /// module docs for the layout selection rule), parallelizing across
    /// the writer's stripes with [`ampc_threads`] workers for large
    /// generations. Under `AMPC_STORE=sharded`, seals into the pre-flat
    /// sharded layout instead (the perf-suite baseline).
    pub fn seal(self) -> Generation<V> {
        if sharded_store_requested() {
            self.seal_sharded()
        } else {
            self.seal_with_threads(ampc_threads())
        }
    }

    /// Seals into the flat layout with an explicit worker count
    /// (`threads = 1` seals entirely on the calling thread). The sealed
    /// layout is byte-identical for every `threads` value: the stats
    /// pass over the stripes is parallel, but the physical layout is
    /// canonical (see module docs).
    pub fn seal_with_threads(self, threads: usize) -> Generation<V> {
        // Pass 1 — per-stripe (len, bytes, max_key), parallel across
        // stripes for large generations.
        let (len, size_bytes, max_key) = self.stripe_stats(threads);
        if len == 0 {
            return Generation::empty();
        }

        let dense_slots = max_key as usize + 1;
        let repr = if (max_key as usize) < u32::MAX as usize
            && dense_slots <= len.saturating_mul(DENSE_MAX_WASTE)
        {
            // Pass 2, dense: scatter straight out of the stripe maps
            // into the direct-index array — no intermediate collection,
            // each value moves exactly once. Slot k ⇔ key k, so the
            // layout cannot depend on stripe or drain order.
            let mut slots: Vec<Option<V>> = vec![None; dense_slots];
            let mut occupied = vec![0u64; dense_slots.div_ceil(64)];
            for m in self.shards {
                for (k, (_, v)) in m.into_inner() {
                    occupied[(k / 64) as usize] |= 1u64 << (k % 64);
                    slots[k as usize] = Some(v);
                }
            }
            Repr::Dense { slots, occupied }
        } else {
            // Pass 2, open-addressed fallback: capacity keeps load
            // ≤ 50%, and ascending-key insertion makes the probe layout
            // a pure function of the key set.
            let cap = len.saturating_mul(2).next_power_of_two().max(16);
            let mask = cap as u64 - 1;
            let mut pairs: Vec<(u64, V)> = Vec::with_capacity(len);
            for m in self.shards {
                pairs.extend(m.into_inner().into_iter().map(|(k, (_, v))| (k, v)));
            }
            pairs.sort_unstable_by_key(|&(k, _)| k);
            let mut slots: Vec<Option<(u64, V)>> = vec![None; cap];
            for (k, v) in pairs {
                let mut i = (mix64(k) & mask) as usize;
                while slots[i].is_some() {
                    i = (i + 1) & mask as usize;
                }
                slots[i] = Some((k, v));
            }
            Repr::Open { slots, mask }
        };
        Generation {
            repr,
            len,
            size_bytes,
        }
    }

    /// Seals into the pre-flat shard-of-hashmaps layout. Kept so the
    /// perf suite can A/B the layouts on identical workloads and the
    /// regression tests can pin read-path equivalence; kernels should
    /// let [`Self::seal`] pick.
    pub fn seal_sharded(self) -> Generation<V> {
        let mut len = 0usize;
        let mut size_bytes = 0usize;
        let shards: Vec<FxHashMap<u64, V>> = self
            .shards
            .into_iter()
            .map(|m| {
                let shard: FxHashMap<u64, V> = m
                    .into_inner()
                    .into_iter()
                    .map(|(k, (_, v))| (k, v))
                    .collect();
                len += shard.len();
                size_bytes += shard.values().map(|v| 8 + v.size_bytes()).sum::<usize>();
                shard
            })
            .collect();
        Generation {
            repr: Repr::Sharded { shards },
            len,
            size_bytes,
        }
    }

    /// The seal's stats pass: total entry count, total serialized
    /// bytes, and the largest key — what the layout selection rule and
    /// the seal-time `len`/`size_bytes` caches need. Distributed over
    /// up to `threads` scoped workers when the generation is large
    /// enough to amortize them (the per-stripe figures are
    /// schedule-independent either way: winners were already resolved
    /// at `put_from` time).
    fn stripe_stats(&self, threads: usize) -> (usize, usize, u64) {
        let measure_stripe = |m: &FxHashMap<u64, (u32, V)>| {
            let mut bytes = 0usize;
            let mut max_key = 0u64;
            for (&k, (_, v)) in m {
                bytes += 8 + v.size_bytes();
                max_key = max_key.max(k);
            }
            (m.len(), bytes, max_key)
        };
        let total: usize = self.shards.iter().map(|m| m.lock().len()).sum();
        let workers = threads.min(self.shards.len()).max(1);
        let merged = if workers == 1 || total < PARALLEL_SEAL_MIN {
            self.shards
                .iter()
                .map(|m| measure_stripe(&m.lock()))
                .collect::<Vec<_>>()
        } else {
            let nstripes = self.shards.len();
            let shards = &self.shards;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        scope.spawn(move || {
                            // Worker w owns stripes w, w+W, w+2W, …; the
                            // locks are uncontended (writers are done).
                            let mut out = Vec::new();
                            let mut i = w;
                            while i < nstripes {
                                out.push(measure_stripe(&shards[i].lock()));
                                i += workers;
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("seal worker panicked"))
                    .collect()
            })
        };
        merged
            .into_iter()
            .fold((0, 0, 0), |(l, b, k), (sl, sb, sk)| {
                (l + sl, b + sb, k.max(sk))
            })
    }
}

impl<V: Measured + Clone + PartialEq + Send> Default for GenerationWriter<V> {
    fn default() -> Self {
        Self::new()
    }
}

/// The physical layout a sealed generation chose (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReprKind {
    /// Direct-index array over a dense key domain; zero hashes per read.
    Dense,
    /// Single open-addressed table; one hash per read.
    Open,
    /// Pre-flat shard-of-hashmaps (two hashes per read); the
    /// `AMPC_STORE=sharded` baseline.
    Sharded,
}

/// Sealed storage: one of the three layouts.
enum Repr<V> {
    /// `slots[k]` holds key `k`'s value; `occupied` is the bitmap over
    /// slot indices (word `i`, bit `j` ⇒ slot `64 i + j`), letting
    /// iteration skip empty runs 64 slots at a time.
    Dense {
        slots: Vec<Option<V>>,
        occupied: Vec<u64>,
    },
    /// Open-addressed with linear probing at ≤ 50% load. Capacity is a
    /// power of two; a key probes from `mix64(key) & mask`. Entries were
    /// inserted in ascending key order, making the layout canonical.
    Open {
        slots: Vec<Option<(u64, V)>>,
        mask: u64,
    },
    /// The pre-flat layout: `mix64` picks a shard, the shard's map
    /// hashes again.
    Sharded { shards: Vec<FxHashMap<u64, V>> },
}

/// An immutable, sealed generation: reads need no locks.
pub struct Generation<V> {
    repr: Repr<V>,
    /// Entry count, computed once at seal.
    len: usize,
    /// Total serialized bytes, computed once at seal.
    size_bytes: usize,
}

impl<V: Measured + Clone> Generation<V> {
    /// An empty generation.
    pub fn empty() -> Self {
        Generation {
            repr: Repr::Dense {
                slots: Vec::new(),
                occupied: Vec::new(),
            },
            len: 0,
            size_bytes: 0,
        }
    }

    /// Looks a key up. Returns a reference into the sealed store.
    ///
    /// Dense layout: one bounds check, no hash. Open layout: one
    /// [`mix64`] and a linear probe. Sharded (baseline) layout: the
    /// historical double hash.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        match &self.repr {
            Repr::Dense { slots, .. } => match slots.get(key as usize) {
                Some(slot) => slot.as_ref(),
                None => None,
            },
            Repr::Open { slots, mask } => {
                let mut i = (mix64(key) & mask) as usize;
                loop {
                    match &slots[i] {
                        None => return None,
                        Some((k, v)) if *k == key => return Some(v),
                        Some(_) => i = (i + 1) & *mask as usize,
                    }
                }
            }
            Repr::Sharded { shards } => {
                shards[(mix64(key) % shards.len() as u64) as usize].get(&key)
            }
        }
    }

    /// Looks up a batch of keys, appending one `Option<&V>` per key to
    /// `out` (which is cleared first). The allocation-free counterpart
    /// of collecting [`Self::get`] results — lockstep kernels reuse one
    /// buffer across hops instead of allocating a fresh `Vec` per batch.
    pub fn get_many_into<'a>(&'a self, keys: &[u64], out: &mut Vec<Option<&'a V>>) {
        out.clear();
        out.reserve(keys.len());
        for &k in keys {
            out.push(self.get(k));
        }
    }

    /// Which physical layout this generation sealed into.
    pub fn repr_kind(&self) -> ReprKind {
        match &self.repr {
            Repr::Dense { .. } => ReprKind::Dense,
            Repr::Open { .. } => ReprKind::Open,
            Repr::Sharded { .. } => ReprKind::Sharded,
        }
    }

    /// The physical slot layout, for determinism tests: the key stored
    /// at every slot index in slot order (`u64::MAX` marks an empty
    /// slot), prefixed by the layout kind. Two generations with equal
    /// fingerprints and equal [`Self::iter`] contents are byte-identical
    /// in memory layout. Sharded generations report per-shard key sets
    /// in sorted order (their in-shard layout is not canonical).
    pub fn layout_fingerprint(&self) -> (ReprKind, Vec<u64>) {
        let kind = self.repr_kind();
        let slots = match &self.repr {
            Repr::Dense { slots, .. } => slots
                .iter()
                .enumerate()
                .map(|(k, s)| if s.is_some() { k as u64 } else { u64::MAX })
                .collect(),
            Repr::Open { slots, .. } => slots
                .iter()
                .map(|s| s.as_ref().map_or(u64::MAX, |(k, _)| *k))
                .collect(),
            Repr::Sharded { shards } => {
                let mut out = Vec::with_capacity(self.len + shards.len());
                for shard in shards {
                    let mut keys: Vec<u64> = shard.keys().copied().collect();
                    keys.sort_unstable();
                    out.extend(keys);
                    out.push(u64::MAX); // shard boundary
                }
                out
            }
        };
        (kind, slots)
    }

    /// Number of key-value pairs stored (cached at seal time).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no pairs are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total serialized size of all pairs (cached at seal time — the
    /// per-round report path reads this in O(1)).
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.size_bytes
    }

    /// Iterates all pairs. Dense generations iterate in ascending key
    /// order (driven by the occupancy bitmap); other layouts iterate in
    /// slot/shard order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> + '_ {
        // Three layout-specific iterators unified behind one box; the
        // store is read far more than iterated, so the indirection is
        // irrelevant.
        let it: Box<dyn Iterator<Item = (u64, &V)> + '_> = match &self.repr {
            Repr::Dense { slots, occupied } => Box::new(
                occupied
                    .iter()
                    .enumerate()
                    .flat_map(move |(w, &bits)| BitIter {
                        bits,
                        base: w as u64 * 64,
                    })
                    .map(move |k| (k, slots[k as usize].as_ref().expect("bitmap/slot agree"))),
            ),
            Repr::Open { slots, .. } => Box::new(
                slots
                    .iter()
                    .filter_map(|s| s.as_ref().map(|(k, v)| (*k, v))),
            ),
            Repr::Sharded { shards } => {
                Box::new(shards.iter().flat_map(|s| s.iter().map(|(&k, v)| (k, v))))
            }
        };
        it
    }
}

/// Iterator over the set bits of one bitmap word.
struct BitIter {
    bits: u64,
    base: u64,
}

impl Iterator for BitIter {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        if self.bits == 0 {
            return None;
        }
        let tz = self.bits.trailing_zeros() as u64;
        self.bits &= self.bits - 1;
        Some(self.base + tz)
    }
}

/// Builds a generation directly from an iterator (single-threaded load
/// path for `D0`).
impl<V: Measured + Clone + PartialEq + Send> FromIterator<(u64, V)> for Generation<V> {
    fn from_iter<I: IntoIterator<Item = (u64, V)>>(items: I) -> Self {
        let w = GenerationWriter::with_shards(DEFAULT_SHARDS);
        for (k, v) in items {
            w.put(k, v);
        }
        w.seal()
    }
}

/// The collection `D0, D1, D2, …` of hash-table generations.
pub struct Dht<V> {
    generations: Vec<Generation<V>>,
}

impl<V: Measured + Clone> Dht<V> {
    /// A DHT whose `D0` holds the given input data.
    pub fn with_input(d0: Generation<V>) -> Self {
        Dht {
            generations: vec![d0],
        }
    }

    /// A DHT with an empty `D0`.
    pub fn new() -> Self {
        Self::with_input(Generation::empty())
    }

    /// Index of the newest sealed generation.
    pub fn current_index(&self) -> usize {
        self.generations.len() - 1
    }

    /// The newest sealed generation (what the next round reads).
    pub fn current(&self) -> &Generation<V> {
        self.generations.last().unwrap()
    }

    /// A specific sealed generation.
    pub fn generation(&self, i: usize) -> &Generation<V> {
        &self.generations[i]
    }

    /// Seals `next` as the newest generation (the round boundary).
    pub fn push(&mut self, next: Generation<V>) {
        self.generations.push(next);
    }

    /// Number of sealed generations (including `D0`).
    pub fn num_generations(&self) -> usize {
        self.generations.len()
    }

    /// Size in bytes of the largest generation sealed so far (each
    /// generation's size is cached at seal, so this is O(generations)).
    pub fn peak_generation_bytes(&self) -> usize {
        self.generations
            .iter()
            .map(Generation::size_bytes)
            .max()
            .unwrap_or(0)
    }
}

impl<V: Measured + Clone> Default for Dht<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_seal_roundtrip() {
        let w: GenerationWriter<u64> = GenerationWriter::new();
        for k in 0..500u64 {
            w.put(k, k * 3);
        }
        let g = w.seal();
        assert_eq!(g.len(), 500);
        for k in 0..500u64 {
            assert_eq!(g.get(k), Some(&(k * 3)));
        }
        assert_eq!(g.get(999), None);
    }

    #[test]
    fn put_returns_pair_size() {
        let w: GenerationWriter<Vec<u32>> = GenerationWriter::new();
        let sz = w.put(1, vec![1, 2, 3]);
        assert_eq!(sz, 8 + 8 + 12);
    }

    #[test]
    fn concurrent_writes() {
        let w: GenerationWriter<u64> = GenerationWriter::new();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let w = &w;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        w.put(t * 1000 + i, i);
                    }
                });
            }
        });
        let g = w.seal();
        assert_eq!(g.len(), 8000);
    }

    #[test]
    fn dht_generations_advance() {
        let mut dht: Dht<u32> = Dht::new();
        assert_eq!(dht.current_index(), 0);
        let w = GenerationWriter::new();
        w.put(7, 7u32);
        dht.push(w.seal());
        assert_eq!(dht.current_index(), 1);
        assert_eq!(dht.current().get(7), Some(&7));
        assert_eq!(dht.generation(0).get(7), None);
    }

    #[test]
    fn generation_iter_and_size() {
        let g = Generation::from_iter((0..10u64).map(|k| (k, k as u32)));
        assert_eq!(g.iter().count(), 10);
        assert_eq!(g.size_bytes(), 10 * 12);
        assert!(!g.is_empty());
        assert!(Generation::<u32>::empty().is_empty());
    }

    #[test]
    fn same_machine_last_write_wins() {
        let w: GenerationWriter<u32> = GenerationWriter::new();
        w.put(5, 1);
        w.put(5, 2);
        let g = w.seal();
        assert_eq!(g.get(5), Some(&2));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn lowest_machine_id_wins_regardless_of_order() {
        // Conflicting values (relaxed mode): the winner is the machine
        // with the lowest id, in every arrival order.
        for order in [[3u32, 1, 2], [1, 2, 3], [2, 3, 1]] {
            let w: GenerationWriter<u32> = GenerationWriter::new().relaxed();
            for m in order {
                w.put_from(m, 9, 100 + m);
            }
            let g = w.seal();
            assert_eq!(g.get(9), Some(&101), "order {order:?}");
        }
    }

    #[test]
    fn duplicate_equal_values_are_not_conflicts() {
        let w: GenerationWriter<u64> = GenerationWriter::new();
        w.put_from(2, 7, 42);
        w.put_from(0, 7, 42); // strict mode: equal values, no panic
        assert_eq!(w.seal().get(7), Some(&42));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "conflicting cross-machine writes")]
    fn strict_mode_rejects_conflicting_values() {
        let w: GenerationWriter<u64> = GenerationWriter::new();
        w.put_from(0, 7, 1);
        w.put_from(1, 7, 2);
    }

    /// Dense 0..n keys must select the direct-index layout; sparse u64
    /// keys must fall back to the single open-addressed table.
    #[test]
    fn layout_selection_rule() {
        let dense = Generation::from_iter((0..1000u64).map(|k| (k, k)));
        assert_eq!(dense.repr_kind(), ReprKind::Dense);
        // Half-occupied 0..2n domain still qualifies as dense.
        let gappy = Generation::from_iter((0..1000u64).map(|k| (2 * k, k)));
        assert_eq!(gappy.repr_kind(), ReprKind::Dense);
        // Sparse: keys spread over the whole u64 space.
        let sparse =
            Generation::from_iter((0..1000u64).map(|k| (k.wrapping_mul(0x9E37_79B9_7F4A_7C15), k)));
        assert_eq!(sparse.repr_kind(), ReprKind::Open);
        for k in 0..1000u64 {
            assert_eq!(sparse.get(k.wrapping_mul(0x9E37_79B9_7F4A_7C15)), Some(&k));
            assert_eq!(gappy.get(2 * k), Some(&k));
            assert_eq!(gappy.get(2 * k + 1), None);
        }
        assert_eq!(sparse.get(12345), None);
    }

    /// The three layouts must agree on every lookup: dense, sparse and
    /// shard-colliding adversarial key sets, hits and misses alike.
    #[test]
    fn flat_layouts_match_sharded_baseline() {
        // Keys that all land in mix64 bucket 0 of the 64 writer stripes
        // (the adversarial case for the old sharded layout: one shard
        // holds everything) — and stress one probe neighborhood of the
        // open table.
        let colliding: Vec<u64> = (0..200_000u64)
            .filter(|&k| mix64(k).is_multiple_of(64))
            .take(500)
            .collect();
        let sparse: Vec<u64> = (0..500u64)
            .map(|k| k.wrapping_mul(0xDEAD_BEEF_1234_5679) | 1 << 63)
            .collect();
        let dense: Vec<u64> = (0..500u64).collect();
        for keys in [colliding, sparse, dense] {
            let flat: Generation<u64> = {
                let w = GenerationWriter::new();
                for &k in &keys {
                    w.put(k, mix64(k));
                }
                w.seal_with_threads(1)
            };
            let sharded: Generation<u64> = {
                let w = GenerationWriter::new();
                for &k in &keys {
                    w.put(k, mix64(k));
                }
                w.seal_sharded()
            };
            assert_eq!(sharded.repr_kind(), ReprKind::Sharded);
            assert_eq!(flat.len(), sharded.len());
            assert_eq!(flat.size_bytes(), sharded.size_bytes());
            for &k in &keys {
                assert_eq!(flat.get(k), sharded.get(k), "key {k}");
                // Probing for absent neighbors must agree too.
                for probe in [k ^ 1, k.wrapping_add(64), !k] {
                    assert_eq!(flat.get(probe), sharded.get(probe), "probe {probe}");
                }
            }
            let mut a: Vec<(u64, u64)> = flat.iter().map(|(k, v)| (k, *v)).collect();
            let mut b: Vec<(u64, u64)> = sharded.iter().map(|(k, v)| (k, *v)).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn get_many_into_reuses_buffer() {
        let g = Generation::from_iter((0..50u64).map(|k| (k, k * 2)));
        let mut buf = Vec::new();
        g.get_many_into(&[1, 2, 99], &mut buf);
        assert_eq!(buf, vec![Some(&2), Some(&4), None]);
        g.get_many_into(&[3], &mut buf);
        assert_eq!(buf, vec![Some(&6)]);
    }

    #[test]
    fn cached_len_and_size_match_recomputation() {
        let g = Generation::from_iter((0..77u64).map(|k| (k, vec![k as u32, 1, 2])));
        assert_eq!(g.len(), 77);
        let recomputed: usize = g.iter().map(|(_, v)| 8 + v.size_bytes()).sum();
        assert_eq!(g.size_bytes(), recomputed);
    }

    #[test]
    fn dense_iter_is_key_ordered() {
        let g = Generation::from_iter([(4u64, 40u64), (0, 0), (129, 1290), (64, 640)]);
        // 4 keys with max 129: 130 slots > 2*4, so this is Open — make a
        // genuinely dense one instead.
        assert_eq!(g.repr_kind(), ReprKind::Open);
        let g = Generation::from_iter((0..130u64).map(|k| (k, k * 10)));
        assert_eq!(g.repr_kind(), ReprKind::Dense);
        let keys: Vec<u64> = g.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    /// The §3 stress test: many machines racing duplicate keys under two
    /// very different thread schedules must seal **byte-identical flat
    /// generations** — same physical slot layout, same values — and the
    /// layout must also be independent of the seal's worker count
    /// (`AMPC_THREADS` 1 vs 8).
    #[test]
    fn schedules_seal_identical_generations() {
        fn run(reverse: bool, seal_threads: usize) -> Generation<u64> {
            let w: GenerationWriter<u64> = GenerationWriter::new();
            std::thread::scope(|s| {
                let machines: Vec<u32> = if reverse {
                    (0..8u32).rev().collect()
                } else {
                    (0..8u32).collect()
                };
                for m in machines {
                    let w = &w;
                    s.spawn(move || {
                        if reverse {
                            // Skew the schedule: late spawns run first.
                            std::thread::yield_now();
                        }
                        for i in 0..200u64 {
                            // Private keys, plus shared keys every machine
                            // writes with the machine-independent value
                            // (the StatusWrite pattern).
                            w.put_from(m, m as u64 * 1000 + i, i * 3);
                            w.put_from(m, 100_000 + i, i);
                        }
                    });
                }
            });
            w.seal_with_threads(seal_threads)
        }
        let a = run(false, 1);
        let pairs =
            |g: &Generation<u64>| -> Vec<(u64, u64)> { g.iter().map(|(k, v)| (k, *v)).collect() };
        assert_eq!(a.len(), 8 * 200 + 200);
        for (reverse, threads) in [(true, 1), (false, 8), (true, 8)] {
            let b = run(reverse, threads);
            assert_eq!(
                a.layout_fingerprint(),
                b.layout_fingerprint(),
                "layout differs (reverse={reverse}, threads={threads})"
            );
            // Identical layout + identical iteration contents ⇒ the
            // sealed representations are byte-identical.
            assert_eq!(
                pairs(&a),
                pairs(&b),
                "(reverse={reverse}, threads={threads})"
            );
        }
    }

    /// The parallel seal path (many entries, many workers) must produce
    /// the same canonical layout as the sequential seal.
    #[test]
    fn parallel_seal_is_canonical_above_threshold() {
        let build = || {
            let w: GenerationWriter<u64> = GenerationWriter::new();
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    let w = &w;
                    s.spawn(move || {
                        for i in 0..(PARALLEL_SEAL_MIN as u64 / 2) {
                            w.put(t * (PARALLEL_SEAL_MIN as u64) + i, i);
                        }
                    });
                }
            });
            w
        };
        let seq = build().seal_with_threads(1);
        let par = build().seal_with_threads(8);
        assert_eq!(seq.layout_fingerprint(), par.layout_fingerprint());
        assert_eq!(seq.len(), par.len());
        assert_eq!(seq.size_bytes(), par.size_bytes());
    }
}
