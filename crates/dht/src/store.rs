//! The generational key-value store.
//!
//! The model (§2): *"At the start of the computation, the input data is
//! stored in D0 … In the i-th round, each machine can read data from
//! D_{i−1} and write to D_i."* A [`Dht`] is the sequence `D0, D1, …`;
//! each generation is written concurrently through a lock-striped
//! [`GenerationWriter`], then **sealed** into an immutable [`Generation`]
//! that later rounds read lock-free. Past generations are never mutated
//! — which is exactly why a preempted machine can replay its round
//! against the same inputs (the fault-tolerance property of §2).

use crate::hasher::{mix64, FxHashMap};
use crate::measured::Measured;
use parking_lot::Mutex;

/// Number of lock stripes in a writer. Plenty for the machine counts the
/// simulator runs (≤ a few hundred).
const DEFAULT_SHARDS: usize = 64;

/// A write-only, lock-striped generation under construction.
pub struct GenerationWriter<V> {
    shards: Vec<Mutex<FxHashMap<u64, V>>>,
}

impl<V: Measured + Clone> GenerationWriter<V> {
    /// New writer with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// New writer with an explicit shard count (must be ≥ 1).
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards >= 1);
        GenerationWriter {
            shards: (0..shards).map(|_| Mutex::new(FxHashMap::default())).collect(),
        }
    }

    #[inline]
    fn shard_of(&self, key: u64) -> usize {
        (mix64(key) % self.shards.len() as u64) as usize
    }

    /// Inserts a key-value pair. Last writer wins on duplicate keys
    /// (algorithms in this workspace write each key once per round).
    /// Returns the serialized size of the pair for the caller's
    /// accounting.
    pub fn put(&self, key: u64, value: V) -> usize {
        let bytes = 8 + value.size_bytes();
        self.shards[self.shard_of(key)].lock().insert(key, value);
        bytes
    }

    /// Seals the writer into an immutable generation.
    pub fn seal(self) -> Generation<V> {
        Generation {
            shards: self
                .shards
                .into_iter()
                .map(|m| m.into_inner())
                .collect(),
        }
    }
}

impl<V: Measured + Clone> Default for GenerationWriter<V> {
    fn default() -> Self {
        Self::new()
    }
}

/// An immutable, sealed generation: reads need no locks.
pub struct Generation<V> {
    shards: Vec<FxHashMap<u64, V>>,
}

impl<V: Measured + Clone> Generation<V> {
    /// An empty generation.
    pub fn empty() -> Self {
        Generation { shards: vec![FxHashMap::default()] }
    }

    #[inline]
    fn shard_of(&self, key: u64) -> usize {
        (mix64(key) % self.shards.len() as u64) as usize
    }

    /// Looks a key up. Returns a reference into the sealed store.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        self.shards[self.shard_of(key)].get(&key)
    }

    /// Number of key-value pairs stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True if no pairs are stored.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Total serialized size of all pairs.
    pub fn size_bytes(&self) -> usize {
        self.shards
            .iter()
            .flat_map(|s| s.values())
            .map(|v| 8 + v.size_bytes())
            .sum()
    }

    /// Iterates all pairs (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> + '_ {
        self.shards
            .iter()
            .flat_map(|s| s.iter().map(|(&k, v)| (k, v)))
    }
}

/// Builds a generation directly from an iterator (single-threaded load
/// path for `D0`).
impl<V: Measured + Clone> FromIterator<(u64, V)> for Generation<V> {
    fn from_iter<I: IntoIterator<Item = (u64, V)>>(items: I) -> Self {
        let w = GenerationWriter::with_shards(DEFAULT_SHARDS);
        for (k, v) in items {
            w.put(k, v);
        }
        w.seal()
    }
}

/// The collection `D0, D1, D2, …` of hash-table generations.
pub struct Dht<V> {
    generations: Vec<Generation<V>>,
}

impl<V: Measured + Clone> Dht<V> {
    /// A DHT whose `D0` holds the given input data.
    pub fn with_input(d0: Generation<V>) -> Self {
        Dht {
            generations: vec![d0],
        }
    }

    /// A DHT with an empty `D0`.
    pub fn new() -> Self {
        Self::with_input(Generation::empty())
    }

    /// Index of the newest sealed generation.
    pub fn current_index(&self) -> usize {
        self.generations.len() - 1
    }

    /// The newest sealed generation (what the next round reads).
    pub fn current(&self) -> &Generation<V> {
        self.generations.last().unwrap()
    }

    /// A specific sealed generation.
    pub fn generation(&self, i: usize) -> &Generation<V> {
        &self.generations[i]
    }

    /// Seals `next` as the newest generation (the round boundary).
    pub fn push(&mut self, next: Generation<V>) {
        self.generations.push(next);
    }

    /// Number of sealed generations (including `D0`).
    pub fn num_generations(&self) -> usize {
        self.generations.len()
    }
}

impl<V: Measured + Clone> Default for Dht<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_seal_roundtrip() {
        let w: GenerationWriter<u64> = GenerationWriter::new();
        for k in 0..500u64 {
            w.put(k, k * 3);
        }
        let g = w.seal();
        assert_eq!(g.len(), 500);
        for k in 0..500u64 {
            assert_eq!(g.get(k), Some(&(k * 3)));
        }
        assert_eq!(g.get(999), None);
    }

    #[test]
    fn put_returns_pair_size() {
        let w: GenerationWriter<Vec<u32>> = GenerationWriter::new();
        let sz = w.put(1, vec![1, 2, 3]);
        assert_eq!(sz, 8 + 8 + 12);
    }

    #[test]
    fn concurrent_writes() {
        let w: GenerationWriter<u64> = GenerationWriter::new();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let w = &w;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        w.put(t * 1000 + i, i);
                    }
                });
            }
        });
        let g = w.seal();
        assert_eq!(g.len(), 8000);
    }

    #[test]
    fn dht_generations_advance() {
        let mut dht: Dht<u32> = Dht::new();
        assert_eq!(dht.current_index(), 0);
        let w = GenerationWriter::new();
        w.put(7, 7u32);
        dht.push(w.seal());
        assert_eq!(dht.current_index(), 1);
        assert_eq!(dht.current().get(7), Some(&7));
        assert_eq!(dht.generation(0).get(7), None);
    }

    #[test]
    fn generation_iter_and_size() {
        let g = Generation::from_iter((0..10u64).map(|k| (k, k as u32)));
        assert_eq!(g.iter().count(), 10);
        assert_eq!(g.size_bytes(), 10 * 12);
        assert!(!g.is_empty());
        assert!(Generation::<u32>::empty().is_empty());
    }

    #[test]
    fn last_writer_wins() {
        let w: GenerationWriter<u32> = GenerationWriter::new();
        w.put(5, 1);
        w.put(5, 2);
        let g = w.seal();
        assert_eq!(g.get(5), Some(&2));
        assert_eq!(g.len(), 1);
    }
}
