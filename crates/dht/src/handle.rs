//! The per-machine access path to the DHT.
//!
//! In the model (§2) each machine may issue `O(S)` reads and `O(S)`
//! writes per round, each moving a constant number of words. The
//! [`MachineHandle`] is how algorithm code touches the store: every
//! `get` / `put` is counted into the machine's [`CommStats`], and the
//! handle carries the machine's query budget so callers can implement
//! (and tests can verify) the truncation rules of Algorithms 1 and 4
//! and the §4.2 vertex-truncated process.

use crate::measured::Measured;
use crate::metrics::CommStats;
use crate::store::{Generation, GenerationWriter};

/// Metered read/write access for one machine within one round.
///
/// Reads go to the *previous* (sealed) generation; writes go to the
/// *next* generation under construction — the handle enforces the
/// model's read/write separation by construction.
pub struct MachineHandle<'a, V> {
    read: &'a Generation<V>,
    write: Option<&'a GenerationWriter<V>>,
    stats: CommStats,
    /// Query budget `O(S)`; `u64::MAX` if unenforced.
    budget: u64,
}

impl<'a, V: Measured + Clone> MachineHandle<'a, V> {
    /// A handle reading `read` and writing to `write`.
    pub fn new(read: &'a Generation<V>, write: Option<&'a GenerationWriter<V>>) -> Self {
        MachineHandle {
            read,
            write,
            stats: CommStats::default(),
            budget: u64::MAX,
        }
    }

    /// Sets the per-round query budget (the model's `O(S)`).
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Remaining queries before the budget is exhausted.
    #[inline]
    pub fn remaining_budget(&self) -> u64 {
        self.budget.saturating_sub(self.stats.queries)
    }

    /// True if at least one more query is allowed.
    #[inline]
    pub fn can_query(&self) -> bool {
        self.stats.queries < self.budget
    }

    /// Looks up `key` in the sealed (previous-round) generation,
    /// counting the query and response bytes.
    #[inline]
    pub fn get(&mut self, key: u64) -> Option<&'a V> {
        self.stats.queries += 1;
        let v = self.read.get(key);
        if let Some(v) = v {
            self.stats.bytes_read += 8 + v.size_bytes() as u64;
        } else {
            self.stats.bytes_read += 8; // the miss response
        }
        v
    }

    /// Records a cache hit: the lookup was answered locally and does not
    /// count against the budget.
    #[inline]
    pub fn note_cache_hit(&mut self) {
        self.stats.cache_hits += 1;
    }

    /// Writes a key-value pair into the next generation, counting the
    /// write and its bytes.
    ///
    /// # Panics
    /// Panics if the handle was created read-only.
    #[inline]
    pub fn put(&mut self, key: u64, value: V) {
        let w = self
            .write
            .expect("this machine handle is read-only this round");
        let bytes = w.put(key, value);
        self.stats.writes += 1;
        self.stats.bytes_written += bytes as u64;
    }

    /// The communication counters accumulated so far.
    #[inline]
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Consumes the handle, returning its counters (merged by the runtime
    /// at the round boundary).
    pub fn into_stats(self) -> CommStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Generation;

    fn gen3() -> Generation<u64> {
        Generation::from_iter([(1, 10u64), (2, 20), (3, 30)])
    }

    #[test]
    fn get_counts_queries_and_bytes() {
        let g = gen3();
        let mut h: MachineHandle<u64> = MachineHandle::new(&g, None);
        assert_eq!(h.get(1), Some(&10));
        assert_eq!(h.get(99), None);
        assert_eq!(h.stats().queries, 2);
        assert_eq!(h.stats().bytes_read, (8 + 8) + 8);
    }

    #[test]
    fn put_counts_writes() {
        let g = gen3();
        let w = GenerationWriter::new();
        let mut h = MachineHandle::new(&g, Some(&w));
        h.put(5, 55u64);
        assert_eq!(h.stats().writes, 1);
        assert_eq!(h.stats().bytes_written, 16);
        let sealed = w.seal();
        assert_eq!(sealed.get(5), Some(&55));
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn read_only_handle_rejects_writes() {
        let g = gen3();
        let mut h = MachineHandle::new(&g, None);
        h.put(1, 1u64);
    }

    #[test]
    fn budget_tracking() {
        let g = gen3();
        let mut h: MachineHandle<u64> = MachineHandle::new(&g, None).with_budget(2);
        assert!(h.can_query());
        h.get(1);
        h.get(2);
        assert!(!h.can_query());
        assert_eq!(h.remaining_budget(), 0);
    }

    #[test]
    fn cache_hits_do_not_consume_budget() {
        let g = gen3();
        let mut h: MachineHandle<u64> = MachineHandle::new(&g, None).with_budget(1);
        h.note_cache_hit();
        h.note_cache_hit();
        assert!(h.can_query());
        assert_eq!(h.stats().cache_hits, 2);
    }
}
