//! The per-machine access path to the DHT.
//!
//! In the model (§2) each machine may issue `O(S)` reads and `O(S)`
//! writes per round, each moving a constant number of words. The
//! [`MachineHandle`] is how algorithm code touches the store: every
//! `get` / `put` is counted into the machine's [`CommStats`], and the
//! handle carries the machine's query budget so callers can implement
//! (and the handle can *enforce* — see [`MachineHandle::try_get`]) the
//! truncation rules of Algorithms 1 and 4 and the §4.2
//! vertex-truncated process.
//!
//! # Batching (§5.3)
//!
//! The paper's practical wins come from machines issuing *batches* of
//! DHT queries per adaptive step and answering repeats from a
//! per-machine cache. [`MachineHandle::get_many`] / `put_many` perform
//! one **accounted batch**: [`CommStats::batches`] counts one round
//! trip for the whole request while `queries`/`bytes_read` still count
//! per key — so the cost model can charge latency per batch and
//! bandwidth per key, and one batch of 1000 independent lookups is
//! distinguishable from 1000 dependent ones. Constructing the handle
//! with batching disabled (the `AMPC_BATCH=off` baseline) degrades
//! every batched call to a loop of single-key operations — identical
//! keys, bytes and values, one batch per key — so outputs and byte
//! counts are comparable across the two modes by construction.
//!
//! A read-through [`DenseCache`] can be mounted directly on the handle
//! ([`MachineHandle::mount_cache`]) so kernels whose cached state is
//! the raw stored value stop hand-rolling cache-then-get logic.

use crate::cache::{DenseCache, HotSet};
use crate::fault::DropPlan;
use crate::hasher::{FxHashMap, FxHashSet};
use crate::measured::Measured;
use crate::metrics::CommStats;
use crate::probe;
use crate::store::{Generation, GenerationWriter};
use crate::wire::Wire;

/// Signal returned by the `try_*` accessors when the next request would
/// exceed the handle's `O(S)` query budget. Algorithm-1-style truncated
/// searches treat this as their stopping condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetExhausted;

impl std::fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "per-round O(S) query budget exhausted")
    }
}

impl std::error::Error for BudgetExhausted {}

/// Metered read/write access for one machine within one round.
///
/// Reads go to the *previous* (sealed) generation; writes go to the
/// *next* generation under construction — the handle enforces the
/// model's read/write separation by construction. Writes carry the
/// machine's id into the [`GenerationWriter`] so duplicate keys resolve
/// deterministically (lowest machine id wins), independent of thread
/// schedule.
pub struct MachineHandle<'a, V> {
    read: &'a Generation<V>,
    write: Option<&'a GenerationWriter<V>>,
    stats: CommStats,
    /// Query budget `O(S)`; `u64::MAX` if unenforced.
    budget: u64,
    /// This machine's id, threaded into every write for deterministic
    /// duplicate-key resolution.
    machine_id: u32,
    /// When false, `get_many`/`put_many` degrade to per-key round trips
    /// (the single-key baseline).
    batching: bool,
    /// Optional read-through cache of raw stored values.
    cache: Option<DenseCache<V>>,
    /// Optional hot-key replica set (`AMPC_HOT_KEYS`): frequently read
    /// keys get machine-local replicas that serve the reference paths
    /// without touching the sealed generation. Accounting is identical
    /// either way — replication is a host-side strategy, not a model
    /// change (see [`HotSet`]).
    hot: Option<HotSet<V>>,
    /// Optional chaos drop plan: every accounted batch may be dropped
    /// and re-sent a seeded, capped number of times (counted into the
    /// retry fields of [`CommStats`]; never changes results).
    drops: Option<DropPlan>,
    /// Ordinal of the next accounted batch, the per-machine coordinate
    /// the drop plan rolls on — so a replayed machine re-rolls exactly
    /// the drops of its first attempt.
    batch_ordinal: u64,
}

impl<'a, V: Measured + Clone + PartialEq + Send + Wire> MachineHandle<'a, V> {
    /// A handle reading `read` and writing to `write`.
    pub fn new(read: &'a Generation<V>, write: Option<&'a GenerationWriter<V>>) -> Self {
        MachineHandle {
            read,
            write,
            stats: CommStats::default(),
            budget: u64::MAX,
            machine_id: 0,
            batching: true,
            cache: None,
            hot: None,
            drops: None,
            batch_ordinal: 0,
        }
    }

    /// Sets the per-round query budget (the model's `O(S)`).
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the machine id carried by writes.
    pub fn with_machine(mut self, machine_id: u32) -> Self {
        self.machine_id = machine_id;
        self
    }

    /// Enables or disables batched accounting (default: enabled).
    pub fn with_batching(mut self, batching: bool) -> Self {
        self.batching = batching;
        self
    }

    /// Arms chaos drop injection: each accounted batch rolls the plan
    /// for a seeded, capped number of dropped attempts before its
    /// success (DESIGN.md §10). `None` (the default) disables drops.
    pub fn with_chaos_drops(mut self, drops: Option<DropPlan>) -> Self {
        self.drops = drops;
        self
    }

    /// Arms hot-key replication with room for `k` replicas (`k = 0`,
    /// the `AMPC_HOT_KEYS` default, disables it). Served values and
    /// every [`CommStats`] counter are identical with replication on or
    /// off; only the host-side memory traffic changes.
    pub fn with_hot_keys(mut self, k: usize) -> Self {
        self.hot = (k > 0).then(|| HotSet::new(k));
        self
    }

    /// Accounts one round trip, rolling the chaos drop plan (if armed)
    /// for this batch's dropped attempts. Drops add retry counters and
    /// (later) simulated time — never results, queries or bytes.
    #[inline]
    fn account_batch(&mut self) {
        self.stats.batches += 1;
        if let Some(plan) = self.drops {
            let ordinal = self.batch_ordinal;
            self.batch_ordinal += 1;
            let k = plan.drops_for(self.machine_id, ordinal);
            if k > 0 {
                self.stats.retries += u64::from(k);
                self.stats.wasted_batches += 1;
                self.stats.backoff_units += DropPlan::backoff_units(k);
            }
        }
    }

    /// Mounts a read-through cache: `get_through`/`get_many_through`
    /// answer repeats locally (counted as cache hits) and only miss
    /// traffic reaches the DHT.
    pub fn mount_cache(&mut self, cache: DenseCache<V>) {
        self.cache = Some(cache);
    }

    /// Remaining queries before the budget is exhausted.
    #[inline]
    pub fn remaining_budget(&self) -> u64 {
        self.budget.saturating_sub(self.stats.queries)
    }

    /// True if at least one more query is allowed.
    #[inline]
    pub fn can_query(&self) -> bool {
        self.stats.queries < self.budget
    }

    /// The batched-read core behind [`Self::get_many`],
    /// [`Self::get_many_into`] and [`Self::try_get_many`]: one
    /// accounted batch (or per-key round trips with batching off),
    /// `f` called once per key in key order with a reference carrying
    /// the **generation lifetime** `'a`. Hot-key replicas never serve
    /// this path — their references cannot outlive a visit — which is
    /// exactly the split between this core and
    /// [`Self::read_batch_hot_with`].
    fn read_batch_with(&mut self, keys: &[u64], f: &mut dyn FnMut(usize, Option<&'a V>)) {
        if keys.is_empty() {
            return;
        }
        if !self.batching {
            for (i, &k) in keys.iter().enumerate() {
                f(i, self.get(k));
            }
            return;
        }
        debug_assert!(
            self.stats.queries.saturating_add(keys.len() as u64) <= self.budget,
            "machine {} batch of {} keys exceeds its O(S) query budget of {}",
            self.machine_id,
            keys.len(),
            self.budget
        );
        self.account_batch();
        // Whole-batch accounting: one add for the queries, one
        // accumulator for the bytes — same totals as per-key
        // `charge_read`, without 2 counter bumps per element — and the
        // substrate's batched pipeline serves the lookups.
        self.stats.queries += keys.len() as u64;
        let mut bytes_read = 0u64;
        self.read.get_many_with(keys, |i, v| {
            bytes_read += match v {
                Some(v) => 8 + v.size_bytes() as u64,
                None => 8, // the miss response
            };
            f(i, v);
        });
        self.stats.bytes_read += bytes_read;
    }

    /// The short-lived-reference twin of [`Self::read_batch_with`],
    /// behind [`Self::get_many_with`], [`Self::get_many_expect_into`]
    /// and the cacheless [`Self::get_many_through_with`] branch:
    /// identical accounting (the `CommStats` regression tests pin it),
    /// but references only live for the visit, which lets hot-key
    /// replicas (`AMPC_HOT_KEYS`) serve repeats from machine-local
    /// memory at the same charged cost.
    fn read_batch_hot_with(&mut self, keys: &[u64], f: &mut dyn FnMut(usize, Option<&V>)) {
        if keys.is_empty() {
            return;
        }
        if !self.batching {
            for (i, &k) in keys.iter().enumerate() {
                let v = self.get(k);
                f(i, v.map(|v| -> &V { v }));
            }
            return;
        }
        debug_assert!(
            self.stats.queries.saturating_add(keys.len() as u64) <= self.budget,
            "machine {} batch of {} keys exceeds its O(S) query budget of {}",
            self.machine_id,
            keys.len(),
            self.budget
        );
        self.account_batch();
        self.stats.queries += keys.len() as u64;
        let mut bytes_read = 0u64;
        if let Some(mut hot) = self.hot.take() {
            for (i, &k) in keys.iter().enumerate() {
                // A replica hit charges exactly what the DHT read would
                // — replication never changes CommStats.
                match hot.get(k) {
                    Some(v) => {
                        bytes_read += 8 + v.size_bytes() as u64;
                        f(i, Some(v));
                    }
                    None => match self.read.get(k) {
                        Some(v) => {
                            bytes_read += 8 + v.size_bytes() as u64;
                            hot.observe(k, v);
                            f(i, Some(v));
                        }
                        None => {
                            bytes_read += 8;
                            f(i, None);
                        }
                    },
                }
            }
            self.hot = Some(hot);
        } else {
            self.read.get_many_with(keys, |i, v| {
                bytes_read += match v {
                    Some(v) => 8 + v.size_bytes() as u64,
                    None => 8,
                };
                f(i, v.map(|v| -> &V { v }));
            });
        }
        self.stats.bytes_read += bytes_read;
    }

    /// Counts and performs one keyed read (no batch accounting).
    #[inline]
    fn charge_read(&mut self, key: u64) -> Option<&'a V> {
        self.stats.queries += 1;
        let v = self.read.get(key);
        if let Some(v) = v {
            self.stats.bytes_read += 8 + v.size_bytes() as u64;
        } else {
            self.stats.bytes_read += 8; // the miss response
        }
        v
    }

    /// Looks up `key` in the sealed (previous-round) generation,
    /// counting the query, the round trip and the response bytes.
    ///
    /// # Panics
    /// In debug builds, panics if the machine's `O(S)` query budget is
    /// already exhausted — the budget is enforced, not advisory. Use
    /// [`Self::try_get`] where truncation is a legitimate outcome.
    #[inline]
    pub fn get(&mut self, key: u64) -> Option<&'a V> {
        debug_assert!(
            self.can_query(),
            "machine {} exceeded its O(S) query budget of {}",
            self.machine_id,
            self.budget
        );
        self.account_batch();
        self.charge_read(key)
    }

    /// Budget-enforcing lookup: returns [`BudgetExhausted`] instead of
    /// querying once the `O(S)` budget is used up.
    #[inline]
    pub fn try_get(&mut self, key: u64) -> Result<Option<&'a V>, BudgetExhausted> {
        if !self.can_query() {
            return Err(BudgetExhausted);
        }
        self.account_batch();
        Ok(self.charge_read(key))
    }

    /// Looks up many keys in **one accounted batch**: a single round
    /// trip ([`CommStats::batches`]), one query and per-key response
    /// bytes for every key. The keys must be *independent* — none may
    /// depend on another's response; dependent lookups are separate
    /// batches, which is exactly what the cost model charges for.
    ///
    /// With batching disabled, degrades to a loop of [`Self::get`]
    /// calls: identical keys, bytes and return values, one round trip
    /// per key.
    ///
    /// # Panics
    /// In debug builds, panics if the batch would exceed the `O(S)`
    /// query budget.
    pub fn get_many(&mut self, keys: &[u64]) -> Vec<Option<&'a V>> {
        let mut out = Vec::new();
        self.get_many_into(keys, &mut out);
        out
    }

    /// [`Self::get_many`] into a caller-owned buffer: `out` is cleared
    /// and refilled with one `Option<&V>` per key. Accounting is
    /// identical to `get_many` — one batch for the whole request (or
    /// per-key round trips with batching disabled). Lockstep kernels
    /// (walks, 1-vs-2-cycle frontiers, MIS/MM root prefetch) reuse one
    /// buffer across adaptive steps instead of allocating a fresh
    /// `Vec<Option<&V>>` per hop.
    ///
    /// # Panics
    /// In debug builds, panics if the batch would exceed the `O(S)`
    /// query budget.
    pub fn get_many_into(&mut self, keys: &[u64], out: &mut Vec<Option<&'a V>>) {
        out.clear();
        out.reserve(keys.len());
        self.read_batch_with(keys, &mut |_, v| out.push(v));
    }

    /// Visitor form of [`Self::get_many`], the leanest member of the
    /// batch family: one accounted batch, `f` called once per key in
    /// key order with the index and the value — no output buffer at
    /// all. Hot-key replicas may serve repeats, so the references live
    /// only for the visit (take [`Self::get_many_into`] when the batch
    /// results must outlive the call). Accounting is identical to
    /// [`Self::get_many`] by construction.
    ///
    /// # Panics
    /// In debug builds, panics if the batch would exceed the `O(S)`
    /// query budget.
    pub fn get_many_with(&mut self, keys: &[u64], mut f: impl FnMut(usize, Option<&V>)) {
        self.read_batch_hot_with(keys, &mut f);
    }

    /// Fixed-size fast path of the batch family: **copies** each value
    /// into the caller's scratch buffer (cleared first) instead of
    /// collecting `Option<&V>`, so lockstep kernels over `Copy` values
    /// (chase tables, labels) keep one flat `Vec<V>` alive across hops
    /// with no borrow tying it to the generation — and no per-hop
    /// allocation at all. Accounting is *identical* to
    /// [`Self::get_many_into`] on an all-present batch: one round trip,
    /// one query and `8 + size` response bytes per key (per-key round
    /// trips with batching disabled). Hot-key replicas
    /// ([`Self::with_hot_keys`]) serve from machine-local memory at the
    /// same charged cost.
    ///
    /// # Panics
    /// When a key is absent — callers use this for tables they wrote
    /// themselves. In debug builds, also panics if the batch would
    /// exceed the `O(S)` query budget.
    pub fn get_many_expect_into(&mut self, keys: &[u64], out: &mut Vec<V>)
    where
        V: Copy,
    {
        out.clear();
        out.reserve(keys.len());
        self.read_batch_hot_with(keys, &mut |_, v| {
            out.push(*v.expect("get_many_expect_into: key absent"));
        });
    }

    /// Budget-enforcing batch lookup: the whole batch is rejected with
    /// [`BudgetExhausted`] if it does not fit in the remaining budget
    /// (batches are all-or-nothing round trips).
    pub fn try_get_many(&mut self, keys: &[u64]) -> Result<Vec<Option<&'a V>>, BudgetExhausted> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        if self.remaining_budget() < keys.len() as u64 {
            return Err(BudgetExhausted);
        }
        let mut out = Vec::with_capacity(keys.len());
        self.read_batch_with(keys, &mut |_, v| out.push(v));
        Ok(out)
    }

    /// Read-through lookup against the mounted cache: a hit is answered
    /// locally (counted in [`CommStats::cache_hits`], no budget use); a
    /// miss queries the DHT and populates the cache. Without a mounted
    /// cache this is `get` + clone.
    ///
    /// Returns an owned value, which costs a second clone on top of the
    /// cache-insert one; kernels on the hot path should prefer
    /// [`Self::get_through_ref`] (single clone per miss, none for the
    /// caller).
    pub fn get_through(&mut self, key: u64) -> Option<V> {
        let v = self.get_through_ref(key);
        if let Some(v) = v {
            probe::record_clone(v.size_bytes()); // the caller-side clone
        }
        v.cloned()
    }

    /// Reference-serving read-through lookup: a cache hit is served
    /// from the cache, a miss is fetched, inserted into the cache with
    /// **one** clone, and served to the caller as the generation's own
    /// reference — no caller-side clone at all. Accounting is identical
    /// to [`Self::get_through`].
    pub fn get_through_ref(&mut self, key: u64) -> Option<&V> {
        let mut cache = match self.cache.take() {
            None => return self.get(key).map(|v| -> &V { v }),
            Some(c) => c,
        };
        if cache.get(key).is_some() {
            self.stats.cache_hits += 1;
            self.cache = Some(cache);
            return self.cache.as_ref().and_then(|c| c.get(key));
        }
        let fetched = self.get(key);
        if let Some(v) = fetched {
            probe::record_clone(v.size_bytes());
            cache.put(key, v.clone()); // the single per-miss clone
        }
        self.cache = Some(cache);
        fetched.map(|v| -> &V { v })
    }

    /// Read-through batch lookup: cached keys (and repeats within the
    /// batch) are answered locally as cache hits; the distinct misses go
    /// to the DHT in **one** accounted batch, whose responses populate
    /// the cache. Matches the sequential single-key semantics exactly —
    /// a repeated key costs one query however it arrives — so the
    /// batching toggle changes only the round-trip accounting. (A
    /// repeat of a key the store turns out not to hold is still counted
    /// as a hit at scan time; all workspace kernels look up keys they
    /// previously wrote.)
    pub fn get_many_through(&mut self, keys: &[u64]) -> Vec<Option<V>> {
        let mut out = Vec::new();
        self.get_many_through_into(keys, &mut out);
        out
    }

    /// [`Self::get_many_through`] into a caller-owned buffer: `out` is
    /// cleared and refilled with one `Option<V>` per key. Accounting
    /// (queries, cache hits, batches) is identical; lockstep kernels
    /// reuse the buffer across hops. Costs one caller-side clone per
    /// key on top of [`Self::get_many_through_with`]'s single
    /// cache-insert clone per miss — hot paths that only *read* the
    /// values should use the visitor form directly.
    pub fn get_many_through_into(&mut self, keys: &[u64], out: &mut Vec<Option<V>>) {
        out.clear();
        out.reserve(keys.len());
        self.get_many_through_with(keys, |_, v| {
            if let Some(v) = v {
                probe::record_clone(v.size_bytes()); // the caller-side clone
            }
            out.push(v.cloned());
        });
    }

    /// The reference-serving read-through batch at the bottom of the
    /// `get_many_through*` family: `f` is called once per key, in key
    /// order, with the index and the value — a cache reference for
    /// hits, the generation's own reference for misses. Each *present
    /// miss* is cloned exactly once (into the mounted cache); the
    /// caller is never handed an owned copy it didn't ask for. With no
    /// cache mounted this is a plain batch served straight from the
    /// generation — zero clones. Accounting (queries, cache hits,
    /// batches, bytes) is identical to [`Self::get_many_through`] by
    /// construction, which the `CommStats` regression tests pin.
    pub fn get_many_through_with(&mut self, keys: &[u64], mut f: impl FnMut(usize, Option<&V>)) {
        if keys.is_empty() {
            return;
        }
        let Some(mut cache) = self.cache.take() else {
            // No cache mounted: a plain batch (same accounting as
            // `get_many_into`), served by reference through the
            // hot-aware core.
            self.read_batch_hot_with(keys, &mut f);
            return;
        };
        let mut fetch: Vec<u64> = Vec::new();
        let mut pending: FxHashSet<u64> = FxHashSet::default();
        for &k in keys {
            if cache.get(k).is_some() || pending.contains(&k) {
                self.stats.cache_hits += 1;
            } else {
                pending.insert(k);
                fetch.push(k);
            }
        }
        let fetched = self.get_many(&fetch);
        let mut batch: FxHashMap<u64, Option<&'a V>> = FxHashMap::default();
        for (&k, v) in fetch.iter().zip(&fetched) {
            batch.insert(k, *v);
            if let Some(v) = v {
                probe::record_clone(v.size_bytes());
                cache.put(k, (*v).clone()); // the single per-miss clone
            }
        }
        for (i, k) in keys.iter().enumerate() {
            match batch.get(k) {
                // Miss: the generation's reference, no caller clone.
                Some(v) => f(i, v.map(|v| -> &V { v })),
                // Hit: the cache's reference.
                None => f(i, cache.get(*k)),
            }
        }
        self.cache = Some(cache);
    }

    /// Records a cache hit: the lookup was answered locally and does not
    /// count against the budget. For kernels that keep *derived* state
    /// in their own caches (e.g. the MIS tri-state); raw-value caches
    /// should prefer [`Self::mount_cache`].
    #[inline]
    pub fn note_cache_hit(&mut self) {
        self.stats.cache_hits += 1;
    }

    /// Counts and performs one keyed write (no batch accounting).
    #[inline]
    fn charge_write(&mut self, key: u64, value: V) {
        let w = self
            .write
            .expect("this machine handle is read-only this round");
        let bytes = w.put_from(self.machine_id, key, value);
        self.stats.writes += 1;
        self.stats.bytes_written += bytes as u64;
    }

    /// Writes a key-value pair into the next generation, counting the
    /// write, the round trip and its bytes. Duplicate keys across
    /// machines resolve to the lowest machine id (see
    /// [`GenerationWriter::put_from`]).
    ///
    /// # Panics
    /// Panics if the handle was created read-only.
    #[inline]
    pub fn put(&mut self, key: u64, value: V) {
        self.account_batch();
        self.charge_write(key, value);
    }

    /// Writes many pairs in **one accounted batch** (one round trip,
    /// per-pair writes and bytes). The batch goes through
    /// [`GenerationWriter::put_many_from`], which locks each stripe
    /// once instead of once per key — identical per-pair semantics and
    /// accounting, much less lock traffic. With batching disabled,
    /// degrades to a loop of [`Self::put`] calls.
    ///
    /// # Panics
    /// Panics if the handle was created read-only and the iterator is
    /// non-empty.
    pub fn put_many(&mut self, pairs: impl IntoIterator<Item = (u64, V)>) {
        if !self.batching {
            for (k, v) in pairs {
                self.put(k, v);
            }
            return;
        }
        let mut iter = pairs.into_iter();
        let Some(first) = iter.next() else {
            return; // an empty batch is free (and legal on a read-only handle)
        };
        let w = self
            .write
            .expect("this machine handle is read-only this round");
        let (written, bytes) = w.put_many_from(self.machine_id, std::iter::once(first).chain(iter));
        self.stats.writes += written;
        self.stats.bytes_written += bytes as u64;
        self.account_batch();
    }

    /// The communication counters accumulated so far.
    #[inline]
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Consumes the handle, returning its counters (merged by the runtime
    /// at the round boundary).
    pub fn into_stats(self) -> CommStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Generation;

    fn gen3() -> Generation<u64> {
        Generation::from_iter([(1, 10u64), (2, 20), (3, 30)])
    }

    #[test]
    fn get_counts_queries_and_bytes() {
        let g = gen3();
        let mut h: MachineHandle<u64> = MachineHandle::new(&g, None);
        assert_eq!(h.get(1), Some(&10));
        assert_eq!(h.get(99), None);
        assert_eq!(h.stats().queries, 2);
        assert_eq!(h.stats().batches, 2);
        assert_eq!(h.stats().bytes_read, (8 + 8) + 8);
    }

    #[test]
    fn get_many_counts_one_batch() {
        let g = gen3();
        let mut h: MachineHandle<u64> = MachineHandle::new(&g, None);
        let vs = h.get_many(&[1, 2, 99]);
        assert_eq!(vs, vec![Some(&10), Some(&20), None]);
        assert_eq!(h.stats().queries, 3);
        assert_eq!(h.stats().batches, 1);
        assert_eq!(h.stats().bytes_read, 16 + 16 + 8);
        // An empty batch is free.
        assert!(h.get_many(&[]).is_empty());
        assert_eq!(h.stats().batches, 1);
    }

    #[test]
    fn batching_off_degrades_to_single_key() {
        let g = gen3();
        let mut on: MachineHandle<u64> = MachineHandle::new(&g, None);
        let mut off: MachineHandle<u64> = MachineHandle::new(&g, None).with_batching(false);
        let a = on.get_many(&[1, 2, 3]);
        let b = off.get_many(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(on.stats().queries, off.stats().queries);
        assert_eq!(on.stats().bytes_read, off.stats().bytes_read);
        assert_eq!(on.stats().batches, 1);
        assert_eq!(off.stats().batches, 3);
    }

    #[test]
    fn put_counts_writes() {
        let g = gen3();
        let w = GenerationWriter::new();
        let mut h = MachineHandle::new(&g, Some(&w));
        h.put(5, 55u64);
        assert_eq!(h.stats().writes, 1);
        assert_eq!(h.stats().batches, 1);
        assert_eq!(h.stats().bytes_written, 16);
        let sealed = w.seal();
        assert_eq!(sealed.get(5), Some(&55));
    }

    #[test]
    fn put_many_counts_one_batch() {
        let g = gen3();
        let w = GenerationWriter::new();
        let mut h = MachineHandle::new(&g, Some(&w));
        h.put_many((0..10u64).map(|k| (k, k * 2)));
        assert_eq!(h.stats().writes, 10);
        assert_eq!(h.stats().batches, 1);
        assert_eq!(h.stats().bytes_written, 160);
        h.put_many(std::iter::empty());
        assert_eq!(h.stats().batches, 1);
        let sealed = w.seal();
        assert_eq!(sealed.get(7), Some(&14));
    }

    #[test]
    fn writes_carry_machine_id() {
        let g: Generation<u64> = Generation::empty();
        let w = GenerationWriter::new().relaxed();
        let mut h2 = MachineHandle::new(&g, Some(&w)).with_machine(2);
        let mut h1 = MachineHandle::new(&g, Some(&w)).with_machine(1);
        h2.put(7, 200);
        h1.put(7, 100);
        assert_eq!(w.seal().get(7), Some(&100)); // lowest machine id wins
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn read_only_handle_rejects_writes() {
        let g = gen3();
        let mut h = MachineHandle::new(&g, None);
        h.put(1, 1u64);
    }

    #[test]
    fn budget_tracking() {
        let g = gen3();
        let mut h: MachineHandle<u64> = MachineHandle::new(&g, None).with_budget(2);
        assert!(h.can_query());
        h.get(1);
        h.get(2);
        assert!(!h.can_query());
        assert_eq!(h.remaining_budget(), 0);
    }

    #[test]
    fn try_get_signals_budget_exhaustion() {
        let g = gen3();
        let mut h: MachineHandle<u64> = MachineHandle::new(&g, None).with_budget(2);
        assert_eq!(h.try_get(1), Ok(Some(&10)));
        assert_eq!(h.try_get(2), Ok(Some(&20)));
        assert_eq!(h.try_get(3), Err(BudgetExhausted));
        assert_eq!(h.stats().queries, 2, "a rejected query must not be charged");
    }

    #[test]
    fn try_get_many_is_all_or_nothing() {
        let g = gen3();
        let mut h: MachineHandle<u64> = MachineHandle::new(&g, None).with_budget(4);
        assert!(h.try_get_many(&[1, 2, 3]).is_ok());
        assert_eq!(h.try_get_many(&[1, 2]), Err(BudgetExhausted));
        assert_eq!(h.stats().queries, 3);
        assert!(h.try_get_many(&[1]).is_ok());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "O(S) query budget")]
    fn get_over_budget_debug_panics() {
        let g = gen3();
        let mut h: MachineHandle<u64> = MachineHandle::new(&g, None).with_budget(1);
        h.get(1);
        h.get(2);
    }

    #[test]
    fn cache_hits_do_not_consume_budget() {
        let g = gen3();
        let mut h: MachineHandle<u64> = MachineHandle::new(&g, None).with_budget(1);
        h.note_cache_hit();
        h.note_cache_hit();
        assert!(h.can_query());
        assert_eq!(h.stats().cache_hits, 2);
    }

    #[test]
    fn mounted_cache_answers_repeats_locally() {
        let g = gen3();
        let mut h: MachineHandle<u64> = MachineHandle::new(&g, None);
        h.mount_cache(DenseCache::unbounded(8));
        assert_eq!(h.get_through(1), Some(10));
        assert_eq!(h.get_through(1), Some(10));
        assert_eq!(h.stats().queries, 1);
        assert_eq!(h.stats().cache_hits, 1);
        assert_eq!(h.stats().batches, 1);
    }

    #[test]
    fn get_many_through_dedups_and_batches_misses() {
        let g = gen3();
        let mut h: MachineHandle<u64> = MachineHandle::new(&g, None);
        h.mount_cache(DenseCache::unbounded(8));
        // 1 repeats within the batch; the second batch repeats across.
        assert_eq!(
            h.get_many_through(&[1, 2, 1]),
            vec![Some(10), Some(20), Some(10)]
        );
        assert_eq!(h.stats().queries, 2);
        assert_eq!(h.stats().cache_hits, 1);
        assert_eq!(h.stats().batches, 1);
        assert_eq!(h.get_many_through(&[2, 3]), vec![Some(20), Some(30)]);
        assert_eq!(h.stats().queries, 3);
        assert_eq!(h.stats().cache_hits, 2);
        assert_eq!(h.stats().batches, 2);
    }

    #[test]
    fn get_many_through_without_cache_is_plain_batch() {
        let g = gen3();
        let mut h: MachineHandle<u64> = MachineHandle::new(&g, None);
        assert_eq!(
            h.get_many_through(&[1, 1, 99]),
            vec![Some(10), Some(10), None]
        );
        assert_eq!(h.stats().queries, 3);
        assert_eq!(h.stats().cache_hits, 0);
        assert_eq!(h.stats().batches, 1);
    }

    /// A value that counts how often it is cloned, for pinning the
    /// read-through paths' clone budget.
    #[derive(Debug)]
    struct CloneCounter(u64, std::sync::Arc<std::sync::atomic::AtomicUsize>);

    impl Clone for CloneCounter {
        fn clone(&self) -> Self {
            self.1.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            CloneCounter(self.0, std::sync::Arc::clone(&self.1))
        }
    }

    impl PartialEq for CloneCounter {
        fn eq(&self, other: &Self) -> bool {
            self.0 == other.0
        }
    }

    impl crate::measured::Measured for CloneCounter {
        fn size_bytes(&self) -> usize {
            8
        }
    }

    impl crate::wire::Wire for CloneCounter {
        fn wire_encode(&self, out: &mut Vec<u8>) {
            self.0.wire_encode(out);
        }

        fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
            // A decoded counter starts a fresh tally: clone counts are
            // a host-side test probe, not part of the value.
            let v = u64::wire_decode(buf)?;
            Some(CloneCounter(
                v,
                std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0)),
            ))
        }
    }

    /// The satellite contract: the reference-serving read-through path
    /// clones each present miss exactly once (the cache insert) and
    /// nothing else — not twice as the old owned path did.
    #[test]
    fn read_through_clones_once_per_miss() {
        let clones = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let g: Generation<CloneCounter> = Generation::from_iter(
            (0..8u64).map(|k| (k, CloneCounter(k, std::sync::Arc::clone(&clones)))),
        );
        clones.store(0, std::sync::atomic::Ordering::Relaxed);

        let mut h: MachineHandle<CloneCounter> = MachineHandle::new(&g, None);
        h.mount_cache(DenseCache::unbounded(8));
        // 4 distinct present misses, one repeat, one absent key.
        let mut seen = 0usize;
        h.get_many_through_with(&[0, 1, 2, 3, 1, 99], |_, v| {
            seen += usize::from(v.is_some());
        });
        assert_eq!(seen, 5);
        assert_eq!(
            clones.load(std::sync::atomic::Ordering::Relaxed),
            4,
            "one clone per present miss, none for the caller"
        );
        // Second batch: all hits — zero further clones.
        h.get_many_through_with(&[3, 2, 1, 0], |_, v| assert!(v.is_some()));
        assert_eq!(clones.load(std::sync::atomic::Ordering::Relaxed), 4);
        // Single-key ref path: a miss on a fresh handle costs one.
        let mut h2: MachineHandle<CloneCounter> = MachineHandle::new(&g, None);
        h2.mount_cache(DenseCache::unbounded(8));
        clones.store(0, std::sync::atomic::Ordering::Relaxed);
        assert!(h2.get_through_ref(5).is_some());
        assert_eq!(clones.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert!(h2.get_through_ref(5).is_some()); // hit
        assert_eq!(clones.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    /// The `CommStats` regression the satellite asks for: the visitor
    /// path, the owned path and `get_through` charge *identical*
    /// queries, bytes, batches and cache hits for the same key
    /// sequence, with and without a mounted cache.
    #[test]
    fn read_through_paths_charge_identical_stats() {
        let g: Generation<Vec<u64>> =
            Generation::from_iter((0..16u64).map(|k| (k, vec![k, k + 1, k + 2])));
        let batches: [&[u64]; 3] = [&[0, 1, 2, 1, 99], &[2, 3, 0], &[5, 5, 5]];
        let run = |mode: u8, cache: bool| -> CommStats {
            let mut h: MachineHandle<Vec<u64>> = MachineHandle::new(&g, None);
            if cache {
                h.mount_cache(DenseCache::unbounded(16));
            }
            for keys in batches {
                match mode {
                    0 => h.get_many_through_with(keys, |_, _| ()),
                    1 => {
                        let mut out = Vec::new();
                        h.get_many_through_into(keys, &mut out);
                        assert_eq!(out.len(), keys.len());
                    }
                    _ => {
                        let _ = h.get_many_through(keys);
                    }
                }
            }
            *h.stats()
        };
        for cache in [true, false] {
            let visitor = run(0, cache);
            let into = run(1, cache);
            let owned = run(2, cache);
            assert_eq!(visitor, into, "cache={cache}");
            assert_eq!(visitor, owned, "cache={cache}");
            assert!(visitor.bytes_read > 0);
        }
        // Single-key: `get_through` (owned) vs `get_through_ref`.
        let single = |owned: bool| -> CommStats {
            let mut h: MachineHandle<Vec<u64>> = MachineHandle::new(&g, None);
            h.mount_cache(DenseCache::unbounded(16));
            for k in [1u64, 2, 1, 99, 2] {
                if owned {
                    let _ = h.get_through(k);
                } else {
                    let _ = h.get_through_ref(k);
                }
            }
            *h.stats()
        };
        assert_eq!(single(true), single(false));
    }

    /// The fixed-size copy path must charge exactly what the reference
    /// path charges on an all-present batch — batching on and off.
    #[test]
    fn expect_path_accounting_matches_get_many_into() {
        let g: Generation<u64> = Generation::from_iter((0..64u64).map(|k| (k, k * 3)));
        let keys: Vec<u64> = (0..64u64).rev().collect();
        for batching in [true, false] {
            let mut a: MachineHandle<u64> = MachineHandle::new(&g, None).with_batching(batching);
            let mut refs = Vec::new();
            a.get_many_into(&keys, &mut refs);
            let mut b: MachineHandle<u64> = MachineHandle::new(&g, None).with_batching(batching);
            let mut vals = Vec::new();
            b.get_many_expect_into(&keys, &mut vals);
            assert_eq!(a.stats(), b.stats(), "batching={batching}");
            let copied: Vec<u64> = refs.iter().map(|v| *v.expect("present")).collect();
            assert_eq!(copied, vals);
            // Buffer reuse: a second batch refills, never appends.
            b.get_many_expect_into(&[1, 2], &mut vals);
            assert_eq!(vals, vec![3, 6]);
        }
    }

    #[test]
    #[should_panic(expected = "key absent")]
    fn expect_path_panics_on_missing_key() {
        let g = gen3();
        let mut h: MachineHandle<u64> = MachineHandle::new(&g, None);
        let mut out = Vec::new();
        h.get_many_expect_into(&[1, 99], &mut out);
    }

    /// Hot-key replication must be invisible in values *and* in every
    /// CommStats counter — it only changes where the bytes come from.
    #[test]
    fn hot_key_replication_is_stats_invisible() {
        let g: Generation<u64> = Generation::from_iter((0..32u64).map(|k| (k, k + 100)));
        // A skewed sequence: key 3 is read far past the promotion
        // threshold, with cold keys interleaved.
        let keys: Vec<u64> = (0..200u64)
            .map(|i| if i % 3 == 0 { 3 } else { i % 32 })
            .collect();
        let run = |hot: usize| {
            let mut h: MachineHandle<u64> = MachineHandle::new(&g, None).with_hot_keys(hot);
            let mut vals = Vec::new();
            let mut visited = Vec::new();
            for chunk in keys.chunks(16) {
                h.get_many_expect_into(chunk, &mut vals);
                visited.extend(vals.iter().copied());
                h.get_many_through_with(chunk, |_, v| visited.push(*v.expect("present")));
            }
            (visited, *h.stats())
        };
        let (vals_off, stats_off) = run(0);
        let (vals_on, stats_on) = run(4);
        assert_eq!(vals_off, vals_on);
        assert_eq!(stats_off, stats_on);
    }

    /// Algorithm-1-style truncation: a search loop that explores until
    /// the handle refuses actually stops at the budget boundary.
    #[test]
    fn truncated_search_hits_enforced_budget() {
        let g: Generation<u64> = Generation::from_iter((0..100u64).map(|k| (k, k + 1)));
        let budget = 7u64;
        let mut h: MachineHandle<u64> = MachineHandle::new(&g, None).with_budget(budget);
        let mut cur = 0u64;
        let mut hops = 0u64;
        let truncated = loop {
            match h.try_get(cur) {
                Err(BudgetExhausted) => break true,
                Ok(Some(&next)) => {
                    hops += 1;
                    cur = next;
                }
                Ok(None) => break false,
            }
        };
        assert!(truncated, "walk should have been truncated");
        assert_eq!(hops, budget);
        assert_eq!(h.stats().queries, budget);
        assert!(!h.can_query());
    }
}
