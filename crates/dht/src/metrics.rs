//! Communication accounting.
//!
//! Each simulated machine owns a [`CommStats`] that its
//! [`crate::MachineHandle`] updates without synchronization; the runtime
//! merges per-machine stats at round boundaries. This is what Figures 3
//! and 9 of the paper plot (bytes shuffled, bytes to the KV store) and
//! what the caching ablation (Figure 4) reduces.

use serde::{Deserialize, Serialize};

/// Counters for one machine (or, after merging, a whole round/job).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommStats {
    /// Number of key lookups issued to the DHT (cache hits excluded —
    /// a cache hit never leaves the machine).
    pub queries: u64,
    /// Number of key-value pairs written to the DHT.
    pub writes: u64,
    /// Number of accounted round trips to the DHT. A batched request
    /// (`get_many` / `put_many`) counts as **one** batch no matter how
    /// many keys it carries; a single-key `get` / `put` is a batch of
    /// one. Always `batches <= queries + writes`. The cost model charges
    /// lookup *latency* per batch and *bandwidth* per key, so adaptive
    /// depth — chains of dependent batches — is what a round costs
    /// (the §5.3 distinction between 1000 independent queries and 1000
    /// dependent ones).
    pub batches: u64,
    /// Bytes received from the DHT in response to queries.
    pub bytes_read: u64,
    /// Bytes sent to the DHT by writes.
    pub bytes_written: u64,
    /// Lookups served by the per-machine cache.
    pub cache_hits: u64,
    /// Batch attempts dropped and re-sent by chaos fault injection
    /// ([`crate::fault::DropPlan`]). Zero outside chaos runs. A batch
    /// that dropped `k` times contributes `k` retries. Retries never
    /// change `queries`/`writes`/`batches`/bytes — the successful
    /// attempt is the one accounted there — they only add simulated
    /// time ([`crate::cost::CostConfig::retry_time_ns`]).
    #[serde(default)]
    pub retries: u64,
    /// Accounted batches that suffered at least one chaos drop (so
    /// `wasted_batches <= batches` and, per batch, retries ≥ 1).
    #[serde(default)]
    pub wasted_batches: u64,
    /// Capped-exponential-backoff wait accumulated by dropped batches,
    /// in base backoff units: a batch that dropped `k` times waited
    /// `1 + 2 + … + 2^{k-1} = 2^k − 1` units before succeeding.
    #[serde(default)]
    pub backoff_units: u64,
}

impl CommStats {
    /// Zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total KV communication in bytes (read + written), the quantity on
    /// the y-axis of Figure 9.
    #[inline]
    pub fn kv_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Total operations that crossed the network.
    #[inline]
    pub fn network_ops(&self) -> u64 {
        self.queries + self.writes
    }

    /// Charged round trips: batches if any were recorded, otherwise
    /// (for stats produced before batching, e.g. deserialized old
    /// reports) every network op is its own round trip.
    #[inline]
    pub fn round_trips(&self) -> u64 {
        if self.batches > 0 || self.network_ops() == 0 {
            self.batches
        } else {
            self.network_ops()
        }
    }

    /// Fraction of lookups served by the cache, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.queries + self.cache_hits;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: &CommStats) {
        self.queries += other.queries;
        self.writes += other.writes;
        self.batches += other.batches;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.cache_hits += other.cache_hits;
        self.retries += other.retries;
        self.wasted_batches += other.wasted_batches;
        self.backoff_units += other.backoff_units;
    }

    /// Merged copy of a collection of per-machine stats.
    pub fn merged<'a>(stats: impl IntoIterator<Item = &'a CommStats>) -> CommStats {
        let mut out = CommStats::default();
        for s in stats {
            out.merge(s);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let a = CommStats {
            queries: 1,
            writes: 2,
            batches: 2,
            bytes_read: 3,
            bytes_written: 4,
            cache_hits: 5,
            retries: 6,
            wasted_batches: 1,
            backoff_units: 9,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.queries, 2);
        assert_eq!(b.batches, 4);
        assert_eq!(b.kv_bytes(), 14);
        assert_eq!(b.network_ops(), 6);
        assert_eq!(b.retries, 12);
        assert_eq!(b.wasted_batches, 2);
        assert_eq!(b.backoff_units, 18);
    }

    #[test]
    fn round_trips_falls_back_to_ops_without_batches() {
        let old = CommStats {
            queries: 7,
            writes: 3,
            ..Default::default()
        };
        assert_eq!(old.round_trips(), 10);
        let batched = CommStats {
            queries: 7,
            writes: 3,
            batches: 2,
            ..Default::default()
        };
        assert_eq!(batched.round_trips(), 2);
        assert_eq!(CommStats::default().round_trips(), 0);
    }

    #[test]
    fn hit_rate() {
        let s = CommStats {
            queries: 25,
            cache_hits: 75,
            ..Default::default()
        };
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CommStats::default().cache_hit_rate(), 0.0);
    }

    #[test]
    fn merged_iterates() {
        let v = [CommStats::default(); 3];
        assert_eq!(CommStats::merged(v.iter()), CommStats::default());
    }
}
