//! Per-machine query caches (§5.3's caching optimization).
//!
//! *"In practice, we implement the caching optimization using an array
//! indexed over the vertices that is shared between all threads
//! operating on a machine."* Algorithms in this workspace key the DHT by
//! dense vertex ids, so the cache is a flat array. Two flavors:
//!
//! * [`DenseCache`] — caches an arbitrary small value per key (e.g. the
//!   tri-state `Unknown | InMIS | NotInMIS` of the MIS search, or the
//!   per-vertex matching state of §5.4).
//! * Capacity is bounded: the model only licenses `O(S)` cached entries
//!   per machine, so the cache refuses to grow beyond its configured
//!   capacity (tracking evictable state is not needed — the algorithms'
//!   working sets are the vertices they queried, which is already
//!   bounded by the query budget).

/// A fixed-capacity array cache over dense `u64` keys.
///
/// `T` is the cached state; `None` means "not cached". The cache tracks
/// occupancy so callers can enforce the model's `O(S)` space bound.
#[derive(Clone, Debug)]
pub struct DenseCache<T> {
    slots: Vec<Option<T>>,
    occupied: usize,
    capacity: usize,
}

impl<T: Clone> DenseCache<T> {
    /// A cache over keys `0..key_space` allowed to hold up to `capacity`
    /// entries. A `capacity` of 0 disables the cache (every `get` misses).
    pub fn new(key_space: usize, capacity: usize) -> Self {
        DenseCache {
            slots: vec![None; if capacity == 0 { 0 } else { key_space }],
            occupied: 0,
            capacity,
        }
    }

    /// An unbounded cache over `key_space` keys (capacity = key space).
    pub fn unbounded(key_space: usize) -> Self {
        Self::new(key_space, key_space)
    }

    /// A disabled cache: every lookup misses, inserts are dropped.
    pub fn disabled() -> Self {
        Self::new(0, 0)
    }

    /// Whether caching is enabled at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Looks up `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&T> {
        self.slots.get(key as usize).and_then(|s| s.as_ref())
    }

    /// Inserts (or overwrites) the cached state for `key`. Silently drops
    /// the insert if the cache is full and `key` is not already present,
    /// or if the cache is disabled.
    #[inline]
    pub fn put(&mut self, key: u64, value: T) {
        let Some(slot) = self.slots.get_mut(key as usize) else {
            return;
        };
        if slot.is_none() {
            if self.occupied >= self.capacity {
                return;
            }
            self.occupied += 1;
        }
        *slot = Some(value);
    }

    /// Number of cached entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// True if nothing is cached.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// Drops all cached entries, keeping the capacity.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.occupied = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_get_put() {
        let mut c: DenseCache<u8> = DenseCache::unbounded(10);
        assert_eq!(c.get(3), None);
        c.put(3, 7);
        assert_eq!(c.get(3), Some(&7));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn overwrite_does_not_grow() {
        let mut c: DenseCache<u8> = DenseCache::unbounded(10);
        c.put(3, 7);
        c.put(3, 9);
        assert_eq!(c.get(3), Some(&9));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut c: DenseCache<u8> = DenseCache::new(10, 2);
        c.put(0, 1);
        c.put(1, 1);
        c.put(2, 1); // dropped
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(2), None);
        // overwriting an existing key still works at capacity
        c.put(0, 9);
        assert_eq!(c.get(0), Some(&9));
    }

    #[test]
    fn disabled_cache_never_stores() {
        let mut c: DenseCache<u8> = DenseCache::disabled();
        c.put(0, 1);
        assert_eq!(c.get(0), None);
        assert!(!c.is_enabled());
        assert!(c.is_empty());
    }

    #[test]
    fn out_of_range_keys_are_misses() {
        let mut c: DenseCache<u8> = DenseCache::unbounded(4);
        c.put(100, 1); // silently dropped
        assert_eq!(c.get(100), None);
    }

    #[test]
    fn clear_resets() {
        let mut c: DenseCache<u8> = DenseCache::unbounded(4);
        c.put(1, 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(1), None);
    }
}
