//! Per-machine query caches (§5.3's caching optimization).
//!
//! *"In practice, we implement the caching optimization using an array
//! indexed over the vertices that is shared between all threads
//! operating on a machine."* Algorithms in this workspace key the DHT by
//! dense vertex ids, so the cache is a flat array — **when that is
//! affordable**. The model only licenses `O(S)` cached entries per
//! machine, so:
//!
//! * When `capacity` is within a small factor of `key_space`, the cache
//!   is a flat array (one slot per key, O(1) everything).
//! * When `capacity ≪ key_space` (below the density factor), allocating
//!   `key_space` slots would break the `O(S)` space bound, so the cache
//!   switches to a compact hash map bounded by `capacity`.
//!
//! Either way `clear` is proportional to *occupancy*, not key space:
//! the array representation remembers which slots it dirtied.

use crate::hasher::FxHashMap;

/// Below `capacity * DENSITY_FACTOR < key_space` the cache stores a
/// compact map instead of a flat array.
const DENSITY_FACTOR: usize = 8;

/// Backing storage: flat array for dense caches, bounded map for sparse
/// ones.
#[derive(Clone, Debug)]
enum Repr<T> {
    Dense {
        slots: Vec<Option<T>>,
        /// Keys inserted since the last `clear` (each pushed once, on
        /// first insert) — what makes `clear` O(occupancy).
        dirty: Vec<u64>,
    },
    Sparse(FxHashMap<u64, T>),
}

/// A capacity-bounded cache over dense `u64` keys in `0..key_space`.
///
/// `T` is the cached state; a missing entry means "not cached". The
/// cache tracks occupancy and never holds more than `capacity` entries
/// (the model's `O(S)` bound); memory use is `O(min(capacity,
/// key_space))`, **not** `O(key_space)`.
#[derive(Clone, Debug)]
pub struct DenseCache<T> {
    repr: Repr<T>,
    occupied: usize,
    capacity: usize,
    key_space: usize,
}

impl<T: Clone> DenseCache<T> {
    /// A cache over keys `0..key_space` allowed to hold up to `capacity`
    /// entries. A `capacity` of 0 disables the cache (every `get`
    /// misses). When `capacity` is much smaller than `key_space` the
    /// cache allocates `O(capacity)` — not `O(key_space)` — memory.
    pub fn new(key_space: usize, capacity: usize) -> Self {
        let repr = if capacity == 0 || capacity.saturating_mul(DENSITY_FACTOR) < key_space {
            Repr::Sparse(FxHashMap::default())
        } else {
            Repr::Dense {
                slots: vec![None; key_space],
                dirty: Vec::new(),
            }
        };
        DenseCache {
            repr,
            occupied: 0,
            capacity,
            key_space,
        }
    }

    /// An unbounded cache over `key_space` keys (capacity = key space).
    pub fn unbounded(key_space: usize) -> Self {
        Self::new(key_space, key_space)
    }

    /// A disabled cache: every lookup misses, inserts are dropped.
    pub fn disabled() -> Self {
        Self::new(0, 0)
    }

    /// Whether caching is enabled at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Number of backing slots actually allocated — `O(capacity)` in
    /// sparse mode, `key_space` in dense mode. Exposed so tests can
    /// assert the `O(S)` memory bound.
    pub fn allocated_slots(&self) -> usize {
        match &self.repr {
            Repr::Dense { slots, .. } => slots.len(),
            Repr::Sparse(map) => map.capacity(),
        }
    }

    /// Looks up `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&T> {
        match &self.repr {
            Repr::Dense { slots, .. } => slots.get(key as usize).and_then(|s| s.as_ref()),
            Repr::Sparse(map) => map.get(&key),
        }
    }

    /// Inserts (or overwrites) the cached state for `key`. Silently
    /// drops the insert if the cache is full and `key` is not already
    /// present, if `key` is outside `0..key_space`, or if the cache is
    /// disabled.
    #[inline]
    pub fn put(&mut self, key: u64, value: T) {
        if key as usize >= self.key_space {
            return;
        }
        match &mut self.repr {
            Repr::Dense { slots, dirty } => {
                let slot = &mut slots[key as usize];
                if slot.is_none() {
                    if self.occupied >= self.capacity {
                        return;
                    }
                    self.occupied += 1;
                    dirty.push(key);
                }
                *slot = Some(value);
            }
            Repr::Sparse(map) => {
                if let Some(v) = map.get_mut(&key) {
                    *v = value;
                } else {
                    if self.occupied >= self.capacity {
                        return;
                    }
                    self.occupied += 1;
                    map.insert(key, value);
                }
            }
        }
    }

    /// Number of cached entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// True if nothing is cached.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// Drops all cached entries, keeping the capacity. Runs in time
    /// proportional to the number of cached entries, not the key space.
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Dense { slots, dirty } => {
                for key in dirty.drain(..) {
                    slots[key as usize] = None;
                }
            }
            Repr::Sparse(map) => map.clear(),
        }
        self.occupied = 0;
    }
}

/// A key must be served from the DHT this many times in one round
/// before it earns a replica.
const HOT_PROMOTE_THRESHOLD: u32 = 4;

/// Per-machine replicas of the hottest keys of one round
/// (`AMPC_HOT_KEYS`).
///
/// Skewed read distributions hammer a few keys of a huge sealed
/// generation; replicating the top-K keys *onto the machine* keeps
/// those lookups inside a small, cache-resident table. Promotion is
/// streaming and deterministic: a key is replicated the
/// `HOT_PROMOTE_THRESHOLD`-th time this machine reads it, first-come
/// first-served up to `capacity` — a pure function of the machine's
/// (deterministic) key sequence, never of thread schedule.
///
/// Replication is an execution-strategy optimization **only**: a
/// replica-served read charges exactly the queries/bytes a DHT-served
/// read would (the model still bills the machine for fetching the
/// value), so [`crate::metrics::CommStats`] is byte-identical with
/// replication on or off. The clone taken at promotion is reported to
/// [`crate::probe`].
#[derive(Clone, Debug)]
pub struct HotSet<V> {
    counts: FxHashMap<u64, u32>,
    replicas: FxHashMap<u64, V>,
    capacity: usize,
}

impl<V: Clone + crate::measured::Measured> HotSet<V> {
    /// A replica set holding at most `capacity` keys.
    pub fn new(capacity: usize) -> Self {
        HotSet {
            counts: FxHashMap::default(),
            replicas: FxHashMap::default(),
            capacity,
        }
    }

    /// The replica for `key`, if it earned one.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        self.replicas.get(&key)
    }

    /// Counts one DHT-served read of `key`; promotes the key to a
    /// replica once it crosses the threshold (while capacity lasts).
    #[inline]
    pub fn observe(&mut self, key: u64, value: &V) {
        if self.replicas.len() >= self.capacity {
            return;
        }
        let c = self.counts.entry(key).or_insert(0);
        *c += 1;
        if *c >= HOT_PROMOTE_THRESHOLD {
            crate::probe::record_clone(value.size_bytes());
            self.replicas.insert(key, value.clone());
        }
    }

    /// Number of keys currently replicated (test hook).
    pub fn replicated(&self) -> usize {
        self.replicas.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_set_promotes_after_threshold() {
        let mut h: HotSet<u64> = HotSet::new(2);
        for _ in 0..HOT_PROMOTE_THRESHOLD - 1 {
            h.observe(7, &70);
            assert!(h.get(7).is_none());
        }
        h.observe(7, &70);
        assert_eq!(h.get(7), Some(&70));
        // Capacity: only one more key may be promoted.
        for _ in 0..HOT_PROMOTE_THRESHOLD {
            h.observe(8, &80);
        }
        for _ in 0..HOT_PROMOTE_THRESHOLD {
            h.observe(9, &90);
        }
        assert_eq!(h.get(8), Some(&80));
        assert_eq!(h.get(9), None, "capacity 2 reached");
        assert_eq!(h.replicated(), 2);
    }

    #[test]
    fn basic_get_put() {
        let mut c: DenseCache<u8> = DenseCache::unbounded(10);
        assert_eq!(c.get(3), None);
        c.put(3, 7);
        assert_eq!(c.get(3), Some(&7));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn overwrite_does_not_grow() {
        for cache in [DenseCache::unbounded(10), DenseCache::new(1000, 2)] {
            let mut c: DenseCache<u8> = cache;
            c.put(3, 7);
            c.put(3, 9);
            assert_eq!(c.get(3), Some(&9));
            assert_eq!(c.len(), 1);
        }
    }

    #[test]
    fn capacity_enforced_in_both_representations() {
        // Dense (capacity close to key space) and sparse (capacity ≪).
        for key_space in [10usize, 1000] {
            let mut c: DenseCache<u8> = DenseCache::new(key_space, 2);
            c.put(0, 1);
            c.put(1, 1);
            c.put(2, 1); // dropped
            assert_eq!(c.len(), 2);
            assert_eq!(c.get(2), None);
            // overwriting an existing key still works at capacity
            c.put(0, 9);
            assert_eq!(c.get(0), Some(&9));
        }
    }

    #[test]
    fn disabled_cache_never_stores() {
        let mut c: DenseCache<u8> = DenseCache::disabled();
        c.put(0, 1);
        assert_eq!(c.get(0), None);
        assert!(!c.is_enabled());
        assert!(c.is_empty());
    }

    #[test]
    fn out_of_range_keys_are_misses() {
        for cache in [DenseCache::unbounded(4), DenseCache::new(1000, 4)] {
            let mut c: DenseCache<u8> = cache;
            c.put(5000, 1); // silently dropped
            assert_eq!(c.get(5000), None);
            assert!(c.is_empty());
        }
    }

    #[test]
    fn clear_resets() {
        for cache in [DenseCache::unbounded(4), DenseCache::new(1000, 4)] {
            let mut c: DenseCache<u8> = cache;
            c.put(1, 1);
            c.clear();
            assert!(c.is_empty());
            assert_eq!(c.get(1), None);
            // the cache is reusable after a clear
            c.put(2, 2);
            assert_eq!(c.get(2), Some(&2));
            assert_eq!(c.len(), 1);
        }
    }

    /// The `O(S)` memory bound the doc claims: a tiny capacity over a
    /// huge key space must not allocate the key space.
    #[test]
    fn sparse_mode_respects_memory_bound() {
        let c: DenseCache<u64> = DenseCache::new(1 << 40, 64);
        assert!(
            c.allocated_slots() <= 64 * DENSITY_FACTOR,
            "allocated {} slots for capacity 64",
            c.allocated_slots()
        );
        let mut c = c;
        for k in 0..64u64 {
            c.put(k * 1_000_000_007, k);
        }
        assert_eq!(c.len(), 64);
        for k in 0..64u64 {
            assert_eq!(c.get(k * 1_000_000_007), Some(&k));
        }
    }

    /// Dense mode keeps flat-array behavior; `clear` touches only the
    /// dirtied slots (observable through the dirty-list contract: a
    /// cleared cache accepts `capacity` fresh inserts again).
    #[test]
    fn dense_mode_clear_is_occupancy_proportional() {
        let mut c: DenseCache<u32> = DenseCache::new(1000, 1000);
        assert_eq!(c.allocated_slots(), 1000);
        for k in 0..10u64 {
            c.put(k, 1);
        }
        c.clear();
        assert!(c.is_empty());
        for k in 500..510u64 {
            c.put(k, 2);
        }
        assert_eq!(c.len(), 10);
        assert_eq!(c.get(3), None);
        assert_eq!(c.get(505), Some(&2));
    }
}
