//! Fast integer hashing.
//!
//! The standard library's SipHash is needlessly slow for the `u64` keys
//! the DHT uses (the performance guide's first recommendation for
//! hash-heavy code). This is the Fibonacci/FxHash-style multiplicative
//! hasher: one multiply and a xor-shift per word, which is plenty for
//! keys that are vertex ids.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher for integer keys.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Word-at-a-time FxHash over arbitrary bytes (rarely used here —
        // DHT keys hash through `write_u64`).
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = (self.state.rotate_left(5) ^ i).wrapping_mul(SEED);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast integer hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the fast integer hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Stateless mix of a `u64` to a well-distributed `u64` — used for shard
/// selection and seeded per-key randomness (e.g. vertex priorities).
/// This is the SplitMix64 finalizer, which passes avalanche tests.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashmap_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * 2);
        }
        for i in 0..1000u64 {
            assert_eq!(m[&i], i * 2);
        }
    }

    #[test]
    fn mix64_distributes_low_bits() {
        // Consecutive keys must land on different shards: check the low
        // 4 bits of mixed consecutive integers are not constant.
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u64 {
            seen.insert(mix64(i) & 0xF);
        }
        assert!(seen.len() > 8, "mix64 low bits too clustered: {seen:?}");
    }

    #[test]
    fn mix64_is_deterministic_and_injective_on_small_range() {
        let outs: Vec<u64> = (0..10_000u64).map(mix64).collect();
        let set: std::collections::HashSet<_> = outs.iter().collect();
        assert_eq!(set.len(), outs.len());
        assert_eq!(mix64(42), mix64(42));
    }

    #[test]
    fn hasher_handles_byte_streams() {
        use std::hash::Hash;
        let mut h1 = FxHasher::default();
        "hello world".hash(&mut h1);
        let mut h2 = FxHasher::default();
        "hello worle".hash(&mut h2);
        assert_ne!(h1.finish(), h2.finish());
    }
}
