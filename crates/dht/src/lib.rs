//! # ampc-dht — the distributed hash table at the center of the AMPC model
//!
//! §2 of the paper defines the AMPC model as MPC plus *"a collection of
//! distributed hash tables D0, D1, D2, …"* where *"in the i-th round, each
//! machine can read data from D_{i−1} and write to D_i"*. This crate
//! provides that object for the simulated runtime:
//!
//! * [`store::Dht`] — a sequence of **generations**. A generation is
//!   written through a sharded, lock-striped [`store::GenerationWriter`]
//!   and then **sealed** into an immutable [`store::Generation`] that
//!   subsequent rounds read without locks. Sealing is exactly the model's
//!   round boundary, and immutability of past generations is what makes
//!   the fault-tolerance story work (a re-executed machine re-reads the
//!   same values). Sealing flattens the stripes into a single-level
//!   layout — a zero-hash direct-index array for dense `0..n` key
//!   domains, a single-hash open-addressed table otherwise
//!   ([`store::ReprKind`]) — with `len`/`size_bytes` cached at seal;
//!   `AMPC_STORE=sharded` re-enables the historical double-hash sharded
//!   layout for A/B measurement, and `AMPC_THREADS`
//!   ([`store::ampc_threads`]) bounds seal-time parallelism.
//! * [`handle::MachineHandle`] — the per-machine access path. All reads
//!   and writes are metered: the handle counts queries, writes, batched
//!   round trips and bytes ([`metrics::CommStats`]), **enforces** the
//!   `O(S)` communication budget of the model
//!   ([`handle::BudgetExhausted`]), and supports the §5.3 batching
//!   optimization: `get_many`/`put_many` issue many independent keys as
//!   one accounted round trip, and a read-through [`cache::DenseCache`]
//!   can be mounted directly on the handle.
//! * [`cache::DenseCache`] — the per-machine query cache of §5.3's caching
//!   optimization (*"an array indexed over the vertices that is shared
//!   between all threads operating on a machine"*), with a compact-map
//!   representation that keeps memory `O(capacity)` when the capacity is
//!   far below the key space.
//! * [`cost`] — the network/storage cost model that converts byte and
//!   round-trip counts into simulated time, with RDMA and TCP/IP profiles
//!   (Table 4) and a multithreading latency-hiding factor (Figure 4).
//!   Lookup latency is charged per *batch* and bandwidth per key, so
//!   adaptive depth (chains of dependent batches) is what a round costs.
//!
//! Keys are `u64`; values are any `Clone + PartialEq + Measured` type,
//! where [`measured::Measured`] supplies the byte size used for
//! communication accounting (`PartialEq` lets the store detect
//! conflicting cross-machine duplicate writes, which the §3 determinism
//! contract forbids).

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod cache;
pub mod cost;
pub mod fault;
pub mod handle;
pub mod hasher;
pub mod measured;
pub mod metrics;
pub mod probe;
pub mod socket;
pub mod store;
pub mod substrate;
pub mod wire;

pub use cache::{DenseCache, HotSet};
pub use cost::{CostConfig, Network};
pub use fault::DropPlan;
pub use handle::{BudgetExhausted, MachineHandle};
pub use measured::Measured;
pub use metrics::CommStats;
pub use socket::{wire_metrics, SocketCluster, WireMetrics};
pub use store::{
    ampc_threads, force_store, force_store_layout, store_kind, Dht, Generation, GenerationWriter,
    ReprKind, StoreKind, StripeArena,
};
pub use substrate::{StoreBackend, Substrate};
pub use wire::Wire;
