//! The substrate layer: where a sealed generation's data physically
//! lives (DESIGN.md §12).
//!
//! [`crate::Generation`] used to be a closed enum of in-memory layouts.
//! The [`Substrate`] trait is the redesigned narrow waist extracted
//! from it: **seal** (building the substrate from resolved pairs),
//! **batched reads** ([`Substrate::get_batch_with`] — the single entry
//! point every `get_many*` handle variant now funnels through),
//! **batched writes** (the seal input *is* the batch; the lock-striped
//! [`crate::GenerationWriter`] stays the one write front-end for every
//! substrate), and the **layout fingerprint** the determinism suites
//! compare. Everything above this trait — handles, accounting, the
//! runtime — is substrate-oblivious, which is what the §3 contract
//! demands: outputs, round counts and every `CommStats` field must be
//! byte-identical whichever substrate serves the reads.
//!
//! Four substrates implement the trait:
//!
//! * [`DenseSubstrate`] / [`OpenSubstrate`] — the flat in-memory
//!   layouts (DESIGN.md §5.4), canonical and schedule-independent.
//! * [`ShardedSubstrate`] — the pre-flat shard-of-hashmaps baseline
//!   kept for perf A/Bs (`AMPC_STORE=sharded`).
//! * [`SocketSubstrate`] — values live in **separate shard-server
//!   processes** reached over Unix-domain sockets
//!   (`AMPC_STORE=socket`, [`crate::socket`]). The client keeps only
//!   the *key index* — exactly the flat layout minus the values — so
//!   its [`Substrate::fingerprint_slots`] equals the flat substrate's
//!   by construction, and fetched values are memoized per slot so a
//!   generation read twice crosses the wire once.

use crate::hasher::{mix64, FxHashMap};
use crate::measured::Measured;
use crate::socket;
use crate::wire::{encode_to_vec, Wire};
use std::sync::OnceLock;

/// How far ahead the batched lookup loops prefetch. Large enough to
/// cover a main-memory miss at a few cycles per element, small enough
/// not to thrash L1.
pub(crate) const PREFETCH_AHEAD: usize = 16;

/// A dense direct-index layout is chosen when the largest key indexes
/// an array at most `DENSE_MAX_WASTE` times larger than the entry count
/// (≥ 50% occupancy).
pub(crate) const DENSE_MAX_WASTE: usize = 2;

/// Shard count used when a [`ShardedSubstrate`] is sealed directly from
/// pairs (matches the writer's default stripe count).
const SEAL_SHARDS: usize = 64;

/// Whether a resolved key set qualifies for the dense direct-index
/// layout: the largest key must index an array at most
/// [`DENSE_MAX_WASTE`] times larger than the distinct entry count.
pub(crate) fn dense_eligible(len: usize, max_key: u64) -> bool {
    (max_key as usize) < u32::MAX as usize
        && (max_key as usize) < len.saturating_mul(DENSE_MAX_WASTE)
}

/// The physical layout a sealed generation chose (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReprKind {
    /// Direct-index array over a dense key domain; zero hashes per read.
    Dense,
    /// Single open-addressed table; one hash per read.
    Open,
    /// Pre-flat shard-of-hashmaps (two hashes per read); the
    /// `AMPC_STORE=sharded` baseline.
    Sharded,
}

/// Where a substrate's *values* physically live. Orthogonal to
/// [`ReprKind`]: a socket-backed generation still reports the dense or
/// open layout its key index mirrors (that is what makes the
/// fingerprint suites run unchanged), so tests that must prove the
/// wire is actually engaged check the backend instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreBackend {
    /// Values held in this process's memory.
    InMemory,
    /// Values held by shard-server processes behind Unix-domain sockets.
    Socket,
}

/// Iterator over the set bits of one bitmap word.
pub(crate) struct BitIter {
    pub(crate) bits: u64,
    pub(crate) base: u64,
}

impl Iterator for BitIter {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        if self.bits == 0 {
            return None;
        }
        let tz = self.bits.trailing_zeros() as u64;
        self.bits &= self.bits - 1;
        Some(self.base + tz)
    }
}

/// The storage narrow waist: what a sealed generation needs from the
/// thing holding its data.
///
/// Contract (pinned by `tests/storage_layout.rs` and the substrate
/// equivalence suites):
///
/// * **Canonical seal** — [`Substrate::seal_pairs`] over the same
///   resolved pairs builds the same physical layout, independent of
///   thread schedule (the optimized seal paths in
///   [`crate::GenerationWriter`] are fast producers of the *same*
///   canonical substrates).
/// * **Read equivalence** — `get`, `get_batch_with` and `iter_pairs`
///   agree across substrates on every key, hit or miss.
/// * **Fingerprint stability** — [`Substrate::fingerprint_slots`]
///   depends only on the resolved key set (plus layout kind), never on
///   where the values live.
pub trait Substrate<V: Measured + Clone + Wire>: Sized {
    /// Builds the substrate from resolved `(key, value)` pairs in
    /// ascending key order (the canonical seal input: duplicates
    /// already resolved by the writer's lowest-machine-id rule).
    fn seal_pairs(pairs: Vec<(u64, V)>) -> Self;

    /// Which physical layout this substrate presents.
    fn kind(&self) -> ReprKind;

    /// Where the values physically live.
    fn backend(&self) -> StoreBackend {
        StoreBackend::InMemory
    }

    /// Looks one key up.
    fn get(&self, key: u64) -> Option<&V>;

    /// Advisory cache prefetch for `key`'s slot (no-op by default).
    #[inline]
    fn prefetch(&self, key: u64) {
        let _ = key;
    }

    /// The batched read every `get_many*` front-end funnels through:
    /// `visit` is called once per key, in key order, with the index and
    /// the result. In-memory substrates software-pipeline the lookups
    /// (slot `i + 16` prefetched while slot `i` is read); the socket
    /// substrate overrides this to fetch the batch's unfetched keys in
    /// **one wire request per shard** before visiting.
    fn get_batch_with<'s>(&'s self, keys: &[u64], visit: &mut dyn FnMut(usize, Option<&'s V>)) {
        for (i, &k) in keys.iter().enumerate() {
            if let Some(&ahead) = keys.get(i + PREFETCH_AHEAD) {
                self.prefetch(ahead);
            }
            visit(i, self.get(k));
        }
    }

    /// The physical slot layout for the determinism suites: the key at
    /// every slot index in slot order (`u64::MAX` = empty slot). See
    /// [`crate::Generation::layout_fingerprint`].
    fn fingerprint_slots(&self) -> Vec<u64>;

    /// Iterates all pairs (dense layouts in ascending key order).
    fn iter_pairs<'s>(&'s self) -> Box<dyn Iterator<Item = (u64, &'s V)> + 's>;
}

// ---------------------------------------------------------------------
// Dense
// ---------------------------------------------------------------------

/// Direct-index array over a dense key domain: `slots[k]` holds key
/// `k`'s value, `occupied` is the bitmap over slot indices (word `i`,
/// bit `j` ⇒ slot `64 i + j`), letting iteration skip empty runs 64
/// slots at a time. `get` is one bounds check and one slot read —
/// zero hashes.
pub struct DenseSubstrate<V> {
    pub(crate) slots: Vec<Option<V>>,
    pub(crate) occupied: Vec<u64>,
}

impl<V: Measured + Clone + Wire> Substrate<V> for DenseSubstrate<V> {
    fn seal_pairs(pairs: Vec<(u64, V)>) -> Self {
        let max_key = pairs.iter().map(|&(k, _)| k).max();
        debug_assert!(
            max_key.is_none_or(|m| dense_eligible(pairs.len(), m)),
            "dense seal over a sparse key set"
        );
        let n_slots = max_key.map_or(0, |m| m as usize + 1);
        let mut slots: Vec<Option<V>> = (0..n_slots).map(|_| None).collect();
        let mut occupied = vec![0u64; n_slots.div_ceil(64)];
        for (k, v) in pairs {
            let s = k as usize;
            occupied[s / 64] |= 1u64 << (s % 64);
            slots[s] = Some(v);
        }
        DenseSubstrate { slots, occupied }
    }

    fn kind(&self) -> ReprKind {
        ReprKind::Dense
    }

    #[inline]
    fn get(&self, key: u64) -> Option<&V> {
        match self.slots.get(key as usize) {
            Some(slot) => slot.as_ref(),
            None => None,
        }
    }

    #[inline]
    fn prefetch(&self, key: u64) {
        #[cfg(target_arch = "x86_64")]
        {
            use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let i = key as usize;
            if i < self.slots.len() {
                #[allow(unsafe_code)]
                // SAFETY: the index is bounds-checked above and prefetch
                // dereferences nothing — it is a pure cache hint with no
                // semantic effect.
                unsafe {
                    _mm_prefetch(self.slots.as_ptr().add(i) as *const i8, _MM_HINT_T0)
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = key;
    }

    fn fingerprint_slots(&self) -> Vec<u64> {
        self.slots
            .iter()
            .enumerate()
            .map(|(k, s)| if s.is_some() { k as u64 } else { u64::MAX })
            .collect()
    }

    fn iter_pairs<'s>(&'s self) -> Box<dyn Iterator<Item = (u64, &'s V)> + 's> {
        Box::new(
            self.occupied
                .iter()
                .enumerate()
                .flat_map(move |(w, &bits)| BitIter {
                    bits,
                    base: w as u64 * 64,
                })
                .map(move |k| {
                    (
                        k,
                        self.slots[k as usize].as_ref().expect("bitmap/slot agree"),
                    )
                }),
        )
    }
}

// ---------------------------------------------------------------------
// Open
// ---------------------------------------------------------------------

/// Open-addressed table with linear probing at ≤ 50% load. Capacity is
/// a power of two; a key probes from `mix64(key) & mask`. Entries were
/// inserted in ascending key order, making the layout canonical.
pub struct OpenSubstrate<V> {
    pub(crate) slots: Vec<Option<(u64, V)>>,
    pub(crate) mask: u64,
}

impl<V: Measured + Clone + Wire> Substrate<V> for OpenSubstrate<V> {
    fn seal_pairs(pairs: Vec<(u64, V)>) -> Self {
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 < w[1].0),
            "open seal input must be strictly ascending by key"
        );
        let cap = pairs.len().saturating_mul(2).next_power_of_two().max(16);
        let mask = cap as u64 - 1;
        let mut slots: Vec<Option<(u64, V)>> = (0..cap).map(|_| None).collect();
        for (k, v) in pairs {
            let mut i = (mix64(k) & mask) as usize;
            while slots[i].is_some() {
                i = (i + 1) & mask as usize;
            }
            slots[i] = Some((k, v));
        }
        OpenSubstrate { slots, mask }
    }

    fn kind(&self) -> ReprKind {
        ReprKind::Open
    }

    #[inline]
    fn get(&self, key: u64) -> Option<&V> {
        let mut i = (mix64(key) & self.mask) as usize;
        loop {
            match &self.slots[i] {
                None => return None,
                Some((k, v)) if *k == key => return Some(v),
                Some(_) => i = (i + 1) & self.mask as usize,
            }
        }
    }

    #[inline]
    fn prefetch(&self, key: u64) {
        #[cfg(target_arch = "x86_64")]
        {
            use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let i = (mix64(key) & self.mask) as usize;
            #[allow(unsafe_code)]
            // SAFETY: `mask` is `capacity - 1` for a power-of-two
            // capacity, so the index is in bounds; prefetch dereferences
            // nothing.
            unsafe {
                _mm_prefetch(self.slots.as_ptr().add(i) as *const i8, _MM_HINT_T0)
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = key;
    }

    fn fingerprint_slots(&self) -> Vec<u64> {
        self.slots
            .iter()
            .map(|s| s.as_ref().map_or(u64::MAX, |(k, _)| *k))
            .collect()
    }

    fn iter_pairs<'s>(&'s self) -> Box<dyn Iterator<Item = (u64, &'s V)> + 's> {
        Box::new(
            self.slots
                .iter()
                .filter_map(|s| s.as_ref().map(|(k, v)| (*k, v))),
        )
    }
}

// ---------------------------------------------------------------------
// Sharded (pre-flat baseline)
// ---------------------------------------------------------------------

/// The pre-flat layout: `mix64` picks a shard, the shard's map hashes
/// again. Kept behind `AMPC_STORE=sharded` for perf A/Bs.
pub struct ShardedSubstrate<V> {
    pub(crate) shards: Vec<FxHashMap<u64, V>>,
}

impl<V: Measured + Clone + Wire> Substrate<V> for ShardedSubstrate<V> {
    fn seal_pairs(pairs: Vec<(u64, V)>) -> Self {
        let mut shards: Vec<FxHashMap<u64, V>> =
            (0..SEAL_SHARDS).map(|_| FxHashMap::default()).collect();
        for (k, v) in pairs {
            shards[(mix64(k) % SEAL_SHARDS as u64) as usize].insert(k, v);
        }
        ShardedSubstrate { shards }
    }

    fn kind(&self) -> ReprKind {
        ReprKind::Sharded
    }

    #[inline]
    fn get(&self, key: u64) -> Option<&V> {
        self.shards[(mix64(key) % self.shards.len() as u64) as usize].get(&key)
    }

    fn fingerprint_slots(&self) -> Vec<u64> {
        // In-shard layout is not canonical: report per-shard key sets in
        // sorted order with `u64::MAX` shard boundaries.
        let mut out = Vec::new();
        for shard in &self.shards {
            let mut keys: Vec<u64> = shard.keys().copied().collect();
            keys.sort_unstable();
            out.extend(keys);
            out.push(u64::MAX);
        }
        out
    }

    fn iter_pairs<'s>(&'s self) -> Box<dyn Iterator<Item = (u64, &'s V)> + 's> {
        Box::new(
            self.shards
                .iter()
                .flat_map(|s| s.iter().map(|(&k, v)| (k, v))),
        )
    }
}

// ---------------------------------------------------------------------
// Socket
// ---------------------------------------------------------------------

/// The key index a socket-backed generation keeps locally: exactly the
/// flat layout's slot structure **minus the values**, so slot lookup,
/// miss detection and the layout fingerprint never touch the wire, and
/// fingerprints equal the flat substrate's by construction.
enum SocketIndex {
    /// Mirror of [`DenseSubstrate`]: the occupancy bitmap alone.
    Dense { occupied: Vec<u64>, n_slots: usize },
    /// Mirror of [`OpenSubstrate`]: the keys in probe order. `None`
    /// marks an empty slot (`u64::MAX` is a legal key, so no sentinel).
    Open { keys: Vec<Option<u64>>, mask: u64 },
}

/// A sealed generation whose values live in shard-server processes
/// ([`crate::socket`]), selected by `AMPC_STORE=socket`.
///
/// Locally absent keys are answered from the index with **zero** wire
/// traffic. Present keys are fetched over the wire in per-shard batches
/// and memoized into per-slot cells, so references borrow from this
/// substrate with the ordinary generation lifetime and a re-read is
/// free. Dropping the substrate tells the servers to free the
/// generation.
pub struct SocketSubstrate<V> {
    index: SocketIndex,
    /// One memoization cell per slot; a racing duplicate fetch decodes
    /// the same bytes, so whichever `set` wins stores an equal value.
    cells: Vec<OnceLock<V>>,
    gen_id: u64,
}

impl<V: Measured + Clone + Wire> SocketSubstrate<V> {
    /// Offloads a sealed dense layout to the shard servers, keeping its
    /// occupancy bitmap as the local index.
    pub(crate) fn offload_dense(slots: Vec<Option<V>>, occupied: Vec<u64>) -> Self {
        let n_slots = slots.len();
        let gen_id = socket::next_gen_id();
        let cluster = socket::cluster();
        let mut by_shard: Vec<Vec<(u64, Vec<u8>)>> =
            (0..cluster.shard_count()).map(|_| Vec::new()).collect();
        for (w, &bits) in occupied.iter().enumerate() {
            for k in (BitIter {
                bits,
                base: w as u64 * 64,
            }) {
                let v = slots[k as usize].as_ref().expect("bitmap/slot agree");
                by_shard[cluster.shard_of(k)].push((k, encode_to_vec(v)));
            }
        }
        for (shard, entries) in by_shard.iter().enumerate() {
            if !entries.is_empty() {
                cluster.load(gen_id, shard, entries);
            }
        }
        SocketSubstrate {
            index: SocketIndex::Dense { occupied, n_slots },
            cells: (0..n_slots).map(|_| OnceLock::new()).collect(),
            gen_id,
        }
    }

    /// Offloads a sealed open layout, keeping its probe-order key array
    /// as the local index.
    pub(crate) fn offload_open(slots: Vec<Option<(u64, V)>>, mask: u64) -> Self {
        let gen_id = socket::next_gen_id();
        let cluster = socket::cluster();
        let mut by_shard: Vec<Vec<(u64, Vec<u8>)>> =
            (0..cluster.shard_count()).map(|_| Vec::new()).collect();
        let keys: Vec<Option<u64>> = slots.iter().map(|s| s.as_ref().map(|(k, _)| *k)).collect();
        for (k, v) in slots.iter().flatten() {
            by_shard[cluster.shard_of(*k)].push((*k, encode_to_vec(v)));
        }
        for (shard, entries) in by_shard.iter().enumerate() {
            if !entries.is_empty() {
                cluster.load(gen_id, shard, entries);
            }
        }
        let n_slots = keys.len();
        SocketSubstrate {
            index: SocketIndex::Open { keys, mask },
            cells: (0..n_slots).map(|_| OnceLock::new()).collect(),
            gen_id,
        }
    }

    /// Which slot `key` occupies, from the local index alone.
    #[inline]
    fn slot_of(&self, key: u64) -> Option<usize> {
        match &self.index {
            SocketIndex::Dense { occupied, n_slots } => {
                let s = key as usize;
                if s < *n_slots && occupied[s / 64] & (1u64 << (s % 64)) != 0 {
                    Some(s)
                } else {
                    None
                }
            }
            SocketIndex::Open { keys, mask } => {
                let mut i = (mix64(key) & mask) as usize;
                loop {
                    match keys[i] {
                        None => return None,
                        Some(k) if k == key => return Some(i),
                        Some(_) => i = (i + 1) & *mask as usize,
                    }
                }
            }
        }
    }

    /// Fetches the given `(key, slot)` pairs from their shard servers —
    /// one wire request per shard — decoding and memoizing each value.
    ///
    /// # Panics
    /// When a server does not hold a key the index says exists: that
    /// means the server lost the generation (crash + respawn), and the
    /// determinism contract forbids quietly serving an absence.
    fn fetch_slots(&self, wanted: &[(u64, usize)]) {
        let cluster = socket::cluster();
        let mut by_shard: Vec<Vec<(u64, usize)>> =
            (0..cluster.shard_count()).map(|_| Vec::new()).collect();
        for &(k, s) in wanted {
            by_shard[cluster.shard_of(k)].push((k, s));
        }
        for (shard, entries) in by_shard.iter().enumerate() {
            if entries.is_empty() {
                continue;
            }
            let keys: Vec<u64> = entries.iter().map(|&(k, _)| k).collect();
            let blobs = cluster.get_batch(self.gen_id, shard, &keys);
            for (&(k, s), blob) in entries.iter().zip(blobs) {
                let Some(blob) = blob else {
                    panic!(
                        "socket substrate: generation {} lost key {k} \
                         (shard server restarted?) — cannot serve a \
                         schedule-dependent absence",
                        self.gen_id
                    );
                };
                let mut buf = &blob[..];
                let v = V::wire_decode(&mut buf)
                    .expect("socket substrate: shard returned an undecodable value");
                debug_assert!(buf.is_empty(), "trailing bytes after decoded value");
                let _ = self.cells[s].set(v);
            }
        }
    }

    /// Fetches every present-but-unfetched slot (the iteration path),
    /// in bounded chunks.
    fn fetch_all(&self) {
        const CHUNK: usize = 4096;
        let mut missing: Vec<(u64, usize)> = Vec::new();
        let flush = |missing: &mut Vec<(u64, usize)>| {
            if !missing.is_empty() {
                self.fetch_slots(missing);
                missing.clear();
            }
        };
        match &self.index {
            SocketIndex::Dense { occupied, .. } => {
                for (w, &bits) in occupied.iter().enumerate() {
                    for k in (BitIter {
                        bits,
                        base: w as u64 * 64,
                    }) {
                        if self.cells[k as usize].get().is_none() {
                            missing.push((k, k as usize));
                            if missing.len() >= CHUNK {
                                flush(&mut missing);
                            }
                        }
                    }
                }
            }
            SocketIndex::Open { keys, .. } => {
                for (s, k) in keys.iter().enumerate() {
                    if let Some(k) = k {
                        if self.cells[s].get().is_none() {
                            missing.push((*k, s));
                            if missing.len() >= CHUNK {
                                flush(&mut missing);
                            }
                        }
                    }
                }
            }
        }
        flush(&mut missing);
    }
}

impl<V> Drop for SocketSubstrate<V> {
    fn drop(&mut self) {
        // Best-effort: free the generation's blobs server-side.
        socket::cluster().drop_gen(self.gen_id);
    }
}

impl<V: Measured + Clone + Wire> Substrate<V> for SocketSubstrate<V> {
    fn seal_pairs(pairs: Vec<(u64, V)>) -> Self {
        // Same layout-selection rule as the flat seal, applied to the
        // key index; the values go to the servers either way.
        let max_key = pairs.iter().map(|&(k, _)| k).max().unwrap_or(0);
        if !pairs.is_empty() && dense_eligible(pairs.len(), max_key) {
            let dense = DenseSubstrate::seal_pairs(pairs);
            SocketSubstrate::offload_dense(dense.slots, dense.occupied)
        } else {
            let open = OpenSubstrate::seal_pairs(pairs);
            SocketSubstrate::offload_open(open.slots, open.mask)
        }
    }

    fn kind(&self) -> ReprKind {
        match &self.index {
            SocketIndex::Dense { .. } => ReprKind::Dense,
            SocketIndex::Open { .. } => ReprKind::Open,
        }
    }

    fn backend(&self) -> StoreBackend {
        StoreBackend::Socket
    }

    fn get(&self, key: u64) -> Option<&V> {
        let s = self.slot_of(key)?;
        if self.cells[s].get().is_none() {
            self.fetch_slots(&[(key, s)]);
        }
        Some(self.cells[s].get().expect("fetched or memoized above"))
    }

    fn get_batch_with<'s>(&'s self, keys: &[u64], visit: &mut dyn FnMut(usize, Option<&'s V>)) {
        // One wire request per shard for the batch's unfetched keys,
        // then every visit is answered from the memo cells.
        let mut missing: Vec<(u64, usize)> = Vec::new();
        for &k in keys {
            if let Some(s) = self.slot_of(k) {
                if self.cells[s].get().is_none() {
                    missing.push((k, s));
                }
            }
        }
        if !missing.is_empty() {
            missing.sort_unstable_by_key(|&(_, s)| s);
            missing.dedup_by_key(|&mut (_, s)| s);
            self.fetch_slots(&missing);
        }
        for (i, &k) in keys.iter().enumerate() {
            visit(i, self.slot_of(k).and_then(|s| self.cells[s].get()));
        }
    }

    fn fingerprint_slots(&self) -> Vec<u64> {
        match &self.index {
            SocketIndex::Dense { occupied, n_slots } => (0..*n_slots)
                .map(|s| {
                    if occupied[s / 64] & (1u64 << (s % 64)) != 0 {
                        s as u64
                    } else {
                        u64::MAX
                    }
                })
                .collect(),
            SocketIndex::Open { keys, .. } => keys.iter().map(|k| k.unwrap_or(u64::MAX)).collect(),
        }
    }

    fn iter_pairs<'s>(&'s self) -> Box<dyn Iterator<Item = (u64, &'s V)> + 's> {
        self.fetch_all();
        match &self.index {
            SocketIndex::Dense { occupied, .. } => Box::new(
                occupied
                    .iter()
                    .enumerate()
                    .flat_map(move |(w, &bits)| BitIter {
                        bits,
                        base: w as u64 * 64,
                    })
                    .map(move |k| {
                        (
                            k,
                            self.cells[k as usize].get().expect("fetch_all populated"),
                        )
                    }),
            ),
            SocketIndex::Open { keys, .. } => {
                Box::new(keys.iter().enumerate().filter_map(move |(s, k)| {
                    k.map(|k| (k, self.cells[s].get().expect("fetch_all populated")))
                }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(n: u64) -> Vec<(u64, u64)> {
        (0..n).map(|k| (k, k.wrapping_mul(7))).collect()
    }

    fn sparse_pairs(n: u64) -> Vec<(u64, u64)> {
        let mut p: Vec<(u64, u64)> = (0..n)
            .map(|k| (k.wrapping_mul(0x9E37_79B9_7F4A_7C15), k))
            .collect();
        p.sort_unstable_by_key(|&(k, _)| k);
        p
    }

    #[test]
    fn in_memory_substrates_agree_on_reads() {
        let dense = DenseSubstrate::seal_pairs(pairs(300));
        let open = OpenSubstrate::seal_pairs(pairs(300));
        let sharded = ShardedSubstrate::seal_pairs(pairs(300));
        for k in 0..400u64 {
            assert_eq!(dense.get(k), open.get(k), "key {k}");
            assert_eq!(dense.get(k), sharded.get(k), "key {k}");
        }
        assert_eq!(dense.kind(), ReprKind::Dense);
        assert_eq!(open.kind(), ReprKind::Open);
        assert_eq!(sharded.kind(), ReprKind::Sharded);
        assert_eq!(dense.backend(), StoreBackend::InMemory);
    }

    #[test]
    fn socket_substrate_matches_flat_reads_and_fingerprint() {
        for input in [pairs(500), sparse_pairs(200)] {
            let flat_dense = dense_eligible(input.len(), input.last().unwrap().0);
            let socket = SocketSubstrate::seal_pairs(input.clone());
            assert_eq!(socket.backend(), StoreBackend::Socket);
            if flat_dense {
                let flat = DenseSubstrate::seal_pairs(input.clone());
                assert_eq!(socket.kind(), flat.kind());
                assert_eq!(socket.fingerprint_slots(), flat.fingerprint_slots());
            } else {
                let flat = OpenSubstrate::seal_pairs(input.clone());
                assert_eq!(socket.kind(), flat.kind());
                assert_eq!(socket.fingerprint_slots(), flat.fingerprint_slots());
            }
            for &(k, v) in &input {
                assert_eq!(socket.get(k), Some(&v), "key {k}");
                assert_eq!(socket.get(k ^ (1 << 62)), None);
            }
            let mut seen: Vec<(u64, u64)> = socket.iter_pairs().map(|(k, v)| (k, *v)).collect();
            seen.sort_unstable_by_key(|&(k, _)| k);
            assert_eq!(seen, input);
        }
    }

    #[test]
    fn socket_batch_read_is_memoized() {
        let socket = SocketSubstrate::seal_pairs(pairs(100));
        let before = socket::wire_metrics();
        let keys: Vec<u64> = (0..100).collect();
        let mut hits = 0;
        socket.get_batch_with(&keys, &mut |_, v| hits += usize::from(v.is_some()));
        assert_eq!(hits, 100);
        let mid = socket::wire_metrics();
        assert!(
            mid.requests > before.requests,
            "first read crosses the wire"
        );
        socket.get_batch_with(&keys, &mut |_, _| {});
        // Second read: everything memoized, no new wire traffic from
        // this substrate (other tests may run concurrently, so compare
        // via a fresh all-memoized batch being answerable at all).
        for &k in &keys {
            assert!(socket.get(k).is_some());
        }
    }

    #[test]
    fn absent_keys_cost_no_wire_traffic() {
        let socket = SocketSubstrate::seal_pairs(pairs(50));
        // Force-fetch everything once.
        socket.get_batch_with(&(0..50u64).collect::<Vec<_>>(), &mut |_, _| {});
        let misses: Vec<u64> = (1000..1100u64).collect();
        let mut all_none = true;
        socket.get_batch_with(&misses, &mut |_, v| all_none &= v.is_none());
        assert!(all_none);
    }
}
