//! The network/storage cost model.
//!
//! The paper's running times are dominated by three cost sources it
//! analyzes explicitly (§5.3 "Round-Complexity and Communication",
//! §5.7): per-shuffle overhead and durable-storage bandwidth, KV-store
//! lookup latency (RDMA vs TCP/IP, Table 4), and KV-store throughput
//! (~1 Gb/s per machine observed, Figure 9 discussion). We reproduce the
//! *shape* of those results by charging the same cost sources with fixed
//! constants, producing deterministic simulated times.
//!
//! Constants are calibrated once (see `DESIGN.md` §6) to the hardware the
//! paper describes and then held fixed for every experiment, so relative
//! comparisons (speedup factors, breakdown fractions) are meaningful.

use serde::{Deserialize, Serialize};

/// Transport used for key-value store communication (Table 4 contrasts
/// these two).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Network {
    /// Remote Direct Memory Access: microsecond-scale lookups.
    Rdma,
    /// RPC over TCP/IP: an order of magnitude slower per lookup.
    Tcp,
}

/// Cost-model constants. All times in nanoseconds, bandwidths in bytes
/// per second.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostConfig {
    /// Transport for KV lookups.
    pub network: Network,
    /// Latency of one RDMA lookup (paper: "as low as a few microseconds").
    pub rdma_latency_ns: u64,
    /// Latency of one TCP/IP RPC lookup.
    pub tcp_latency_ns: u64,
    /// Per-machine KV-store throughput (paper observed ≈1 Gb/s/machine).
    pub kv_bandwidth_bps: u64,
    /// Per-machine durable-storage shuffle throughput. Shuffles write to
    /// (and re-read from) replicated persistent storage, which is the
    /// expensive part of every MPC round.
    pub shuffle_bandwidth_bps: u64,
    /// Fixed cost of spawning a shuffle stage: scheduling, logging,
    /// barrier. Charged once per shuffle.
    pub round_overhead_ns: u64,
    /// Fixed cost of spawning a non-shuffle stage (an AMPC map round):
    /// cheaper than a shuffle because nothing is persisted, but not free.
    pub stage_overhead_ns: u64,
    /// Whether the multithreading optimization (§5.3) is enabled:
    /// synchronous lookups from many threads overlap, dividing effective
    /// per-lookup latency by [`Self::threads_per_machine`].
    pub multithreading: bool,
    /// Concurrent in-flight lookups per machine when multithreading.
    pub threads_per_machine: u64,
    /// In-flight lookups per machine *without* the multithreading
    /// optimization: even a single synchronous worker overlaps some
    /// requests through the network stack, which is why the paper's
    /// unoptimized runs are slower by small factors, not by the full
    /// thread count.
    pub base_parallelism: u64,
    /// Cost charged per local computation operation.
    pub compute_ns_per_op: u64,
    /// Calibration factor: every simulated byte/query/op represents this
    /// many real ones. The dataset analogues are 100–10000x smaller than
    /// the paper's inputs (DESIGN.md §1); charging volumes at the
    /// analogue scale would make fixed round overheads swamp every data
    /// effect the figures are about. The harness sets this to the
    /// analogue's downscale factor so that simulated volumes land at the
    /// magnitudes of the paper's environment; unit tests keep 1.
    pub data_scale: u64,
}

impl Default for CostConfig {
    fn default() -> Self {
        CostConfig {
            network: Network::Rdma,
            rdma_latency_ns: 5_000,             // 5 µs
            tcp_latency_ns: 60_000,             // 60 µs
            shuffle_bandwidth_bps: 250_000_000, // 250 MB/s durable storage
            round_overhead_ns: 15_000_000_000,  // 15 s per shuffle stage
            stage_overhead_ns: 1_000_000_000,   // 1 s per map stage
            multithreading: true,
            threads_per_machine: 64,
            base_parallelism: 8,
            kv_bandwidth_bps: 250_000_000, // 2 Gb/s KV network per machine
            compute_ns_per_op: 1,
            data_scale: 1,
        }
    }
}

impl CostConfig {
    /// The default configuration with the given transport.
    pub fn with_network(network: Network) -> Self {
        CostConfig {
            network,
            ..Default::default()
        }
    }

    /// Disables both AMPC optimizations (Figure 4's "Unoptimized" bar).
    pub fn unoptimized(mut self) -> Self {
        self.multithreading = false;
        self
    }

    /// Effective latency of one lookup after latency hiding.
    #[inline]
    pub fn effective_lookup_latency_ns(&self) -> f64 {
        let base = match self.network {
            Network::Rdma => self.rdma_latency_ns,
            Network::Tcp => self.tcp_latency_ns,
        } as f64;
        if self.multithreading {
            base / self.threads_per_machine as f64
        } else {
            base / self.base_parallelism.max(1) as f64
        }
    }

    /// Simulated time for one machine to perform `round_trips` KV-store
    /// round trips transferring `bytes` total: latency (possibly hidden
    /// by multithreading) is charged **per round trip** and throughput
    /// **per byte**. Volumes are scaled by [`Self::data_scale`].
    ///
    /// A round trip is one accounted *batch*
    /// ([`crate::CommStats::batches`]): a `get_many` of 1000 independent
    /// keys pays one latency and 1000 keys of bandwidth, while 1000
    /// dependent single-key lookups pay 1000 latencies — the §5.3
    /// distinction that makes adaptive *depth*, not query volume, the
    /// cost of a round. Callers running the single-key baseline pass
    /// `queries + writes` (each op is its own round trip there).
    pub fn kv_time_ns(&self, round_trips: u64, bytes: u64) -> u64 {
        let s = self.data_scale as f64;
        let latency = self.effective_lookup_latency_ns() * round_trips as f64 * s;
        let transfer = bytes as f64 * s * 1e9 / self.kv_bandwidth_bps as f64;
        (latency + transfer) as u64
    }

    /// Simulated time charged for chaos-dropped DHT batches
    /// ([`crate::fault::DropPlan`]): every dropped attempt
    /// (`retries`) pays one effective lookup latency — the wasted
    /// round trip — and the capped exponential backoff waits add
    /// `backoff_units` further latencies (a batch that dropped `k`
    /// times waited `2^k − 1` base units, with the base wait set to
    /// one effective lookup latency). Scaled by [`Self::data_scale`]
    /// like every other volume term; zero when both counters are zero,
    /// so fault-free runs charge nothing here.
    pub fn retry_time_ns(&self, retries: u64, backoff_units: u64) -> u64 {
        if retries == 0 && backoff_units == 0 {
            return 0;
        }
        let s = self.data_scale as f64;
        (self.effective_lookup_latency_ns() * (retries + backoff_units) as f64 * s) as u64
    }

    /// Simulated time for one machine to shuffle `bytes` (write to durable
    /// storage + read back on the consumer side — we charge the write;
    /// the read is the consumer's input scan, also charged here to keep
    /// a single knob). Scaled by [`Self::data_scale`].
    pub fn shuffle_time_ns(&self, bytes: u64) -> u64 {
        (bytes as f64 * self.data_scale as f64 * 1e9 / self.shuffle_bandwidth_bps as f64) as u64
    }

    /// Simulated time for `ops` local operations (scaled by
    /// [`Self::data_scale`]).
    pub fn compute_time_ns(&self, ops: u64) -> u64 {
        ((ops * self.compute_ns_per_op) as f64 * self.data_scale as f64) as u64
    }
}

/// Formats nanoseconds as adaptive human-readable time.
pub fn format_ns(ns: u64) -> String {
    if ns >= 60_000_000_000 {
        format!("{:.1}min", ns as f64 / 60e9)
    } else if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_slower_than_rdma() {
        let rdma = CostConfig::with_network(Network::Rdma);
        let tcp = CostConfig::with_network(Network::Tcp);
        assert!(tcp.kv_time_ns(1000, 0) > rdma.kv_time_ns(1000, 0));
    }

    #[test]
    fn multithreading_hides_latency() {
        let on = CostConfig::default();
        let off = CostConfig::default().unoptimized();
        assert!(on.kv_time_ns(1_000_000, 0) < off.kv_time_ns(1_000_000, 0));
        let ratio = off.kv_time_ns(1_000_000, 0) as f64 / on.kv_time_ns(1_000_000, 0) as f64;
        let cfg = CostConfig::default();
        let expect = cfg.threads_per_machine as f64 / cfg.base_parallelism as f64;
        assert!((ratio - expect).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn data_scale_multiplies_volume_terms() {
        let mut cfg = CostConfig::default();
        let base = cfg.shuffle_time_ns(1_000_000);
        cfg.data_scale = 100;
        assert_eq!(cfg.shuffle_time_ns(1_000_000), 100 * base);
        assert!(cfg.kv_time_ns(10, 0) >= 99 * CostConfig::default().kv_time_ns(10, 0));
    }

    #[test]
    fn bandwidth_term_matters_for_large_transfers() {
        let cfg = CostConfig::default();
        let expect = 1e9 * 1e9 / cfg.kv_bandwidth_bps as f64; // 1 GB transfer
        let t = cfg.kv_time_ns(1, 1_000_000_000) as f64;
        assert!((t - expect).abs() / expect < 0.05, "{t} vs {expect}");
    }

    #[test]
    fn batching_cuts_latency_not_bandwidth() {
        let cfg = CostConfig::default();
        let bytes = 1_000_000u64;
        // Same key volume, 100x fewer round trips: strictly cheaper,
        // but never cheaper than the pure bandwidth floor.
        let single = cfg.kv_time_ns(10_000, bytes);
        let batched = cfg.kv_time_ns(100, bytes);
        assert!(batched < single, "{batched} vs {single}");
        assert!(batched >= cfg.kv_time_ns(0, bytes));
    }

    #[test]
    fn retry_time_charges_drops_and_backoff() {
        let cfg = CostConfig::default();
        assert_eq!(cfg.retry_time_ns(0, 0), 0);
        let one = cfg.retry_time_ns(1, 1);
        assert!(one > 0);
        // Linear in both counters, and data_scale multiplies.
        assert_eq!(cfg.retry_time_ns(2, 2), 2 * one);
        let mut scaled = cfg;
        scaled.data_scale = 10;
        // ~10x (exact up to sub-ns truncation of the effective latency).
        let t = scaled.retry_time_ns(1, 1);
        assert!(t >= 10 * one && t <= 10 * (one + 1), "{t} vs 10*{one}");
    }

    #[test]
    fn shuffle_time_scales_linearly() {
        let cfg = CostConfig::default();
        assert_eq!(
            cfg.shuffle_time_ns(500_000_000),
            2 * cfg.shuffle_time_ns(250_000_000)
        );
    }

    #[test]
    fn format_ns_ranges() {
        assert_eq!(format_ns(500), "500ns");
        assert_eq!(format_ns(1_500), "1.5µs");
        assert_eq!(format_ns(2_500_000), "2.5ms");
        assert_eq!(format_ns(3_100_000_000), "3.10s");
        assert_eq!(format_ns(120_000_000_000), "2.0min");
    }
}
