//! DHT-layer fault injection: seeded batch drops with capped
//! exponential-backoff retries.
//!
//! The paper's serving environment (§5.1) runs AMPC jobs in a
//! low-priority batch tier where requests to the shared key-value
//! service can time out and must be re-sent. A [`DropPlan`] simulates
//! that deterministically: every **accounted batch** a
//! [`crate::MachineHandle`] issues (a `get_many`/`put_many` round trip,
//! or a single-key op) rolls a seeded hash to decide how many attempts
//! are dropped before one succeeds. Drops never change what the batch
//! returns — the simulated store is durable and the retry always
//! re-issues identical keys — so outputs, `queries`, `writes`,
//! `batches` and byte counters are byte-identical to a fault-free run;
//! only the new retry counters ([`crate::metrics::CommStats::retries`],
//! `wasted_batches`, `backoff_units`) and the simulated time charged
//! from them differ.
//!
//! The number of drops per batch is a pure function of
//! `(seed, machine, batch ordinal, attempt)`, so a replayed machine
//! (runtime fault injection) reproduces exactly the same retry counters
//! as its first attempt, and two runs with equal seeds agree on every
//! counter regardless of thread count or storage layout.

/// A seeded plan for dropping DHT batches, carried by the
/// [`crate::MachineHandle`] of every machine in a round.
///
/// `retry_cap` bounds the consecutive drops of one batch: after
/// `retry_cap` failed attempts the next attempt always succeeds (drops
/// model transient congestion, not data loss — the capped retry is
/// what makes total backoff time bounded). A batch that dropped `k`
/// times waited `1 + 2 + … + 2^{k-1} = 2^k − 1` base backoff units
/// before its successful attempt; those units are accumulated into
/// [`crate::metrics::CommStats::backoff_units`] and charged by
/// [`crate::cost::CostConfig::retry_time_ns`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DropPlan {
    /// Seed for the per-batch drop decisions (already mixed with the
    /// stage index by the runtime, so every stage sees fresh rolls).
    pub seed: u64,
    /// Per-attempt drop probability, in per-mille (`0..=1000`).
    pub drop_pm: u16,
    /// Maximum consecutive drops of one batch.
    pub retry_cap: u8,
}

/// SplitMix64 finalizer: the workspace's standard seeded mixer (no
/// ambient randomness — determinism contract, DESIGN.md §3).
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DropPlan {
    /// Backoff units waited by a batch that was dropped `attempts`
    /// times before succeeding: `1 + 2 + … + 2^{attempts−1} =
    /// 2^attempts − 1`. This one definition is shared by the simulated
    /// accounting ([`crate::metrics::CommStats::backoff_units`], via
    /// `MachineHandle::account_batch`) and the socket substrate's
    /// *real* reconnect sleeps ([`crate::socket`]), so both retry paths
    /// follow the same capped exponential shape.
    #[inline]
    pub fn backoff_units(attempts: u32) -> u64 {
        (1u64 << attempts.min(63)) - 1
    }

    /// How many attempts of batch `ordinal` on `machine` are dropped
    /// before the successful one. Deterministic: a pure function of the
    /// plan and the arguments, independent of thread schedule, storage
    /// layout, or whether this is the machine's first attempt or a
    /// fault-injection replay.
    pub fn drops_for(&self, machine: u32, ordinal: u64) -> u32 {
        let cap = u32::from(self.retry_cap);
        let mut k = 0u32;
        while k < cap {
            let roll =
                mix64(self.seed ^ mix64(u64::from(machine) ^ mix64(ordinal ^ u64::from(k)))) % 1000;
            if roll < u64::from(self.drop_pm) {
                k += 1;
            } else {
                break;
            }
        }
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drops_are_deterministic_and_capped() {
        let plan = DropPlan {
            seed: 0xC0A5,
            drop_pm: 900,
            retry_cap: 3,
        };
        for m in 0..4u32 {
            for ord in 0..64u64 {
                let a = plan.drops_for(m, ord);
                let b = plan.drops_for(m, ord);
                assert_eq!(a, b, "same inputs must roll the same drops");
                assert!(a <= 3, "retry cap bounds consecutive drops");
            }
        }
    }

    #[test]
    fn zero_probability_never_drops() {
        let plan = DropPlan {
            seed: 7,
            drop_pm: 0,
            retry_cap: 8,
        };
        assert!((0..256u64).all(|ord| plan.drops_for(0, ord) == 0));
    }

    #[test]
    fn high_probability_drops_something() {
        let plan = DropPlan {
            seed: 7,
            drop_pm: 500,
            retry_cap: 4,
        };
        let total: u32 = (0..256u64).map(|ord| plan.drops_for(1, ord)).sum();
        assert!(total > 0, "a 50% drop rate must produce drops");
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let a = DropPlan {
            seed: 1,
            drop_pm: 300,
            retry_cap: 4,
        };
        let b = DropPlan { seed: 2, ..a };
        let roll = |p: DropPlan| -> Vec<u32> { (0..128u64).map(|o| p.drops_for(0, o)).collect() };
        assert_ne!(roll(a), roll(b));
    }
}
