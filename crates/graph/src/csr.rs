//! Compressed sparse row (CSR) graph representation.
//!
//! The immutable adjacency structure used by every algorithm in the
//! workspace. For an undirected graph each edge `{u, v}` is stored twice
//! (in `neighbors(u)` and `neighbors(v)`); [`CsrGraph::num_edges`] reports
//! the number of *undirected* edges.

use crate::edge::Edge;
use crate::NodeId;

/// An immutable unweighted graph in compressed sparse row form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v + 1]` indexes `targets` with `v`'s neighbors.
    offsets: Vec<usize>,
    /// Concatenated adjacency lists.
    targets: Vec<NodeId>,
    /// Number of undirected edges (half the directed arc count) when the
    /// graph is symmetric; for directed graphs this is the arc count.
    num_edges: usize,
    /// Whether the adjacency structure is symmetric (undirected).
    symmetric: bool,
}

impl CsrGraph {
    /// Builds a CSR graph from raw parts. `offsets` must have length
    /// `n + 1`, start at 0, be non-decreasing, and end at `targets.len()`.
    ///
    /// # Panics
    /// Panics if the invariants above are violated or a target is out of
    /// range.
    pub fn from_parts(offsets: Vec<usize>, targets: Vec<NodeId>, symmetric: bool) -> Self {
        assert!(!offsets.is_empty(), "offsets must have length n + 1 >= 1");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert_eq!(
            *offsets.last().unwrap(),
            targets.len(),
            "offsets must end at targets.len()"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        let n = offsets.len() - 1;
        assert!(
            targets.iter().all(|&t| (t as usize) < n),
            "all targets must be < n"
        );
        let num_edges = if symmetric {
            debug_assert!(
                targets.len().is_multiple_of(2),
                "symmetric graph has even arc count"
            );
            targets.len() / 2
        } else {
            targets.len()
        };
        CsrGraph {
            offsets,
            targets,
            num_edges,
            symmetric,
        }
    }

    /// An empty graph on `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        CsrGraph {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
            num_edges: 0,
            symmetric: true,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges (or arcs, for a directed graph).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of directed arcs stored (`2m` for symmetric graphs).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Whether the graph was built as a symmetric (undirected) structure.
    #[inline]
    pub fn is_symmetric(&self) -> bool {
        self.symmetric
    }

    /// Degree of `v` (out-degree for directed graphs).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The neighbors of `v` as a slice.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Iterator over all vertices.
    #[inline]
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes() as NodeId
    }

    /// Maximum degree, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes())
            .map(|v| self.degree(v as NodeId))
            .max()
            .unwrap_or(0)
    }

    /// Iterates each undirected edge once, with `u <= v` (skips nothing for
    /// directed graphs: every arc is yielded).
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        let symmetric = self.symmetric;
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| !symmetric || u <= v)
                .map(move |v| Edge::new(u, v))
        })
    }

    /// The raw offsets array (length `n + 1`).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw concatenated adjacency array.
    #[inline]
    pub fn targets(&self) -> &[NodeId] {
        &self.targets
    }

    /// True if `v`'s adjacency list contains `u` (binary search if sorted
    /// lists were requested at build time; linear scan otherwise — callers
    /// on hot paths should ensure sorted adjacency).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let nbrs = self.neighbors(u);
        if nbrs.len() >= 16 && nbrs.windows(2).all(|w| w[0] <= w[1]) {
            nbrs.binary_search(&v).is_ok()
        } else {
            nbrs.contains(&v)
        }
    }

    /// Approximate heap size in bytes (used by the communication
    /// accounting when a whole graph is shuffled).
    pub fn size_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<NodeId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle() -> CsrGraph {
        GraphBuilder::new(3)
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 0)
            .build()
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.neighbors(3), &[] as &[NodeId]);
    }

    #[test]
    fn triangle_structure() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(2, 1));
    }

    #[test]
    fn edges_iterator_yields_each_once() {
        let g = triangle();
        let edges: Vec<Edge> = g.edges().collect();
        assert_eq!(
            edges,
            vec![Edge::new(0, 1), Edge::new(0, 2), Edge::new(1, 2)]
        );
    }

    #[test]
    #[should_panic(expected = "offsets must start at 0")]
    fn from_parts_validates_first_offset() {
        CsrGraph::from_parts(vec![1, 1], vec![], true);
    }

    #[test]
    #[should_panic(expected = "all targets must be < n")]
    fn from_parts_validates_targets() {
        CsrGraph::from_parts(vec![0, 1], vec![7], false);
    }

    #[test]
    fn size_bytes_positive() {
        assert!(triangle().size_bytes() > 0);
    }
}
