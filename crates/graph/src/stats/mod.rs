//! Graph statistics — everything needed to regenerate Table 2 of the
//! paper (n, m, diameter, number of connected components, largest
//! component) plus degree-distribution summaries used in the experiment
//! write-ups.

mod components;
mod degrees;
mod diameter;

pub use components::{connected_components, same_partition, ComponentStats};
pub use degrees::{degree_stats, DegreeStats};
pub use diameter::{bfs_eccentricity, diameter_estimate, DiameterEstimate};

use crate::csr::CsrGraph;

/// One row of Table 2: the summary statistics for a dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphSummary {
    /// Number of vertices.
    pub num_nodes: usize,
    /// Number of undirected edges.
    pub num_edges: usize,
    /// Diameter estimate (exact for small graphs; double-sweep lower
    /// bound otherwise, mirroring the paper's `*` annotations).
    pub diameter: DiameterEstimate,
    /// Number of connected components.
    pub num_components: usize,
    /// Size (vertex count) of the largest connected component.
    pub largest_component: usize,
}

/// Computes the full Table-2-style summary for a graph.
pub fn summarize(g: &CsrGraph, seed: u64) -> GraphSummary {
    let cc = connected_components(g);
    let diameter = diameter_estimate(g, &cc, seed);
    GraphSummary {
        num_nodes: g.num_nodes(),
        num_edges: g.num_edges(),
        diameter,
        num_components: cc.num_components,
        largest_component: cc.largest_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn summary_of_two_cycles() {
        let g = gen::two_cycles(10, 1);
        let s = summarize(&g, 0);
        assert_eq!(s.num_nodes, 20);
        assert_eq!(s.num_edges, 20);
        assert_eq!(s.num_components, 2);
        assert_eq!(s.largest_component, 10);
        assert_eq!(s.diameter.value, 5); // cycle of length 10 has diameter 5
    }
}
