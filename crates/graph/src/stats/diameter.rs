//! Diameter estimation.
//!
//! Table 2 of the paper reports exact diameters where feasible and
//! double-sweep lower bounds (marked `*`) for the large graphs. We do the
//! same: exact all-pairs BFS for graphs up to a size threshold, and the
//! standard multi-start double-sweep heuristic above it.

use super::components::ComponentStats;
use crate::csr::CsrGraph;
use crate::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// A diameter value plus whether it is exact or a lower bound — mirroring
/// the `*` annotation in Table 2 of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiameterEstimate {
    /// The estimated diameter of the largest connected component.
    pub value: usize,
    /// True if computed exactly (all-pairs BFS); false for the
    /// double-sweep lower bound.
    pub exact: bool,
}

impl std::fmt::Display for DiameterEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.exact {
            write!(f, "{}", self.value)
        } else {
            write!(f, "{}*", self.value)
        }
    }
}

/// BFS from `source`; returns (farthest vertex, its distance).
pub fn bfs_eccentricity(g: &CsrGraph, source: NodeId) -> (NodeId, usize) {
    let mut dist = vec![usize::MAX; g.num_nodes()];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    let mut far = (source, 0usize);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        if dv > far.1 {
            far = (v, dv);
        }
        for &u in g.neighbors(v) {
            if dist[u as usize] == usize::MAX {
                dist[u as usize] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    far
}

/// Number of BFS runs the exact path affords (`n * bfs_cost` must stay
/// laptop-friendly).
const EXACT_THRESHOLD: usize = 2_000;
const SWEEP_STARTS: usize = 8;

/// Estimates the diameter of the largest component of `g`.
pub fn diameter_estimate(g: &CsrGraph, cc: &ComponentStats, seed: u64) -> DiameterEstimate {
    let n = g.num_nodes();
    if n == 0 {
        return DiameterEstimate {
            value: 0,
            exact: true,
        };
    }
    // Pick the label of the largest component.
    let mut counts: std::collections::HashMap<NodeId, usize> = std::collections::HashMap::new();
    for &l in &cc.label {
        *counts.entry(l).or_insert(0) += 1;
    }
    let (&big_label, _) = counts
        .iter()
        .max_by_key(|&(&l, &c)| (c, std::cmp::Reverse(l)))
        .unwrap();
    let members: Vec<NodeId> = (0..n as NodeId)
        .filter(|&v| cc.label[v as usize] == big_label)
        .collect();

    if members.len() <= EXACT_THRESHOLD {
        let mut best = 0usize;
        for &v in &members {
            let (_, ecc) = bfs_eccentricity(g, v);
            best = best.max(ecc);
        }
        DiameterEstimate {
            value: best,
            exact: true,
        }
    } else {
        // Multi-start double sweep: BFS from a random vertex, then BFS
        // from the farthest vertex found; repeat from several starts.
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut best = 0usize;
        for _ in 0..SWEEP_STARTS {
            let s = members[rng.gen_range(0..members.len())];
            let (far, _) = bfs_eccentricity(g, s);
            let (_, ecc) = bfs_eccentricity(g, far);
            best = best.max(ecc);
        }
        DiameterEstimate {
            value: best,
            exact: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::stats::connected_components;

    #[test]
    fn path_diameter_exact() {
        let g = gen::path(30);
        let cc = connected_components(&g);
        let d = diameter_estimate(&g, &cc, 0);
        assert_eq!(d.value, 29);
        assert!(d.exact);
    }

    #[test]
    fn cycle_diameter() {
        let g = gen::single_cycle(100, 5);
        let cc = connected_components(&g);
        let d = diameter_estimate(&g, &cc, 0);
        assert_eq!(d.value, 50);
    }

    #[test]
    fn double_sweep_on_large_cycle_is_good() {
        // Cycles are the worst case for double sweep but the bound is
        // still >= half the true diameter; for cycles it is exact.
        let g = gen::single_cycle(5000, 5);
        let cc = connected_components(&g);
        let d = diameter_estimate(&g, &cc, 0);
        assert!(!d.exact);
        assert!(d.value >= 2400, "double sweep too weak: {}", d.value);
        assert!(d.value <= 2500);
    }

    #[test]
    fn display_marks_inexact() {
        let d = DiameterEstimate {
            value: 12,
            exact: false,
        };
        assert_eq!(d.to_string(), "12*");
    }

    #[test]
    fn largest_component_selected() {
        // small triangle + long path: diameter comes from the path.
        let mut b = crate::GraphBuilder::new(23);
        b.push_edge(0, 1, 0);
        b.push_edge(1, 2, 0);
        b.push_edge(2, 0, 0);
        for i in 3..22 {
            b.push_edge(i, i + 1, 0);
        }
        let g = b.build();
        let cc = connected_components(&g);
        let d = diameter_estimate(&g, &cc, 0);
        assert_eq!(d.value, 19);
    }
}
