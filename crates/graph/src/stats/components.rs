//! Connected components via breadth-first search (the sequential oracle
//! every distributed connectivity algorithm in the workspace is checked
//! against).

use crate::csr::CsrGraph;
use crate::{NodeId, NO_NODE};
use std::collections::VecDeque;

/// Connected-component labelling plus summary counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComponentStats {
    /// `label[v]` = the smallest vertex id in `v`'s component (a
    /// canonical labelling, so two labellings of the same graph are
    /// directly comparable).
    pub label: Vec<NodeId>,
    /// Number of connected components.
    pub num_components: usize,
    /// Vertex count of the largest component.
    pub largest_size: usize,
}

impl ComponentStats {
    /// True if `u` and `v` are in the same component.
    #[inline]
    pub fn same_component(&self, u: NodeId, v: NodeId) -> bool {
        self.label[u as usize] == self.label[v as usize]
    }

    /// Sizes of all components, indexed by canonical label order.
    pub fn component_sizes(&self) -> Vec<usize> {
        let mut counts: std::collections::HashMap<NodeId, usize> = std::collections::HashMap::new();
        for &l in &self.label {
            *counts.entry(l).or_insert(0) += 1;
        }
        let mut sizes: Vec<(NodeId, usize)> = counts.into_iter().collect();
        sizes.sort_unstable();
        sizes.into_iter().map(|(_, s)| s).collect()
    }
}

/// BFS-based connected components with canonical (min-id) labels.
pub fn connected_components(g: &CsrGraph) -> ComponentStats {
    let n = g.num_nodes();
    let mut label = vec![NO_NODE; n];
    let mut queue = VecDeque::new();
    let mut num_components = 0usize;
    let mut largest = 0usize;
    for start in 0..n as NodeId {
        if label[start as usize] != NO_NODE {
            continue;
        }
        num_components += 1;
        let mut size = 0usize;
        label[start as usize] = start;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            size += 1;
            for &u in g.neighbors(v) {
                if label[u as usize] == NO_NODE {
                    label[u as usize] = start;
                    queue.push_back(u);
                }
            }
        }
        largest = largest.max(size);
    }
    ComponentStats {
        label,
        num_components,
        largest_size: largest,
    }
}

/// Checks whether two component labellings define the same partition
/// (regardless of which representative each one picked).
pub fn same_partition(a: &[NodeId], b: &[NodeId]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    // Map labels of `a` to labels of `b`, and vice versa; both maps must
    // be consistent functions.
    let mut fwd: std::collections::HashMap<NodeId, NodeId> = std::collections::HashMap::new();
    let mut bwd: std::collections::HashMap<NodeId, NodeId> = std::collections::HashMap::new();
    for (&la, &lb) in a.iter().zip(b.iter()) {
        if *fwd.entry(la).or_insert(lb) != lb {
            return false;
        }
        if *bwd.entry(lb).or_insert(la) != la {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::GraphBuilder;

    #[test]
    fn single_component_path() {
        let cc = connected_components(&gen::path(10));
        assert_eq!(cc.num_components, 1);
        assert_eq!(cc.largest_size, 10);
        assert!(cc.label.iter().all(|&l| l == 0));
    }

    #[test]
    fn two_components() {
        let g = GraphBuilder::new(5).add_edge(0, 1).add_edge(2, 3).build();
        let cc = connected_components(&g);
        assert_eq!(cc.num_components, 3); // {0,1}, {2,3}, {4}
        assert_eq!(cc.largest_size, 2);
        assert!(cc.same_component(0, 1));
        assert!(!cc.same_component(1, 2));
        assert_eq!(cc.component_sizes(), vec![2, 2, 1]);
    }

    #[test]
    fn isolated_vertices_are_components() {
        let g = CsrGraph::empty(4);
        let cc = connected_components(&g);
        assert_eq!(cc.num_components, 4);
        assert_eq!(cc.largest_size, 1);
    }

    #[test]
    fn same_partition_detects_relabelling() {
        let a = vec![0, 0, 2, 2];
        let b = vec![1, 1, 3, 3];
        let c = vec![0, 0, 0, 2];
        assert!(same_partition(&a, &b));
        assert!(!same_partition(&a, &c));
    }

    use crate::csr::CsrGraph;
}
