//! Degree-distribution summaries.

use crate::csr::CsrGraph;
use crate::NodeId;

/// Summary of a graph's degree distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Median degree.
    pub median: usize,
    /// 99th-percentile degree (skew indicator; the paper attributes MPC's
    /// poor ClueWeb performance to "many high degree vertices").
    pub p99: usize,
}

/// Computes degree statistics. Returns all-zero stats for empty graphs.
pub fn degree_stats(g: &CsrGraph) -> DegreeStats {
    let n = g.num_nodes();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            median: 0,
            p99: 0,
        };
    }
    let mut degrees: Vec<usize> = (0..n).map(|v| g.degree(v as NodeId)).collect();
    degrees.sort_unstable();
    let sum: usize = degrees.iter().sum();
    DegreeStats {
        min: degrees[0],
        max: degrees[n - 1],
        mean: sum as f64 / n as f64,
        median: degrees[n / 2],
        p99: degrees[(n - 1).min(n * 99 / 100)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn star_stats() {
        let s = degree_stats(&gen::star(101));
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert!((s.mean - 200.0 / 101.0).abs() < 1e-9);
        assert_eq!(s.median, 1);
    }

    #[test]
    fn cycle_stats_uniform() {
        let s = degree_stats(&gen::single_cycle(50, 0));
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 2);
        assert_eq!(s.p99, 2);
    }

    #[test]
    fn empty_graph() {
        let s = degree_stats(&crate::CsrGraph::empty(0));
        assert_eq!(s.max, 0);
    }
}
