//! # ampc-graph — graph substrate for the AMPC workspace
//!
//! This crate provides everything the algorithm crates need to talk about
//! graphs:
//!
//! * compact immutable representations ([`CsrGraph`], [`WeightedCsrGraph`])
//!   built through [`builder::GraphBuilder`];
//! * synthetic workload generators ([`gen`]) matched to the graph families
//!   used in the paper's evaluation (RMAT social-network analogues, the
//!   `2 × k` cycle family, Erdős–Rényi, Chung–Lu power-law, trees, grids);
//! * structural operations ([`ops`]) the algorithms rely on: symmetrization,
//!   ternarization (Algorithm 2 of the paper), line graphs, contraction,
//!   induced subgraphs and relabelling;
//! * statistics ([`stats`]) reproducing Table 2 of the paper (vertex/edge
//!   counts, connected components, diameter estimates);
//! * the registry of paper-dataset analogues ([`datasets`]), documenting the
//!   substitution of proprietary inputs by synthetic equivalents;
//! * plain-text edge-list I/O ([`io`]);
//! * the [`source::GraphSource`] grammar: one parseable string format
//!   (`rmat:…`, `er:…`, named datasets, `file:…`, …) from which every
//!   harness entry point loads its input;
//! * batch-dynamic update streams ([`dynamic`]): the
//!   `dyn:<base>:batches=B:ops=K` grammar, deterministic seeded
//!   insert/delete batch generators, and the [`dynamic::EdgeSet`]
//!   reference state machine the batch-dynamic kernels validate
//!   against.
//!
//! The representation convention throughout the workspace: **undirected
//! graphs are stored symmetrized** (every edge `{u, v}` appears in both
//! `neighbors(u)` and `neighbors(v)`), node identifiers are dense `u32`
//! values in `0..n`, and `m` counts *undirected* edges (so the neighbor
//! array has length `2m`).

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod builder;
pub mod csr;
pub mod datasets;
pub mod dynamic;
pub mod edge;
pub mod gen;
pub mod io;
pub mod ops;
pub mod source;
pub mod stats;
pub mod weighted;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use dynamic::DynamicSource;
pub use edge::{Edge, WeightedEdge};
pub use source::GraphSource;
pub use weighted::WeightedCsrGraph;

/// Dense node identifier. Nodes of an `n`-vertex graph are `0..n`.
pub type NodeId = u32;

/// Edge weights are unsigned integers; ties are broken by edge identity so
/// that minimum spanning forests are unique (see [`edge::WeightedEdge::key`]).
pub type Weight = u64;

/// The invalid / "no node" sentinel (`u32::MAX`).
pub const NO_NODE: NodeId = NodeId::MAX;
