//! Graph sources: one string grammar from which every harness entry
//! point (the `ampc` workload CLI, the figure binaries, tests) can load
//! any input the workspace knows how to produce.
//!
//! Grammar (case-insensitive names, `:`-separated arguments):
//!
//! | source | meaning |
//! |---|---|
//! | `ok` / `orkut`, `tw` / `twitter`, `fs` / `friendster`, `cw` / `clueweb`, `hl` / `hyperlink` | the Table 2 dataset analogues at the requested [`Scale`] |
//! | `two-cycles:K` | the `2 × k` cycle family dataset (scale-adjusted like all datasets) |
//! | `rmat:LOG_N,M[,social\|web]` | RMAT with `2^LOG_N` vertices, `M` edge samples |
//! | `er:N,M` | Erdős–Rényi `G(n, m)` |
//! | `chung-lu:N,M[,GAMMA]` | Chung–Lu power-law (default γ = 2.5) |
//! | `cycle:N` | a single cycle on `N` vertices |
//! | `pair:K` | two disjoint cycles on `K` vertices each (exact sizes, no scaling) |
//! | `path:N`, `star:N`, `complete:N` | classic graphs |
//! | `grid:RxC` | an `R × C` grid |
//! | `tree:N` | a uniform random tree |
//! | `file:PATH` | whitespace-separated edge list (`u v` per line) |
//!
//! Weighted inputs (MSF) are derived with the paper's §5.2 rule
//! `w(u, v) = deg(u) + deg(v)` via [`GraphSource::load_weighted`].

use crate::datasets::{Dataset, Scale};
use crate::gen::{self, RmatParams};
use crate::weighted::WeightedCsrGraph;
use crate::{io, CsrGraph};

/// A parsed graph source (see the module docs for the grammar).
#[derive(Clone, Debug, PartialEq)]
pub enum GraphSource {
    /// A named dataset analogue (scale-dependent).
    Dataset(Dataset),
    /// RMAT: `log_n`, edge samples, parameter family.
    Rmat {
        /// log₂ of the vertex count.
        log_n: u32,
        /// Number of edge samples.
        m: usize,
        /// Skew family.
        params: RmatParams,
    },
    /// Erdős–Rényi `G(n, m)`.
    ErdosRenyi {
        /// Vertex count.
        n: usize,
        /// Edge count.
        m: usize,
    },
    /// Chung–Lu power-law graph.
    ChungLu {
        /// Vertex count.
        n: usize,
        /// Edge count.
        m: usize,
        /// Power-law exponent.
        gamma: f64,
    },
    /// A single cycle on `n` vertices.
    Cycle(usize),
    /// Two disjoint cycles on `k` vertices each (exact, unscaled).
    CyclePair(usize),
    /// A path on `n` vertices.
    Path(usize),
    /// A star with `n - 1` leaves.
    Star(usize),
    /// The complete graph on `n` vertices.
    Complete(usize),
    /// An `r × c` grid.
    Grid(usize, usize),
    /// A uniform random tree on `n` vertices.
    Tree(usize),
    /// An edge-list file.
    File(String),
}

/// Splits `args` on commas, parsing each piece with `FromStr`.
fn parse_nums<T: std::str::FromStr>(args: &str, want: usize, what: &str) -> Result<Vec<T>, String> {
    let parts: Vec<&str> = args.split(',').collect();
    if parts.len() != want {
        return Err(format!(
            "{what}: expected {want} comma-separated argument(s), got {}",
            parts.len()
        ));
    }
    parts
        .iter()
        .map(|p| {
            p.trim()
                .parse::<T>()
                .map_err(|_| format!("{what}: cannot parse {:?} as a number", p.trim()))
        })
        .collect()
}

impl GraphSource {
    /// Parses a source string (see the module docs for the grammar).
    pub fn parse(s: &str) -> Result<GraphSource, String> {
        let s = s.trim();
        let (head, args) = match s.split_once(':') {
            Some((h, a)) => (h.to_ascii_lowercase(), a),
            None => (s.to_ascii_lowercase(), ""),
        };
        let need_args = |what: &str| -> Result<(), String> {
            if args.is_empty() {
                Err(format!(
                    "{what}: missing arguments (see the graph-source grammar)"
                ))
            } else {
                Ok(())
            }
        };
        match head.as_str() {
            "ok" | "orkut" => Ok(GraphSource::Dataset(Dataset::Orkut)),
            "tw" | "twitter" => Ok(GraphSource::Dataset(Dataset::Twitter)),
            "fs" | "friendster" => Ok(GraphSource::Dataset(Dataset::Friendster)),
            "cw" | "clueweb" => Ok(GraphSource::Dataset(Dataset::ClueWeb)),
            "hl" | "hyperlink" => Ok(GraphSource::Dataset(Dataset::Hyperlink)),
            "two-cycles" | "two_cycles" => {
                need_args("two-cycles")?;
                let v = parse_nums::<usize>(args, 1, "two-cycles")?;
                Ok(GraphSource::Dataset(Dataset::TwoCycles(v[0])))
            }
            "rmat" => {
                need_args("rmat")?;
                let parts: Vec<&str> = args.split(',').map(str::trim).collect();
                if parts.len() < 2 || parts.len() > 3 {
                    return Err("rmat: expected rmat:LOG_N,M[,social|web]".into());
                }
                let log_n: u32 = parts[0]
                    .parse()
                    .map_err(|_| format!("rmat: bad LOG_N {:?}", parts[0]))?;
                let m: usize = parts[1]
                    .parse()
                    .map_err(|_| format!("rmat: bad M {:?}", parts[1]))?;
                let params = match parts.get(2).copied().unwrap_or("social") {
                    "social" => RmatParams::SOCIAL,
                    "web" => RmatParams::WEB,
                    other => return Err(format!("rmat: unknown family {other:?} (social|web)")),
                };
                Ok(GraphSource::Rmat { log_n, m, params })
            }
            "er" | "erdos-renyi" => {
                need_args("er")?;
                let v = parse_nums::<usize>(args, 2, "er")?;
                Ok(GraphSource::ErdosRenyi { n: v[0], m: v[1] })
            }
            "chung-lu" | "chung_lu" => {
                need_args("chung-lu")?;
                let parts: Vec<&str> = args.split(',').map(str::trim).collect();
                if parts.len() < 2 || parts.len() > 3 {
                    return Err("chung-lu: expected chung-lu:N,M[,GAMMA]".into());
                }
                let n: usize = parts[0]
                    .parse()
                    .map_err(|_| format!("chung-lu: bad N {:?}", parts[0]))?;
                let m: usize = parts[1]
                    .parse()
                    .map_err(|_| format!("chung-lu: bad M {:?}", parts[1]))?;
                let gamma: f64 = match parts.get(2) {
                    Some(g) => g
                        .parse()
                        .map_err(|_| format!("chung-lu: bad GAMMA {g:?}"))?,
                    None => 2.5,
                };
                Ok(GraphSource::ChungLu { n, m, gamma })
            }
            "cycle" => {
                need_args("cycle")?;
                Ok(GraphSource::Cycle(parse_nums(args, 1, "cycle")?[0]))
            }
            "pair" => {
                need_args("pair")?;
                Ok(GraphSource::CyclePair(parse_nums(args, 1, "pair")?[0]))
            }
            "path" => {
                need_args("path")?;
                Ok(GraphSource::Path(parse_nums(args, 1, "path")?[0]))
            }
            "star" => {
                need_args("star")?;
                Ok(GraphSource::Star(parse_nums(args, 1, "star")?[0]))
            }
            "complete" => {
                need_args("complete")?;
                Ok(GraphSource::Complete(parse_nums(args, 1, "complete")?[0]))
            }
            "grid" => {
                need_args("grid")?;
                let parts: Vec<&str> = args.split('x').map(str::trim).collect();
                if parts.len() != 2 {
                    return Err("grid: expected grid:RxC".into());
                }
                let r: usize = parts[0]
                    .parse()
                    .map_err(|_| format!("grid: bad R {:?}", parts[0]))?;
                let c: usize = parts[1]
                    .parse()
                    .map_err(|_| format!("grid: bad C {:?}", parts[1]))?;
                Ok(GraphSource::Grid(r, c))
            }
            "tree" => {
                need_args("tree")?;
                Ok(GraphSource::Tree(parse_nums(args, 1, "tree")?[0]))
            }
            "file" => {
                need_args("file")?;
                Ok(GraphSource::File(args.to_string()))
            }
            other => Err(format!(
                "unknown graph source {other:?} — known: ok|tw|fs|cw|hl, two-cycles:K, \
                 rmat:LOG_N,M[,social|web], er:N,M, chung-lu:N,M[,GAMMA], cycle:N, pair:K, \
                 path:N, star:N, complete:N, grid:RxC, tree:N, file:PATH"
            )),
        }
    }

    /// A canonical human-readable description (used in run records).
    pub fn describe(&self) -> String {
        match self {
            // `Dataset::name` is the paper-table label; the cycle-pair
            // dataset's (`2x{k}`) is not itself parseable, so it
            // describes in grammar form to keep parse∘describe = id.
            GraphSource::Dataset(Dataset::TwoCycles(k)) => format!("two-cycles:{k}"),
            GraphSource::Dataset(d) => d.name(),
            GraphSource::Rmat { log_n, m, params } => {
                let fam = if *params == RmatParams::WEB {
                    "web"
                } else {
                    "social"
                };
                format!("rmat:{log_n},{m},{fam}")
            }
            GraphSource::ErdosRenyi { n, m } => format!("er:{n},{m}"),
            GraphSource::ChungLu { n, m, gamma } => format!("chung-lu:{n},{m},{gamma}"),
            GraphSource::Cycle(n) => format!("cycle:{n}"),
            GraphSource::CyclePair(k) => format!("pair:{k}"),
            GraphSource::Path(n) => format!("path:{n}"),
            GraphSource::Star(n) => format!("star:{n}"),
            GraphSource::Complete(n) => format!("complete:{n}"),
            GraphSource::Grid(r, c) => format!("grid:{r}x{c}"),
            GraphSource::Tree(n) => format!("tree:{n}"),
            GraphSource::File(p) => format!("file:{p}"),
        }
    }

    /// Loads (generates or reads) the graph. Dataset analogues honour
    /// `scale`; explicit generator sources use their literal sizes.
    pub fn load(&self, scale: Scale, seed: u64) -> Result<CsrGraph, String> {
        Ok(match self {
            GraphSource::Dataset(d) => d.generate(scale, seed),
            GraphSource::Rmat { log_n, m, params } => gen::rmat(*log_n, *m, *params, seed),
            GraphSource::ErdosRenyi { n, m } => gen::erdos_renyi(*n, *m, seed),
            GraphSource::ChungLu { n, m, gamma } => gen::chung_lu(*n, *m, *gamma, seed),
            GraphSource::Cycle(n) => gen::single_cycle(*n, seed),
            GraphSource::CyclePair(k) => gen::two_cycles(*k, seed),
            GraphSource::Path(n) => gen::path(*n),
            GraphSource::Star(n) => gen::star(*n),
            GraphSource::Complete(n) => gen::complete(*n),
            GraphSource::Grid(r, c) => gen::grid(*r, *c),
            GraphSource::Tree(n) => gen::random_tree(*n, seed),
            GraphSource::File(path) => {
                io::read_edge_list_file(path).map_err(|e| format!("file:{path}: {e:?}"))?
            }
        })
    }

    /// Loads the weighted variant with the paper's §5.2 degree rule.
    pub fn load_weighted(&self, scale: Scale, seed: u64) -> Result<WeightedCsrGraph, String> {
        Ok(gen::degree_weights(&self.load(scale, seed)?))
    }
}

impl std::str::FromStr for GraphSource {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        GraphSource::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_named_datasets() {
        assert_eq!(
            GraphSource::parse("OK").unwrap(),
            GraphSource::Dataset(Dataset::Orkut)
        );
        assert_eq!(
            GraphSource::parse("hyperlink").unwrap(),
            GraphSource::Dataset(Dataset::Hyperlink)
        );
        assert_eq!(
            GraphSource::parse("two-cycles:640").unwrap(),
            GraphSource::Dataset(Dataset::TwoCycles(640))
        );
    }

    #[test]
    fn parses_generators() {
        assert_eq!(
            GraphSource::parse("rmat:10,4000,web").unwrap(),
            GraphSource::Rmat {
                log_n: 10,
                m: 4000,
                params: RmatParams::WEB
            }
        );
        assert_eq!(
            GraphSource::parse("er:100, 250").unwrap(),
            GraphSource::ErdosRenyi { n: 100, m: 250 }
        );
        assert_eq!(
            GraphSource::parse("cycle:500").unwrap(),
            GraphSource::Cycle(500)
        );
        assert_eq!(
            GraphSource::parse("grid:3x7").unwrap(),
            GraphSource::Grid(3, 7)
        );
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "wat",
            "rmat:abc,5",
            "rmat:10",
            "rmat:10,100,mesh",
            "rmat:10,100,social,extra",
            "er:5",
            "er:1,2,3",
            "chung-lu:5",
            "chung-lu:5,9,fast",
            "grid:5",
            "grid:axb",
            "grid:3x4x5",
            "cycle:",
            "cycle:-4",
            "two-cycles:x",
            "file:",
            "",
            ":",
            "pair:1,2",
        ] {
            assert!(
                GraphSource::parse(bad).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn describe_round_trips() {
        for s in [
            "rmat:10,4000,social",
            "er:100,250",
            "cycle:500",
            "pair:250",
            "grid:3x7",
            "chung-lu:50,100,2.5",
            "path:9",
        ] {
            let parsed = GraphSource::parse(s).unwrap();
            assert_eq!(
                GraphSource::parse(&parsed.describe()).unwrap(),
                parsed,
                "{s}"
            );
        }
    }

    #[test]
    fn loads_deterministically() {
        let src = GraphSource::parse("er:80,200").unwrap();
        let a = src.load(Scale::Test, 7).unwrap();
        let b = src.load(Scale::Test, 7).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.num_nodes(), 80);

        let d = GraphSource::parse("ok").unwrap();
        assert_eq!(d.load(Scale::Test, 1).unwrap().num_nodes(), 256);
    }

    #[test]
    fn weighted_uses_degree_rule() {
        let src = GraphSource::parse("er:40,100").unwrap();
        let w = src.load_weighted(Scale::Test, 3).unwrap();
        let g = w.structure();
        for e in w.edges().take(20) {
            assert_eq!(e.w as usize, g.degree(e.u) + g.degree(e.v));
        }
    }

    #[test]
    fn file_source_reads_edge_list() {
        let dir = std::env::temp_dir().join("ampc_graph_source_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.el");
        std::fs::write(&path, "0 1\n1 2\n2 0\n").unwrap();
        let src = GraphSource::parse(&format!("file:{}", path.display())).unwrap();
        let g = src.load(Scale::Test, 0).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(GraphSource::parse("file:/definitely/not/there.el")
            .unwrap()
            .load(Scale::Test, 0)
            .is_err());
    }
}
