//! Batch-dynamic update streams: deterministic, seeded sequences of
//! edge insertions/deletions applied in batches.
//!
//! The static sources ([`crate::GraphSource`]) describe one-shot
//! inputs; this module describes *workloads that change*: a base graph
//! plus a schedule of update batches, which the batch-dynamic kernels
//! (`ampc-core`'s maintained connectivity, `ampc-mpc`'s
//! recompute-from-scratch baseline) consume batch by batch. Everything
//! here is deterministic given the spec: the same
//! [`DynamicSource`] string, scale and seeds always produce the same
//! initial graph and the same update batches, which is what lets the
//! cross-model equivalence tests pin maintained labels byte-identical
//! to recomputation after every batch.
//!
//! # Grammar
//!
//! ```text
//! dyn:<base-source>:batches=B:ops=K[:mix=churn|insert|delete][:seed=S]
//! ```
//!
//! `<base-source>` is any static [`GraphSource`] (it may itself contain
//! `:`); trailing `key=value` segments are the schedule options.
//! Examples: `dyn:rmat:10,4000:batches=8:ops=256`,
//! `dyn:er:300,420:batches=3:ops=48:mix=delete:seed=7`.

use crate::datasets::Scale;
use crate::{CsrGraph, GraphBuilder, GraphSource, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Whether an update inserts or deletes an edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UpdateKind {
    /// Add the edge (no-op if already present).
    Insert,
    /// Remove the edge (no-op if absent).
    Delete,
}

/// One edge update. Endpoints are stored canonically (`u < v`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EdgeUpdate {
    /// Insert or delete.
    pub kind: UpdateKind,
    /// Smaller endpoint.
    pub u: NodeId,
    /// Larger endpoint.
    pub v: NodeId,
}

/// One batch of updates, applied in order.
pub type UpdateBatch = Vec<EdgeUpdate>;

/// The insert/delete composition of a generated schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchMix {
    /// Roughly half inserts, half deletes (the default).
    Churn,
    /// Insertions only (the graph grows).
    InsertOnly,
    /// Deletions only (the graph shrinks toward empty).
    DeleteOnly,
}

impl BatchMix {
    /// The grammar token (`churn` / `insert` / `delete`).
    pub fn token(&self) -> &'static str {
        match self {
            BatchMix::Churn => "churn",
            BatchMix::InsertOnly => "insert",
            BatchMix::DeleteOnly => "delete",
        }
    }

    /// Parses a grammar token.
    pub fn parse(s: &str) -> Result<BatchMix, String> {
        match s.to_ascii_lowercase().as_str() {
            "churn" => Ok(BatchMix::Churn),
            "insert" | "inserts" => Ok(BatchMix::InsertOnly),
            "delete" | "deletes" => Ok(BatchMix::DeleteOnly),
            other => Err(format!("mix: expected churn|insert|delete, got {other:?}")),
        }
    }
}

/// Default schedule seed (decoupled from the algorithm seed so runtime
/// configuration never changes the workload).
pub const DEFAULT_SCHEDULE_SEED: u64 = 0xD15C;

/// A parsed dynamic source: a static base graph plus an update-batch
/// schedule (see the module docs for the grammar).
#[derive(Clone, Debug, PartialEq)]
pub struct DynamicSource {
    /// The initial graph.
    pub base: GraphSource,
    /// Number of update batches.
    pub batches: usize,
    /// Updates per batch.
    pub ops: usize,
    /// Insert/delete composition.
    pub mix: BatchMix,
    /// Schedule seed.
    pub seed: u64,
}

/// A materialized dynamic workload.
#[derive(Clone, Debug)]
pub struct DynamicInstance {
    /// The graph before any update.
    pub initial: CsrGraph,
    /// The update batches, in application order.
    pub batches: Vec<UpdateBatch>,
}

impl DynamicSource {
    /// Parses a `dyn:` source string (see the module docs).
    pub fn parse(s: &str) -> Result<DynamicSource, String> {
        let s = s.trim();
        let rest = match s.split_once(':') {
            Some((head, rest)) if head.eq_ignore_ascii_case("dyn") => rest,
            _ => {
                return Err(format!(
                    "dynamic source must start with \"dyn:\", got {s:?}"
                ))
            }
        };
        // Trailing `key=value` segments are schedule options; everything
        // before them (rejoined on ':') is the base source.
        let segments: Vec<&str> = rest.split(':').collect();
        let is_option = |seg: &str| {
            ["batches=", "ops=", "mix=", "seed="]
                .iter()
                .any(|k| seg.len() > k.len() && seg.starts_with(k))
        };
        let mut split_at = segments.len();
        while split_at > 0 && is_option(segments[split_at - 1]) {
            split_at -= 1;
        }
        let base_str = segments[..split_at].join(":");
        if base_str.is_empty() {
            return Err("dyn: missing base graph source".into());
        }
        if base_str
            .split_once(':')
            .is_some_and(|(h, _)| h.eq_ignore_ascii_case("dyn"))
        {
            return Err("dyn: the base source may not itself be dynamic".into());
        }
        let base = GraphSource::parse(&base_str)?;
        let mut src = DynamicSource {
            base,
            batches: 4,
            ops: 64,
            mix: BatchMix::Churn,
            seed: DEFAULT_SCHEDULE_SEED,
        };
        let mut seen: Vec<&str> = Vec::new();
        for seg in &segments[split_at..] {
            let (key, value) = seg.split_once('=').expect("is_option checked");
            if seen.contains(&key) {
                return Err(format!("dyn: duplicate option {key:?}"));
            }
            seen.push(key);
            match key {
                "batches" => {
                    src.batches = value
                        .parse()
                        .map_err(|_| format!("dyn: bad batches {value:?}"))?;
                }
                "ops" => {
                    src.ops = value
                        .parse()
                        .map_err(|_| format!("dyn: bad ops {value:?}"))?;
                }
                "mix" => src.mix = BatchMix::parse(value)?,
                "seed" => {
                    src.seed = value
                        .parse()
                        .map_err(|_| format!("dyn: bad seed {value:?}"))?;
                }
                _ => unreachable!("is_option admits known keys only"),
            }
        }
        if src.batches == 0 {
            return Err("dyn: batches must be >= 1".into());
        }
        if src.ops == 0 {
            return Err("dyn: ops must be >= 1".into());
        }
        Ok(src)
    }

    /// Canonical description; [`DynamicSource::parse`] round-trips it.
    pub fn describe(&self) -> String {
        let mut out = format!(
            "dyn:{}:batches={}:ops={}",
            self.base.describe(),
            self.batches,
            self.ops
        );
        if self.mix != BatchMix::Churn {
            out.push_str(&format!(":mix={}", self.mix.token()));
        }
        if self.seed != DEFAULT_SCHEDULE_SEED {
            out.push_str(&format!(":seed={}", self.seed));
        }
        out
    }

    /// Materializes the workload: loads the base graph at `scale` with
    /// `graph_seed`, then generates the update schedule from the spec's
    /// own seed.
    pub fn generate(&self, scale: Scale, graph_seed: u64) -> Result<DynamicInstance, String> {
        let initial = self.base.load(scale, graph_seed)?;
        let batches = generate_batches(&initial, self.batches, self.ops, self.mix, self.seed);
        Ok(DynamicInstance { initial, batches })
    }
}

impl std::str::FromStr for DynamicSource {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DynamicSource::parse(s)
    }
}

/// A mutable edge set over a fixed vertex domain `0..n`: the reference
/// state machine for batch application. Used by the schedule generator,
/// the recompute-from-scratch baseline and the equivalence tests, so
/// all of them agree on what a batch *means* (inserts of present edges
/// and deletes of absent edges are no-ops; updates within a batch apply
/// in order).
#[derive(Clone, Debug)]
pub struct EdgeSet {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
    index: HashMap<(NodeId, NodeId), usize>,
}

impl EdgeSet {
    /// The edge set of an existing graph.
    pub fn from_graph(g: &CsrGraph) -> Self {
        let mut s = EdgeSet {
            n: g.num_nodes(),
            edges: Vec::with_capacity(g.num_edges()),
            index: HashMap::with_capacity(g.num_edges()),
        };
        for e in g.edges() {
            s.insert(e.u, e.v);
        }
        s
    }

    /// Vertex count of the domain.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Current number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when no edge is present.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    fn canon(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
        if u <= v {
            (u, v)
        } else {
            (v, u)
        }
    }

    /// Whether the edge is present.
    pub fn contains(&self, u: NodeId, v: NodeId) -> bool {
        self.index.contains_key(&Self::canon(u, v))
    }

    /// Inserts the edge; returns whether it was absent. Self-loops are
    /// rejected (`false`).
    pub fn insert(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        let key = Self::canon(u, v);
        if self.index.contains_key(&key) {
            return false;
        }
        self.index.insert(key, self.edges.len());
        self.edges.push(key);
        true
    }

    /// Removes the edge; returns whether it was present.
    pub fn remove(&mut self, u: NodeId, v: NodeId) -> bool {
        let key = Self::canon(u, v);
        match self.index.remove(&key) {
            None => false,
            Some(i) => {
                self.edges.swap_remove(i);
                if let Some(moved) = self.edges.get(i) {
                    self.index.insert(*moved, i);
                }
                true
            }
        }
    }

    /// Applies one batch, in order.
    pub fn apply(&mut self, batch: &[EdgeUpdate]) {
        for up in batch {
            match up.kind {
                UpdateKind::Insert => {
                    self.insert(up.u, up.v);
                }
                UpdateKind::Delete => {
                    self.remove(up.u, up.v);
                }
            }
        }
    }

    /// The current edge list (canonical endpoints, insertion order).
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Materializes the current state as a [`CsrGraph`] (sorted
    /// adjacency — a pure function of the edge *set*, independent of
    /// the update history that produced it).
    pub fn snapshot(&self) -> CsrGraph {
        let mut b = GraphBuilder::with_capacity(self.n, self.edges.len());
        for &(u, v) in &self.edges {
            b.push_edge(u, v, 0);
        }
        b.build()
    }
}

/// Splitmix-style scramble for per-batch RNG streams.
fn scramble(seed: u64, batch: usize) -> u64 {
    let mut z = seed ^ (batch as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generates a deterministic seeded update schedule against `initial`:
/// `batches` batches of `ops` updates each. Inserts always target
/// currently-absent pairs and deletes currently-present edges (with the
/// obvious fallbacks when the graph is full or empty), so every
/// generated update is *effective* at generation time — batches replay
/// to the same state on any consumer that applies them in order.
pub fn generate_batches(
    initial: &CsrGraph,
    batches: usize,
    ops: usize,
    mix: BatchMix,
    seed: u64,
) -> Vec<UpdateBatch> {
    let n = initial.num_nodes();
    let mut state = EdgeSet::from_graph(initial);
    let mut out = Vec::with_capacity(batches);
    for b in 0..batches {
        let mut rng = SmallRng::seed_from_u64(scramble(seed, b));
        let mut batch = Vec::with_capacity(ops);
        if n < 2 {
            out.push(batch);
            continue;
        }
        for _ in 0..ops {
            let want_insert = match mix {
                BatchMix::InsertOnly => true,
                BatchMix::DeleteOnly => false,
                BatchMix::Churn => rng.gen_range(0..2u32) == 0,
            };
            let up = if want_insert {
                sample_insert(&mut rng, &mut state, n)
                    .or_else(|| sample_delete(&mut rng, &mut state))
            } else {
                sample_delete(&mut rng, &mut state)
                    .or_else(|| sample_insert(&mut rng, &mut state, n))
            };
            if let Some(up) = up {
                batch.push(up);
            }
        }
        out.push(batch);
    }
    out
}

/// Tries to sample (and apply) an insertion of an absent pair.
fn sample_insert(rng: &mut SmallRng, state: &mut EdgeSet, n: usize) -> Option<EdgeUpdate> {
    for _ in 0..64 {
        let u = rng.gen_range(0..n as NodeId);
        let v = rng.gen_range(0..n as NodeId);
        if u != v && state.insert(u, v) {
            let (u, v) = EdgeSet::canon(u, v);
            return Some(EdgeUpdate {
                kind: UpdateKind::Insert,
                u,
                v,
            });
        }
    }
    None
}

/// Tries to sample (and apply) a deletion of a present edge.
fn sample_delete(rng: &mut SmallRng, state: &mut EdgeSet) -> Option<EdgeUpdate> {
    if state.is_empty() {
        return None;
    }
    let (u, v) = state.edges[rng.gen_range(0..state.len())];
    state.remove(u, v);
    Some(EdgeUpdate {
        kind: UpdateKind::Delete,
        u,
        v,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn parses_full_spec() {
        let s = DynamicSource::parse("dyn:rmat:10,4000,web:batches=8:ops=256:mix=insert:seed=9")
            .unwrap();
        assert_eq!(s.batches, 8);
        assert_eq!(s.ops, 256);
        assert_eq!(s.mix, BatchMix::InsertOnly);
        assert_eq!(s.seed, 9);
        assert_eq!(
            s.base,
            GraphSource::parse("rmat:10,4000,web").unwrap(),
            "base source keeps its own colons"
        );
    }

    #[test]
    fn parse_defaults_and_round_trip() {
        for spec in [
            "dyn:er:100,250:batches=3:ops=16",
            "dyn:cycle:500:batches=1:ops=1:mix=delete",
            "dyn:two-cycles:64:batches=2:ops=8:seed=77",
            "dyn:rmat:8,1500:batches=5:ops=32:mix=insert:seed=3",
        ] {
            let parsed = DynamicSource::parse(spec).unwrap();
            assert_eq!(
                DynamicSource::parse(&parsed.describe()).unwrap(),
                parsed,
                "{spec}"
            );
        }
        let d = DynamicSource::parse("dyn:er:10,5").unwrap();
        assert_eq!((d.batches, d.ops), (4, 64));
        assert_eq!(d.mix, BatchMix::Churn);
        assert_eq!(d.seed, DEFAULT_SCHEDULE_SEED);
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "er:10,5",                         // no dyn: prefix
            "dyn:",                            // no base
            "dyn:batches=2:ops=4",             // options but no base
            "dyn:wat:batches=2:ops=4",         // unknown base
            "dyn:er:10,5:batches=0:ops=4",     // zero batches
            "dyn:er:10,5:batches=2:ops=0",     // zero ops
            "dyn:er:10,5:batches=x:ops=4",     // bad number
            "dyn:er:10,5:mix=sideways",        // bad mix
            "dyn:er:10,5:seed=ten",            // bad seed
            "dyn:er:10,5:ops=4:ops=5",         // duplicate option
            "dyn:dyn:er:10,5:batches=2:ops=4", // nested dyn
        ] {
            assert!(DynamicSource::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn schedule_is_deterministic_and_effective() {
        let g = gen::erdos_renyi(60, 120, 3);
        let a = generate_batches(&g, 5, 40, BatchMix::Churn, 7);
        let b = generate_batches(&g, 5, 40, BatchMix::Churn, 7);
        assert_eq!(a, b);
        assert_ne!(a, generate_batches(&g, 5, 40, BatchMix::Churn, 8));

        // Replaying the schedule: every op flips presence (generation
        // only emits effective ops).
        let mut state = EdgeSet::from_graph(&g);
        for batch in &a {
            for up in batch {
                match up.kind {
                    UpdateKind::Insert => assert!(state.insert(up.u, up.v), "{up:?}"),
                    UpdateKind::Delete => assert!(state.remove(up.u, up.v), "{up:?}"),
                }
            }
        }
    }

    #[test]
    fn mixes_shape_the_edge_count() {
        let g = gen::erdos_renyi(80, 100, 1);
        let mut grow = EdgeSet::from_graph(&g);
        for batch in generate_batches(&g, 3, 50, BatchMix::InsertOnly, 2) {
            grow.apply(&batch);
        }
        assert_eq!(grow.len(), g.num_edges() + 150);

        let mut shrink = EdgeSet::from_graph(&g);
        for batch in generate_batches(&g, 3, 50, BatchMix::DeleteOnly, 2) {
            shrink.apply(&batch);
        }
        assert_eq!(shrink.len(), 0, "100 edges, 150 deletes: drains fully");
    }

    #[test]
    fn edge_set_snapshot_matches_builder_semantics() {
        let g = gen::erdos_renyi(40, 90, 5);
        let state = EdgeSet::from_graph(&g);
        assert_eq!(state.snapshot(), g);

        let mut s = EdgeSet::from_graph(&CsrGraph::empty(4));
        assert!(s.insert(3, 1));
        assert!(!s.insert(1, 3), "idempotent");
        assert!(!s.insert(2, 2), "self-loop rejected");
        assert!(s.contains(1, 3));
        assert!(s.remove(1, 3));
        assert!(!s.remove(1, 3));
        assert_eq!(s.snapshot(), CsrGraph::empty(4));
    }

    #[test]
    fn generate_loads_base_at_scale() {
        let src = DynamicSource::parse("dyn:er:50,80:batches=2:ops=10").unwrap();
        let inst = src.generate(Scale::Test, 11).unwrap();
        assert_eq!(inst.initial.num_nodes(), 50);
        assert_eq!(inst.batches.len(), 2);
        assert!(inst.batches.iter().all(|b| b.len() <= 10));
    }
}
