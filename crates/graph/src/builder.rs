//! Mutable edge-list accumulator that finalizes into CSR form.
//!
//! The builder canonicalizes undirected edges, removes self-loops and
//! duplicates (keeping the lightest copy of parallel weighted edges), and
//! produces sorted adjacency lists. All generators and file readers in
//! this crate construct graphs through it.

use crate::csr::CsrGraph;
use crate::weighted::WeightedCsrGraph;
use crate::{NodeId, Weight};

/// Accumulates edges and finalizes into [`CsrGraph`] /
/// [`WeightedCsrGraph`].
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId, Weight)>,
    keep_loops: bool,
    directed: bool,
}

impl GraphBuilder {
    /// A builder for a graph on `n` vertices (`0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            keep_loops: false,
            directed: false,
        }
    }

    /// Pre-allocates space for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        let mut b = Self::new(n);
        b.edges.reserve(m);
        b
    }

    /// Builds a *directed* graph: edges keep their orientation and are not
    /// mirrored.
    pub fn directed(mut self) -> Self {
        self.directed = true;
        self
    }

    /// Number of vertices this builder targets.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges currently accumulated (before dedup).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if no edges have been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Adds an unweighted edge (weight 0).
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn add_edge(mut self, u: NodeId, v: NodeId) -> Self {
        self.push_edge(u, v, 0);
        self
    }

    /// Adds a weighted edge.
    pub fn add_weighted_edge(mut self, u: NodeId, v: NodeId, w: Weight) -> Self {
        self.push_edge(u, v, w);
        self
    }

    /// In-place edge insertion (for loops that cannot consume the builder).
    pub fn push_edge(&mut self, u: NodeId, v: NodeId, w: Weight) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u}, {v}) out of range for n = {}",
            self.n
        );
        self.edges.push((u, v, w));
    }

    /// Adds every edge in the iterator.
    pub fn extend_edges(mut self, it: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        for (u, v) in it {
            self.push_edge(u, v, 0);
        }
        self
    }

    /// Adds every weighted edge in the iterator.
    pub fn extend_weighted(
        mut self,
        it: impl IntoIterator<Item = (NodeId, NodeId, Weight)>,
    ) -> Self {
        for (u, v, w) in it {
            self.push_edge(u, v, w);
        }
        self
    }

    /// Finalizes into an unweighted CSR graph.
    pub fn build(self) -> CsrGraph {
        let (csr, _) = self.finish();
        csr
    }

    /// Finalizes into a weighted CSR graph.
    pub fn build_weighted(self) -> WeightedCsrGraph {
        let (csr, weights) = self.finish();
        WeightedCsrGraph::from_parts(csr, weights)
    }

    fn finish(self) -> (CsrGraph, Vec<Weight>) {
        let GraphBuilder {
            n,
            mut edges,
            keep_loops,
            directed,
        } = self;

        if !keep_loops {
            edges.retain(|&(u, v, _)| u != v);
        }
        if !directed {
            for e in edges.iter_mut() {
                if e.0 > e.1 {
                    std::mem::swap(&mut e.0, &mut e.1);
                }
            }
        }
        // Sort by (u, v, w) so duplicates are adjacent with the lightest
        // copy first, then dedup by endpoints.
        edges.sort_unstable();
        edges.dedup_by_key(|&mut (u, v, _)| (u, v));

        // Counting sort into CSR. For undirected graphs, mirror every edge.
        let mut degree = vec![0usize; n];
        for &(u, v, _) in &edges {
            degree[u as usize] += 1;
            if !directed {
                degree[v as usize] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as NodeId; acc];
        let mut weights = vec![0 as Weight; acc];
        for &(u, v, w) in &edges {
            let cu = cursor[u as usize];
            targets[cu] = v;
            weights[cu] = w;
            cursor[u as usize] += 1;
            if !directed {
                let cv = cursor[v as usize];
                targets[cv] = u;
                weights[cv] = w;
                cursor[v as usize] += 1;
            }
        }
        // Adjacency lists are sorted by construction for the `u` side but
        // the mirrored `v` side entries arrive in `u`-order, which is also
        // sorted. Each vertex's list interleaves both, so sort per vertex.
        for v in 0..n {
            let lo = offsets[v];
            let hi = offsets[v + 1];
            let mut pairs: Vec<(NodeId, Weight)> = targets[lo..hi]
                .iter()
                .copied()
                .zip(weights[lo..hi].iter().copied())
                .collect();
            pairs.sort_unstable();
            for (i, (t, w)) in pairs.into_iter().enumerate() {
                targets[lo + i] = t;
                weights[lo + i] = w;
            }
        }
        (CsrGraph::from_parts(offsets, targets, !directed), weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removes_self_loops_and_duplicates() {
        let g = GraphBuilder::new(4)
            .add_edge(0, 0)
            .add_edge(0, 1)
            .add_edge(1, 0)
            .add_edge(0, 1)
            .add_edge(2, 3)
            .build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn parallel_weighted_edges_keep_lightest() {
        let g = GraphBuilder::new(2)
            .add_weighted_edge(0, 1, 9)
            .add_weighted_edge(1, 0, 3)
            .add_weighted_edge(0, 1, 7)
            .build_weighted();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.weights_of(0), &[3]);
        assert_eq!(g.weights_of(1), &[3]);
    }

    #[test]
    fn adjacency_lists_are_sorted() {
        let g = GraphBuilder::new(5)
            .add_edge(2, 4)
            .add_edge(2, 0)
            .add_edge(2, 3)
            .add_edge(2, 1)
            .build();
        assert_eq!(g.neighbors(2), &[0, 1, 3, 4]);
    }

    #[test]
    fn directed_edges_are_not_mirrored() {
        let g = GraphBuilder::new(3)
            .directed()
            .add_edge(0, 1)
            .add_edge(1, 2)
            .build();
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[2]);
        assert_eq!(g.neighbors(2), &[] as &[NodeId]);
        assert!(!g.is_symmetric());
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        b.push_edge(0, 5, 0);
    }

    #[test]
    fn extend_edges_works() {
        let g = GraphBuilder::new(3).extend_edges([(0, 1), (1, 2)]).build();
        assert_eq!(g.num_edges(), 2);
    }
}
