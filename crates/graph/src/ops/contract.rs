//! Graph contraction: quotient a graph by a vertex → representative map.
//!
//! Contraction is the workhorse of the MSF and connectivity pipelines
//! (Algorithm 1 line 14, the §5.5 "Contract" stage, and each Borůvka /
//! local-contraction phase of the MPC baselines). In the distributed
//! implementations it is "reduced to sorting and removing duplicates"
//! (Lemma 3.5); here we provide the in-memory primitive plus the id
//! compaction that every caller needs.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::weighted::WeightedCsrGraph;
use crate::NodeId;

/// Result of contracting an unweighted graph.
#[derive(Clone, Debug)]
pub struct ContractedGraph {
    /// The quotient graph on compacted ids, self-loops removed. When
    /// `drop_isolated` is requested, vertices whose class has no
    /// surviving edge are removed entirely (Algorithm 1 removes isolated
    /// vertices after contraction).
    pub graph: CsrGraph,
    /// For each *original* vertex, the compacted id of its class, or
    /// [`crate::NO_NODE`] if the class was dropped as isolated.
    pub class_of: Vec<NodeId>,
    /// For each compacted class id, a representative original vertex.
    pub representative: Vec<NodeId>,
}

/// Result of contracting a weighted graph.
#[derive(Clone, Debug)]
pub struct ContractedWeighted {
    /// The quotient multigraph collapsed to simple form: parallel edges
    /// keep the lightest copy (exactly what an MSF computation needs).
    pub graph: WeightedCsrGraph,
    /// Original vertex → compacted class id ([`crate::NO_NODE`] if
    /// dropped).
    pub class_of: Vec<NodeId>,
    /// Compacted class id → representative original vertex.
    pub representative: Vec<NodeId>,
}

fn compact_classes(labels: &[NodeId], keep: impl Fn(NodeId) -> bool) -> (Vec<NodeId>, Vec<NodeId>) {
    // labels[v] = root/label of v's class (any consistent labelling).
    let n = labels.len();
    let mut class_of = vec![crate::NO_NODE; n];
    let mut representative = Vec::new();
    let mut remap = vec![crate::NO_NODE; n];
    for v in 0..n {
        let l = labels[v];
        debug_assert!((l as usize) < n, "label out of range");
        if !keep(l) {
            continue;
        }
        if remap[l as usize] == crate::NO_NODE {
            remap[l as usize] = representative.len() as NodeId;
            representative.push(l);
        }
        class_of[v] = remap[l as usize];
    }
    (class_of, representative)
}

/// Contracts `g` by the labelling `labels` (vertex → class label, where a
/// label is any vertex id acting as class representative). Self-loops are
/// dropped; if `drop_isolated`, classes with no surviving incident edge
/// are removed from the quotient.
pub fn contract(g: &CsrGraph, labels: &[NodeId], drop_isolated: bool) -> ContractedGraph {
    assert_eq!(labels.len(), g.num_nodes());
    let has_edge = mark_non_isolated(g, labels);
    let keep = |l: NodeId| !drop_isolated || has_edge[l as usize];
    let (class_of, representative) = compact_classes(labels, keep);

    let mut b = GraphBuilder::with_capacity(representative.len(), g.num_edges());
    for e in g.edges() {
        let cu = class_of[e.u as usize];
        let cv = class_of[e.v as usize];
        if cu != cv && cu != crate::NO_NODE && cv != crate::NO_NODE {
            b.push_edge(cu, cv, 0);
        }
    }
    ContractedGraph {
        graph: b.build(),
        class_of,
        representative,
    }
}

/// Weighted contraction. Parallel edges between classes keep the lightest
/// weight (handled by [`GraphBuilder`]'s dedup rule).
pub fn contract_weighted(
    g: &WeightedCsrGraph,
    labels: &[NodeId],
    drop_isolated: bool,
) -> ContractedWeighted {
    assert_eq!(labels.len(), g.num_nodes());
    let has_edge = mark_non_isolated(g.structure(), labels);
    let keep = |l: NodeId| !drop_isolated || has_edge[l as usize];
    let (class_of, representative) = compact_classes(labels, keep);

    let mut b = GraphBuilder::with_capacity(representative.len(), g.num_edges());
    for e in g.edges() {
        let cu = class_of[e.u as usize];
        let cv = class_of[e.v as usize];
        if cu != cv && cu != crate::NO_NODE && cv != crate::NO_NODE {
            b.push_edge(cu, cv, e.w);
        }
    }
    ContractedWeighted {
        graph: b.build_weighted(),
        class_of,
        representative,
    }
}

/// `out[label]` = true iff the class of `label` has at least one edge to a
/// different class.
fn mark_non_isolated(g: &CsrGraph, labels: &[NodeId]) -> Vec<bool> {
    let mut has_edge = vec![false; g.num_nodes()];
    for e in g.edges() {
        let lu = labels[e.u as usize];
        let lv = labels[e.v as usize];
        if lu != lv {
            has_edge[lu as usize] = true;
            has_edge[lv as usize] = true;
        }
    }
    has_edge
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::GraphBuilder;

    #[test]
    fn contract_path_pairs() {
        // path 0-1-2-3; classes {0,1} -> 0, {2,3} -> 2
        let g = gen::path(4);
        let labels = vec![0, 0, 2, 2];
        let c = contract(&g, &labels, false);
        assert_eq!(c.graph.num_nodes(), 2);
        assert_eq!(c.graph.num_edges(), 1);
        assert_eq!(c.class_of, vec![0, 0, 1, 1]);
        assert_eq!(c.representative, vec![0, 2]);
    }

    #[test]
    fn self_loops_removed() {
        let g = gen::complete(3);
        let labels = vec![0, 0, 0];
        let c = contract(&g, &labels, false);
        assert_eq!(c.graph.num_nodes(), 1);
        assert_eq!(c.graph.num_edges(), 0);
    }

    #[test]
    fn drop_isolated_removes_fully_contracted_classes() {
        // two components: triangle {0,1,2} contracted to one class;
        // edge {3,4} contracted to its own classes.
        let g = GraphBuilder::new(5)
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 0)
            .add_edge(3, 4)
            .build();
        let labels = vec![0, 0, 0, 3, 4];
        let c = contract(&g, &labels, true);
        // class {0,1,2} became isolated and is dropped
        assert_eq!(c.graph.num_nodes(), 2);
        assert_eq!(c.class_of[0], crate::NO_NODE);
        assert_eq!(c.class_of[3], 0);
        assert_eq!(c.class_of[4], 1);
    }

    #[test]
    fn weighted_contraction_keeps_lightest_parallel_edge() {
        // square with two classes; two parallel edges of weight 7 and 3.
        let g = GraphBuilder::new(4)
            .add_weighted_edge(0, 2, 7)
            .add_weighted_edge(1, 3, 3)
            .add_weighted_edge(0, 1, 1)
            .add_weighted_edge(2, 3, 1)
            .build_weighted();
        let labels = vec![0, 0, 2, 2];
        let c = contract_weighted(&g, &labels, false);
        assert_eq!(c.graph.num_nodes(), 2);
        assert_eq!(c.graph.num_edges(), 1);
        assert_eq!(c.graph.edge_vec()[0].w, 3);
    }

    #[test]
    fn identity_contraction_preserves_graph() {
        let g = gen::erdos_renyi(50, 200, 1);
        let labels: Vec<NodeId> = (0..50).collect();
        let c = contract(&g, &labels, false);
        assert_eq!(c.graph.num_nodes(), g.num_nodes());
        assert_eq!(c.graph.num_edges(), g.num_edges());
    }
}
