//! Line graphs.
//!
//! §4 of the paper reduces maximal matching to maximal independent set on
//! the line graph: *"the set of vertices in the maximal independent set
//! of the line graph of a graph G forms a maximal matching of G"*. The
//! explicit construction here is used by the O(log log n)-round matching
//! algorithm (Algorithm 4, on subsampled graphs small enough to afford
//! it) and by tests; the O(1)-round algorithm instead navigates the line
//! graph *implicitly* (never materializing it), exactly as §4.2 argues is
//! necessary to avoid Ω(mΔ) space.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::edge::Edge;
use crate::NodeId;

/// An explicit line graph: vertex `i` of [`Self::graph`] is edge
/// `edges[i]` of the original graph.
#[derive(Clone, Debug)]
pub struct LineGraph {
    /// The line graph structure.
    pub graph: CsrGraph,
    /// Line-graph vertex → original edge.
    pub edges: Vec<Edge>,
}

/// Builds the line graph of `g`: one vertex per undirected edge, an edge
/// between two vertices iff the corresponding edges share an endpoint.
///
/// Space is `Θ(Σ_v deg(v)²)` which can be `Θ(mΔ)` — callers must ensure
/// `g` is small/sparse enough (the paper's Algorithm 4 subsamples first).
pub fn line_graph(g: &CsrGraph) -> LineGraph {
    let edges: Vec<Edge> = g.edges().collect();
    // Map each edge to its index via per-endpoint sorted lists.
    // incidence[v] = indices of edges incident to v.
    let mut incidence: Vec<Vec<u32>> = vec![Vec::new(); g.num_nodes()];
    for (i, e) in edges.iter().enumerate() {
        incidence[e.u as usize].push(i as u32);
        incidence[e.v as usize].push(i as u32);
    }
    let est: usize = incidence.iter().map(|inc| inc.len() * inc.len() / 2).sum();
    let mut b = GraphBuilder::with_capacity(edges.len(), est);
    for inc in &incidence {
        for i in 0..inc.len() {
            for j in (i + 1)..inc.len() {
                b.push_edge(inc[i] as NodeId, inc[j] as NodeId, 0);
            }
        }
    }
    LineGraph {
        graph: b.build(),
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn line_graph_of_path() {
        // P4 has 3 edges forming a path in the line graph.
        let lg = line_graph(&gen::path(4));
        assert_eq!(lg.graph.num_nodes(), 3);
        assert_eq!(lg.graph.num_edges(), 2);
    }

    #[test]
    fn line_graph_of_triangle_is_triangle() {
        let lg = line_graph(&gen::complete(3));
        assert_eq!(lg.graph.num_nodes(), 3);
        assert_eq!(lg.graph.num_edges(), 3);
    }

    #[test]
    fn line_graph_of_star_is_complete() {
        // K_{1,4}: all 4 edges share the center, line graph = K4.
        let lg = line_graph(&gen::star(5));
        assert_eq!(lg.graph.num_nodes(), 4);
        assert_eq!(lg.graph.num_edges(), 6);
    }

    #[test]
    fn adjacency_matches_shared_endpoints() {
        let g = gen::erdos_renyi(30, 60, 2);
        let lg = line_graph(&g);
        for u in lg.graph.nodes() {
            for &v in lg.graph.neighbors(u) {
                assert!(lg.edges[u as usize].shares_endpoint(&lg.edges[v as usize]));
            }
        }
    }
}
