//! Induced subgraphs and isolated-vertex removal.
//!
//! `G[V \ V(M)]` — the induced subgraph after removing matched vertices —
//! appears in every phase of Algorithm 4 and of the rootset MPC
//! baselines, so this is one of the hottest substrate operations.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::weighted::WeightedCsrGraph;
use crate::{NodeId, NO_NODE};

/// Computes the induced subgraph on `keep` (a boolean mask over vertices).
///
/// Returns the subgraph (with compacted ids) and the mapping from old ids
/// to new (`NO_NODE` for removed vertices).
pub fn induced_subgraph(g: &CsrGraph, keep: &[bool]) -> (CsrGraph, Vec<NodeId>) {
    assert_eq!(keep.len(), g.num_nodes());
    let mut remap = vec![NO_NODE; g.num_nodes()];
    let mut next = 0 as NodeId;
    for v in 0..g.num_nodes() {
        if keep[v] {
            remap[v] = next;
            next += 1;
        }
    }
    let mut b = GraphBuilder::with_capacity(next as usize, g.num_edges());
    for e in g.edges() {
        let (ru, rv) = (remap[e.u as usize], remap[e.v as usize]);
        if ru != NO_NODE && rv != NO_NODE {
            b.push_edge(ru, rv, 0);
        }
    }
    (b.build(), remap)
}

/// Weighted version of [`induced_subgraph`].
pub fn induced_subgraph_weighted(
    g: &WeightedCsrGraph,
    keep: &[bool],
) -> (WeightedCsrGraph, Vec<NodeId>) {
    assert_eq!(keep.len(), g.num_nodes());
    let mut remap = vec![NO_NODE; g.num_nodes()];
    let mut next = 0 as NodeId;
    for v in 0..g.num_nodes() {
        if keep[v] {
            remap[v] = next;
            next += 1;
        }
    }
    let mut b = GraphBuilder::with_capacity(next as usize, g.num_edges());
    for e in g.edges() {
        let (ru, rv) = (remap[e.u as usize], remap[e.v as usize]);
        if ru != NO_NODE && rv != NO_NODE {
            b.push_edge(ru, rv, e.w);
        }
    }
    (b.build_weighted(), remap)
}

/// Removes isolated (degree-0) vertices, compacting ids. Returns the
/// compacted graph and the old → new mapping.
pub fn remove_isolated(g: &CsrGraph) -> (CsrGraph, Vec<NodeId>) {
    let keep: Vec<bool> = (0..g.num_nodes())
        .map(|v| g.degree(v as NodeId) > 0)
        .collect();
    induced_subgraph(g, &keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn induced_on_path() {
        // path 0-1-2-3-4, keep {0,1,3,4}: edges 0-1 and 3-4 survive.
        let g = gen::path(5);
        let keep = vec![true, true, false, true, true];
        let (sub, remap) = induced_subgraph(&g, &keep);
        assert_eq!(sub.num_nodes(), 4);
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(remap[2], NO_NODE);
        assert_eq!(remap[3], 2);
    }

    #[test]
    fn weighted_keeps_weights() {
        let g = gen::degree_weights(&gen::path(4));
        let keep = vec![true, true, true, false];
        let (sub, _) = induced_subgraph_weighted(&g, &keep);
        assert_eq!(sub.num_edges(), 2);
        // path degrees: w(0,1) = 1 + 2 = 3; w(1,2) = 2 + 2 = 4
        let ws: Vec<u64> = sub.edges().map(|e| e.w).collect();
        assert_eq!(ws, vec![3, 4]);
    }

    #[test]
    fn remove_isolated_compacts() {
        let g = GraphBuilder::new(6).add_edge(1, 4).build();
        let (sub, remap) = remove_isolated(&g);
        assert_eq!(sub.num_nodes(), 2);
        assert_eq!(sub.num_edges(), 1);
        assert_eq!(remap[1], 0);
        assert_eq!(remap[4], 1);
        assert_eq!(remap[0], NO_NODE);
    }

    use crate::GraphBuilder;
}
