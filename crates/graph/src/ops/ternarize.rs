//! Graph ternarization — Line 2 of Algorithm 2 in the paper.
//!
//! *"Let G′(V′, E′) be a degree bounded version of G, obtained by
//! replacing every vertex v with degree > 3 with a cycle of length
//! deg(v), connecting each edge of v to its corresponding vertex in the
//! cycle. Let the weights of the dummy edges be denoted by ⊥, chosen to
//! be less than the weight of the lightest edge in E."*
//!
//! After ternarization every vertex has degree ≤ 3, the number of
//! vertices is `Θ(m)`, and the MSF of the ternarized graph restricted to
//! non-dummy edges equals the MSF of the original graph (the dummy cycle
//! edges are free, so each expanded cycle contracts first in any MSF).

use crate::builder::GraphBuilder;
use crate::weighted::WeightedCsrGraph;
use crate::{NodeId, Weight};

/// The ⊥ weight assigned to dummy cycle edges. Real weights are shifted
/// up by [`Ternarized::WEIGHT_SHIFT`] so ⊥ compares below every real
/// edge without assuming anything about the input weight range.
pub const DUMMY_WEIGHT: Weight = 0;

/// Result of ternarizing a graph.
#[derive(Clone, Debug)]
pub struct Ternarized {
    /// The degree-≤3 graph. Real edge weights are shifted by
    /// [`Ternarized::WEIGHT_SHIFT`]; dummy edges have weight
    /// [`DUMMY_WEIGHT`].
    pub graph: WeightedCsrGraph,
    /// Maps each ternarized vertex back to the original vertex it
    /// represents (cycle vertices map to the vertex they were expanded
    /// from).
    pub origin: Vec<NodeId>,
}

impl Ternarized {
    /// Real edge weights are shifted up by this amount so that
    /// [`DUMMY_WEIGHT`] is strictly smaller than every real weight.
    pub const WEIGHT_SHIFT: Weight = 1;

    /// Is `w` (a weight read from [`Self::graph`]) a dummy cycle edge
    /// weight?
    #[inline]
    pub fn is_dummy_weight(w: Weight) -> bool {
        w == DUMMY_WEIGHT
    }

    /// Converts a shifted weight back to the original weight.
    ///
    /// # Panics
    /// Panics if `w` is the dummy weight.
    #[inline]
    pub fn original_weight(w: Weight) -> Weight {
        assert!(
            !Self::is_dummy_weight(w),
            "dummy edges have no original weight"
        );
        w - Self::WEIGHT_SHIFT
    }
}

/// Ternarizes a weighted undirected graph: every vertex of degree > 3 is
/// replaced by a cycle of length `deg(v)` whose `i`-th cycle vertex
/// carries `v`'s `i`-th incident edge.
///
/// Vertices of degree ≤ 3 are kept as a single vertex. Degree-0 vertices
/// are preserved (they stay isolated).
pub fn ternarize(g: &WeightedCsrGraph) -> Ternarized {
    let n = g.num_nodes();
    // New vertex layout: vertex v of degree d > 3 expands into d vertices
    // placed contiguously; vertices of degree <= 3 occupy one slot.
    let mut base = Vec::with_capacity(n + 1);
    let mut total = 0usize;
    for v in 0..n {
        base.push(total);
        let d = g.degree(v as NodeId);
        total += if d > 3 { d } else { 1 };
    }
    base.push(total);

    let mut origin = vec![0 as NodeId; total];
    for v in 0..n {
        origin[base[v]..base[v + 1]].fill(v as NodeId);
    }

    // slot_of(v, i): the ternarized vertex carrying v's i-th incident edge.
    let slot_of = |v: usize, i: usize| -> NodeId {
        let d = base[v + 1] - base[v];
        if d == 1 {
            base[v] as NodeId
        } else {
            (base[v] + i) as NodeId
        }
    };

    // For the cross edges we must know, for edge {u, v}, which position
    // the edge occupies in each endpoint's adjacency list. Adjacency lists
    // are sorted, but parallel structure is deduped, so position =
    // index of v in neighbors(u).
    let mut b = GraphBuilder::with_capacity(total, total + g.num_edges());
    for v in 0..n {
        let d = base[v + 1] - base[v];
        if d > 1 {
            // dummy cycle among v's slots
            for i in 0..d {
                let a = (base[v] + i) as NodeId;
                let c = (base[v] + (i + 1) % d) as NodeId;
                b.push_edge(a, c, DUMMY_WEIGHT);
            }
        }
    }
    for u in 0..n {
        let nbrs = g.neighbors(u as NodeId);
        let ws = g.weights_of(u as NodeId);
        for (i, (&v, &w)) in nbrs.iter().zip(ws.iter()).enumerate() {
            let v = v as usize;
            if u < v {
                // Find u's position in v's list by binary search (sorted).
                let j = g
                    .neighbors(v as NodeId)
                    .binary_search(&(u as NodeId))
                    .expect("symmetric adjacency");
                b.push_edge(slot_of(u, i), slot_of(v, j), w + Ternarized::WEIGHT_SHIFT);
            }
        }
    }
    Ternarized {
        graph: b.build_weighted(),
        origin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::GraphBuilder;

    fn weighted_star(n: usize) -> WeightedCsrGraph {
        let mut b = GraphBuilder::new(n);
        for i in 1..n {
            b.push_edge(0, i as NodeId, 100 + i as Weight);
        }
        b.build_weighted()
    }

    #[test]
    fn low_degree_graph_unchanged_structure() {
        let g = gen::degree_weights(&gen::path(5));
        let t = ternarize(&g);
        assert_eq!(t.graph.num_nodes(), 5);
        assert_eq!(t.graph.num_edges(), 4);
        assert_eq!(t.origin, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn star_center_expands_to_cycle() {
        let g = weighted_star(6); // center degree 5
        let t = ternarize(&g);
        // center -> 5 slots, 5 leaves -> 1 slot each
        assert_eq!(t.graph.num_nodes(), 10);
        // 5 dummy cycle edges + 5 real edges
        assert_eq!(t.graph.num_edges(), 10);
        // max degree at most 3
        assert!(t.graph.structure().max_degree() <= 3);
    }

    #[test]
    fn origin_maps_back() {
        let g = weighted_star(6);
        let t = ternarize(&g);
        // first 5 ternarized vertices are the expanded center
        for s in 0..5u32 {
            assert_eq!(t.origin[s as usize], 0);
        }
        for s in 5..10u32 {
            assert_eq!(t.origin[s as usize], s - 4);
        }
    }

    #[test]
    fn real_weights_shifted_dummies_zero() {
        let g = weighted_star(5);
        let t = ternarize(&g);
        let mut dummy = 0;
        let mut real = 0;
        for e in t.graph.edges() {
            if Ternarized::is_dummy_weight(e.w) {
                dummy += 1;
            } else {
                real += 1;
                assert!(Ternarized::original_weight(e.w) >= 100);
            }
        }
        assert_eq!(dummy, 4);
        assert_eq!(real, 4);
    }

    #[test]
    fn max_degree_bound_on_random_graph() {
        let g = gen::degree_weights(&gen::erdos_renyi(200, 2000, 3));
        let t = ternarize(&g);
        assert!(t.graph.structure().max_degree() <= 3);
        // real edges preserved
        let real = t
            .graph
            .edges()
            .filter(|e| !Ternarized::is_dummy_weight(e.w))
            .count();
        assert_eq!(real, g.num_edges());
    }

    #[test]
    fn isolated_vertices_survive() {
        let mut b = GraphBuilder::new(4);
        b.push_edge(0, 1, 5);
        let g = b.build_weighted();
        let t = ternarize(&g);
        assert_eq!(t.graph.num_nodes(), 4);
    }
}
