//! Structural graph operations used by the algorithms.

mod contract;
mod line_graph;
mod subgraph;
mod ternarize;

pub use contract::{contract, contract_weighted, ContractedGraph, ContractedWeighted};
pub use line_graph::{line_graph, LineGraph};
pub use subgraph::{induced_subgraph, induced_subgraph_weighted, remove_isolated};
pub use ternarize::{ternarize, Ternarized, DUMMY_WEIGHT};
