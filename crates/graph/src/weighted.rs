//! Weighted CSR graphs.

use crate::csr::CsrGraph;
use crate::edge::WeightedEdge;
use crate::{NodeId, Weight};

/// An immutable weighted undirected graph: a [`CsrGraph`] plus a weight
/// aligned with every stored arc. Both copies of an undirected edge carry
/// the same weight.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedCsrGraph {
    structure: CsrGraph,
    weights: Vec<Weight>,
}

impl WeightedCsrGraph {
    /// Assembles a weighted graph. `weights.len()` must equal
    /// `structure.num_arcs()`.
    pub fn from_parts(structure: CsrGraph, weights: Vec<Weight>) -> Self {
        assert_eq!(
            structure.num_arcs(),
            weights.len(),
            "one weight per stored arc"
        );
        WeightedCsrGraph { structure, weights }
    }

    /// An empty weighted graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        WeightedCsrGraph {
            structure: CsrGraph::empty(n),
            weights: Vec::new(),
        }
    }

    /// The underlying unweighted structure.
    #[inline]
    pub fn structure(&self) -> &CsrGraph {
        &self.structure
    }

    /// Number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.structure.num_nodes()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.structure.num_edges()
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.structure.degree(v)
    }

    /// Neighbors of `v` (aligned with [`Self::weights_of`]).
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        self.structure.neighbors(v)
    }

    /// Weights aligned with `neighbors(v)`.
    #[inline]
    pub fn weights_of(&self, v: NodeId) -> &[Weight] {
        let v = v as usize;
        let o = self.structure.offsets();
        &self.weights[o[v]..o[v + 1]]
    }

    /// `(neighbor, weight)` pairs for `v`.
    #[inline]
    pub fn weighted_neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        self.neighbors(v)
            .iter()
            .copied()
            .zip(self.weights_of(v).iter().copied())
    }

    /// Iterator over all vertices.
    #[inline]
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.structure.nodes()
    }

    /// Iterates each undirected edge once (`u <= v`).
    pub fn edges(&self) -> impl Iterator<Item = WeightedEdge> + '_ {
        self.nodes().flat_map(move |u| {
            self.weighted_neighbors(u)
                .filter(move |&(v, _)| u <= v)
                .map(move |(v, w)| WeightedEdge::new(u, v, w))
        })
    }

    /// All edges collected into a vector (each undirected edge once).
    pub fn edge_vec(&self) -> Vec<WeightedEdge> {
        let mut out = Vec::with_capacity(self.num_edges());
        out.extend(self.edges());
        out
    }

    /// Total weight of all edges.
    pub fn total_weight(&self) -> u128 {
        self.edges().map(|e| e.w as u128).sum()
    }

    /// Approximate heap size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.structure.size_bytes() + self.weights.len() * std::mem::size_of::<Weight>()
    }

    /// Returns a copy of this graph with every weight replaced by the
    /// output of `f(u, v, w)`; both directions of an undirected edge are
    /// given the canonical `(min, max)` orientation so they stay equal.
    pub fn map_weights(&self, mut f: impl FnMut(NodeId, NodeId, Weight) -> Weight) -> Self {
        let mut weights = Vec::with_capacity(self.weights.len());
        for u in self.nodes() {
            for (v, w) in self.weighted_neighbors(u) {
                let (a, b) = if u <= v { (u, v) } else { (v, u) };
                weights.push(f(a, b, w));
            }
        }
        WeightedCsrGraph {
            structure: self.structure.clone(),
            weights,
        }
    }

    /// Drops the weights.
    pub fn into_unweighted(self) -> CsrGraph {
        self.structure
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn path() -> WeightedCsrGraph {
        GraphBuilder::new(3)
            .add_weighted_edge(0, 1, 10)
            .add_weighted_edge(1, 2, 20)
            .build_weighted()
    }

    #[test]
    fn weights_align_with_neighbors() {
        let g = path();
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.weights_of(1), &[10, 20]);
    }

    #[test]
    fn edges_once_each() {
        let g = path();
        let edges = g.edge_vec();
        assert_eq!(
            edges,
            vec![WeightedEdge::new(0, 1, 10), WeightedEdge::new(1, 2, 20)]
        );
        assert_eq!(g.total_weight(), 30);
    }

    #[test]
    fn map_weights_applies_canonically() {
        let g = path().map_weights(|u, v, w| w + (u + v) as u64);
        let edges = g.edge_vec();
        assert_eq!(edges[0].w, 11);
        assert_eq!(edges[1].w, 23);
        // Both directions must agree.
        assert_eq!(g.weights_of(0)[0], 11);
        assert_eq!(g.weights_of(1)[0], 11);
    }

    #[test]
    #[should_panic(expected = "one weight per stored arc")]
    fn from_parts_checks_lengths() {
        let s = GraphBuilder::new(2).add_edge(0, 1).build();
        WeightedCsrGraph::from_parts(s, vec![1]);
    }
}
