//! Plain-text edge-list I/O.
//!
//! Format: one `u v` (or `u v w`) triple per line, `#`-prefixed comment
//! lines ignored — the de-facto SNAP format the paper's public datasets
//! ship in, so users can load the real com-Orkut / Friendster downloads
//! into this library if they have them.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::weighted::WeightedCsrGraph;
use crate::{NodeId, Weight};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line (1-based line number + description).
    Parse(usize, String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse(line, msg) => write!(f, "parse error on line {line}: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// `(line_count, edges)` as returned by [`parse_edges`].
type ParsedEdges = (usize, Vec<(NodeId, NodeId, Weight)>);

fn parse_edges<R: Read>(reader: R) -> Result<ParsedEdges, IoError> {
    let reader = BufReader::new(reader);
    let mut edges = Vec::new();
    let mut max_id: u64 = 0;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let u: u64 = it
            .next()
            .ok_or_else(|| IoError::Parse(i + 1, "missing source".into()))?
            .parse()
            .map_err(|e| IoError::Parse(i + 1, format!("bad source: {e}")))?;
        let v: u64 = it
            .next()
            .ok_or_else(|| IoError::Parse(i + 1, "missing target".into()))?
            .parse()
            .map_err(|e| IoError::Parse(i + 1, format!("bad target: {e}")))?;
        let w: Weight = match it.next() {
            Some(tok) => tok
                .parse()
                .map_err(|e| IoError::Parse(i + 1, format!("bad weight: {e}")))?,
            None => 0,
        };
        if u > u32::MAX as u64 || v > u32::MAX as u64 {
            return Err(IoError::Parse(i + 1, "node id exceeds u32".into()));
        }
        max_id = max_id.max(u).max(v);
        edges.push((u as NodeId, v as NodeId, w));
    }
    let n = if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    };
    Ok((n, edges))
}

/// Reads an unweighted, symmetrized graph from an edge list.
pub fn read_edge_list<R: Read>(reader: R) -> Result<CsrGraph, IoError> {
    let (n, edges) = parse_edges(reader)?;
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v, _) in edges {
        b.push_edge(u, v, 0);
    }
    Ok(b.build())
}

/// Reads a weighted, symmetrized graph from an edge list (missing weights
/// default to 0).
pub fn read_weighted_edge_list<R: Read>(reader: R) -> Result<WeightedCsrGraph, IoError> {
    let (n, edges) = parse_edges(reader)?;
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v, w) in edges {
        b.push_edge(u, v, w);
    }
    Ok(b.build_weighted())
}

/// Reads a graph from a file path.
pub fn read_edge_list_file(path: impl AsRef<Path>) -> Result<CsrGraph, IoError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Writes a graph as an edge list (each undirected edge once).
pub fn write_edge_list<W: Write>(g: &CsrGraph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# ampc edge list: {} nodes {} edges",
        g.num_nodes(),
        g.num_edges()
    )?;
    for e in g.edges() {
        writeln!(w, "{} {}", e.u, e.v)?;
    }
    w.flush()
}

/// Writes a weighted graph as a `u v w` edge list.
pub fn write_weighted_edge_list<W: Write>(g: &WeightedCsrGraph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# ampc edge list: {} nodes {} edges",
        g.num_nodes(),
        g.num_edges()
    )?;
    for e in g.edges() {
        writeln!(w, "{} {} {}", e.u, e.v, e.w)?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn round_trip_unweighted() {
        let g = gen::erdos_renyi(40, 100, 9);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn round_trip_weighted() {
        let g = gen::degree_weights(&gen::erdos_renyi(40, 100, 9));
        let mut buf = Vec::new();
        write_weighted_edge_list(&g, &mut buf).unwrap();
        let g2 = read_weighted_edge_list(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let input = "# comment\n\n0 1\n 1 2 \n";
        let g = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn reports_parse_errors_with_line_numbers() {
        let input = "0 1\nx 2\n";
        let err = read_edge_list(input.as_bytes()).unwrap_err();
        match err {
            IoError::Parse(line, _) => assert_eq!(line, 2),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 0);
    }
}
