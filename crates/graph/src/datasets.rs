//! Registry of laptop-scale analogues of the paper's datasets (§5.2).
//!
//! The paper evaluates on five real-world graphs (com-Orkut, Twitter,
//! Friendster, ClueWeb, Hyperlink2012) plus the synthetic `2 × k` cycle
//! family. The real graphs are multi-billion-edge proprietary-hosted
//! downloads that a reproduction cannot assume; per the substitution
//! policy in `DESIGN.md` we generate synthetic analogues that preserve
//! the properties the experiments exercise:
//!
//! * **relative scale ordering** — OK < TW < FS < CW < HL in edge count,
//!   so per-dataset trends (e.g. Figure 9's linear KV-bytes-vs-m trend)
//!   are reproducible;
//! * **degree skew** — the social graphs use Graph500-style RMAT
//!   parameters; the web graphs (CW, HL) use a more skewed parameter set
//!   that yields the "many vertices with enormous degree" that the paper
//!   blames for MPC's join skew on ClueWeb (§5.3);
//! * **component structure** — CW/HL analogues are sparse enough to
//!   shatter into many components, like the originals (Table 2 reports
//!   23.8M and 144.6M components);
//! * **MSF weighting** — `w(u, v) = deg(u) + deg(v)` exactly as §5.2.
//!
//! Every analogue is deterministic given the seed, and
//! [`Dataset::paper_stats`] records the original Table 2 row so harnesses
//! can print paper-vs-ours tables.

use crate::gen::{self, RmatParams};
use crate::stats::DiameterEstimate;
use crate::weighted::WeightedCsrGraph;
use crate::CsrGraph;
use serde::{Deserialize, Serialize};

/// The graph inputs of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// com-Orkut social network analogue (paper: 3.07M nodes / 234.4M edges).
    Orkut,
    /// Twitter follower graph analogue (paper: 41.6M / 2.4B).
    Twitter,
    /// Friendster social network analogue (paper: 65.6M / 3.6B).
    Friendster,
    /// ClueWeb web graph analogue (paper: 0.978B / 74.7B).
    ClueWeb,
    /// Hyperlink2012 web graph analogue (paper: 3.56B / 225.8B).
    Hyperlink,
    /// The `2 × k` cycle family (two cycles on `k` vertices each).
    TwoCycles(usize),
}

/// How large an analogue to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Tiny instances for unit/integration tests (sub-second end to end).
    Test,
    /// Intermediate instances: every experiment finishes in minutes on a
    /// laptop (the default for the reproduction harness).
    Mid,
    /// The full laptop-scale analogues (the benchmark harness with
    /// `AMPC_SCALE=bench`).
    Bench,
}

impl Scale {
    /// Parses from the `AMPC_SCALE` environment knob
    /// (`test` / `mid` / `bench`), defaulting to [`Scale::Mid`]. The
    /// environment read goes through the [`ampc_knobs`] registry so the
    /// knob stays discoverable alongside every other `AMPC_*` variable.
    pub fn from_env() -> Scale {
        match ampc_knobs::ampc_scale() {
            "test" => Scale::Test,
            "bench" => Scale::Bench,
            _ => Scale::Mid,
        }
    }
}

/// The original Table 2 row for a dataset, for paper-vs-measured tables.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaperStats {
    /// Paper's vertex count.
    pub num_nodes: f64,
    /// Paper's edge count.
    pub num_edges: f64,
    /// Paper's diameter (lower bound where marked `*` in Table 2).
    pub diameter: usize,
    /// True if the paper's diameter is exact.
    pub diameter_exact: bool,
    /// Paper's number of connected components.
    pub num_components: f64,
    /// Paper's largest component size.
    pub largest_component: f64,
}

impl Dataset {
    /// The five real-world datasets of Table 2, in paper order.
    pub const REAL_WORLD: [Dataset; 5] = [
        Dataset::Orkut,
        Dataset::Twitter,
        Dataset::Friendster,
        Dataset::ClueWeb,
        Dataset::Hyperlink,
    ];

    /// The short name used in the paper's tables.
    pub fn name(&self) -> String {
        match self {
            Dataset::Orkut => "OK".into(),
            Dataset::Twitter => "TW".into(),
            Dataset::Friendster => "FS".into(),
            Dataset::ClueWeb => "CW".into(),
            Dataset::Hyperlink => "HL".into(),
            Dataset::TwoCycles(k) => format!("2x{k}"),
        }
    }

    /// The Table 2 row of the original dataset ([`None`] for cycle
    /// instances, which Table 2 parameterizes by `k`).
    pub fn paper_stats(&self) -> Option<PaperStats> {
        let s = match self {
            Dataset::Orkut => PaperStats {
                num_nodes: 3.07e6,
                num_edges: 234.4e6,
                diameter: 9,
                diameter_exact: true,
                num_components: 1.0,
                largest_component: 3.1e6,
            },
            Dataset::Twitter => PaperStats {
                num_nodes: 41.6e6,
                num_edges: 2.4e9,
                diameter: 23,
                diameter_exact: false,
                num_components: 2.0,
                largest_component: 41.6e6,
            },
            Dataset::Friendster => PaperStats {
                num_nodes: 65.6e6,
                num_edges: 3.6e9,
                diameter: 32,
                diameter_exact: true,
                num_components: 1.0,
                largest_component: 65.6e6,
            },
            Dataset::ClueWeb => PaperStats {
                num_nodes: 0.978e9,
                num_edges: 74.7e9,
                diameter: 132,
                diameter_exact: false,
                num_components: 23_794_336.0,
                largest_component: 0.950e9,
            },
            Dataset::Hyperlink => PaperStats {
                num_nodes: 3.56e9,
                num_edges: 225.8e9,
                diameter: 331,
                diameter_exact: false,
                num_components: 144_628_744.0,
                largest_component: 3.35e9,
            },
            Dataset::TwoCycles(_) => return None,
        };
        Some(s)
    }

    /// Generation recipe: `(log_n, edges, params)` for the RMAT analogues.
    fn recipe(&self, scale: Scale) -> Option<(u32, usize, RmatParams)> {
        // Bench scale targets: edge counts increase across the five
        // datasets (1.2M → 24M) like the paper's (234M → 226B); the web
        // graphs are sparser *relative to their vertex count* so that they
        // shatter into many components.
        let bench = match self {
            Dataset::Orkut => (14, 1_250_000, RmatParams::SOCIAL),
            Dataset::Twitter => (17, 7_500_000, RmatParams::SOCIAL),
            Dataset::Friendster => (18, 11_000_000, RmatParams::SOCIAL),
            Dataset::ClueWeb => (20, 16_000_000, RmatParams::WEB),
            Dataset::Hyperlink => (21, 24_000_000, RmatParams::WEB),
            Dataset::TwoCycles(_) => return None,
        };
        Some(match scale {
            Scale::Bench => bench,
            // Mid scale: nodes / 8, edges / 8.
            Scale::Mid => (bench.0 - 3, bench.1 / 8, bench.2),
            // Test scale: nodes / 64, edges / 64.
            Scale::Test => (bench.0 - 6, bench.1 / 64, bench.2),
        })
    }

    /// Generates the (unweighted, symmetrized) analogue graph.
    ///
    /// ```
    /// use ampc_graph::datasets::{Dataset, Scale};
    /// let g = Dataset::Orkut.generate(Scale::Test, 1);
    /// assert_eq!(g.num_nodes(), 256);
    /// assert!(g.num_edges() > 1_000);
    /// ```
    pub fn generate(&self, scale: Scale, seed: u64) -> CsrGraph {
        match self {
            Dataset::TwoCycles(k) => {
                let k = match scale {
                    Scale::Bench => *k,
                    Scale::Mid => (*k / 8).max(3),
                    Scale::Test => (*k / 64).max(3),
                };
                gen::two_cycles(k, seed)
            }
            _ => {
                let (log_n, m, params) = self.recipe(scale).unwrap();
                gen::rmat(log_n, m, params, seed)
            }
        }
    }

    /// Generates the weighted analogue with `w(u, v) = deg(u) + deg(v)`,
    /// the paper's MSF weighting (§5.2).
    pub fn generate_weighted(&self, scale: Scale, seed: u64) -> WeightedCsrGraph {
        gen::degree_weights(&self.generate(scale, seed))
    }
}

/// Formats a (value, paper-value) pair for the harness tables.
pub fn versus(ours: usize, paper: f64) -> String {
    format!("{ours} (paper: {})", human(paper))
}

/// Human-readable large number (e.g. `2.4B`, `234.4M`).
pub fn human(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2}B", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.1}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.1}K", x / 1e3)
    } else {
        format!("{x:.0}")
    }
}

/// Formats a [`DiameterEstimate`]-style value with paper comparison.
pub fn versus_diameter(ours: DiameterEstimate, paper: usize, paper_exact: bool) -> String {
    let star = if paper_exact { "" } else { "*" };
    format!("{ours} (paper: {paper}{star})")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn names_match_paper() {
        assert_eq!(Dataset::Orkut.name(), "OK");
        assert_eq!(Dataset::Hyperlink.name(), "HL");
        assert_eq!(Dataset::TwoCycles(100).name(), "2x100");
    }

    #[test]
    fn test_scale_generates_quickly_and_deterministically() {
        let a = Dataset::Orkut.generate(Scale::Test, 1);
        let b = Dataset::Orkut.generate(Scale::Test, 1);
        assert_eq!(a, b);
        assert_eq!(a.num_nodes(), 256);
        assert!(a.num_edges() > 5_000);
    }

    #[test]
    fn edge_counts_increase_across_datasets() {
        let mut last = 0usize;
        for d in Dataset::REAL_WORLD {
            let g = d.generate(Scale::Test, 0);
            assert!(
                g.num_edges() > last,
                "{} should be bigger than previous",
                d.name()
            );
            last = g.num_edges();
        }
    }

    #[test]
    fn web_analogues_have_many_components() {
        let cw = Dataset::ClueWeb.generate(Scale::Test, 0);
        let cc = stats::connected_components(&cw);
        assert!(
            cc.num_components > 10,
            "ClueWeb analogue should shatter: {} components",
            cc.num_components
        );
    }

    #[test]
    fn weighted_uses_degree_rule() {
        let w = Dataset::Orkut.generate_weighted(Scale::Test, 3);
        let g = w.structure();
        for e in w.edges().take(50) {
            assert_eq!(e.w as usize, g.degree(e.u) + g.degree(e.v));
        }
    }

    #[test]
    fn two_cycles_dataset() {
        let g = Dataset::TwoCycles(640).generate(Scale::Test, 7);
        assert_eq!(g.num_nodes(), 20); // 640/64 = 10 per cycle
        let g = Dataset::TwoCycles(640).generate(Scale::Bench, 7);
        assert_eq!(g.num_nodes(), 1280);
    }

    #[test]
    fn human_formatting() {
        assert_eq!(human(2.4e9), "2.40B");
        assert_eq!(human(234.4e6), "234.4M");
        assert_eq!(human(950.0), "950");
    }
}
