//! Erdős–Rényi `G(n, m)` generator.

use crate::builder::GraphBuilder;
use crate::CsrGraph;
use crate::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates a uniform random graph on `n` vertices with (up to) `m`
/// distinct edges. Self-loops are rejected at sampling time; duplicate
/// pairs are removed by the builder, so for `m` close to `n²/2` the final
/// count can be lower than requested.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(
        n >= 2 || m == 0,
        "need at least two vertices to place edges"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, m);
    for _ in 0..m {
        // Rejection-sample a non-loop pair.
        loop {
            let u = rng.gen_range(0..n) as NodeId;
            let v = rng.gen_range(0..n) as NodeId;
            if u != v {
                builder.push_edge(u, v, 0);
                break;
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_bounds() {
        let g = erdos_renyi(100, 300, 5);
        assert_eq!(g.num_nodes(), 100);
        assert!(g.num_edges() <= 300);
        assert!(g.num_edges() > 250); // few collisions at this density
    }

    #[test]
    fn no_self_loops() {
        let g = erdos_renyi(20, 100, 11);
        for u in g.nodes() {
            assert!(!g.neighbors(u).contains(&u));
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(erdos_renyi(50, 120, 3), erdos_renyi(50, 120, 3));
    }

    #[test]
    fn zero_edges_ok() {
        let g = erdos_renyi(1, 0, 0);
        assert_eq!(g.num_edges(), 0);
    }
}
