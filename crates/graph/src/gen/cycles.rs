//! The `1 × n` and `2 × k` cycle families (§5.6 of the paper).
//!
//! The 1-vs-2-cycle problem asks to distinguish a single cycle on `n`
//! vertices from two disjoint cycles on `n/2` vertices each. The paper's
//! experiments use a family of *"massive high-diameter graphs consisting
//! of two cycles on k vertices each (`2 × k` graphs)"*. To make the
//! problem non-trivial for algorithms that might exploit vertex-id
//! locality, vertex ids are scrambled by a seeded permutation.

use crate::builder::GraphBuilder;
use crate::CsrGraph;
use crate::NodeId;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Which of the two instances a generated graph is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CyclePair {
    /// A single cycle of length `2k`.
    One,
    /// Two disjoint cycles of length `k` each.
    Two,
}

fn permutation(n: usize, seed: u64) -> Vec<NodeId> {
    let mut perm: Vec<NodeId> = (0..n as NodeId).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    perm.shuffle(&mut rng);
    perm
}

/// A single scrambled cycle on `n ≥ 3` vertices.
pub fn single_cycle(n: usize, seed: u64) -> CsrGraph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let perm = permutation(n, seed);
    let mut b = GraphBuilder::with_capacity(n, n);
    for i in 0..n {
        b.push_edge(perm[i], perm[(i + 1) % n], 0);
    }
    b.build()
}

/// Two disjoint scrambled cycles on `k ≥ 3` vertices each (the `2 × k`
/// family), on a total of `2k` vertices.
pub fn two_cycles(k: usize, seed: u64) -> CsrGraph {
    assert!(k >= 3, "each cycle needs at least 3 vertices");
    let n = 2 * k;
    let perm = permutation(n, seed);
    let mut b = GraphBuilder::with_capacity(n, n);
    for c in 0..2 {
        let base = c * k;
        for i in 0..k {
            b.push_edge(perm[base + i], perm[base + (i + 1) % k], 0);
        }
    }
    b.build()
}

impl CyclePair {
    /// Generates the instance: `2k` vertices arranged as one `2k`-cycle or
    /// two `k`-cycles.
    pub fn generate(self, k: usize, seed: u64) -> CsrGraph {
        match self {
            CyclePair::One => single_cycle(2 * k, seed),
            CyclePair::Two => two_cycles(k, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cycle_all_degree_two() {
        let g = single_cycle(10, 3);
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.num_edges(), 10);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn two_cycles_all_degree_two() {
        let g = two_cycles(6, 3);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 12);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn generate_matches_variants() {
        let one = CyclePair::One.generate(8, 1);
        let two = CyclePair::Two.generate(8, 1);
        assert_eq!(one.num_nodes(), 16);
        assert_eq!(two.num_nodes(), 16);
        assert_eq!(one.num_edges(), 16);
        assert_eq!(two.num_edges(), 16);
    }

    #[test]
    fn ids_are_scrambled() {
        // With a scrambled permutation vertex 0 is unlikely to neighbor 1
        // in every seed; check at least one seed where it doesn't.
        let g = single_cycle(1000, 42);
        assert!(
            !g.neighbors(0).contains(&1) || !g.neighbors(1).contains(&2),
            "permutation left ids consecutive — scrambling broken?"
        );
    }
}
