//! Chung–Lu power-law graph generator.
//!
//! Produces graphs whose expected degree sequence follows a power law with
//! exponent `gamma` — an alternative skewed-workload family used by the
//! ablation benchmarks to check that results on RMAT analogues are not an
//! artifact of the RMAT recursion.

use crate::builder::GraphBuilder;
use crate::CsrGraph;
use crate::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates a Chung–Lu graph: `n` vertices, (up to) `m` edges, expected
/// degrees `w_i ∝ (i + 1)^(-1/(gamma - 1))` for `gamma > 2`.
///
/// Endpoints are sampled independently proportionally to their weight
/// (via the standard "inverse CDF on the cumulative weights" method);
/// duplicates and loops are removed by the builder.
pub fn chung_lu(n: usize, m: usize, gamma: f64, seed: u64) -> CsrGraph {
    assert!(gamma > 2.0, "Chung–Lu requires gamma > 2 (got {gamma})");
    assert!(n >= 2 || m == 0);
    let exponent = -1.0 / (gamma - 1.0);
    // Cumulative weights for inverse-CDF sampling.
    let mut cumulative = Vec::with_capacity(n);
    let mut acc = 0.0f64;
    for i in 0..n {
        acc += ((i + 1) as f64).powf(exponent);
        cumulative.push(acc);
    }
    let total = acc;

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, m);
    let sample = |rng: &mut SmallRng| -> NodeId {
        let r = rng.gen_range(0.0..total);
        cumulative.partition_point(|&c| c <= r) as NodeId
    };
    for _ in 0..m {
        for _attempt in 0..16 {
            let u = sample(&mut rng);
            let v = sample(&mut rng);
            if u != v {
                builder.push_edge(u, v, 0);
                break;
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_scale() {
        let g = chung_lu(1000, 5000, 2.5, 1);
        assert_eq!(g.num_nodes(), 1000);
        assert!(g.num_edges() > 3000);
    }

    #[test]
    fn skewed_toward_low_ids() {
        let g = chung_lu(2000, 10_000, 2.2, 2);
        // Vertex 0 has the largest expected degree.
        let d0 = g.degree(0);
        let d_last = g.degree(1999);
        assert!(d0 > 10 * (d_last + 1), "d0 = {d0}, d_last = {d_last}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(chung_lu(100, 400, 2.5, 9), chung_lu(100, 400, 2.5, 9));
    }

    #[test]
    #[should_panic(expected = "gamma > 2")]
    fn rejects_gamma_below_two() {
        chung_lu(10, 10, 1.5, 0);
    }
}
