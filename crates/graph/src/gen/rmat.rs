//! Recursive-matrix (RMAT) graph generator.
//!
//! RMAT graphs are the standard stand-in for skewed real-world networks:
//! the `(a, b, c, d)` quadrant probabilities control the degree skew. We
//! use them as laptop-scale analogues of the paper's social and web graphs
//! (Orkut, Twitter, Friendster, ClueWeb, Hyperlink2012); see
//! [`crate::datasets`].

use crate::builder::GraphBuilder;
use crate::CsrGraph;
use crate::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// RMAT quadrant probabilities. Must sum to (approximately) 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant probability (controls hub formation).
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Bottom-right quadrant probability.
    pub d: f64,
}

impl RmatParams {
    /// Classic Graph500-style parameters: strong skew, social-network-like.
    pub const SOCIAL: RmatParams = RmatParams {
        a: 0.57,
        b: 0.19,
        c: 0.19,
        d: 0.05,
    };

    /// Extremely skewed parameters producing web-graph-like inputs with a
    /// few massive hubs and many small components (our ClueWeb/Hyperlink
    /// analogue).
    pub const WEB: RmatParams = RmatParams {
        a: 0.65,
        b: 0.17,
        c: 0.13,
        d: 0.05,
    };

    /// Nearly uniform (degenerate Erdős–Rényi-like) parameters.
    pub const UNIFORM: RmatParams = RmatParams {
        a: 0.25,
        b: 0.25,
        c: 0.25,
        d: 0.25,
    };

    fn validate(&self) {
        let s = self.a + self.b + self.c + self.d;
        assert!(
            (s - 1.0).abs() < 1e-6,
            "RMAT parameters must sum to 1 (got {s})"
        );
        assert!(
            self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d >= 0.0,
            "RMAT parameters must be non-negative"
        );
    }
}

/// Generates an undirected RMAT graph with `2^log_n` vertices and
/// (up to) `m` edges; self-loops and duplicates are removed, so the final
/// edge count is slightly below `m`, mirroring how real RMAT inputs are
/// produced and then symmetrized (§5.2 of the paper symmetrizes its
/// directed inputs the same way).
pub fn rmat(log_n: u32, m: usize, params: RmatParams, seed: u64) -> CsrGraph {
    params.validate();
    assert!(log_n <= 31, "log_n must fit in u32 node ids");
    let n = 1usize << log_n;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, m);

    // Noise added to quadrant probabilities at each level ("smoothing"),
    // the standard fix that avoids exactly repeating degree patterns.
    for _ in 0..m {
        let (u, v) = sample_edge(log_n, &params, &mut rng);
        builder.push_edge(u, v, 0);
    }
    builder.build()
}

fn sample_edge(log_n: u32, p: &RmatParams, rng: &mut SmallRng) -> (NodeId, NodeId) {
    let mut u: NodeId = 0;
    let mut v: NodeId = 0;
    for _ in 0..log_n {
        u <<= 1;
        v <<= 1;
        // Per-level multiplicative noise in [0.95, 1.05].
        let na = p.a * rng.gen_range(0.95..1.05);
        let nb = p.b * rng.gen_range(0.95..1.05);
        let nc = p.c * rng.gen_range(0.95..1.05);
        let nd = p.d * rng.gen_range(0.95..1.05);
        let total = na + nb + nc + nd;
        let r: f64 = rng.gen_range(0.0..total);
        if r < na {
            // top-left: no bits set
        } else if r < na + nb {
            v |= 1;
        } else if r < na + nb + nc {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_scale() {
        let g = rmat(10, 5_000, RmatParams::SOCIAL, 1);
        assert_eq!(g.num_nodes(), 1024);
        // Dedup removes some edges but most survive.
        assert!(g.num_edges() > 3_000, "got {}", g.num_edges());
        assert!(g.num_edges() <= 5_000);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = rmat(8, 1000, RmatParams::SOCIAL, 7);
        let b = rmat(8, 1000, RmatParams::SOCIAL, 7);
        assert_eq!(a, b);
        let c = rmat(8, 1000, RmatParams::SOCIAL, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn social_params_are_skewed() {
        let g = rmat(12, 40_000, RmatParams::SOCIAL, 3);
        let max_deg = g.max_degree();
        let avg_deg = 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(
            max_deg as f64 > 8.0 * avg_deg,
            "expected skew: max {max_deg} vs avg {avg_deg}"
        );
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_params() {
        rmat(
            4,
            10,
            RmatParams {
                a: 0.9,
                b: 0.9,
                c: 0.0,
                d: 0.0,
            },
            0,
        );
    }
}
