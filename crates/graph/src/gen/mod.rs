//! Synthetic graph generators.
//!
//! Each generator is deterministic given its seed. The families here cover
//! the workloads of the paper's evaluation (§5.2, §5.6): skewed
//! social-network-like graphs (RMAT, Chung–Lu), the `2 × k` cycle family
//! used by the 1-vs-2-cycle experiments, and classic structured graphs for
//! tests (paths, stars, grids, trees, complete graphs).

mod chung_lu;
mod classic;
mod cycles;
mod erdos_renyi;
mod rmat;

pub use chung_lu::chung_lu;
pub use classic::{complete, grid, path, random_tree, star};
pub use cycles::{single_cycle, two_cycles, CyclePair};
pub use erdos_renyi::erdos_renyi;
pub use rmat::{rmat, RmatParams};

use crate::weighted::WeightedCsrGraph;
use crate::{CsrGraph, Weight};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Attaches weights `w(u, v) = deg(u) + deg(v)` to an unweighted graph —
/// exactly the weighting rule the paper uses for its MSF inputs (§5.2):
/// *"the weight of an edge (u, v) is proportional to deg(u) + deg(v)"*.
pub fn degree_weights(g: &CsrGraph) -> WeightedCsrGraph {
    let mut weights = Vec::with_capacity(g.num_arcs());
    for u in g.nodes() {
        let du = g.degree(u) as Weight;
        for &v in g.neighbors(u) {
            weights.push(du + g.degree(v) as Weight);
        }
    }
    WeightedCsrGraph::from_parts(g.clone(), weights)
}

/// Attaches independent uniform random weights in `1..=max_weight`.
/// Both directions of an edge receive the same weight (the weight is a
/// hash of the canonical endpoint pair and the seed), so the result is a
/// valid undirected weighted graph.
pub fn random_weights(g: &CsrGraph, max_weight: Weight, seed: u64) -> WeightedCsrGraph {
    let mut weights = Vec::with_capacity(g.num_arcs());
    for u in g.nodes() {
        for &v in g.neighbors(u) {
            let (a, b) = if u <= v { (u, v) } else { (v, u) };
            let mut rng = SmallRng::seed_from_u64(
                seed ^ ((a as u64) << 32 | b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            weights.push(rng.gen_range(1..=max_weight));
        }
    }
    WeightedCsrGraph::from_parts(g.clone(), weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn degree_weights_match_rule() {
        // star on 4 nodes: center 0 has degree 3, leaves degree 1.
        let g = star(4);
        let w = degree_weights(&g);
        for e in w.edges() {
            assert_eq!(e.w, 4); // 3 + 1
        }
    }

    #[test]
    fn random_weights_symmetric_and_in_range() {
        let g = GraphBuilder::new(4)
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 3)
            .add_edge(3, 0)
            .build();
        let w = random_weights(&g, 100, 42);
        for u in w.nodes() {
            for (v, wt) in w.weighted_neighbors(u) {
                assert!((1..=100).contains(&wt));
                // the reverse arc carries the same weight
                let back = w
                    .weighted_neighbors(v)
                    .find(|&(x, _)| x == u)
                    .map(|(_, ww)| ww)
                    .unwrap();
                assert_eq!(back, wt);
            }
        }
    }

    #[test]
    fn random_weights_deterministic() {
        let g = erdos_renyi(50, 100, 7);
        let a = random_weights(&g, 1000, 9);
        let b = random_weights(&g, 1000, 9);
        assert_eq!(a.edge_vec(), b.edge_vec());
    }
}
