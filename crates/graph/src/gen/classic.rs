//! Classic structured graphs used mostly by tests and examples.

use crate::builder::GraphBuilder;
use crate::CsrGraph;
use crate::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A path `0 - 1 - … - (n-1)`.
pub fn path(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        b.push_edge((i - 1) as NodeId, i as NodeId, 0);
    }
    b.build()
}

/// A star with center `0` and `n - 1` leaves.
pub fn star(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        b.push_edge(0, i as NodeId, 0);
    }
    b.build()
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            b.push_edge(i as NodeId, j as NodeId, 0);
        }
    }
    b.build()
}

/// An `r × c` grid graph (vertices `i * c + j`).
pub fn grid(r: usize, c: usize) -> CsrGraph {
    let n = r * c;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    let id = |i: usize, j: usize| (i * c + j) as NodeId;
    for i in 0..r {
        for j in 0..c {
            if i + 1 < r {
                b.push_edge(id(i, j), id(i + 1, j), 0);
            }
            if j + 1 < c {
                b.push_edge(id(i, j), id(i, j + 1), 0);
            }
        }
    }
    b.build()
}

/// A uniformly random labelled tree on `n` vertices (random attachment:
/// vertex `i` connects to a uniform earlier vertex). Always connected and
/// acyclic.
pub fn random_tree(n: usize, seed: u64) -> CsrGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        let parent = rng.gen_range(0..i) as NodeId;
        b.push_edge(parent, i as NodeId, 0);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::connected_components;

    #[test]
    fn path_degrees() {
        let g = path(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.degree(4), 1);
    }

    #[test]
    fn star_center() {
        let g = star(6);
        assert_eq!(g.degree(0), 5);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn complete_counts() {
        let g = complete(5);
        assert_eq!(g.num_edges(), 10);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert_eq!(g.degree(0), 2); // corner
    }

    #[test]
    fn random_tree_connected_acyclic() {
        let g = random_tree(200, 4);
        assert_eq!(g.num_edges(), 199);
        let cc = connected_components(&g);
        assert_eq!(cc.num_components, 1);
    }

    #[test]
    fn single_vertex_cases() {
        assert_eq!(path(1).num_edges(), 0);
        assert_eq!(star(1).num_edges(), 0);
        assert_eq!(random_tree(1, 0).num_edges(), 0);
    }
}
