//! Edge types shared across the workspace.

use crate::{NodeId, Weight};

/// An undirected, unweighted edge. Stored canonically with `u <= v`
/// when produced by [`Edge::canonical`]; the raw constructor keeps the
/// given orientation (useful for directed intermediates).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    /// First endpoint.
    pub u: NodeId,
    /// Second endpoint.
    pub v: NodeId,
}

impl Edge {
    /// Creates an edge with the given orientation.
    #[inline]
    pub fn new(u: NodeId, v: NodeId) -> Self {
        Edge { u, v }
    }

    /// Creates the canonical representation with the smaller endpoint first.
    #[inline]
    pub fn canonical(u: NodeId, v: NodeId) -> Self {
        if u <= v {
            Edge { u, v }
        } else {
            Edge { u: v, v: u }
        }
    }

    /// Returns the endpoint that is not `x`.
    ///
    /// # Panics
    /// Panics in debug builds if `x` is not an endpoint.
    #[inline]
    pub fn other(&self, x: NodeId) -> NodeId {
        debug_assert!(x == self.u || x == self.v);
        if x == self.u {
            self.v
        } else {
            self.u
        }
    }

    /// True if the edge is a self-loop.
    #[inline]
    pub fn is_loop(&self) -> bool {
        self.u == self.v
    }

    /// True if the two edges share an endpoint (are adjacent in the line
    /// graph). A pair of equal edges is also considered adjacent.
    #[inline]
    pub fn shares_endpoint(&self, other: &Edge) -> bool {
        self.u == other.u || self.u == other.v || self.v == other.u || self.v == other.v
    }

    /// Flips the orientation.
    #[inline]
    pub fn reversed(&self) -> Edge {
        Edge {
            u: self.v,
            v: self.u,
        }
    }
}

/// An undirected weighted edge.
///
/// Edge comparisons used by the MSF algorithms go through [`Self::key`],
/// which breaks weight ties by the canonical endpoint pair. With distinct
/// keys the minimum spanning forest is **unique**, which lets the test
/// suite compare forests produced by different algorithms edge-by-edge —
/// the same trick the paper relies on when cross-checking AMPC and MPC
/// implementations seeded with the same randomness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WeightedEdge {
    /// First endpoint.
    pub u: NodeId,
    /// Second endpoint.
    pub v: NodeId,
    /// The weight.
    pub w: Weight,
}

impl WeightedEdge {
    /// Creates a weighted edge with the given orientation.
    #[inline]
    pub fn new(u: NodeId, v: NodeId, w: Weight) -> Self {
        WeightedEdge { u, v, w }
    }

    /// Canonical representation (smaller endpoint first).
    #[inline]
    pub fn canonical(u: NodeId, v: NodeId, w: Weight) -> Self {
        if u <= v {
            WeightedEdge { u, v, w }
        } else {
            WeightedEdge { u: v, v: u, w }
        }
    }

    /// The unweighted edge.
    #[inline]
    pub fn edge(&self) -> Edge {
        Edge::new(self.u, self.v)
    }

    /// Total-order key: `(weight, min endpoint, max endpoint)`.
    ///
    /// Distinct parallel edges with equal weight still compare equal under
    /// this key; [`crate::builder::GraphBuilder`] deduplicates parallel
    /// edges (keeping the lightest), so graphs built through the builder
    /// have strictly totally ordered edges.
    #[inline]
    pub fn key(&self) -> (Weight, NodeId, NodeId) {
        let (a, b) = if self.u <= self.v {
            (self.u, self.v)
        } else {
            (self.v, self.u)
        };
        (self.w, a, b)
    }

    /// Returns the endpoint that is not `x`.
    #[inline]
    pub fn other(&self, x: NodeId) -> NodeId {
        debug_assert!(x == self.u || x == self.v);
        if x == self.u {
            self.v
        } else {
            self.u
        }
    }

    /// True if the edge is a self-loop.
    #[inline]
    pub fn is_loop(&self) -> bool {
        self.u == self.v
    }
}

impl PartialOrd for WeightedEdge {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WeightedEdge {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_orders_endpoints() {
        assert_eq!(Edge::canonical(5, 2), Edge::new(2, 5));
        assert_eq!(Edge::canonical(2, 5), Edge::new(2, 5));
        assert_eq!(Edge::canonical(3, 3), Edge::new(3, 3));
    }

    #[test]
    fn other_returns_opposite_endpoint() {
        let e = Edge::new(1, 9);
        assert_eq!(e.other(1), 9);
        assert_eq!(e.other(9), 1);
    }

    #[test]
    fn loop_detection() {
        assert!(Edge::new(4, 4).is_loop());
        assert!(!Edge::new(4, 5).is_loop());
    }

    #[test]
    fn shares_endpoint_matrix() {
        let e = Edge::new(1, 2);
        assert!(e.shares_endpoint(&Edge::new(2, 3)));
        assert!(e.shares_endpoint(&Edge::new(3, 1)));
        assert!(e.shares_endpoint(&Edge::new(1, 2)));
        assert!(!e.shares_endpoint(&Edge::new(3, 4)));
    }

    #[test]
    fn weighted_edge_ordering_is_by_weight_then_endpoints() {
        let a = WeightedEdge::new(0, 1, 5);
        let b = WeightedEdge::new(2, 3, 5);
        let c = WeightedEdge::new(9, 8, 1);
        let mut v = vec![a, b, c];
        v.sort();
        assert_eq!(v, vec![c, a, b]);
    }

    #[test]
    fn weighted_key_ignores_orientation() {
        assert_eq!(
            WeightedEdge::new(7, 3, 10).key(),
            WeightedEdge::new(3, 7, 10).key()
        );
    }

    #[test]
    fn reversed_swaps() {
        assert_eq!(Edge::new(1, 2).reversed(), Edge::new(2, 1));
    }
}
