//! A lightweight item-level parser for Rust source, built on the
//! [`crate::lexer`] token stream.
//!
//! The interprocedural rules (R8–R11, DESIGN.md §9) need to see
//! *function boundaries* — which `fn` wraps which call — not just token
//! shapes. This module extracts exactly that and nothing more: `fn`
//! items (free functions, inherent/trait methods, nested fns) and
//! *named closures* (`let f = |…| …`), each with its parameter list,
//! body token range, and the call expressions the body performs, with
//! per-call loop context computed relative to the owning item's body.
//!
//! It is deliberately **not** a Rust grammar: generics are skipped by
//! delimiter matching, types are kept as flat text, and anything the
//! parser cannot shape is ignored rather than rejected (rustc is the
//! authority on well-formedness; the linter must degrade gracefully).

use crate::lexer::{Tok, TokKind};

/// One call expression inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// The called name: method name for `recv.m(…)`, last path segment
    /// for `a::b::f(…)`, the identifier itself for `f(…)`.
    pub callee: String,
    /// For method calls whose receiver chain ends in a plain
    /// identifier (`ctx.handle.get(…)` → `handle`), that identifier.
    /// `None` for plain/path calls and computed receivers (`f().g(…)`).
    pub receiver: Option<String>,
    /// Leading path segments for a path call (`a::b::f` → `["a","b"]`).
    pub path: Vec<String>,
    /// Token index of the callee identifier.
    pub tok: usize,
    /// 1-based source position of the callee identifier.
    pub line: u32,
    /// 1-based column of the callee identifier.
    pub col: u32,
    /// True when the call sits inside a `for`/`while`/`loop` body or an
    /// iterator-adapter callback *within the owning item's body* (a
    /// named closure's sites are judged against the closure body, not
    /// the loop its parent may sit in).
    pub in_loop: bool,
}

/// One function parameter: `(name, type-as-text)`. `self` receivers
/// appear as `("self", "Self")`; closure parameters without an
/// annotation have an empty type.
pub type Param = (String, String);

/// A function-like item: a `fn` or a named closure.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Item name (`fn` name, or the `let` binding for a closure).
    pub name: String,
    /// 1-based line of the name identifier.
    pub line: u32,
    /// 1-based column of the name identifier.
    pub col: u32,
    /// Token index of the introducing `fn` keyword (or `let` for a
    /// closure) — budget annotations bind by this order.
    pub intro_tok: usize,
    /// Body token range `[start, end]`, inclusive of delimiters.
    pub body: (usize, usize),
    /// Parameters, in declaration order.
    pub params: Vec<Param>,
    /// Calls performed directly by this body (nested named items'
    /// calls belong to the nested item, anonymous closures' calls to
    /// this one).
    pub calls: Vec<CallSite>,
    /// True for a `let name = |…| …` closure.
    pub is_closure: bool,
}

/// A parsed file: the token stream plus its function-like items,
/// ordered by body start.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    /// The full token stream (comments included).
    pub toks: Vec<Tok>,
    /// Function items in body-start order.
    pub fns: Vec<FnItem>,
}

/// Keywords that look like calls when followed by `(` but are not.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "fn", "let", "in", "as", "where",
    "impl", "move", "ref", "mut", "pub", "use", "unsafe", "dyn", "break", "continue", "crate",
    "super", "mod", "trait", "struct", "enum", "union", "static", "const", "type", "extern",
    "yield", "await", "box",
];

/// Parses `src` (already lexed to `toks`) into its item structure.
pub fn parse_tokens(rel: &str, toks: Vec<Tok>) -> ParsedFile {
    let mut fns = Vec::new();
    collect_fn_items(&toks, &mut fns);
    collect_named_closures(&toks, &mut fns);
    fns.sort_by_key(|f| f.body.0);
    // Owned ranges: each item's body minus nested items' bodies.
    let nested_of = |i: usize, fns: &[FnItem]| -> Vec<(usize, usize)> {
        fns.iter()
            .enumerate()
            .filter(|(j, g)| *j != i && g.body.0 > fns[i].body.0 && g.body.1 <= fns[i].body.1)
            .map(|(_, g)| g.body)
            .collect()
    };
    for i in 0..fns.len() {
        let nested = nested_of(i, &fns);
        let (start, end) = fns[i].body;
        let loop_flags = loop_flags_in(&toks, start, end);
        fns[i].calls = collect_calls(&toks, start, end, &nested, &loop_flags);
    }
    ParsedFile {
        rel: rel.to_string(),
        toks,
        fns,
    }
}

/// Convenience: lex + parse.
pub fn parse_source(rel: &str, src: &str) -> ParsedFile {
    parse_tokens(rel, crate::lexer::lex(src))
}

fn next_code(toks: &[Tok], i: usize) -> Option<usize> {
    toks[i + 1..]
        .iter()
        .position(|t| t.kind != TokKind::Comment)
        .map(|off| i + 1 + off)
}

fn prev_code(toks: &[Tok], i: usize) -> Option<usize> {
    toks[..i].iter().rposition(|t| t.kind != TokKind::Comment)
}

/// Finds every `fn` item with a body and records it.
fn collect_fn_items(toks: &[Tok], out: &mut Vec<FnItem>) {
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        let Some(name_idx) = next_code(toks, i) else {
            continue;
        };
        if toks[name_idx].kind != TokKind::Ident {
            continue; // `fn(u32)` pointer type, malformed source, …
        }
        // Skip a generics group directly after the name (it may contain
        // parens in `Fn(..)` bounds that are not the parameter list).
        // `->` never appears before the parameter list, so a bare `>`
        // always closes an angle here.
        let mut j = name_idx + 1;
        if next_code(toks, name_idx).is_some_and(|g| toks[g].is_punct('<')) {
            let mut angle = 0i32;
            while j < toks.len() {
                match toks[j].kind {
                    TokKind::Punct('<') => angle += 1,
                    TokKind::Punct('>') => {
                        angle -= 1;
                        if angle == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // Scan the rest of the signature: stop at the first `{` (body)
        // or `;` (trait declaration) at paren/bracket depth 0. Where
        // clauses contain neither at depth 0.
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut params_range: Option<(usize, usize)> = None;
        let mut params_open: Option<usize> = None;
        let mut body_open: Option<usize> = None;
        while j < toks.len() {
            match toks[j].kind {
                TokKind::Punct('(') => {
                    if paren == 0 && bracket == 0 && params_range.is_none() && params_open.is_none()
                    {
                        params_open = Some(j);
                    }
                    paren += 1;
                }
                TokKind::Punct(')') => {
                    paren -= 1;
                    if paren == 0 && bracket == 0 {
                        if let Some(open) = params_open.take() {
                            params_range.get_or_insert((open, j));
                        }
                    }
                }
                TokKind::Punct('[') => bracket += 1,
                TokKind::Punct(']') => bracket -= 1,
                TokKind::Punct('{') if paren == 0 && bracket == 0 => {
                    body_open = Some(j);
                    break;
                }
                TokKind::Punct(';') if paren == 0 && bracket == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let (Some(open), Some((ps, pe))) = (body_open, params_range) else {
            continue;
        };
        let Some(close) = match_brace(toks, open) else {
            continue;
        };
        out.push(FnItem {
            name: toks[name_idx].text.clone(),
            line: toks[name_idx].line,
            col: toks[name_idx].col,
            intro_tok: i,
            body: (open, close),
            params: parse_params(toks, ps, pe),
            calls: Vec::new(),
            is_closure: false,
        });
    }
}

/// Finds `let [mut] name = [move] |…| body` closures and records them
/// as callable items under `name`.
fn collect_named_closures(toks: &[Tok], out: &mut Vec<FnItem>) {
    for i in 0..toks.len() {
        if !toks[i].is_ident("let") {
            continue;
        }
        let Some(mut n) = next_code(toks, i) else {
            continue;
        };
        if toks[n].is_ident("mut") {
            let Some(n2) = next_code(toks, n) else {
                continue;
            };
            n = n2;
        }
        if toks[n].kind != TokKind::Ident {
            continue;
        }
        let name_idx = n;
        let Some(eq) = next_code(toks, n) else {
            continue;
        };
        if !toks[eq].is_punct('=') {
            continue;
        }
        let Some(mut p) = next_code(toks, eq) else {
            continue;
        };
        if toks[p].is_ident("move") {
            let Some(p2) = next_code(toks, p) else {
                continue;
            };
            p = p2;
        }
        if !toks[p].is_punct('|') {
            continue;
        }
        // Parameter list: `||` is empty; otherwise scan to the closing
        // `|` (closure parameters cannot contain `|`).
        let close_pipe = match next_code(toks, p) {
            Some(q) if toks[q].is_punct('|') => q,
            _ => {
                let Some(q) = (p + 1..toks.len()).find(|&q| toks[q].is_punct('|')) else {
                    continue;
                };
                q
            }
        };
        let Some(body_start) = next_code(toks, close_pipe) else {
            continue;
        };
        // Body: a brace block, or an expression running to the `;` that
        // ends the `let` statement (at delimiter depth 0).
        let body = if toks[body_start].is_punct('{') {
            match match_brace(toks, body_start) {
                Some(close) => (body_start, close),
                None => continue,
            }
        } else {
            let mut depth = 0i32;
            let mut end = None;
            for (j, t) in toks.iter().enumerate().skip(body_start) {
                match t.kind {
                    TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                        if depth == 0 {
                            break; // unbalanced: `let` inside a call arg
                        }
                        depth -= 1;
                    }
                    TokKind::Punct(';') if depth == 0 => {
                        end = Some(j);
                        break;
                    }
                    _ => {}
                }
            }
            match end {
                Some(e) if e > body_start => (body_start, e - 1),
                _ => continue,
            }
        };
        out.push(FnItem {
            name: toks[name_idx].text.clone(),
            line: toks[name_idx].line,
            col: toks[name_idx].col,
            intro_tok: i,
            body,
            params: parse_params(toks, p, close_pipe),
            calls: Vec::new(),
            is_closure: true,
        });
    }
}

/// Matches the brace opened at token `open`, comment-insensitive.
fn match_brace(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Parses a delimiter-bounded parameter list (`(…)` or `|…|`): each
/// top-level comma-separated segment yields `(name, type-text)`.
fn parse_params(toks: &[Tok], open: usize, close: usize) -> Vec<Param> {
    let mut params = Vec::new();
    let mut depth = 0i32;
    let mut seg_start = open + 1;
    let mut segments = Vec::new();
    for (j, t) in toks.iter().enumerate().take(close).skip(open + 1) {
        match t.kind {
            TokKind::Punct('(')
            | TokKind::Punct('[')
            | TokKind::Punct('{')
            | TokKind::Punct('<') => depth += 1,
            TokKind::Punct(')')
            | TokKind::Punct(']')
            | TokKind::Punct('}')
            | TokKind::Punct('>') => depth -= 1,
            TokKind::Punct(',') if depth <= 0 => {
                segments.push((seg_start, j));
                seg_start = j + 1;
                depth = depth.max(0);
            }
            _ => {}
        }
    }
    if seg_start < close {
        segments.push((seg_start, close));
    }
    for (s, e) in segments {
        let code: Vec<usize> = (s..e)
            .filter(|&j| toks[j].kind != TokKind::Comment)
            .collect();
        if code.is_empty() {
            continue;
        }
        // `self` receiver (possibly `&self`, `&mut self`, `&'a self`).
        if let Some(&si) = code.iter().find(|&&j| toks[j].is_ident("self")) {
            let before_colon = code
                .iter()
                .position(|&j| toks[j].is_punct(':'))
                .map(|k| code[..k].contains(&si))
                .unwrap_or(true);
            if before_colon {
                params.push(("self".to_string(), "Self".to_string()));
                continue;
            }
        }
        // Find the first single `:` at segment top level (`::` is two
        // adjacent colon tokens — skip both).
        let mut colon = None;
        let mut d = 0i32;
        let mut k = 0usize;
        while k < code.len() {
            let j = code[k];
            match toks[j].kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('<') => d += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('>') => d -= 1,
                TokKind::Punct(':') => {
                    let double = code.get(k + 1).is_some_and(|&j2| toks[j2].is_punct(':'));
                    if double {
                        k += 1;
                    } else if d <= 0 {
                        colon = Some(k);
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        match colon {
            Some(c) => {
                let name = code[..c]
                    .iter()
                    .rev()
                    .find(|&&j| toks[j].kind == TokKind::Ident && !toks[j].is_ident("mut"))
                    .map(|&j| toks[j].text.clone());
                let ty = type_text(toks, &code[c + 1..]);
                if let Some(name) = name {
                    params.push((name, ty));
                }
            }
            None => {
                // Unannotated closure parameter: the last identifier of
                // the pattern names the binding.
                if let Some(&j) = code
                    .iter()
                    .rev()
                    .find(|&&j| toks[j].kind == TokKind::Ident && !toks[j].is_ident("mut"))
                {
                    params.push((toks[j].text.clone(), String::new()));
                }
            }
        }
    }
    params
}

/// Flattens type tokens to a compact text form (`&mut MachineCtx<'a,V>`
/// → `&mut MachineCtx<'a,V>` roughly; exact spelling is irrelevant, the
/// rules only substring-match type names).
fn type_text(toks: &[Tok], code: &[usize]) -> String {
    let mut out = String::new();
    for &j in code {
        match &toks[j].kind {
            TokKind::Ident => {
                if !out.is_empty() && out.ends_with(|c: char| c.is_alphanumeric() || c == '_') {
                    out.push(' ');
                }
                out.push_str(&toks[j].text);
            }
            TokKind::Punct(c) => out.push(*c),
            TokKind::Literal => out.push_str(&toks[j].text),
            TokKind::Comment => {}
        }
    }
    out
}

/// Loop-context flags for `toks[start..=end]`, computed with fresh
/// scope stacks so the flags are relative to this body: index `k` in
/// the result corresponds to token `start + k`.
pub fn loop_flags_in(toks: &[Tok], start: usize, end: usize) -> Vec<bool> {
    let mut flags = vec![false; end + 1 - start];
    let mut braces: Vec<bool> = Vec::new();
    let mut parens: Vec<bool> = Vec::new();
    let mut loop_depth = 0usize;
    let mut pending_loop: Option<usize> = None;
    for idx in start..=end {
        let t = &toks[idx];
        flags[idx - start] = loop_depth > 0;
        match &t.kind {
            TokKind::Ident => match t.text.as_str() {
                "for" if is_loop_for(toks, idx) => pending_loop = Some(parens.len()),
                "while" | "loop" => pending_loop = Some(parens.len()),
                _ => {}
            },
            TokKind::Punct('(') => {
                let adapter = idx >= 2
                    && toks[idx - 1].kind == TokKind::Ident
                    && ITER_ADAPTERS.contains(&toks[idx - 1].text.as_str())
                    && toks[idx - 2].is_punct('.');
                if adapter {
                    loop_depth += 1;
                }
                parens.push(adapter);
            }
            TokKind::Punct(')') if parens.pop() == Some(true) => {
                loop_depth = loop_depth.saturating_sub(1);
            }
            TokKind::Punct('{') => {
                let is_loop = pending_loop.take().map(|d| d == parens.len()) == Some(true);
                if is_loop {
                    loop_depth += 1;
                }
                braces.push(is_loop);
            }
            TokKind::Punct('}') if braces.pop() == Some(true) => {
                loop_depth = loop_depth.saturating_sub(1);
            }
            _ => {}
        }
    }
    flags
}

/// Iterator adapters whose callback runs once per element (mirrors the
/// per-file rule engine's notion of "inside a loop").
pub const ITER_ADAPTERS: &[&str] = &[
    "map",
    "for_each",
    "filter",
    "filter_map",
    "flat_map",
    "fold",
    "scan",
    "inspect",
    "retain",
    "try_for_each",
];

/// Distinguishes loop-`for` from `impl Trait for Type` and HRTB
/// `for<'a>` (same heuristic as the per-file engine).
fn is_loop_for(toks: &[Tok], i: usize) -> bool {
    if next_code(toks, i).is_some_and(|j| toks[j].is_punct('<')) {
        return false;
    }
    match prev_code(toks, i) {
        Some(j) => {
            !(toks[j].kind == TokKind::Ident
                || toks[j].is_punct('>')
                || toks[j].is_punct(')')
                || toks[j].is_punct(']'))
        }
        None => true,
    }
}

/// Collects the call sites in `[start, end]`, skipping `nested` body
/// ranges (they belong to nested named items).
fn collect_calls(
    toks: &[Tok],
    start: usize,
    end: usize,
    nested: &[(usize, usize)],
    loop_flags: &[bool],
) -> Vec<CallSite> {
    let mut calls = Vec::new();
    let owned = |i: usize| !nested.iter().any(|&(s, e)| i >= s && i <= e);
    for i in start..=end {
        if toks[i].kind != TokKind::Ident || !owned(i) {
            continue;
        }
        if NON_CALL_KEYWORDS.contains(&toks[i].text.as_str()) {
            continue;
        }
        // Callee must be directly followed by `(` (macros are `name!(`
        // and thus excluded).
        let Some(np) = next_code(toks, i) else {
            continue;
        };
        if !toks[np].is_punct('(') {
            continue;
        }
        let mut receiver = None;
        let mut path = Vec::new();
        match prev_code(toks, i) {
            Some(p) if toks[p].is_punct('.') => {
                if let Some(r) = prev_code(toks, p) {
                    if toks[r].kind == TokKind::Ident {
                        receiver = Some(toks[r].text.clone());
                    }
                }
            }
            Some(p) if toks[p].is_punct(':') => {
                // Walk `seg :: seg :: callee` backwards.
                let mut q = p;
                while let Some(c1) = prev_code(toks, q) {
                    if !toks[c1].is_punct(':') {
                        break;
                    }
                    let Some(seg) = prev_code(toks, c1) else {
                        break;
                    };
                    if toks[seg].kind != TokKind::Ident {
                        break;
                    }
                    path.insert(0, toks[seg].text.clone());
                    let Some(c2) = prev_code(toks, seg) else {
                        break;
                    };
                    if !toks[c2].is_punct(':') {
                        break;
                    }
                    q = c2;
                }
            }
            _ => {}
        }
        calls.push(CallSite {
            callee: toks[i].text.clone(),
            receiver,
            path,
            tok: i,
            line: toks[i].line,
            col: toks[i].col,
            in_loop: loop_flags[i - start],
        });
    }
    calls
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fns(src: &str) -> ParsedFile {
        parse_source("crates/core/src/t.rs", src)
    }

    #[test]
    fn extracts_fn_items_params_and_calls() {
        let p = fns(r#"
            pub fn alpha(g: &CsrGraph, cfg: &mut AmpcConfig) -> u32 {
                beta(g);
                g.nodes().map(|v| gamma(v)).collect()
            }
            fn beta(x: &CsrGraph) {}
        "#);
        assert_eq!(p.fns.len(), 2);
        let a = &p.fns[0];
        assert_eq!(a.name, "alpha");
        assert_eq!(a.params.len(), 2);
        assert_eq!(a.params[0].0, "g");
        assert!(a.params[1].1.contains("AmpcConfig"));
        let names: Vec<&str> = a.calls.iter().map(|c| c.callee.as_str()).collect();
        assert!(names.contains(&"beta") && names.contains(&"gamma"));
        let gamma = a.calls.iter().find(|c| c.callee == "gamma").unwrap();
        assert!(gamma.in_loop, "adapter callback is loop context");
        let beta = a.calls.iter().find(|c| c.callee == "beta").unwrap();
        assert!(!beta.in_loop);
    }

    #[test]
    fn method_receiver_and_path_calls() {
        let p = fns(r#"
            fn f(ctx: &mut Ctx) {
                ctx.handle.get(1);
                ampc_core::mis::run(2);
                make().chain(3);
            }
        "#);
        let calls = &p.fns[0].calls;
        let get = calls.iter().find(|c| c.callee == "get").unwrap();
        assert_eq!(get.receiver.as_deref(), Some("handle"));
        let run = calls.iter().find(|c| c.callee == "run").unwrap();
        assert_eq!(run.path, vec!["ampc_core", "mis"]);
        let chain = calls.iter().find(|c| c.callee == "chain").unwrap();
        assert_eq!(chain.receiver, None, "computed receiver");
    }

    #[test]
    fn named_closures_become_items_and_own_their_calls() {
        let p = fns(r#"
            fn outer(ctx: &mut Ctx) {
                let expand = |x: u32| {
                    ctx.handle.get(x);
                };
                loop {
                    expand(7);
                }
            }
        "#);
        assert_eq!(p.fns.len(), 2);
        let outer = p.fns.iter().find(|f| f.name == "outer").unwrap();
        let expand = p.fns.iter().find(|f| f.name == "expand").unwrap();
        assert!(expand.is_closure);
        // The get belongs to the closure, not to outer.
        assert!(expand.calls.iter().any(|c| c.callee == "get"));
        assert!(!outer.calls.iter().any(|c| c.callee == "get"));
        // The expand() call in the loop belongs to outer, in loop scope.
        let call = outer.calls.iter().find(|c| c.callee == "expand").unwrap();
        assert!(call.in_loop);
        // The get inside the closure is NOT in-loop relative to the
        // closure body.
        assert!(
            !expand
                .calls
                .iter()
                .find(|c| c.callee == "get")
                .unwrap()
                .in_loop
        );
    }

    #[test]
    fn expression_closures_and_empty_params() {
        let p = fns("fn f() { let g = || tick(); let h = move |a, b| a + other(b); g(); }");
        let g = p.fns.iter().find(|f| f.name == "g").unwrap();
        assert!(g.calls.iter().any(|c| c.callee == "tick"));
        let h = p.fns.iter().find(|f| f.name == "h").unwrap();
        assert_eq!(h.params.len(), 2);
        assert!(h.calls.iter().any(|c| c.callee == "other"));
    }

    #[test]
    fn trait_decls_fn_types_and_struct_inits_are_not_items_or_calls() {
        let p = fns(r#"
            trait T { fn decl(&self) -> u32; }
            fn f(cb: fn(u32) -> u32) -> S {
                let s = S { a: 1 };
                mac!(arg);
                s.touch();
                s
            }
        "#);
        assert_eq!(p.fns.len(), 1, "only f has a body");
        let f = &p.fns[0];
        assert!(f.calls.iter().any(|c| c.callee == "touch"));
        assert!(
            !f.calls.iter().any(|c| c.callee == "mac"),
            "macros excluded"
        );
        assert!(!f.calls.iter().any(|c| c.callee == "S"));
    }

    #[test]
    fn nested_fns_own_their_calls() {
        let p = fns(r#"
            fn outer() {
                fn inner(q: u8) { deep(q); }
                inner(1);
            }
        "#);
        let outer = p.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = p.fns.iter().find(|f| f.name == "inner").unwrap();
        assert!(inner.calls.iter().any(|c| c.callee == "deep"));
        assert!(!outer.calls.iter().any(|c| c.callee == "deep"));
        assert!(outer.calls.iter().any(|c| c.callee == "inner"));
    }

    #[test]
    fn self_receiver_param() {
        let p = fns("impl X { fn m(&mut self, k: u64) -> bool { self.probe(k) } }");
        let m = &p.fns[0];
        assert_eq!(m.params[0], ("self".to_string(), "Self".to_string()));
        assert_eq!(m.params[1].0, "k");
    }

    #[test]
    fn loop_for_inside_while_and_plain_loops() {
        let p = fns("fn f() { while go() { step(); } for x in 0..3 { body(x); } tail(); }");
        let f = &p.fns[0];
        for (name, in_loop) in [
            ("step", true),
            ("body", true),
            ("tail", false),
            ("go", false),
        ] {
            let c = f.calls.iter().find(|c| c.callee == name).unwrap();
            assert_eq!(c.in_loop, in_loop, "{name}");
        }
    }
}
