//! `ampc-lint` — the model-conformance static analyzer.
//!
//! Every guarantee this reproduction makes — byte-identical outputs
//! across thread counts, storage layouts and fault replays, and the
//! O(S)-budgeted batched DHT access that defines the AMPC model — is
//! otherwise enforced only *dynamically*, by equivalence tests that
//! need a schedule to expose a divergence. This crate enforces the same
//! invariants *statically*, at the source level, before any schedule
//! runs. Three layers: a comment/string-aware lexer ([`lexer`]), an
//! item-level parser ([`parser`]) feeding a workspace symbol table
//! ([`symbols`]) and call graph ([`callgraph`]), and a rule engine
//! ([`rules`]) that runs per-file lexical rules (R1–R7) plus
//! interprocedural rules (R8–R11) over every `.rs` file under
//! `crates/`, `tests/`, `src/` and `examples/` at once, reporting
//! violations with file:line spans and — for the interprocedural
//! family — witness call chains.
//!
//! The rules, their invariants, the suppression-marker grammar and the
//! `budget(batched-requests = N)` annotation grammar are documented in
//! DESIGN.md §9. The crate is dependency-free so the conformance gate
//! can never be blocked by the code it gates; its JSON output follows
//! the same handwritten RFC 8259 conventions as `ampc-bench`
//! (`crates/bench/src/json.rs` re-parses it in tests).

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod symbols;

use rules::{SuppressionEntry, Violation, WorkspaceReport};
use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

/// The aggregated result of linting a file set.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Number of `.rs` files scanned (parsed into the workspace symbol
    /// table — with `--changed-only` this still counts every file,
    /// because interprocedural rules need the whole workspace).
    pub files_scanned: usize,
    /// All surviving violations, ordered by (file, line, col).
    pub violations: Vec<Violation>,
    /// Violations silenced by well-formed allow markers.
    pub suppressed: usize,
    /// The justified suppressions behind [`Report::suppressed`] —
    /// the exception inventory CI surfaces.
    pub suppressions: Vec<SuppressionEntry>,
}

impl Report {
    /// True when no violations survived.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// `(rule name, surviving-violation count)` for every known rule
    /// plus the `bad-suppression` meta-rule, in R-number order.
    pub fn rule_counts(&self) -> Vec<(&'static str, usize)> {
        let mut out: Vec<(&'static str, usize)> = rules::RULES
            .iter()
            .map(|r| r.name)
            .chain([rules::BAD_SUPPRESSION])
            .map(|name| {
                (
                    name,
                    self.violations.iter().filter(|v| v.rule == name).count(),
                )
            })
            .collect();
        debug_assert_eq!(out.len(), rules::RULES.len() + 1);
        out.shrink_to_fit();
        out
    }
}

/// Extracts the section-number set (`"1"`, `"5.3"`, …) from DESIGN.md
/// source: every heading line containing `§` contributes the number
/// that follows it.
pub fn parse_design_sections(src: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in src.lines() {
        let line = line.trim_start();
        if !line.starts_with('#') {
            continue;
        }
        if let Some(at) = line.find('§') {
            let num: String = line[at + '§'.len_utf8()..]
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.')
                .collect();
            let num = num.trim_end_matches('.').to_string();
            if !num.is_empty() {
                out.insert(num);
            }
        }
    }
    out
}

/// Builds a [`rules::Linter`] for the workspace at `root`, loading the
/// R7 section set from `root/DESIGN.md` (absent file → empty set, so
/// every reference flags rather than silently passing).
pub fn linter_for_root(root: &Path) -> rules::Linter {
    let sections = std::fs::read_to_string(root.join("DESIGN.md"))
        .map(|s| parse_design_sections(&s))
        .unwrap_or_default();
    rules::Linter::with_sections(sections)
}

/// The directories under the workspace root that are scanned.
pub const SCAN_ROOTS: &[&str] = &["crates", "tests", "src", "examples"];

/// Path components that are never scanned: build output, vendored
/// stand-in dependencies (not this workspace's code), and the lint
/// crate's own intentionally-violating test fixtures.
const SKIP_COMPONENTS: &[&str] = &["target", "vendor", "fixtures", ".git"];

/// Collects every scannable `.rs` file under `root`, sorted for
/// deterministic report order.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for dir in SCAN_ROOTS {
        let top = root.join(dir);
        if top.is_dir() {
            walk(&top, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIP_COMPONENTS.contains(&name) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints the whole workspace at `root`: every `.rs` file under
/// [`SCAN_ROOTS`] is parsed into one symbol table, rules scoped by path
/// as DESIGN.md §9 specifies.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    lint_workspace_filtered(root, None)
}

/// Like [`lint_workspace`], but when `only_files` is given, violations
/// and suppressions are reported only for those workspace-relative
/// paths. The *whole* workspace is still parsed — the interprocedural
/// rules need every potential callee — so a changed-only run is a
/// report filter, not a soundness trade.
pub fn lint_workspace_filtered(
    root: &Path,
    only_files: Option<&BTreeSet<String>>,
) -> io::Result<Report> {
    let linter = linter_for_root(root);
    let mut sources: Vec<(String, String)> = Vec::new();
    for path in workspace_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        sources.push((rel, src));
    }
    let refs: Vec<(&str, &str)> = sources
        .iter()
        .map(|(r, s)| (r.as_str(), s.as_str()))
        .collect();
    let WorkspaceReport {
        mut violations,
        mut suppressions,
    } = linter.check_sources(&refs);
    if let Some(only) = only_files {
        violations.retain(|v| only.contains(&v.file));
        suppressions.retain(|s| only.contains(&s.file));
    }
    Ok(Report {
        files_scanned: sources.len(),
        suppressed: suppressions.len(),
        violations,
        suppressions,
    })
}

/// The files `git` considers changed relative to `base` (plus untracked
/// files), as workspace-relative paths — the `--changed-only` file set.
pub fn changed_files(root: &Path, base: &str) -> io::Result<BTreeSet<String>> {
    let mut out = BTreeSet::new();
    for args in [
        vec!["diff", "--name-only", base],
        vec!["ls-files", "--others", "--exclude-standard"],
    ] {
        let cmd = std::process::Command::new("git")
            .arg("-C")
            .arg(root)
            .args(&args)
            .output()?;
        if !cmd.status.success() {
            return Err(io::Error::other(format!(
                "git {} failed: {}",
                args.join(" "),
                String::from_utf8_lossy(&cmd.stderr).trim()
            )));
        }
        for line in String::from_utf8_lossy(&cmd.stdout).lines() {
            let line = line.trim();
            if !line.is_empty() {
                out.insert(line.replace('\\', "/"));
            }
        }
    }
    Ok(out)
}

/// Renders the report as human-readable text: one `file:line:col`
/// violation per line (witness chains, already embedded in the
/// messages, get their own indented line for multi-step findings) plus
/// a summary.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for v in &report.violations {
        out.push_str(&format!(
            "{}:{}:{}: [{}] {}\n",
            v.file, v.line, v.col, v.rule, v.message
        ));
        if v.chain.len() > 1 {
            out.push_str(&format!(
                "    witness: {}\n",
                callgraph::render_chain(&v.chain)
            ));
        }
    }
    out.push_str(&format!(
        "ampc-lint: {} file(s) scanned, {} violation(s), {} suppressed — {}\n",
        report.files_scanned,
        report.violations.len(),
        report.suppressed,
        if report.clean() { "clean" } else { "FAIL" }
    ));
    out
}

/// Renders the report as one strict RFC 8259 JSON document (the same
/// handwritten-writer conventions as `ampc-bench`; no timestamps or
/// absolute paths, so the artifact is byte-deterministic for a given
/// tree). Every violation carries its witness `chain` (possibly empty);
/// top-level `rule_counts` and `suppressions` feed the CI step summary.
pub fn render_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"tool\": \"ampc-lint\",\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n  \"suppressed\": {},\n  \"clean\": {},\n",
        report.files_scanned,
        report.suppressed,
        report.clean()
    ));
    out.push_str("  \"rule_counts\": {");
    for (i, (name, count)) in report.rule_counts().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{}: {}", json_string(name), count));
    }
    out.push_str("},\n");
    out.push_str("  \"violations\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let chain = v
            .chain
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\": {}, \"file\": {}, \"line\": {}}}",
                    json_string(&s.name),
                    json_string(&s.file),
                    s.line
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"message\": {}, \"chain\": [{}]}}",
            json_string(v.rule),
            json_string(&v.file),
            v.line,
            v.col,
            json_string(&v.message),
            chain
        ));
    }
    if report.violations.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n  ],\n");
    }
    out.push_str("  \"suppressions\": [");
    for (i, s) in report.suppressions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"justification\": {}}}",
            json_string(s.rule),
            json_string(&s.file),
            s.line,
            json_string(&s.justification)
        ));
    }
    if report.suppressions.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n  ]\n");
    }
    out.push_str("}\n");
    out
}

/// Escapes `s` as a JSON string literal (RFC 8259 §7).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_sections_parse() {
        let s = parse_design_sections("# DESIGN\n## §1 One\n## §5.3 Batch\ntext §9 not heading\n");
        assert!(s.contains("1") && s.contains("5.3"));
        assert!(!s.contains("9"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_string("\u{1}"), r#""\u0001""#);
    }

    #[test]
    fn empty_report_renders_clean() {
        let r = Report::default();
        assert!(render_text(&r).contains("clean"));
        let j = render_json(&r);
        assert!(j.contains("\"clean\": true") && j.contains("\"violations\": []"));
        assert!(j.contains("\"rule_counts\"") && j.contains("\"suppressions\": []"));
    }

    #[test]
    fn rule_counts_cover_all_rules() {
        let counts = Report::default().rule_counts();
        assert_eq!(counts.len(), rules::RULES.len() + 1);
        assert!(counts.iter().any(|(n, _)| *n == "query-budget"));
        assert!(counts.iter().all(|(_, c)| *c == 0));
    }
}
