//! The workspace symbol table: every function-like item from every
//! parsed file, addressable by a global id, with the name-resolution
//! policy the interprocedural rules share.
//!
//! Resolution is heuristic (the linter has no type information): a call
//! to `f` resolves to items named `f`, preferring the **same file**,
//! then the **same crate**, then a **globally unique** match — and to
//! nothing at all when the name is ambiguous across crates, which
//! keeps false call-graph edges (and thus false findings) out at the
//! cost of missing some true ones. Method calls resolve by the method
//! name under the same policy; [`crate::rules`] special-cases the
//! `MachineHandle` primitives (`handle.get`, `handle.get_many`, …)
//! before resolution is consulted.

use crate::parser::{FnItem, ParsedFile};
use std::collections::BTreeMap;

/// Globally-unique function id: index into [`SymbolTable::fns`].
pub type FnId = usize;

/// One symbol: a function item plus where it lives.
#[derive(Clone, Debug)]
pub struct Symbol {
    /// Index of the owning file in [`SymbolTable::files`].
    pub file: usize,
    /// The parsed item.
    pub item: FnItem,
}

/// The workspace-wide symbol table.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Parsed files, in scan order.
    pub files: Vec<ParsedFile>,
    /// All function items, flattened; `FnId` indexes this.
    pub fns: Vec<Symbol>,
    by_name: BTreeMap<String, Vec<FnId>>,
}

/// The "crate" a workspace-relative path belongs to for resolution
/// purposes: `crates/<name>` keeps two components, everything else
/// (`src/…`, `tests/…`, `examples/…`) its first.
pub fn crate_of(rel: &str) -> &str {
    let mut slashes = rel.char_indices().filter(|&(_, c)| c == '/');
    if rel.starts_with("crates/") {
        slashes.next();
    }
    match slashes.next() {
        Some((i, _)) => &rel[..i],
        None => rel,
    }
}

impl SymbolTable {
    /// Builds the table from parsed files. Item order (file scan order,
    /// then body order within a file) fixes `FnId`s deterministically.
    pub fn build(files: Vec<ParsedFile>) -> SymbolTable {
        let mut fns = Vec::new();
        let mut by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        for (fi, pf) in files.iter().enumerate() {
            for item in &pf.fns {
                let id = fns.len();
                by_name.entry(item.name.clone()).or_default().push(id);
                fns.push(Symbol {
                    file: fi,
                    item: item.clone(),
                });
            }
        }
        SymbolTable {
            files,
            fns,
            by_name,
        }
    }

    /// The workspace-relative path of the file owning `id`.
    pub fn rel_of(&self, id: FnId) -> &str {
        &self.files[self.fns[id].file].rel
    }

    /// Resolves a call by name from the context of `caller`: same file,
    /// else same crate, else a globally unique match, else nothing.
    pub fn resolve(&self, caller: FnId, name: &str) -> Option<FnId> {
        let candidates = self.by_name.get(name)?;
        let caller_file = self.fns[caller].file;
        let same_file: Vec<FnId> = candidates
            .iter()
            .copied()
            .filter(|&id| self.fns[id].file == caller_file)
            .collect();
        if let [only] = same_file[..] {
            return Some(only);
        }
        if same_file.len() > 1 {
            // Several same-file items share the name (e.g. a method on
            // two impls): take the first in body order — they live in
            // the same file, so any witness chain stays honest.
            return Some(same_file[0]);
        }
        let caller_crate = crate_of(&self.files[caller_file].rel);
        let same_crate: Vec<FnId> = candidates
            .iter()
            .copied()
            .filter(|&id| crate_of(self.rel_of(id)) == caller_crate)
            .collect();
        if let [only] = same_crate[..] {
            return Some(only);
        }
        if same_crate.len() > 1 {
            return None; // ambiguous within the crate
        }
        if let [only] = candidates[..] {
            return Some(only);
        }
        None // ambiguous across crates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_source;

    fn table(files: &[(&str, &str)]) -> SymbolTable {
        SymbolTable::build(
            files
                .iter()
                .map(|(rel, src)| parse_source(rel, src))
                .collect(),
        )
    }

    #[test]
    fn crate_of_paths() {
        assert_eq!(crate_of("crates/core/src/mis/ampc.rs"), "crates/core");
        assert_eq!(crate_of("src/lib.rs"), "src");
        assert_eq!(crate_of("examples/quickstart.rs"), "examples");
        assert_eq!(crate_of("tests/smoke.rs"), "tests");
    }

    #[test]
    fn resolution_prefers_same_file_then_crate_then_unique() {
        let t = table(&[
            ("crates/a/src/x.rs", "fn go() { helper(); } fn helper() {}"),
            ("crates/a/src/y.rs", "fn helper() {}"),
            ("crates/b/src/z.rs", "fn helper() {} fn lonely() {}"),
        ]);
        let go = t.fns.iter().position(|s| s.item.name == "go").unwrap();
        let resolved = t.resolve(go, "helper").unwrap();
        assert_eq!(t.rel_of(resolved), "crates/a/src/x.rs", "same file wins");
        // `lonely` is globally unique → resolvable from anywhere.
        assert!(t.resolve(go, "lonely").is_some());
    }

    #[test]
    fn cross_crate_ambiguity_resolves_to_nothing() {
        let t = table(&[
            ("crates/a/src/x.rs", "fn go() { dup(); }"),
            ("crates/b/src/y.rs", "fn dup() {}"),
            ("crates/c/src/z.rs", "fn dup() {}"),
        ]);
        let go = t.fns.iter().position(|s| s.item.name == "go").unwrap();
        assert_eq!(t.resolve(go, "dup"), None);
    }
}
